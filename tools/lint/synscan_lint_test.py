#!/usr/bin/env python3
"""Self-tests for synscan_lint.py against the fixture trees under
tools/lint/testdata/: every rule fires on the seeded violations, every
violation is suppressible with the documented annotations, and a clean
tree produces no findings. Registered with ctest as `lint_selftest`."""

import re
import subprocess
import sys
import unittest
from collections import Counter
from pathlib import Path

HERE = Path(__file__).resolve().parent
LINTER = HERE / "synscan_lint.py"
TESTDATA = HERE / "testdata"

FINDING = re.compile(r"^(.+?):(\d+): \[([a-z-]+)\] ")

# Rule -> findings seeded into testdata/violations.
EXPECTED = {
    "hot-path-container": 10,  # include + use in hot_map.cpp, hot_sensor.cpp,
                               # hot_registry.cpp (enrich), hot_evidence.cpp
                               # (fingerprint), hot_daemon.cpp (server)
    "metric-doc-sync": 2,     # undocumented tracker.ghost + ghost doc entry
    "pragma-once": 1,         # missing_pragma.h
    "include-order": 2,       # own header not first + unsorted block
    "naked-new": 2,           # new + delete in naked.cpp
    "test-registration": 2,   # orphan_test.cpp + missing gone_test.cpp
    "raw-sync-primitive": 4,  # locking.cpp: 2 includes, member, lock_guard
    "guarded-by": 2,          # guarded.h: open_ + draining_ unannotated
}


def run_lint(repo, *extra):
    return subprocess.run(
        [sys.executable, str(LINTER), "--repo", str(repo), *extra],
        capture_output=True,
        text=True,
        check=False,
    )


def findings_by_rule(stdout):
    counts = Counter()
    for line in stdout.splitlines():
        m = FINDING.match(line)
        if m:
            counts[m.group(3)] += 1
    return counts


class ViolationsFire(unittest.TestCase):
    """Each rule detects its seeded violation."""

    @classmethod
    def setUpClass(cls):
        cls.result = run_lint(TESTDATA / "violations")
        cls.counts = findings_by_rule(cls.result.stdout)

    def test_exit_status_signals_findings(self):
        self.assertEqual(self.result.returncode, 1, self.result.stdout)

    def test_expected_findings_per_rule(self):
        self.assertEqual(dict(self.counts), EXPECTED, self.result.stdout)

    def test_findings_carry_path_and_line(self):
        for line in self.result.stdout.splitlines():
            if line and not line.startswith("synscan-lint:"):
                self.assertRegex(line, FINDING)

    def test_single_rule_selection(self):
        for rule, expected in EXPECTED.items():
            with self.subTest(rule=rule):
                result = run_lint(TESTDATA / "violations", "--rule", rule)
                self.assertEqual(result.returncode, 1, result.stdout)
                self.assertEqual(
                    findings_by_rule(result.stdout), {rule: expected}, result.stdout
                )


class SuppressionsWork(unittest.TestCase):
    """The same violations annotated with allow()/allow-file() are clean."""

    def test_suppressed_tree_is_clean(self):
        result = run_lint(TESTDATA / "suppressed")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertEqual(findings_by_rule(result.stdout), {})


class CleanTree(unittest.TestCase):
    def test_clean_tree_has_no_findings(self):
        result = run_lint(TESTDATA / "clean")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_min_doc_names_floor_trips(self):
        result = run_lint(
            TESTDATA / "clean", "--rule", "metric-doc-sync", "--min-doc-names", "99"
        )
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("floor 99", result.stdout)


class BadInvocation(unittest.TestCase):
    def test_missing_repo_is_usage_error(self):
        result = run_lint(TESTDATA / "no-such-tree")
        self.assertEqual(result.returncode, 2, result.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
