// Fixture: never built on purpose.
// synscan-lint: allow-file(test-registration)
int orphan() { return 1; }
