// The guarded-by violations from testdata/violations, waived with both
// annotation shapes: inline on the member, and on the comment line
// directly above it.
#pragma once

#include <cstdint>

#include "core/sync.h"

namespace synscan::server {

class Sessions {
 public:
  void bump();

 private:
  core::Mutex mutex_;
  core::CondVar changed_;
  int open_ = 0;  // loop-thread only. synscan-lint: allow(guarded-by)
  // Written before the workers start. synscan-lint: allow(guarded-by)
  bool draining_ = false;
  std::uint64_t total_ SYNSCAN_GUARDED_BY(mutex_) = 0;
};

}  // namespace synscan::server
