// Fixture: cold admin path, ordered iteration wanted for a debug dump.
// synscan-lint: allow-file(hot-path-container)
#include <map>

unsigned hot_connection_lookup(int fd) {
  std::map<int, unsigned> connections;
  connections[fd] = 1;
  return connections[fd];
}
