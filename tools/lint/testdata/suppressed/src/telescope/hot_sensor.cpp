// Fixture: cold diagnostic path, flat containers deliberately skipped.
// synscan-lint: allow-file(hot-path-container)
#include <unordered_set>

bool hot_dark_lookup(unsigned addr) {
  std::unordered_set<unsigned> dark;
  dark.insert(addr);
  return dark.contains(addr);
}
