// Fixture: cold diagnostic path, flat containers deliberately skipped.
// synscan-lint: allow-file(hot-path-container)
#include <unordered_map>

int hot_tally(int key) {
  std::unordered_map<int, int> counts;
  counts[key] = 1;
  return counts[key];
}
