int* make_value() {
  return new int(7);  // synscan-lint: allow(naked-new) — fixture pool
}

void drop_value(int* value) {
  delete value;  // synscan-lint: allow(naked-new) — fixture pool
}
