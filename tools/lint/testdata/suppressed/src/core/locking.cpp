// The raw-sync-primitive violations from testdata/violations, waived
// file-wide — the shape ported code takes while its locking is being
// migrated onto core/sync.h.
// synscan-lint: allow-file(raw-sync-primitive)
#include <condition_variable>
#include <mutex>

namespace synscan::core {

class RawLocked {
 public:
  void set(int v) {
    const std::lock_guard<std::mutex> lock(mutex_);
    value_ = v;
  }

 private:
  std::mutex mutex_;
  int value_ = 0;
};

}  // namespace synscan::core
