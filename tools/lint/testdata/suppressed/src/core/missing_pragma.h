// Fixture: legacy header kept guard-free on purpose.
// synscan-lint: allow(pragma-once)
int missing_pragma_value();
