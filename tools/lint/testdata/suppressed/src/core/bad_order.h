#pragma once

void ordered();
