#include <cstdint>  // synscan-lint: allow(include-order) — fixture: own header second

#include "core/own_order.h"

void own_order() {}
