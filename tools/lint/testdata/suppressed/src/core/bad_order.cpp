#include "core/bad_order.h"

#include <vector>  // synscan-lint: allow(include-order) — fixture keeps this unsorted
#include <array>

void ordered() {}
