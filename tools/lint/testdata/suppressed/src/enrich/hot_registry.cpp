// Fixture: cold diagnostic path, flat containers deliberately skipped.
// synscan-lint: allow-file(hot-path-container)
#include <map>

int hot_prefix_lookup(unsigned addr) {
  std::map<unsigned, int> by_prefix;
  by_prefix[addr] = 1;
  return by_prefix[addr];
}
