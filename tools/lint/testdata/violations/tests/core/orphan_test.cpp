// Deliberately not referenced by tests/CMakeLists.txt.
int orphan() { return 1; }
