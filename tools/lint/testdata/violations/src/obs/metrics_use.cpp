struct Registry {
  void counter(const char*) {}
};

void register_metrics(Registry& registry) {
  registry.counter("tracker.probes");
  registry.counter("tracker.ghost");
}
