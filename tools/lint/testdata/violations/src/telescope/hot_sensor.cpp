#include <unordered_set>

bool hot_dark_lookup(unsigned addr) {
  std::unordered_set<unsigned> dark;
  dark.insert(addr);
  return dark.contains(addr);
}
