#include <map>

unsigned hot_connection_lookup(int fd) {
  std::map<int, unsigned> connections;
  connections[fd] = 1;
  return connections[fd];
}
