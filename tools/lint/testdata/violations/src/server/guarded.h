// Seeded guarded-by violations: `Sessions` owns a core/sync.h Mutex,
// so its mutable members must be annotated. Two findings (`open_`,
// `draining_`); `total_` is annotated, the lock and condvar are exempt.
#pragma once

#include <cstdint>

#include "core/sync.h"

namespace synscan::server {

class Sessions {
 public:
  void bump();

 private:
  core::Mutex mutex_;
  core::CondVar changed_;
  int open_ = 0;
  bool draining_ = false;
  std::uint64_t total_ SYNSCAN_GUARDED_BY(mutex_) = 0;
};

}  // namespace synscan::server
