#include <map>

int hot_prefix_lookup(unsigned addr) {
  std::map<unsigned, int> by_prefix;
  by_prefix[addr] = 1;
  return by_prefix[addr];
}
