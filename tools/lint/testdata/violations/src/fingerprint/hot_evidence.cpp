#include <unordered_map>

int hot_evidence_for(unsigned source) {
  std::unordered_map<unsigned, int> evidence;
  evidence[source] = 1;
  return evidence[source];
}
