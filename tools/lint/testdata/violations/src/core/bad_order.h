#pragma once

void ordered();
