// Seeded raw-sync-primitive violations: the std primitives are banned
// in the annotated concurrent core; the wrappers in core/sync.h are
// mandatory there. Four findings: two banned includes, the member, and
// the lock_guard use.
#include <condition_variable>
#include <mutex>

namespace synscan::core {

class RawLocked {
 public:
  void set(int v) {
    const std::lock_guard<std::mutex> lock(mutex_);
    value_ = v;
  }

 private:
  std::mutex mutex_;
  int value_ = 0;
};

}  // namespace synscan::core
