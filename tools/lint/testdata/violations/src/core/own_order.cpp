#include <cstdint>

#include "core/own_order.h"

void own_order() {}
