int* make_value() {
  return new int(7);
}

void drop_value(int* value) {
  delete value;
}
