// A header that forgot its include guard.
int missing_pragma_value();
