#include "core/bad_order.h"

#include <vector>
#include <array>

void ordered() {}
