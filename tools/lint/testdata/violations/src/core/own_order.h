#pragma once

void own_order();
