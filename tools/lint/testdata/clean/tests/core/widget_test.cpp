// Registered in tests/CMakeLists.txt; a real repo would assert things.
int widget_test() { return 0; }
