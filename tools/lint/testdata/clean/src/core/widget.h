// A well-behaved header.
#pragma once

#include <cstdint>

std::int32_t widget_value();
