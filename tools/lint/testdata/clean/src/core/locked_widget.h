// Exercises raw-sync-primitive and guarded-by on correct code: the
// class uses only core/sync.h wrappers and annotates every mutable
// member, so neither rule may fire.
#pragma once

#include <cstdint>
#include <thread>

#include "core/sync.h"

namespace synscan::core {

class LockedWidget {
 public:
  void bump() SYNSCAN_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    ++count_;
  }

 private:
  mutable Mutex mutex_;
  CondVar changed_;
  std::uint64_t count_ SYNSCAN_GUARDED_BY(mutex_) = 0;
  std::atomic<bool> enabled_{false};
  std::thread worker_;
  static constexpr int kLimit = 8;
};

}  // namespace synscan::core
