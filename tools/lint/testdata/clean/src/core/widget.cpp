#include "core/widget.h"

#include <cstdint>

std::int32_t widget_value() { return 7; }
