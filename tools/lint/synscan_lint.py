#!/usr/bin/env python3
"""synscan-lint: repo-specific invariants clang-tidy cannot express.

Rules (see docs/STATIC_ANALYSIS.md for rationale and examples):

  hot-path-container  std::unordered_map/std::unordered_set/std::map and
                      friends are banned in the hot-path directories
                      (src/core, src/enrich, src/fingerprint, src/net,
                      src/pcap, src/server, src/telescope); the flat
                      containers from the tracker rewrite are mandatory
                      there.
  metric-doc-sync     every metric name registered in code appears in
                      docs/OBSERVABILITY.md and every documented name is
                      registered in code.
  pragma-once         every header's first significant line is
                      `#pragma once` (after the leading comment block).
  include-order       own header first in a .cpp, then system includes,
                      then project includes; each blank-line-separated
                      group homogeneous and sorted.
  naked-new           no `new` / `delete` outside allocator/pool code —
                      ownership lives in containers and smart pointers.
  test-registration   every tests/**/*_test.cpp is wired into
                      tests/CMakeLists.txt, and every file referenced
                      there exists.
  raw-sync-primitive  naked std::mutex / std::condition_variable /
                      std::lock_guard & friends are banned in the
                      annotated concurrent core (src/core, src/obs,
                      src/server); the capability-annotated wrappers in
                      src/core/sync.h (the one allowed owner of the
                      primitives) are mandatory so clang thread-safety
                      analysis sees every lock.
  guarded-by          in a class that directly owns a core/sync.h Mutex,
                      every mutable data member must carry
                      SYNSCAN_GUARDED_BY / SYNSCAN_PT_GUARDED_BY (locks,
                      condvars, atomics and threads are exempt) — or an
                      allow() naming the out-of-band exclusion.

Suppression: append `// synscan-lint: allow(<rule>[, <rule>...])` to the
offending line (or put it on a comment line directly above), or add
`// synscan-lint: allow-file(<rule>)` anywhere in the file to waive a
rule file-wide.  In Markdown use `<!-- synscan-lint: allow(<rule>) -->`.
Every suppression should carry a reason in the surrounding comment.

Exit status: 0 clean, 1 findings, 2 bad invocation or broken tree.
"""

import argparse
import re
import sys
from pathlib import Path

HOT_PATH_DIRS = (
    "src/core",
    "src/enrich",
    "src/fingerprint",
    "src/net",
    "src/pcap",
    "src/server",
    "src/telescope",
)
SYNC_ANNOTATED_DIRS = ("src/core", "src/obs", "src/server")
SYNC_LAYER_HEADER = "src/core/sync.h"
METRIC_CODE_DIRS = ("src", "bench")
NAKED_NEW_DIRS = ("src", "bench", "examples")
HEADER_DIRS = ("src", "tests", "bench", "examples")
INCLUDE_ORDER_DIRS = ("src",)
SKIP_DIR_NAMES = {".git", "testdata", "fixtures"}

BANNED_CONTAINERS = re.compile(
    r"\bstd::(unordered_map|unordered_set|unordered_multimap|"
    r"unordered_multiset|map|multimap|multiset)\b"
)
BANNED_HEADERS = re.compile(r'#include\s*<(unordered_map|unordered_set|map)>')

METRIC_CALL = re.compile(
    r'\b(?:counter|gauge|histogram|timing)\(\s*"([a-z][a-z0-9_.]*)"\s*\)'
)
METRIC_TIMER = re.compile(
    r'ScopedTimer\s+[A-Za-z_]\w*\s*\(\s*(?:[A-Za-z_][\w.]*\s*,\s*)?"([a-z][a-z0-9_.]*)"'
)
METRIC_FRAGMENT = re.compile(
    r'\b(?:counter|gauge|histogram|timing)\(\s*[A-Za-z_]\w*\s*\+\s*"(\.[a-z0-9_.]*)"'
)
DOC_METRIC = re.compile(r"`([a-z]+(?:\.[a-z0-9_]+)+)`")

NEW_DELETE = re.compile(r"\b(new|delete)\b")

RAW_SYNC = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable|"
    r"condition_variable_any|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b"
)
RAW_SYNC_HEADER = re.compile(r"#include\s*<(mutex|condition_variable|shared_mutex)>")

# A direct data member of the annotated wrapper type from core/sync.h
# (std::mutex deliberately excluded: that is raw-sync-primitive's job).
MUTEX_OWNER = re.compile(r"^(?:mutable\s+)?(?:(?:synscan::)?core::)?Mutex\s+\w+")
# Member types that never need GUARDED_BY: the synchronization objects
# themselves, atomics (their own ordering), threads (handles, not data)
# and compile-time/immutable members.
GUARDED_EXEMPT = re.compile(
    r"^(?:mutable\s+)?(?:(?:synscan::)?core::)?(?:Mutex|CondVar)\b"
    r"|^(?:mutable\s+)?std::(?:atomic\b|thread\b|jthread\b)"
    r"|^(?:static|const|constexpr)\b"
)
CLASS_HEAD = re.compile(r"\b(class|struct)\s+(?:SYNSCAN_\w+(?:\([^)]*\))?\s+)*(\w+)")
ACCESS_LABEL = re.compile(r"^(?:\s*(?:public|private|protected)\s*:)+\s*")
MEMBER_SKIP = re.compile(r"^(?:using|typedef|friend|static|template|enum|class|struct)\b")

ALLOW_LINE = re.compile(r"synscan-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")
ALLOW_FILE = re.compile(r"synscan-lint:\s*allow-file\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

RULES = (
    "hot-path-container",
    "metric-doc-sync",
    "pragma-once",
    "include-order",
    "naked-new",
    "test-registration",
    "raw-sync-primitive",
    "guarded-by",
)


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line
    structure, so structural rules never fire on prose or data."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2 if i + 1 < n else 1
        elif c == "R" and text[i : i + 2] == 'R"':
            close = text.find("(", i + 2)
            if close == -1:
                i += 1
                continue
            delim = ")" + text[i + 2 : close] + '"'
            end = text.find(delim, close)
            end = n if end == -1 else end + len(delim)
            out.extend("\n" for ch in text[i:end] if ch == "\n")
            i = end
        elif c in ('"', "'"):
            quote = c
            i += 1
            while i < n and text[i] != quote:
                i += 2 if text[i] == "\\" else 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


class SourceFile:
    """A lazily-parsed source file plus its suppression annotations."""

    def __init__(self, root, path):
        self.root = root
        self.path = path
        self.rel = path.relative_to(root).as_posix()
        self.text = path.read_text(encoding="utf-8", errors="replace")
        self.raw_lines = self.text.splitlines()
        self.stripped = strip_comments_and_strings(self.text)
        self.stripped_lines = self.stripped.splitlines()
        self.file_allows = set()
        self.line_allows = set()  # (line_number, rule)
        self._parse_allows()

    def _parse_allows(self):
        for number, raw in enumerate(self.raw_lines, start=1):
            m = ALLOW_FILE.search(raw)
            if m:
                self.file_allows.update(r.strip() for r in m.group(1).split(","))
            m = ALLOW_LINE.search(raw)
            if m:
                rules = [r.strip() for r in m.group(1).split(",")]
                stripped = (
                    self.stripped_lines[number - 1]
                    if number - 1 < len(self.stripped_lines)
                    else ""
                )
                # An annotation on its own comment line covers the next
                # line; inline it covers its own line.
                target = number if stripped.strip() else number + 1
                for rule in rules:
                    self.line_allows.add((target, rule))

    def allowed(self, line, rule):
        return rule in self.file_allows or (line, rule) in self.line_allows


class Linter:
    def __init__(self, root, min_doc_names):
        self.root = root
        self.min_doc_names = min_doc_names
        self.findings = []
        self._cache = {}

    def load(self, path):
        if path not in self._cache:
            self._cache[path] = SourceFile(self.root, path)
        return self._cache[path]

    def emit(self, source, line, rule, message):
        if not source.allowed(line, rule):
            self.findings.append(Finding(source.rel, line, rule, message))

    def files_under(self, dirs, suffixes):
        for directory in dirs:
            base = self.root / directory
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*")):
                if path.suffix not in suffixes or not path.is_file():
                    continue
                if SKIP_DIR_NAMES.intersection(path.relative_to(self.root).parts):
                    continue
                yield path

    # --- hot-path-container ------------------------------------------------

    def check_hot_path_container(self):
        for path in self.files_under(HOT_PATH_DIRS, {".h", ".cpp"}):
            source = self.load(path)
            for number, line in enumerate(source.stripped_lines, start=1):
                m = BANNED_CONTAINERS.search(line) or BANNED_HEADERS.search(line)
                if m:
                    self.emit(
                        source,
                        number,
                        "hot-path-container",
                        f"std::{m.group(1)} in hot-path dir — use the flat "
                        "containers (FlowIndexTable/HybridU32Set/PortPacketMap) "
                        "or annotate why this path is cold",
                    )

    # --- metric-doc-sync ---------------------------------------------------

    def check_metric_doc_sync(self):
        doc_path = self.root / "docs" / "OBSERVABILITY.md"
        if not doc_path.is_file():
            self.findings.append(
                Finding("docs/OBSERVABILITY.md", 1, "metric-doc-sync", "missing doc")
            )
            return
        doc = self.load(doc_path)

        code_names = {}  # name -> (source, line), first sighting
        fragments = set()
        for path in self.files_under(METRIC_CODE_DIRS, {".h", ".cpp"}):
            source = self.load(path)
            for number, line in enumerate(source.raw_lines, start=1):
                for pattern in (METRIC_CALL, METRIC_TIMER):
                    for m in pattern.finditer(line):
                        code_names.setdefault(m.group(1), (source, number))
                for m in METRIC_FRAGMENT.finditer(line):
                    fragments.add(m.group(1))

        namespaces = {name.split(".", 1)[0] for name in code_names}
        doc_names = {}  # name -> line
        for number, line in enumerate(doc.raw_lines, start=1):
            for m in DOC_METRIC.finditer(line):
                doc_names.setdefault(m.group(1), number)

        if len(doc_names) < self.min_doc_names:
            self.findings.append(
                Finding(
                    doc.rel,
                    1,
                    "metric-doc-sync",
                    f"only {len(doc_names)} metric-like names parsed from the doc "
                    f"(floor {self.min_doc_names}) — extraction regex or doc broke",
                )
            )
            return

        for name, (source, number) in sorted(code_names.items()):
            if name not in doc_names:
                self.emit(
                    source,
                    number,
                    "metric-doc-sync",
                    f"metric `{name}` is registered here but not documented in "
                    "docs/OBSERVABILITY.md",
                )
        for name, number in sorted(doc_names.items()):
            if name.split(".", 1)[0] not in namespaces:
                continue  # prose like `span.outer` naming conventions
            if ".n." in name:
                suffix = "." + name.split(".n.", 1)[1]
                if suffix not in fragments:
                    self.emit(
                        doc,
                        number,
                        "metric-doc-sync",
                        f"documented per-worker metric `{name}` has no "
                        f'`prefix + "{suffix}"` registration in code',
                    )
            elif name not in code_names:
                self.emit(
                    doc,
                    number,
                    "metric-doc-sync",
                    f"documented metric `{name}` is not registered anywhere in "
                    "src/ or bench/",
                )

    # --- pragma-once -------------------------------------------------------

    def check_pragma_once(self):
        for path in self.files_under(HEADER_DIRS, {".h"}):
            source = self.load(path)
            for number, line in enumerate(source.stripped_lines, start=1):
                if not line.strip():
                    continue
                if line.strip() != "#pragma once":
                    self.emit(
                        source,
                        number,
                        "pragma-once",
                        "first significant line of a header must be `#pragma once`",
                    )
                break
            else:
                self.emit(source, 1, "pragma-once", "header lacks `#pragma once`")

    # --- include-order -----------------------------------------------------

    @staticmethod
    def _include_groups(raw_lines):
        """Yield maximal runs of consecutive #include lines as
        [(line_number, kind, path)] with kind 'system' or 'project'.

        Parses raw lines: the comment/string stripper blanks the quoted
        path of a project include, and a line-anchored match cannot fire
        inside a `//` comment anyway."""
        group = []
        for number, line in enumerate(raw_lines, start=1):
            m = re.match(r'\s*#\s*include\s*([<"])([^>"]+)[>"]', line)
            if m:
                kind = "system" if m.group(1) == "<" else "project"
                group.append((number, kind, m.group(2)))
            else:
                if group:
                    yield group
                group = []
        if group:
            yield group

    def check_include_order(self):
        for path in self.files_under(INCLUDE_ORDER_DIRS, {".h", ".cpp"}):
            source = self.load(path)
            groups = list(self._include_groups(source.raw_lines))
            if not groups:
                continue

            if path.suffix == ".cpp":
                own = path.with_suffix(".h")
                if own.is_file():
                    own_rel = own.relative_to(self.root / "src").as_posix()
                    number, kind, first = groups[0][0]
                    if kind != "project" or first != own_rel:
                        self.emit(
                            source,
                            number,
                            "include-order",
                            f'first include must be the own header "{own_rel}"',
                        )
                    else:
                        rest = groups[0][1:]
                        groups = ([rest] if rest else []) + groups[1:]

            seen_project_group = False
            for group in groups:
                kinds = {kind for _, kind, _ in group}
                if len(kinds) > 1:
                    self.emit(
                        source,
                        group[0][0],
                        "include-order",
                        "mixed system and project includes in one block — "
                        "separate with a blank line",
                    )
                    continue
                kind = kinds.pop()
                if kind == "project":
                    seen_project_group = True
                elif seen_project_group:
                    self.emit(
                        source,
                        group[0][0],
                        "include-order",
                        "system include block after a project include block",
                    )
                paths = [include for _, _, include in group]
                if paths != sorted(paths):
                    self.emit(
                        source,
                        group[0][0],
                        "include-order",
                        "includes within a block must be sorted",
                    )

    # --- naked-new ---------------------------------------------------------

    def check_naked_new(self):
        for path in self.files_under(NAKED_NEW_DIRS, {".h", ".cpp"}):
            source = self.load(path)
            for number, line in enumerate(source.stripped_lines, start=1):
                for m in NEW_DELETE.finditer(line):
                    before = line[: m.start()]
                    if not before.strip():
                        # Wrapped declaration: `... TrackerConfig = {}) =`
                        # newline `delete;`. Look back for the `=`.
                        for previous in reversed(source.stripped_lines[: number - 1]):
                            if previous.strip():
                                before = previous
                                break
                    # `= delete`, `operator new/delete`, and make_unique-
                    # style idioms do not own raw memory.
                    if re.search(r"=\s*$", before) or before.rstrip().endswith(
                        "operator"
                    ):
                        continue
                    self.emit(
                        source,
                        number,
                        "naked-new",
                        f"naked `{m.group(1)}` — ownership belongs in "
                        "containers, pools, or smart pointers",
                    )

    # --- raw-sync-primitive ------------------------------------------------

    def check_raw_sync_primitive(self):
        for path in self.files_under(SYNC_ANNOTATED_DIRS, {".h", ".cpp"}):
            source = self.load(path)
            if source.rel == SYNC_LAYER_HEADER:
                continue  # the single allowed owner of the std primitives
            for number, line in enumerate(source.stripped_lines, start=1):
                m = RAW_SYNC.search(line) or RAW_SYNC_HEADER.search(line)
                if m:
                    self.emit(
                        source,
                        number,
                        "raw-sync-primitive",
                        f"`{m.group(0).strip()}` in the annotated concurrent core "
                        "— use the capability-annotated wrappers from core/sync.h "
                        "(Mutex, MutexLock, UniqueLock, CondVar) so the clang "
                        "thread-safety analysis sees this lock",
                    )

    # --- guarded-by --------------------------------------------------------

    @staticmethod
    def _class_members(source):
        """Yield (class_name, [(line, statement), ...]) for every class
        or struct in the stripped text, where statements are the
        member declarations at the class's own brace depth (function
        bodies and nested scopes contribute nothing).

        A textual brace tracker, not a parser: scopes whose closing
        brace is followed by `;` (brace-initialized members, nested type
        definitions) keep their head text so the terminating `;` yields
        one statement; other scopes (function bodies, namespaces)
        discard theirs."""
        text = source.stripped
        results = []
        stack = []  # {"name": str|None, "members": [...]} per open brace
        buf = []
        buf_line = 1  # line of the first non-space char in buf
        line = 1
        i, n = 0, len(text)
        while i < n:
            c = text[i]
            if c == "\n":
                line += 1
                if buf:
                    buf.append(" ")
            elif c == "{":
                head = "".join(buf).strip()
                m = CLASS_HEAD.search(ACCESS_LABEL.sub("", head))
                name = m.group(2) if m and not head.endswith("=") else None
                stack.append(
                    {"name": name, "members": [], "head": head, "head_line": buf_line}
                )
                buf = []
                buf_line = line
            elif c == "}":
                scope = stack.pop() if stack else None
                if scope and scope["name"] and scope["members"]:
                    results.append((scope["name"], scope["members"]))
                buf = []
                buf_line = line
                if scope:
                    j = i + 1
                    while j < n and text[j].isspace():
                        j += 1
                    if j < n and text[j] == ";":
                        # `Type member{init};` or a nested type: restore
                        # the head so the `;` terminates one statement.
                        buf = list(scope["head"] + "{}")
                        buf_line = scope["head_line"]
            elif c == ";":
                statement = ACCESS_LABEL.sub("", "".join(buf)).strip()
                if stack and stack[-1]["name"] and statement:
                    stack[-1]["members"].append((buf_line, statement))
                buf = []
                buf_line = line
            elif c.isspace():
                if buf:
                    buf.append(" ")
            else:
                if not buf:
                    buf_line = line
                buf.append(c)
            i += 1
        return results

    @staticmethod
    def _is_data_member(statement):
        """True for plain data-member declarations; functions, aliases
        and nested type declarations return False."""
        if MEMBER_SKIP.match(statement):
            return False
        # The annotation macros carry parentheses of their own; strip
        # them (and brace initializers) before testing for a signature.
        bare = re.sub(r"SYNSCAN_\w+\s*\([^)]*\)", "", statement)
        bare = re.sub(r"\{[^}]*\}", "", bare)
        return "(" not in bare

    def check_guarded_by(self):
        for path in self.files_under(SYNC_ANNOTATED_DIRS, {".h", ".cpp"}):
            source = self.load(path)
            if source.rel == SYNC_LAYER_HEADER:
                continue  # the wrappers themselves hold the raw primitives
            for class_name, members in self._class_members(source):
                if not any(
                    MUTEX_OWNER.match(statement) for _, statement in members
                ):
                    continue
                for number, statement in members:
                    if not self._is_data_member(statement):
                        continue
                    if GUARDED_EXEMPT.match(statement):
                        continue
                    if "SYNSCAN_GUARDED_BY" in statement or (
                        "SYNSCAN_PT_GUARDED_BY" in statement
                    ):
                        continue
                    self.emit(
                        source,
                        number,
                        "guarded-by",
                        f"member of mutex-owning `{class_name}` lacks "
                        "SYNSCAN_GUARDED_BY — name the guarding mutex, or "
                        "allow(guarded-by) with a comment naming the "
                        "out-of-band exclusion (thread join, slot "
                        "disjointness)",
                    )

    # --- test-registration -------------------------------------------------

    def check_test_registration(self):
        cmake_path = self.root / "tests" / "CMakeLists.txt"
        if not cmake_path.is_file():
            return
        cmake = self.load(cmake_path)
        for path in self.files_under(("tests",), {".cpp"}):
            if not path.name.endswith("_test.cpp"):
                continue
            rel = path.relative_to(self.root / "tests").as_posix()
            if rel not in cmake.text:
                source = self.load(path)
                self.emit(
                    source,
                    1,
                    "test-registration",
                    f"{rel} is not registered in tests/CMakeLists.txt — "
                    "it never runs under ctest",
                )
        for number, line in enumerate(cmake.stripped_lines, start=1):
            for m in re.finditer(r"\b([\w/]+_test\.cpp)\b", line):
                if not (self.root / "tests" / m.group(1)).is_file():
                    self.emit(
                        cmake,
                        number,
                        "test-registration",
                        f"tests/CMakeLists.txt references missing {m.group(1)}",
                    )

    def run(self, rules):
        dispatch = {
            "hot-path-container": self.check_hot_path_container,
            "metric-doc-sync": self.check_metric_doc_sync,
            "pragma-once": self.check_pragma_once,
            "include-order": self.check_include_order,
            "naked-new": self.check_naked_new,
            "test-registration": self.check_test_registration,
            "raw-sync-primitive": self.check_raw_sync_primitive,
            "guarded-by": self.check_guarded_by,
        }
        for rule in rules:
            dispatch[rule]()
        self.findings.sort(key=lambda f: (f.path, f.line, f.rule))
        return self.findings


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="synscan-lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--repo",
        type=Path,
        default=Path(__file__).resolve().parent.parent.parent,
        help="repository root to lint (default: this checkout)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        choices=RULES,
        help="run only this rule (repeatable; default: all rules)",
    )
    parser.add_argument(
        "--min-doc-names",
        type=int,
        default=1,
        help="sanity floor for names parsed from docs/OBSERVABILITY.md "
        "(the repo run uses 20 to catch extraction rot)",
    )
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(rule)
        return 0
    root = args.repo.resolve()
    if not root.is_dir():
        print(f"synscan-lint: no such directory: {root}", file=sys.stderr)
        return 2

    linter = Linter(root, args.min_doc_names)
    findings = linter.run(args.rule or list(RULES))
    for finding in findings:
        print(finding)
    if findings:
        print(f"synscan-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
