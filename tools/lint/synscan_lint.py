#!/usr/bin/env python3
"""synscan-lint: repo-specific invariants clang-tidy cannot express.

Rules (see docs/STATIC_ANALYSIS.md for rationale and examples):

  hot-path-container  std::unordered_map/std::unordered_set/std::map and
                      friends are banned in the hot-path directories
                      (src/core, src/enrich, src/fingerprint, src/net,
                      src/pcap, src/server, src/telescope); the flat
                      containers from the tracker rewrite are mandatory
                      there.
  metric-doc-sync     every metric name registered in code appears in
                      docs/OBSERVABILITY.md and every documented name is
                      registered in code.
  pragma-once         every header's first significant line is
                      `#pragma once` (after the leading comment block).
  include-order       own header first in a .cpp, then system includes,
                      then project includes; each blank-line-separated
                      group homogeneous and sorted.
  naked-new           no `new` / `delete` outside allocator/pool code —
                      ownership lives in containers and smart pointers.
  test-registration   every tests/**/*_test.cpp is wired into
                      tests/CMakeLists.txt, and every file referenced
                      there exists.

Suppression: append `// synscan-lint: allow(<rule>[, <rule>...])` to the
offending line (or put it on a comment line directly above), or add
`// synscan-lint: allow-file(<rule>)` anywhere in the file to waive a
rule file-wide.  In Markdown use `<!-- synscan-lint: allow(<rule>) -->`.
Every suppression should carry a reason in the surrounding comment.

Exit status: 0 clean, 1 findings, 2 bad invocation or broken tree.
"""

import argparse
import re
import sys
from pathlib import Path

HOT_PATH_DIRS = (
    "src/core",
    "src/enrich",
    "src/fingerprint",
    "src/net",
    "src/pcap",
    "src/server",
    "src/telescope",
)
METRIC_CODE_DIRS = ("src", "bench")
NAKED_NEW_DIRS = ("src", "bench", "examples")
HEADER_DIRS = ("src", "tests", "bench", "examples")
INCLUDE_ORDER_DIRS = ("src",)
SKIP_DIR_NAMES = {".git", "testdata", "fixtures"}

BANNED_CONTAINERS = re.compile(
    r"\bstd::(unordered_map|unordered_set|unordered_multimap|"
    r"unordered_multiset|map|multimap|multiset)\b"
)
BANNED_HEADERS = re.compile(r'#include\s*<(unordered_map|unordered_set|map)>')

METRIC_CALL = re.compile(
    r'\b(?:counter|gauge|histogram|timing)\(\s*"([a-z][a-z0-9_.]*)"\s*\)'
)
METRIC_TIMER = re.compile(
    r'ScopedTimer\s+[A-Za-z_]\w*\s*\(\s*(?:[A-Za-z_][\w.]*\s*,\s*)?"([a-z][a-z0-9_.]*)"'
)
METRIC_FRAGMENT = re.compile(
    r'\b(?:counter|gauge|histogram|timing)\(\s*[A-Za-z_]\w*\s*\+\s*"(\.[a-z0-9_.]*)"'
)
DOC_METRIC = re.compile(r"`([a-z]+(?:\.[a-z0-9_]+)+)`")

NEW_DELETE = re.compile(r"\b(new|delete)\b")

ALLOW_LINE = re.compile(r"synscan-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")
ALLOW_FILE = re.compile(r"synscan-lint:\s*allow-file\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

RULES = (
    "hot-path-container",
    "metric-doc-sync",
    "pragma-once",
    "include-order",
    "naked-new",
    "test-registration",
)


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line
    structure, so structural rules never fire on prose or data."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2 if i + 1 < n else 1
        elif c == "R" and text[i : i + 2] == 'R"':
            close = text.find("(", i + 2)
            if close == -1:
                i += 1
                continue
            delim = ")" + text[i + 2 : close] + '"'
            end = text.find(delim, close)
            end = n if end == -1 else end + len(delim)
            out.extend("\n" for ch in text[i:end] if ch == "\n")
            i = end
        elif c in ('"', "'"):
            quote = c
            i += 1
            while i < n and text[i] != quote:
                i += 2 if text[i] == "\\" else 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


class SourceFile:
    """A lazily-parsed source file plus its suppression annotations."""

    def __init__(self, root, path):
        self.root = root
        self.path = path
        self.rel = path.relative_to(root).as_posix()
        self.text = path.read_text(encoding="utf-8", errors="replace")
        self.raw_lines = self.text.splitlines()
        self.stripped = strip_comments_and_strings(self.text)
        self.stripped_lines = self.stripped.splitlines()
        self.file_allows = set()
        self.line_allows = set()  # (line_number, rule)
        self._parse_allows()

    def _parse_allows(self):
        for number, raw in enumerate(self.raw_lines, start=1):
            m = ALLOW_FILE.search(raw)
            if m:
                self.file_allows.update(r.strip() for r in m.group(1).split(","))
            m = ALLOW_LINE.search(raw)
            if m:
                rules = [r.strip() for r in m.group(1).split(",")]
                stripped = (
                    self.stripped_lines[number - 1]
                    if number - 1 < len(self.stripped_lines)
                    else ""
                )
                # An annotation on its own comment line covers the next
                # line; inline it covers its own line.
                target = number if stripped.strip() else number + 1
                for rule in rules:
                    self.line_allows.add((target, rule))

    def allowed(self, line, rule):
        return rule in self.file_allows or (line, rule) in self.line_allows


class Linter:
    def __init__(self, root, min_doc_names):
        self.root = root
        self.min_doc_names = min_doc_names
        self.findings = []
        self._cache = {}

    def load(self, path):
        if path not in self._cache:
            self._cache[path] = SourceFile(self.root, path)
        return self._cache[path]

    def emit(self, source, line, rule, message):
        if not source.allowed(line, rule):
            self.findings.append(Finding(source.rel, line, rule, message))

    def files_under(self, dirs, suffixes):
        for directory in dirs:
            base = self.root / directory
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*")):
                if path.suffix not in suffixes or not path.is_file():
                    continue
                if SKIP_DIR_NAMES.intersection(path.relative_to(self.root).parts):
                    continue
                yield path

    # --- hot-path-container ------------------------------------------------

    def check_hot_path_container(self):
        for path in self.files_under(HOT_PATH_DIRS, {".h", ".cpp"}):
            source = self.load(path)
            for number, line in enumerate(source.stripped_lines, start=1):
                m = BANNED_CONTAINERS.search(line) or BANNED_HEADERS.search(line)
                if m:
                    self.emit(
                        source,
                        number,
                        "hot-path-container",
                        f"std::{m.group(1)} in hot-path dir — use the flat "
                        "containers (FlowIndexTable/HybridU32Set/PortPacketMap) "
                        "or annotate why this path is cold",
                    )

    # --- metric-doc-sync ---------------------------------------------------

    def check_metric_doc_sync(self):
        doc_path = self.root / "docs" / "OBSERVABILITY.md"
        if not doc_path.is_file():
            self.findings.append(
                Finding("docs/OBSERVABILITY.md", 1, "metric-doc-sync", "missing doc")
            )
            return
        doc = self.load(doc_path)

        code_names = {}  # name -> (source, line), first sighting
        fragments = set()
        for path in self.files_under(METRIC_CODE_DIRS, {".h", ".cpp"}):
            source = self.load(path)
            for number, line in enumerate(source.raw_lines, start=1):
                for pattern in (METRIC_CALL, METRIC_TIMER):
                    for m in pattern.finditer(line):
                        code_names.setdefault(m.group(1), (source, number))
                for m in METRIC_FRAGMENT.finditer(line):
                    fragments.add(m.group(1))

        namespaces = {name.split(".", 1)[0] for name in code_names}
        doc_names = {}  # name -> line
        for number, line in enumerate(doc.raw_lines, start=1):
            for m in DOC_METRIC.finditer(line):
                doc_names.setdefault(m.group(1), number)

        if len(doc_names) < self.min_doc_names:
            self.findings.append(
                Finding(
                    doc.rel,
                    1,
                    "metric-doc-sync",
                    f"only {len(doc_names)} metric-like names parsed from the doc "
                    f"(floor {self.min_doc_names}) — extraction regex or doc broke",
                )
            )
            return

        for name, (source, number) in sorted(code_names.items()):
            if name not in doc_names:
                self.emit(
                    source,
                    number,
                    "metric-doc-sync",
                    f"metric `{name}` is registered here but not documented in "
                    "docs/OBSERVABILITY.md",
                )
        for name, number in sorted(doc_names.items()):
            if name.split(".", 1)[0] not in namespaces:
                continue  # prose like `span.outer` naming conventions
            if ".n." in name:
                suffix = "." + name.split(".n.", 1)[1]
                if suffix not in fragments:
                    self.emit(
                        doc,
                        number,
                        "metric-doc-sync",
                        f"documented per-worker metric `{name}` has no "
                        f'`prefix + "{suffix}"` registration in code',
                    )
            elif name not in code_names:
                self.emit(
                    doc,
                    number,
                    "metric-doc-sync",
                    f"documented metric `{name}` is not registered anywhere in "
                    "src/ or bench/",
                )

    # --- pragma-once -------------------------------------------------------

    def check_pragma_once(self):
        for path in self.files_under(HEADER_DIRS, {".h"}):
            source = self.load(path)
            for number, line in enumerate(source.stripped_lines, start=1):
                if not line.strip():
                    continue
                if line.strip() != "#pragma once":
                    self.emit(
                        source,
                        number,
                        "pragma-once",
                        "first significant line of a header must be `#pragma once`",
                    )
                break
            else:
                self.emit(source, 1, "pragma-once", "header lacks `#pragma once`")

    # --- include-order -----------------------------------------------------

    @staticmethod
    def _include_groups(raw_lines):
        """Yield maximal runs of consecutive #include lines as
        [(line_number, kind, path)] with kind 'system' or 'project'.

        Parses raw lines: the comment/string stripper blanks the quoted
        path of a project include, and a line-anchored match cannot fire
        inside a `//` comment anyway."""
        group = []
        for number, line in enumerate(raw_lines, start=1):
            m = re.match(r'\s*#\s*include\s*([<"])([^>"]+)[>"]', line)
            if m:
                kind = "system" if m.group(1) == "<" else "project"
                group.append((number, kind, m.group(2)))
            else:
                if group:
                    yield group
                group = []
        if group:
            yield group

    def check_include_order(self):
        for path in self.files_under(INCLUDE_ORDER_DIRS, {".h", ".cpp"}):
            source = self.load(path)
            groups = list(self._include_groups(source.raw_lines))
            if not groups:
                continue

            if path.suffix == ".cpp":
                own = path.with_suffix(".h")
                if own.is_file():
                    own_rel = own.relative_to(self.root / "src").as_posix()
                    number, kind, first = groups[0][0]
                    if kind != "project" or first != own_rel:
                        self.emit(
                            source,
                            number,
                            "include-order",
                            f'first include must be the own header "{own_rel}"',
                        )
                    else:
                        rest = groups[0][1:]
                        groups = ([rest] if rest else []) + groups[1:]

            seen_project_group = False
            for group in groups:
                kinds = {kind for _, kind, _ in group}
                if len(kinds) > 1:
                    self.emit(
                        source,
                        group[0][0],
                        "include-order",
                        "mixed system and project includes in one block — "
                        "separate with a blank line",
                    )
                    continue
                kind = kinds.pop()
                if kind == "project":
                    seen_project_group = True
                elif seen_project_group:
                    self.emit(
                        source,
                        group[0][0],
                        "include-order",
                        "system include block after a project include block",
                    )
                paths = [include for _, _, include in group]
                if paths != sorted(paths):
                    self.emit(
                        source,
                        group[0][0],
                        "include-order",
                        "includes within a block must be sorted",
                    )

    # --- naked-new ---------------------------------------------------------

    def check_naked_new(self):
        for path in self.files_under(NAKED_NEW_DIRS, {".h", ".cpp"}):
            source = self.load(path)
            for number, line in enumerate(source.stripped_lines, start=1):
                for m in NEW_DELETE.finditer(line):
                    before = line[: m.start()]
                    if not before.strip():
                        # Wrapped declaration: `... TrackerConfig = {}) =`
                        # newline `delete;`. Look back for the `=`.
                        for previous in reversed(source.stripped_lines[: number - 1]):
                            if previous.strip():
                                before = previous
                                break
                    # `= delete`, `operator new/delete`, and make_unique-
                    # style idioms do not own raw memory.
                    if re.search(r"=\s*$", before) or before.rstrip().endswith(
                        "operator"
                    ):
                        continue
                    self.emit(
                        source,
                        number,
                        "naked-new",
                        f"naked `{m.group(1)}` — ownership belongs in "
                        "containers, pools, or smart pointers",
                    )

    # --- test-registration -------------------------------------------------

    def check_test_registration(self):
        cmake_path = self.root / "tests" / "CMakeLists.txt"
        if not cmake_path.is_file():
            return
        cmake = self.load(cmake_path)
        for path in self.files_under(("tests",), {".cpp"}):
            if not path.name.endswith("_test.cpp"):
                continue
            rel = path.relative_to(self.root / "tests").as_posix()
            if rel not in cmake.text:
                source = self.load(path)
                self.emit(
                    source,
                    1,
                    "test-registration",
                    f"{rel} is not registered in tests/CMakeLists.txt — "
                    "it never runs under ctest",
                )
        for number, line in enumerate(cmake.stripped_lines, start=1):
            for m in re.finditer(r"\b([\w/]+_test\.cpp)\b", line):
                if not (self.root / "tests" / m.group(1)).is_file():
                    self.emit(
                        cmake,
                        number,
                        "test-registration",
                        f"tests/CMakeLists.txt references missing {m.group(1)}",
                    )

    def run(self, rules):
        dispatch = {
            "hot-path-container": self.check_hot_path_container,
            "metric-doc-sync": self.check_metric_doc_sync,
            "pragma-once": self.check_pragma_once,
            "include-order": self.check_include_order,
            "naked-new": self.check_naked_new,
            "test-registration": self.check_test_registration,
        }
        for rule in rules:
            dispatch[rule]()
        self.findings.sort(key=lambda f: (f.path, f.line, f.rule))
        return self.findings


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="synscan-lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--repo",
        type=Path,
        default=Path(__file__).resolve().parent.parent.parent,
        help="repository root to lint (default: this checkout)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        choices=RULES,
        help="run only this rule (repeatable; default: all rules)",
    )
    parser.add_argument(
        "--min-doc-names",
        type=int,
        default=1,
        help="sanity floor for names parsed from docs/OBSERVABILITY.md "
        "(the repo run uses 20 to catch extraction rot)",
    )
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(rule)
        return 0
    root = args.repo.resolve()
    if not root.is_dir():
        print(f"synscan-lint: no such directory: {root}", file=sys.stderr)
        return 2

    linter = Linter(root, args.min_doc_names)
    findings = linter.run(args.rule or list(RULES))
    for finding in findings:
        print(finding)
    if findings:
        print(f"synscan-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
