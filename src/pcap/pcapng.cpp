#include "pcap/pcapng.h"

#include <array>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "net/endian.h"

namespace synscan::pcap {
namespace {

constexpr std::uint32_t kSectionHeaderBlock = 0x0A0D0D0A;
constexpr std::uint32_t kInterfaceBlock = 1;
constexpr std::uint32_t kSimplePacketBlock = 3;
constexpr std::uint32_t kEnhancedPacketBlock = 6;
constexpr std::uint32_t kByteOrderMagic = 0x1A2B3C4D;
constexpr std::uint32_t kMaxBlockLength = 1u << 24;  // 16 MiB sanity cap

std::uint16_t load16(const std::uint8_t* p, bool big_endian) {
  return big_endian ? net::load_be16(p) : net::load_le16(p);
}
std::uint32_t load32(const std::uint8_t* p, bool big_endian) {
  return big_endian ? net::load_be32(p) : net::load_le32(p);
}

}  // namespace

bool NgReader::read_exact(void* buffer, std::size_t size) {
  stream_->read(static_cast<char*>(buffer), static_cast<std::streamsize>(size));
  return stream_->gcount() == static_cast<std::streamsize>(size);
}

NgReader::NgReader(std::unique_ptr<std::istream> stream) : stream_(std::move(stream)) {
  if (!stream_ || !*stream_) {
    throw std::runtime_error("pcapng: cannot read capture stream");
  }
  // The first block must be a Section Header Block. Its type field is
  // the palindromic 0x0A0D0D0A in either byte order; the byte-order
  // magic inside the body disambiguates endianness.
  std::array<std::uint8_t, 8> head{};
  if (!read_exact(head.data(), head.size())) {
    throw std::runtime_error("pcapng: capture shorter than a block header");
  }
  if (net::load_le32(head.data()) != kSectionHeaderBlock) {
    throw std::runtime_error("pcapng: missing Section Header Block");
  }
  // Peek the byte-order magic to learn endianness, then the total length.
  std::array<std::uint8_t, 4> magic{};
  if (!read_exact(magic.data(), magic.size())) {
    throw std::runtime_error("pcapng: truncated Section Header Block");
  }
  if (net::load_le32(magic.data()) == kByteOrderMagic) {
    big_endian_ = false;
  } else if (net::load_be32(magic.data()) == kByteOrderMagic) {
    big_endian_ = true;
  } else {
    throw std::runtime_error("pcapng: bad byte-order magic");
  }
  const auto total_length = load32(head.data() + 4, big_endian_);
  if (total_length < 28 || total_length % 4 != 0 || total_length > kMaxBlockLength) {
    throw std::runtime_error("pcapng: implausible SHB length");
  }
  // Skip the rest of the SHB (version, section length, options, trailing
  // total length): total - 8 (head) - 4 (magic already read).
  std::vector<std::uint8_t> rest(total_length - 12);
  if (!read_exact(rest.data(), rest.size())) {
    throw std::runtime_error("pcapng: truncated Section Header Block");
  }
}

NgReader NgReader::open(const std::filesystem::path& path) {
  auto stream = std::make_unique<std::ifstream>(path, std::ios::binary);
  if (!stream->is_open()) {
    throw std::runtime_error("pcapng: cannot open " + path.string());
  }
  return NgReader(std::move(stream));
}

void NgReader::parse_interface_block(const std::vector<std::uint8_t>& body) {
  Interface iface;
  if (body.size() >= 8) {
    iface.link_type = load16(body.data(), big_endian_);
    // Walk options looking for if_tsresol (code 9, 1 byte).
    std::size_t offset = 8;
    while (offset + 4 <= body.size()) {
      const auto code = load16(body.data() + offset, big_endian_);
      const auto length = load16(body.data() + offset + 2, big_endian_);
      offset += 4;
      if (code == 0) break;  // opt_endofopt
      if (offset + length > body.size()) break;
      if (code == 9 && length >= 1) {
        const std::uint8_t resol = body[offset];
        if ((resol & 0x80) != 0) {
          iface.ticks_per_second = std::uint64_t{1} << (resol & 0x7f);
        } else {
          iface.ticks_per_second = 1;
          for (std::uint8_t i = 0; i < (resol & 0x7f) && i < 19; ++i) {
            iface.ticks_per_second *= 10;
          }
        }
      }
      offset += (length + 3u) & ~3u;  // options pad to 32 bits
    }
  }
  if (iface.ticks_per_second == 0) iface.ticks_per_second = 1'000'000;
  interfaces_.push_back(iface);
}

ReadStatus NgReader::next(net::RawFrame& out) {
  for (;;) {
    std::array<std::uint8_t, 8> head{};
    stream_->read(reinterpret_cast<char*>(head.data()), 8);
    const auto got = stream_->gcount();
    if (got == 0) return ReadStatus::kEndOfFile;
    if (got != 8) return ReadStatus::kTruncated;

    const bool is_shb = net::load_le32(head.data()) == kSectionHeaderBlock;
    if (is_shb) {
      // A new section may switch endianness: read its byte-order magic
      // first, then reinterpret the length field accordingly.
      std::array<std::uint8_t, 4> magic{};
      if (!read_exact(magic.data(), magic.size())) return ReadStatus::kTruncated;
      if (net::load_le32(magic.data()) == kByteOrderMagic) {
        big_endian_ = false;
      } else if (net::load_be32(magic.data()) == kByteOrderMagic) {
        big_endian_ = true;
      } else {
        return ReadStatus::kBadRecord;
      }
      const auto shb_length = load32(head.data() + 4, big_endian_);
      if (shb_length < 28 || shb_length % 4 != 0 || shb_length > kMaxBlockLength) {
        return ReadStatus::kBadRecord;
      }
      std::vector<std::uint8_t> rest(shb_length - 12);
      if (!read_exact(rest.data(), rest.size())) return ReadStatus::kTruncated;
      interfaces_.clear();  // interfaces are per-section
      continue;
    }

    const auto block_type = load32(head.data(), big_endian_);
    const auto total_length = load32(head.data() + 4, big_endian_);
    if (total_length < 12 || total_length % 4 != 0 || total_length > kMaxBlockLength) {
      return ReadStatus::kBadRecord;
    }

    std::vector<std::uint8_t> body(total_length - 12);
    if (!read_exact(body.data(), body.size())) return ReadStatus::kTruncated;
    std::array<std::uint8_t, 4> trailer{};
    if (!read_exact(trailer.data(), trailer.size())) return ReadStatus::kTruncated;
    // Verify the redundant trailing length.
    if (load32(trailer.data(), big_endian_) != total_length) {
      return ReadStatus::kBadRecord;
    }

    switch (block_type) {
      case kInterfaceBlock:
        parse_interface_block(body);
        continue;
      case kEnhancedPacketBlock: {
        if (body.size() < 20) return ReadStatus::kBadRecord;
        const auto interface_id = load32(body.data(), big_endian_);
        const auto ts_high = load32(body.data() + 4, big_endian_);
        const auto ts_low = load32(body.data() + 8, big_endian_);
        const auto captured = load32(body.data() + 12, big_endian_);
        if (captured > body.size() - 20) return ReadStatus::kBadRecord;

        const auto ticks =
            (static_cast<std::uint64_t>(ts_high) << 32) | ts_low;
        std::uint64_t ticks_per_second = 1'000'000;
        if (interface_id < interfaces_.size()) {
          ticks_per_second = interfaces_[interface_id].ticks_per_second;
        }
        // Convert to µs without overflowing: seconds part exactly, the
        // remainder scaled.
        const auto seconds = ticks / ticks_per_second;
        const auto frac_ticks = ticks % ticks_per_second;
        out.timestamp_us =
            static_cast<net::TimeUs>(seconds) * net::kMicrosPerSecond +
            static_cast<net::TimeUs>(frac_ticks * 1'000'000 / ticks_per_second);
        out.bytes.assign(body.begin() + 20, body.begin() + 20 + captured);
        ++packets_read_;
        return ReadStatus::kOk;
      }
      case kSimplePacketBlock: {
        if (body.size() < 4) return ReadStatus::kBadRecord;
        const auto original = load32(body.data(), big_endian_);
        const auto captured =
            std::min<std::size_t>(original, body.size() - 4);
        out.timestamp_us = 0;  // SPBs carry no timestamp
        out.bytes.assign(body.begin() + 4, body.begin() + 4 + static_cast<std::ptrdiff_t>(captured));
        ++packets_read_;
        return ReadStatus::kOk;
      }
      default:
        continue;  // skip unknown block types by length, per spec
    }
  }
}

std::pair<std::vector<net::RawFrame>, ReadStatus> NgReader::read_all() {
  std::vector<net::RawFrame> frames;
  net::RawFrame frame;
  for (;;) {
    const auto status = next(frame);
    if (status != ReadStatus::kOk) return {std::move(frames), status};
    frames.push_back(std::move(frame));
    frame = {};
  }
}

bool looks_like_pcapng(const std::filesystem::path& path) {
  std::ifstream stream(path, std::ios::binary);
  std::array<std::uint8_t, 4> head{};
  stream.read(reinterpret_cast<char*>(head.data()), 4);
  return stream.gcount() == 4 && net::load_le32(head.data()) == kSectionHeaderBlock;
}

std::pair<std::vector<net::RawFrame>, ReadStatus> read_any_capture(
    const std::filesystem::path& path) {
  if (looks_like_pcapng(path)) {
    auto reader = NgReader::open(path);
    return reader.read_all();
  }
  return read_file(path);
}

}  // namespace synscan::pcap
