// Zero-copy classic-pcap reader over a memory-mapped capture.
//
// `pcap::Reader` pulls one record at a time through `std::istream`: two
// buffered reads plus a per-record byte-vector copy. At telescope scale
// (§3: 45 B packets before any analysis) that per-record overhead is the
// front-end bottleneck once tracking is fast. `MappedReader` maps the
// whole file read-only and yields `net::FrameView`s that point directly
// into the mapping — no stream calls, no copies — in caller-sized
// batches. Input that cannot be mapped (pipes, non-regular files, or a
// failed mmap) degrades gracefully to a single bulk read into an owned
// buffer; the record walk is identical either way.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <istream>
#include <optional>
#include <span>
#include <vector>

#include "net/packet.h"
#include "obs/metrics.h"
#include "pcap/pcap.h"

namespace synscan::pcap {

/// Read-only byte window over a file: mmap(2) for regular files, a bulk
/// read into an owned buffer otherwise. Movable, not copyable.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only; falls back to reading it into memory when
  /// mapping is unavailable. Throws `std::runtime_error` if the file
  /// cannot be opened at all.
  [[nodiscard]] static MappedFile open(const std::filesystem::path& path);

  /// Drains a non-seekable stream into an owned buffer (never mapped).
  [[nodiscard]] static MappedFile from_stream(std::istream& stream);

  [[nodiscard]] std::span<const std::uint8_t> bytes() const noexcept {
    return {data_, size_};
  }
  /// True when backed by an actual mmap (false: owned-buffer fallback).
  [[nodiscard]] bool mapped() const noexcept { return mapped_; }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::vector<std::uint8_t> fallback_;  ///< owns the bytes when !mapped_
};

/// One record-aligned byte range of a capture, produced by
/// `partition_records`: scanning `[begin, end)` yields complete records
/// and starts exactly where the previous chunk's last record ended.
struct ScanChunk {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Splits the record region of a classic-pcap byte window into up to
/// `max_chunks` contiguous, record-aligned ranges of roughly equal size,
/// so each can be scanned by an independent `ChunkReader` (the parallel
/// cold-ingest path in core/ingest.cpp). Classic pcap has no sync
/// markers, so boundaries come from one serial walk over the 16-byte
/// record headers — a few cycles per record, far below decode+classify
/// cost. The walk stops splitting at the first implausible header
/// (truncation or lost framing) and extends the final chunk to the end
/// of the file: the chunk scanner re-derives the exact terminal status
/// there, byte-for-byte like the serial reader. Always returns at least
/// one chunk covering `[kGlobalHeaderSize, bytes.size())`.
[[nodiscard]] std::vector<ScanChunk> partition_records(
    std::span<const std::uint8_t> bytes, const FileInfo& info, std::size_t max_chunks);

namespace detail {

// The next record's header address is `offset + 16 + captured_length`, a
// load-to-use chain through memory: the walk cannot start record n+1
// until record n's length has arrived, which caps a demand-paged walk
// near the per-record load latency. A software prefetch a fixed byte
// distance ahead breaks the chain — the address derives from the
// *current* offset, so it issues immediately, and any distance covering
// a few records keeps the line stream ahead of the walk (~3x measured).
#if defined(__GNUC__) || defined(__clang__)
#define SYNSCAN_WALK_PREFETCH(addr) __builtin_prefetch((addr), 0, 3)
#else
#define SYNSCAN_WALK_PREFETCH(addr) ((void)0)
#endif
inline constexpr std::size_t kWalkPrefetchBytes = 2048;

/// Outcome of one bulk record walk.
struct WalkEnd {
  /// kOk: the sink asked to pause; otherwise the terminal status at the
  /// stop position.
  ReadStatus status = ReadStatus::kOk;
  std::uint64_t frames = 0;  ///< records consumed by this walk
  std::uint64_t bytes = 0;   ///< sum of their captured lengths
};

/// Core record walk shared by `MappedReader`, `ChunkReader` and the
/// fused scan-and-classify loop (core/ingest.cpp): invokes
/// `frame(timestamp_us, data, captured_length) -> bool` for every record
/// in `bytes[offset, end)`, advancing `offset` past each one consumed; a
/// false return pauses the walk (the record IS consumed). Defined in the
/// header so the sink inlines into the loop. Record validation is
/// bit-identical to `parse_record_header`: the dominant little-endian
/// layout is decoded inline, big-endian captures take the shared parser.
template <typename F>
WalkEnd scan_records(std::span<const std::uint8_t> bytes, const FileInfo& info,
                     std::size_t& offset, std::size_t end, F&& frame) {
  WalkEnd walk;
  const std::uint8_t* base = bytes.data();
  if (!info.big_endian) {
    // caplen > max(snap, 65535) || caplen > 1<<18  <=>  caplen > the
    // smaller of the two limits.
    const std::uint32_t cap_limit =
        std::min(std::max<std::uint32_t>(info.snap_length, 65535), 1u << 18);
    const std::uint32_t frac_limit = info.nanosecond ? 1'000'000'000u : 1'000'000u;
    for (;;) {
      if (end - offset < kRecordHeaderSize) {
        walk.status = offset == end ? ReadStatus::kEndOfFile : ReadStatus::kTruncated;
        return walk;
      }
      SYNSCAN_WALK_PREFETCH(base + offset + kWalkPrefetchBytes);
      std::uint32_t ts_sec;
      std::uint32_t ts_frac;
      std::uint32_t caplen;
      std::uint32_t origlen;
      std::memcpy(&ts_sec, base + offset, 4);
      std::memcpy(&ts_frac, base + offset + 4, 4);
      std::memcpy(&caplen, base + offset + 8, 4);
      std::memcpy(&origlen, base + offset + 12, 4);
      if (caplen > cap_limit || caplen > origlen || ts_frac >= frac_limit) {
        walk.status = ReadStatus::kBadRecord;
        return walk;
      }
      if (end - offset - kRecordHeaderSize < caplen) {
        walk.status = ReadStatus::kTruncated;
        return walk;
      }
      const auto frac_us = info.nanosecond ? ts_frac / 1000 : ts_frac;
      const auto timestamp_us = static_cast<net::TimeUs>(ts_sec) * net::kMicrosPerSecond +
                                static_cast<net::TimeUs>(frac_us);
      const std::uint8_t* data = base + offset + kRecordHeaderSize;
      offset += kRecordHeaderSize + caplen;
      ++walk.frames;
      walk.bytes += caplen;
      if (!frame(timestamp_us, data, caplen)) return walk;
    }
  }
  for (;;) {
    if (end - offset < kRecordHeaderSize) {
      walk.status = offset == end ? ReadStatus::kEndOfFile : ReadStatus::kTruncated;
      return walk;
    }
    SYNSCAN_WALK_PREFETCH(base + offset + kWalkPrefetchBytes);
    RecordHeader header;
    if (parse_record_header(bytes.subspan(offset, kRecordHeaderSize), info, header) !=
        ReadStatus::kOk) {
      walk.status = ReadStatus::kBadRecord;
      return walk;
    }
    if (end - offset - kRecordHeaderSize < header.captured_length) {
      walk.status = ReadStatus::kTruncated;
      return walk;
    }
    const std::uint8_t* data = base + offset + kRecordHeaderSize;
    offset += kRecordHeaderSize + header.captured_length;
    ++walk.frames;
    walk.bytes += header.captured_length;
    if (!frame(header.timestamp_us, data, header.captured_length)) return walk;
  }
}

}  // namespace detail

/// Scans one `ScanChunk` of a capture window. Same status contract as
/// `MappedReader::next_batch`, scoped to the chunk: kEndOfFile means the
/// chunk is exhausted (its last record ends exactly at `chunk.end`);
/// kTruncated / kBadRecord surface defects, which `partition_records`
/// confines to the final chunk. Holds only views — the `MappedReader`
/// (or `MappedFile`) owning the bytes must outlive every chunk reader.
/// Each instance is independent, so chunks can be scanned from separate
/// threads; the pcap.* metric counters it bumps are atomic.
class ChunkReader {
 public:
  ChunkReader(std::span<const std::uint8_t> bytes, const FileInfo& info,
              ScanChunk chunk) noexcept;

  /// Clears `out` and appends up to `max_frames` views; same partial-
  /// batch / owed-status contract as `MappedReader::next_batch`.
  [[nodiscard]] ReadStatus next_batch(std::vector<net::FrameView>& out,
                                      std::size_t max_frames);

  /// Fused scan: invokes `frame(timestamp_us, data, captured_length)`
  /// for every remaining record, inlined into the walk loop — no view
  /// staging between the record walk and the consumer. Returns the
  /// chunk's terminal status directly (kEndOfFile once exhausted). Do
  /// not interleave with `next_batch`.
  template <typename F>
  [[nodiscard]] ReadStatus scan(F&& frame) {
    if (done_) return ReadStatus::kEndOfFile;
    done_ = true;
    const auto walk =
        detail::scan_records(bytes_, info_, offset_, end_,
                             [&frame](net::TimeUs timestamp_us, const std::uint8_t* data,
                                      std::uint32_t captured_length) {
                               frame(timestamp_us, data, captured_length);
                               return true;
                             });
    frames_read_ += walk.frames;
    if (obs_frames_ != nullptr && walk.frames != 0) {
      obs_frames_->add(walk.frames);
      obs_bytes_->add(walk.bytes);
    }
    if (walk.status == ReadStatus::kTruncated && obs_truncated_ != nullptr) {
      obs_truncated_->add();
    }
    if (walk.status == ReadStatus::kBadRecord && obs_bad_records_ != nullptr) {
      obs_bad_records_->add();
    }
    return walk.status;
  }

  [[nodiscard]] std::uint64_t frames_read() const noexcept { return frames_read_; }

 private:
  std::span<const std::uint8_t> bytes_;  ///< the whole capture window
  FileInfo info_;
  std::size_t offset_;
  std::size_t end_;
  std::uint64_t frames_read_ = 0;
  bool done_ = false;
  std::optional<ReadStatus> pending_;
  obs::Counter* obs_frames_ = nullptr;
  obs::Counter* obs_bytes_ = nullptr;
  obs::Counter* obs_truncated_ = nullptr;
  obs::Counter* obs_bad_records_ = nullptr;
};

/// Batch-oriented reader over a `MappedFile` holding a classic pcap
/// capture. Mirrors `Reader`'s status contract: a terminal status
/// (kEndOfFile / kTruncated / kBadRecord) is reported exactly once;
/// subsequent calls return kEndOfFile.
class MappedReader {
 public:
  /// Throws `std::runtime_error` when the global header is missing or
  /// carries an unknown magic.
  explicit MappedReader(MappedFile file);

  [[nodiscard]] static MappedReader open(const std::filesystem::path& path);

  /// Fallback entry point for non-seekable input: drains the stream
  /// into memory first, then walks it exactly like a mapping.
  [[nodiscard]] static MappedReader open_stream(std::istream& stream);

  [[nodiscard]] const FileInfo& info() const noexcept { return info_; }
  [[nodiscard]] bool mapped() const noexcept { return file_.mapped(); }
  /// Total capture size in bytes (mapped or buffered).
  [[nodiscard]] std::uint64_t byte_size() const noexcept { return file_.bytes().size(); }
  /// The whole capture window (global header included). Valid while the
  /// reader lives; `ChunkReader`s scanning it must not outlive it.
  [[nodiscard]] std::span<const std::uint8_t> bytes() const noexcept {
    return file_.bytes();
  }
  /// Splits the record region into up to `max_chunks` record-aligned
  /// ranges (see `partition_records`). Independent of the read cursor.
  [[nodiscard]] std::vector<ScanChunk> partition(std::size_t max_chunks) const {
    return partition_records(file_.bytes(), info_, max_chunks);
  }

  /// Yields the next frame as a view into the mapping.
  [[nodiscard]] ReadStatus next(net::FrameView& out);

  /// Clears `out` and appends up to `max_frames` views. Returns kOk when
  /// at least one frame was produced; a terminal status interrupting a
  /// partially filled batch is delivered by the *next* call, so no frame
  /// and no status is ever lost. Do not interleave with `next()`.
  [[nodiscard]] ReadStatus next_batch(std::vector<net::FrameView>& out,
                                      std::size_t max_frames);

  [[nodiscard]] std::uint64_t frames_read() const noexcept { return frames_read_; }

 private:
  MappedFile file_;
  FileInfo info_;
  std::size_t offset_ = kGlobalHeaderSize;
  std::uint64_t frames_read_ = 0;
  bool done_ = false;  ///< a terminal status has been reported
  std::optional<ReadStatus> pending_;  ///< terminal status owed after a partial batch
  // Resolved once at construction iff obs is enabled; null otherwise.
  obs::Counter* obs_frames_ = nullptr;
  obs::Counter* obs_bytes_ = nullptr;
  obs::Counter* obs_truncated_ = nullptr;
  obs::Counter* obs_bad_records_ = nullptr;
};

}  // namespace synscan::pcap
