// Zero-copy classic-pcap reader over a memory-mapped capture.
//
// `pcap::Reader` pulls one record at a time through `std::istream`: two
// buffered reads plus a per-record byte-vector copy. At telescope scale
// (§3: 45 B packets before any analysis) that per-record overhead is the
// front-end bottleneck once tracking is fast. `MappedReader` maps the
// whole file read-only and yields `net::FrameView`s that point directly
// into the mapping — no stream calls, no copies — in caller-sized
// batches. Input that cannot be mapped (pipes, non-regular files, or a
// failed mmap) degrades gracefully to a single bulk read into an owned
// buffer; the record walk is identical either way.
#pragma once

#include <cstdint>
#include <filesystem>
#include <istream>
#include <optional>
#include <span>
#include <vector>

#include "net/packet.h"
#include "obs/metrics.h"
#include "pcap/pcap.h"

namespace synscan::pcap {

/// Read-only byte window over a file: mmap(2) for regular files, a bulk
/// read into an owned buffer otherwise. Movable, not copyable.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only; falls back to reading it into memory when
  /// mapping is unavailable. Throws `std::runtime_error` if the file
  /// cannot be opened at all.
  [[nodiscard]] static MappedFile open(const std::filesystem::path& path);

  /// Drains a non-seekable stream into an owned buffer (never mapped).
  [[nodiscard]] static MappedFile from_stream(std::istream& stream);

  [[nodiscard]] std::span<const std::uint8_t> bytes() const noexcept {
    return {data_, size_};
  }
  /// True when backed by an actual mmap (false: owned-buffer fallback).
  [[nodiscard]] bool mapped() const noexcept { return mapped_; }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::vector<std::uint8_t> fallback_;  ///< owns the bytes when !mapped_
};

/// Batch-oriented reader over a `MappedFile` holding a classic pcap
/// capture. Mirrors `Reader`'s status contract: a terminal status
/// (kEndOfFile / kTruncated / kBadRecord) is reported exactly once;
/// subsequent calls return kEndOfFile.
class MappedReader {
 public:
  /// Throws `std::runtime_error` when the global header is missing or
  /// carries an unknown magic.
  explicit MappedReader(MappedFile file);

  [[nodiscard]] static MappedReader open(const std::filesystem::path& path);

  /// Fallback entry point for non-seekable input: drains the stream
  /// into memory first, then walks it exactly like a mapping.
  [[nodiscard]] static MappedReader open_stream(std::istream& stream);

  [[nodiscard]] const FileInfo& info() const noexcept { return info_; }
  [[nodiscard]] bool mapped() const noexcept { return file_.mapped(); }
  /// Total capture size in bytes (mapped or buffered).
  [[nodiscard]] std::uint64_t byte_size() const noexcept { return file_.bytes().size(); }

  /// Yields the next frame as a view into the mapping.
  [[nodiscard]] ReadStatus next(net::FrameView& out);

  /// Clears `out` and appends up to `max_frames` views. Returns kOk when
  /// at least one frame was produced; a terminal status interrupting a
  /// partially filled batch is delivered by the *next* call, so no frame
  /// and no status is ever lost. Do not interleave with `next()`.
  [[nodiscard]] ReadStatus next_batch(std::vector<net::FrameView>& out,
                                      std::size_t max_frames);

  [[nodiscard]] std::uint64_t frames_read() const noexcept { return frames_read_; }

 private:
  MappedFile file_;
  FileInfo info_;
  std::size_t offset_ = kGlobalHeaderSize;
  std::uint64_t frames_read_ = 0;
  bool done_ = false;  ///< a terminal status has been reported
  std::optional<ReadStatus> pending_;  ///< terminal status owed after a partial batch
  // Resolved once at construction iff obs is enabled; null otherwise.
  obs::Counter* obs_frames_ = nullptr;
  obs::Counter* obs_bytes_ = nullptr;
  obs::Counter* obs_truncated_ = nullptr;
  obs::Counter* obs_bad_records_ = nullptr;
};

}  // namespace synscan::pcap
