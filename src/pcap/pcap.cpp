#include "pcap/pcap.h"

#include <array>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "net/endian.h"

namespace synscan::pcap {
namespace {

constexpr std::uint32_t kMagicMicros = 0xa1b2c3d4;
constexpr std::uint32_t kMagicNanos = 0xa1b23c4d;
constexpr std::uint32_t kMagicMicrosSwapped = 0xd4c3b2a1;
constexpr std::uint32_t kMagicNanosSwapped = 0x4d3cb2a1;

std::uint16_t load16(const std::uint8_t* p, bool big_endian) {
  return big_endian ? net::load_be16(p) : net::load_le16(p);
}

std::uint32_t load32(const std::uint8_t* p, bool big_endian) {
  return big_endian ? net::load_be32(p) : net::load_le32(p);
}

}  // namespace

std::optional<FileInfo> parse_global_header(
    std::span<const std::uint8_t> header) noexcept {
  if (header.size() < kGlobalHeaderSize) return std::nullopt;
  FileInfo info;
  const auto raw_magic = net::load_le32(header.data());
  switch (raw_magic) {
    case kMagicMicros:
      info.big_endian = false;
      info.nanosecond = false;
      break;
    case kMagicNanos:
      info.big_endian = false;
      info.nanosecond = true;
      break;
    case kMagicMicrosSwapped:
      info.big_endian = true;
      info.nanosecond = false;
      break;
    case kMagicNanosSwapped:
      info.big_endian = true;
      info.nanosecond = true;
      break;
    default:
      return std::nullopt;
  }
  info.version_major = load16(header.data() + 4, info.big_endian);
  info.version_minor = load16(header.data() + 6, info.big_endian);
  // bytes 8..15: thiszone + sigfigs, historically zero; ignored.
  info.snap_length = load32(header.data() + 16, info.big_endian);
  info.link_type = static_cast<LinkType>(load32(header.data() + 20, info.big_endian));
  return info;
}

ReadStatus parse_record_header(std::span<const std::uint8_t> record,
                               const FileInfo& info, RecordHeader& out) noexcept {
  const auto ts_seconds = load32(record.data(), info.big_endian);
  const auto ts_frac = load32(record.data() + 4, info.big_endian);
  out.captured_length = load32(record.data() + 8, info.big_endian);
  out.original_length = load32(record.data() + 12, info.big_endian);

  // Sanity limits: a captured length above the snap length (or an absurd
  // 256 KiB when the snap length itself is damaged) means the stream has
  // lost framing.
  const auto limit = std::max<std::uint32_t>(info.snap_length, 65535);
  if (out.captured_length > limit || out.captured_length > out.original_length ||
      out.captured_length > (1u << 18)) {
    return ReadStatus::kBadRecord;
  }
  if (info.nanosecond ? ts_frac >= 1'000'000'000u : ts_frac >= 1'000'000u) {
    return ReadStatus::kBadRecord;
  }
  const auto frac_us = info.nanosecond ? ts_frac / 1000 : ts_frac;
  out.timestamp_us = static_cast<net::TimeUs>(ts_seconds) * net::kMicrosPerSecond +
                     static_cast<net::TimeUs>(frac_us);
  return ReadStatus::kOk;
}

Reader::Reader(std::unique_ptr<std::istream> stream) : stream_(std::move(stream)) {
  if (!stream_ || !*stream_) {
    throw std::runtime_error("pcap: cannot read capture stream");
  }
  std::array<std::uint8_t, kGlobalHeaderSize> header{};
  stream_->read(reinterpret_cast<char*>(header.data()),
                static_cast<std::streamsize>(header.size()));
  if (stream_->gcount() != static_cast<std::streamsize>(header.size())) {
    throw std::runtime_error("pcap: capture shorter than the global header");
  }
  const auto info = parse_global_header(header);
  if (!info) throw std::runtime_error("pcap: unknown magic number");
  info_ = *info;

  if (obs::enabled()) {
    auto& registry = obs::MetricsRegistry::global();
    obs_frames_ = &registry.counter("pcap.frames");
    obs_bytes_ = &registry.counter("pcap.bytes");
    obs_truncated_ = &registry.counter("pcap.truncated");
    obs_bad_records_ = &registry.counter("pcap.bad_records");
  }
}

Reader Reader::open(const std::filesystem::path& path) {
  auto stream = std::make_unique<std::ifstream>(path, std::ios::binary);
  if (!stream->is_open()) {
    throw std::runtime_error("pcap: cannot open " + path.string());
  }
  return Reader(std::move(stream));
}

ReadStatus Reader::next(net::RawFrame& out) {
  std::array<std::uint8_t, kRecordHeaderSize> record{};
  stream_->read(reinterpret_cast<char*>(record.data()),
                static_cast<std::streamsize>(record.size()));
  const auto got = stream_->gcount();
  if (got == 0) return ReadStatus::kEndOfFile;
  if (got != static_cast<std::streamsize>(record.size())) {
    if (obs_truncated_ != nullptr) obs_truncated_->add();
    return ReadStatus::kTruncated;
  }

  RecordHeader header;
  if (parse_record_header(record, info_, header) != ReadStatus::kOk) {
    if (obs_bad_records_ != nullptr) obs_bad_records_->add();
    return ReadStatus::kBadRecord;
  }

  out.bytes.resize(header.captured_length);
  stream_->read(reinterpret_cast<char*>(out.bytes.data()),
                static_cast<std::streamsize>(header.captured_length));
  if (stream_->gcount() != static_cast<std::streamsize>(header.captured_length)) {
    if (obs_truncated_ != nullptr) obs_truncated_->add();
    return ReadStatus::kTruncated;
  }
  out.timestamp_us = header.timestamp_us;
  ++frames_read_;
  if (obs_frames_ != nullptr) {
    obs_frames_->add();
    obs_bytes_->add(header.captured_length);
  }
  return ReadStatus::kOk;
}

std::pair<std::vector<net::RawFrame>, ReadStatus> Reader::read_all() {
  std::vector<net::RawFrame> frames;
  net::RawFrame frame;
  for (;;) {
    const auto status = next(frame);
    if (status != ReadStatus::kOk) return {std::move(frames), status};
    frames.push_back(std::move(frame));
    frame = {};
  }
}

Writer::Writer(std::unique_ptr<std::ostream> stream, LinkType link_type,
               std::uint32_t snap_length)
    : stream_(std::move(stream)), snap_length_(snap_length) {
  if (!stream_ || !*stream_) {
    throw std::runtime_error("pcap: cannot write capture stream");
  }
  std::array<std::uint8_t, kGlobalHeaderSize> header{};
  net::store_le32(header.data(), kMagicMicros);
  net::store_le16(header.data() + 4, 2);
  net::store_le16(header.data() + 6, 4);
  // thiszone and sigfigs stay zero.
  net::store_le32(header.data() + 16, snap_length_);
  net::store_le32(header.data() + 20, static_cast<std::uint32_t>(link_type));
  stream_->write(reinterpret_cast<const char*>(header.data()),
                 static_cast<std::streamsize>(header.size()));
}

Writer Writer::create(const std::filesystem::path& path, LinkType link_type) {
  auto stream = std::make_unique<std::ofstream>(path, std::ios::binary | std::ios::trunc);
  if (!stream->is_open()) {
    throw std::runtime_error("pcap: cannot create " + path.string());
  }
  return Writer(std::move(stream), link_type);
}

void Writer::write(const net::RawFrame& frame) {
  const auto captured =
      std::min<std::size_t>(frame.bytes.size(), snap_length_);
  std::array<std::uint8_t, kRecordHeaderSize> record{};
  const auto seconds = frame.timestamp_us / net::kMicrosPerSecond;
  const auto micros = frame.timestamp_us % net::kMicrosPerSecond;
  net::store_le32(record.data(), static_cast<std::uint32_t>(seconds));
  net::store_le32(record.data() + 4, static_cast<std::uint32_t>(micros));
  net::store_le32(record.data() + 8, static_cast<std::uint32_t>(captured));
  net::store_le32(record.data() + 12, static_cast<std::uint32_t>(frame.bytes.size()));
  stream_->write(reinterpret_cast<const char*>(record.data()),
                 static_cast<std::streamsize>(record.size()));
  stream_->write(reinterpret_cast<const char*>(frame.bytes.data()),
                 static_cast<std::streamsize>(captured));
  ++frames_written_;
}

void Writer::flush() { stream_->flush(); }

void write_file(const std::filesystem::path& path, std::span<const net::RawFrame> frames,
                LinkType link_type) {
  auto writer = Writer::create(path, link_type);
  for (const auto& frame : frames) writer.write(frame);
  writer.flush();
}

std::pair<std::vector<net::RawFrame>, ReadStatus> read_file(
    const std::filesystem::path& path) {
  auto reader = Reader::open(path);
  return reader.read_all();
}

}  // namespace synscan::pcap
