// Classic libpcap capture-file format, implemented from scratch.
//
// Supports both byte orders and both timestamp resolutions:
//   0xa1b2c3d4 — microsecond timestamps
//   0xa1b23c4d — nanosecond timestamps
// The reader is a pull-style stream designed for telescope-scale files:
// it never loads the whole capture, tolerates a truncated final record
// (common when a capture process is killed), and reports malformed input
// through error codes rather than exceptions on the per-packet path.
#pragma once

#include <cstdint>
#include <filesystem>
#include <istream>
#include <memory>
#include <optional>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "net/packet.h"
#include "obs/metrics.h"

namespace synscan::pcap {

/// Data-link types we understand (values from the pcap LINKTYPE registry).
enum class LinkType : std::uint32_t {
  kEthernet = 1,
  kRawIp = 101,
};

/// Global header metadata of an open capture.
struct FileInfo {
  bool big_endian = false;
  bool nanosecond = false;
  std::uint16_t version_major = 2;
  std::uint16_t version_minor = 4;
  std::uint32_t snap_length = 0;
  LinkType link_type = LinkType::kEthernet;
};

/// Why the reader stopped or skipped a record.
enum class ReadStatus {
  kOk,              ///< a frame was produced
  kEndOfFile,       ///< clean end of capture
  kTruncated,       ///< record cut short (capture process died mid-write)
  kBadRecord,       ///< record header inconsistent (corruption)
};

inline constexpr std::size_t kGlobalHeaderSize = 24;
inline constexpr std::size_t kRecordHeaderSize = 16;

/// Parses the 24-byte global header. Returns nullopt on unknown magic;
/// shared by the streaming `Reader` and the mmap-backed `MappedReader`.
[[nodiscard]] std::optional<FileInfo> parse_global_header(
    std::span<const std::uint8_t> header) noexcept;

/// One decoded per-record header, timestamp normalized to µs.
struct RecordHeader {
  net::TimeUs timestamp_us = 0;
  std::uint32_t captured_length = 0;
  std::uint32_t original_length = 0;
};

/// Decodes and sanity-checks a 16-byte record header against `info`.
/// Returns kOk or kBadRecord (inconsistent lengths / impossible
/// sub-second field — the stream has lost framing).
[[nodiscard]] ReadStatus parse_record_header(std::span<const std::uint8_t> record,
                                             const FileInfo& info,
                                             RecordHeader& out) noexcept;

/// Streaming reader over any `std::istream`.
class Reader {
 public:
  /// Opens a capture over an owned stream. Throws `std::runtime_error` if
  /// the global header is missing or carries an unknown magic.
  explicit Reader(std::unique_ptr<std::istream> stream);

  /// Opens a capture file from disk.
  [[nodiscard]] static Reader open(const std::filesystem::path& path);

  [[nodiscard]] const FileInfo& info() const noexcept { return info_; }

  /// Reads the next frame into `out` (timestamp normalized to µs).
  /// kTruncated and kEndOfFile are terminal; kBadRecord aborts too, since
  /// record boundaries can no longer be trusted.
  [[nodiscard]] ReadStatus next(net::RawFrame& out);

  /// Drains the remainder of the stream. Frames whose captured length was
  /// limited by the snap length are still returned (analysis only needs
  /// headers). Returns the frames plus the terminal status.
  [[nodiscard]] std::pair<std::vector<net::RawFrame>, ReadStatus> read_all();

  /// Frames read so far.
  [[nodiscard]] std::uint64_t frames_read() const noexcept { return frames_read_; }

 private:
  std::unique_ptr<std::istream> stream_;
  FileInfo info_;
  std::uint64_t frames_read_ = 0;
  // Resolved once at construction iff obs is enabled; null otherwise,
  // so the per-record cost with observability off is one branch.
  obs::Counter* obs_frames_ = nullptr;
  obs::Counter* obs_bytes_ = nullptr;
  obs::Counter* obs_truncated_ = nullptr;
  obs::Counter* obs_bad_records_ = nullptr;
};

/// Streaming writer mirroring the reader. Always emits little-endian,
/// microsecond-resolution captures (the most interoperable choice).
class Writer {
 public:
  /// Wraps an owned stream and writes the global header immediately.
  Writer(std::unique_ptr<std::ostream> stream, LinkType link_type = LinkType::kEthernet,
         std::uint32_t snap_length = 65535);

  /// Creates/truncates a capture file on disk.
  [[nodiscard]] static Writer create(const std::filesystem::path& path,
                                     LinkType link_type = LinkType::kEthernet);

  /// Appends one frame. Frames longer than the snap length are truncated
  /// on disk with the original length recorded, exactly as libpcap does.
  void write(const net::RawFrame& frame);

  /// Flushes the underlying stream.
  void flush();

  [[nodiscard]] std::uint64_t frames_written() const noexcept { return frames_written_; }

 private:
  std::unique_ptr<std::ostream> stream_;
  std::uint32_t snap_length_;
  std::uint64_t frames_written_ = 0;
};

/// Convenience: writes `frames` to `path` in one call.
void write_file(const std::filesystem::path& path, std::span<const net::RawFrame> frames,
                LinkType link_type = LinkType::kEthernet);

/// Convenience: reads a whole capture from `path`. Throws on open/magic
/// errors; returns whatever was readable plus the terminal status.
[[nodiscard]] std::pair<std::vector<net::RawFrame>, ReadStatus> read_file(
    const std::filesystem::path& path);

}  // namespace synscan::pcap
