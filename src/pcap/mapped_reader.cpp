#include "pcap/mapped_reader.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define SYNSCAN_HAVE_MMAP 1
#endif

namespace synscan::pcap {
namespace {

std::vector<std::uint8_t> drain_stream(std::istream& stream) {
  std::vector<std::uint8_t> bytes;
  std::array<char, 1 << 16> chunk{};
  while (stream.read(chunk.data(), static_cast<std::streamsize>(chunk.size())) ||
         stream.gcount() > 0) {
    bytes.insert(bytes.end(), chunk.data(), chunk.data() + stream.gcount());
  }
  return bytes;
}

/// Appends up to `max_frames` record views from `bytes[offset, end)` to
/// `out`, advancing `offset` past every record consumed. kOk means the
/// batch filled.
detail::WalkEnd walk_records(std::span<const std::uint8_t> bytes, const FileInfo& info,
                             std::size_t& offset, std::size_t end,
                             std::vector<net::FrameView>& out, std::size_t max_frames) {
  return detail::scan_records(
      bytes, info, offset, end,
      [&out, max_frames](net::TimeUs timestamp_us, const std::uint8_t* data,
                         std::uint32_t captured_length) {
        out.push_back(net::FrameView{timestamp_us, {data, captured_length}});
        return out.size() < max_frames;
      });
}

}  // namespace

std::vector<ScanChunk> partition_records(std::span<const std::uint8_t> bytes,
                                         const FileInfo& info, std::size_t max_chunks) {
  const std::size_t size = bytes.size();
  const std::size_t begin = std::min<std::size_t>(kGlobalHeaderSize, size);
  if (max_chunks <= 1 || size - begin < 2 * kRecordHeaderSize) {
    return {{begin, size}};
  }
  const std::size_t target = std::max<std::size_t>((size - begin) / max_chunks,
                                                   kRecordHeaderSize);

  std::vector<ScanChunk> chunks;
  chunks.reserve(max_chunks);
  std::size_t offset = begin;
  std::size_t chunk_begin = begin;
  (void)detail::scan_records(
      bytes, info, offset, size,
      [&](net::TimeUs /*timestamp_us*/, const std::uint8_t* /*data*/,
          std::uint32_t /*captured_length*/) {
        if (offset - chunk_begin >= target && offset < size &&
            chunks.size() + 1 < max_chunks) {
          chunks.push_back({chunk_begin, offset});
          chunk_begin = offset;
        }
        return true;
      });
  // A defect (or clean EOF) ends the walk; either way the final chunk
  // runs to the end of the file, where its scanner re-derives the exact
  // terminal status.
  chunks.push_back({chunk_begin, size});
  return chunks;
}

ChunkReader::ChunkReader(std::span<const std::uint8_t> bytes, const FileInfo& info,
                         ScanChunk chunk) noexcept
    : bytes_(bytes),
      info_(info),
      offset_(std::min(chunk.begin, bytes.size())),
      end_(std::min(chunk.end, bytes.size())) {
  if (offset_ > end_) offset_ = end_;
  if (obs::enabled()) {
    auto& registry = obs::MetricsRegistry::global();
    obs_frames_ = &registry.counter("pcap.frames");
    obs_bytes_ = &registry.counter("pcap.bytes");
    obs_truncated_ = &registry.counter("pcap.truncated");
    obs_bad_records_ = &registry.counter("pcap.bad_records");
  }
}

ReadStatus ChunkReader::next_batch(std::vector<net::FrameView>& out,
                                   std::size_t max_frames) {
  out.clear();
  if (pending_) {
    const auto status = *pending_;
    pending_.reset();
    return status;
  }
  if (done_ || max_frames == 0) return done_ ? ReadStatus::kEndOfFile : ReadStatus::kOk;
  const auto walk = walk_records(bytes_, info_, offset_, end_, out, max_frames);
  frames_read_ += out.size();
  if (obs_frames_ != nullptr && !out.empty()) {
    obs_frames_->add(out.size());
    obs_bytes_->add(walk.bytes);
  }
  if (walk.status == ReadStatus::kOk) return ReadStatus::kOk;  // batch filled
  done_ = true;
  if (walk.status == ReadStatus::kTruncated && obs_truncated_ != nullptr) {
    obs_truncated_->add();
  }
  if (walk.status == ReadStatus::kBadRecord && obs_bad_records_ != nullptr) {
    obs_bad_records_->add();
  }
  if (out.empty()) return walk.status;
  // Deliver the partial batch now; owe the non-EOF terminal status to
  // the next call (kEndOfFile re-emerges from done_ by itself).
  if (walk.status != ReadStatus::kEndOfFile) pending_ = walk.status;
  return ReadStatus::kOk;
}

MappedFile::~MappedFile() {
#ifdef SYNSCAN_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    // NOLINTNEXTLINE(cppcoreguidelines-pro-type-const-cast): munmap takes void*
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
#endif
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_(std::exchange(other.mapped_, false)),
      fallback_(std::move(other.fallback_)) {
  if (!mapped_ && data_ != nullptr) data_ = fallback_.data();
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    this->~MappedFile();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
    fallback_ = std::move(other.fallback_);
    if (!mapped_ && data_ != nullptr) data_ = fallback_.data();
  }
  return *this;
}

MappedFile MappedFile::open(const std::filesystem::path& path) {
#ifdef SYNSCAN_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st {};
    const bool mappable = ::fstat(fd, &st) == 0 && S_ISREG(st.st_mode);
    if (mappable && st.st_size == 0) {
      ::close(fd);
      return {};  // empty file: a valid, empty window
    }
    if (mappable) {
      void* addr = ::mmap(nullptr, static_cast<std::size_t>(st.st_size), PROT_READ,
                          MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (addr != MAP_FAILED) {
        ::madvise(addr, static_cast<std::size_t>(st.st_size), MADV_SEQUENTIAL);
        MappedFile file;
        file.data_ = static_cast<const std::uint8_t*>(addr);
        file.size_ = static_cast<std::size_t>(st.st_size);
        file.mapped_ = true;
        return file;
      }
    } else {
      ::close(fd);
    }
  }
#endif
  // Fallback: bulk-read the file (FIFO, /proc entry, mmap refusal, or a
  // platform without mmap).
  std::ifstream stream(path, std::ios::binary);
  if (!stream.is_open()) {
    throw std::runtime_error("pcap: cannot open " + path.string());
  }
  return from_stream(stream);
}

MappedFile MappedFile::from_stream(std::istream& stream) {
  MappedFile file;
  file.fallback_ = drain_stream(stream);
  file.data_ = file.fallback_.data();
  file.size_ = file.fallback_.size();
  file.mapped_ = false;
  return file;
}

MappedReader::MappedReader(MappedFile file) : file_(std::move(file)) {
  const auto info = parse_global_header(file_.bytes());
  if (!info) {
    throw std::runtime_error(
        file_.bytes().size() < kGlobalHeaderSize
            ? "pcap: capture shorter than the global header"
            : "pcap: unknown magic number");
  }
  info_ = *info;
  if (obs::enabled()) {
    auto& registry = obs::MetricsRegistry::global();
    obs_frames_ = &registry.counter("pcap.frames");
    obs_bytes_ = &registry.counter("pcap.bytes");
    obs_truncated_ = &registry.counter("pcap.truncated");
    obs_bad_records_ = &registry.counter("pcap.bad_records");
  }
}

MappedReader MappedReader::open(const std::filesystem::path& path) {
  return MappedReader(MappedFile::open(path));
}

MappedReader MappedReader::open_stream(std::istream& stream) {
  return MappedReader(MappedFile::from_stream(stream));
}

ReadStatus MappedReader::next(net::FrameView& out) {
  if (done_) return ReadStatus::kEndOfFile;
  const auto bytes = file_.bytes();
  const auto remaining = bytes.size() - offset_;
  if (remaining == 0) {
    done_ = true;
    return ReadStatus::kEndOfFile;
  }
  if (remaining < kRecordHeaderSize) {
    // The capture stops inside a record header (killed mid-write).
    done_ = true;
    if (obs_truncated_ != nullptr) obs_truncated_->add();
    return ReadStatus::kTruncated;
  }
  RecordHeader header;
  if (parse_record_header(bytes.subspan(offset_, kRecordHeaderSize), info_, header) !=
      ReadStatus::kOk) {
    done_ = true;
    if (obs_bad_records_ != nullptr) obs_bad_records_->add();
    return ReadStatus::kBadRecord;
  }
  if (remaining - kRecordHeaderSize < header.captured_length) {
    done_ = true;
    if (obs_truncated_ != nullptr) obs_truncated_->add();
    return ReadStatus::kTruncated;
  }
  out.timestamp_us = header.timestamp_us;
  out.bytes = bytes.subspan(offset_ + kRecordHeaderSize, header.captured_length);
  offset_ += kRecordHeaderSize + header.captured_length;
  ++frames_read_;
  if (obs_frames_ != nullptr) {
    obs_frames_->add();
    obs_bytes_->add(header.captured_length);
  }
  return ReadStatus::kOk;
}

ReadStatus MappedReader::next_batch(std::vector<net::FrameView>& out,
                                    std::size_t max_frames) {
  out.clear();
  if (pending_) {
    const auto status = *pending_;
    pending_.reset();
    return status;
  }
  if (done_ || max_frames == 0) return done_ ? ReadStatus::kEndOfFile : ReadStatus::kOk;
  const auto bytes = file_.bytes();
  const auto walk = walk_records(bytes, info_, offset_, bytes.size(), out, max_frames);
  frames_read_ += out.size();
  if (obs_frames_ != nullptr && !out.empty()) {
    obs_frames_->add(out.size());
    obs_bytes_->add(walk.bytes);
  }
  if (walk.status == ReadStatus::kOk) return ReadStatus::kOk;  // batch filled
  done_ = true;
  if (walk.status == ReadStatus::kTruncated && obs_truncated_ != nullptr) {
    obs_truncated_->add();
  }
  if (walk.status == ReadStatus::kBadRecord && obs_bad_records_ != nullptr) {
    obs_bad_records_->add();
  }
  if (out.empty()) return walk.status;
  // Deliver the partial batch now; owe the non-EOF terminal status to
  // the next call (kEndOfFile re-emerges from done_ by itself).
  if (walk.status != ReadStatus::kEndOfFile) pending_ = walk.status;
  return ReadStatus::kOk;
}

}  // namespace synscan::pcap
