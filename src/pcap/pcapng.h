// pcapng (next-generation capture) reader, implemented from scratch.
//
// Modern capture tooling (Wireshark, newer tcpdump setups) writes pcapng
// rather than classic pcap; a telescope toolkit has to ingest both. This
// reader handles the block types that carry packets:
//   - Section Header Block (0x0A0D0D0A): byte order, section boundaries
//   - Interface Description Block (1): link type and timestamp
//     resolution (if_tsresol option, default microseconds)
//   - Enhanced Packet Block (6) and the obsolete Simple Packet Block (3)
// Unknown block types are skipped by length, as the spec requires.
// Timestamps are normalized to microseconds, matching `net::RawFrame`.
#pragma once

#include <cstdint>
#include <filesystem>
#include <istream>
#include <memory>
#include <vector>

#include "net/packet.h"
#include "pcap/pcap.h"

namespace synscan::pcap {

/// Streaming pcapng reader. Multiple sections per file are supported
/// (each introduced by its own Section Header Block).
class NgReader {
 public:
  /// Opens a pcapng stream; throws `std::runtime_error` when the first
  /// block is not a valid Section Header Block.
  explicit NgReader(std::unique_ptr<std::istream> stream);

  [[nodiscard]] static NgReader open(const std::filesystem::path& path);

  /// Reads the next packet (from an EPB or SPB), skipping interleaved
  /// non-packet blocks. Timestamps are normalized to µs; Simple Packet
  /// Blocks, which carry none, get timestamp 0.
  [[nodiscard]] ReadStatus next(net::RawFrame& out);

  /// Drains the stream.
  [[nodiscard]] std::pair<std::vector<net::RawFrame>, ReadStatus> read_all();

  [[nodiscard]] std::uint64_t packets_read() const noexcept { return packets_read_; }
  [[nodiscard]] std::size_t interfaces_seen() const noexcept {
    return interfaces_.size();
  }

 private:
  struct Interface {
    std::uint16_t link_type = 1;
    /// Ticks per second of this interface's timestamps.
    std::uint64_t ticks_per_second = 1'000'000;
  };

  [[nodiscard]] bool read_exact(void* buffer, std::size_t size);
  void parse_interface_block(const std::vector<std::uint8_t>& body);

  std::unique_ptr<std::istream> stream_;
  bool big_endian_ = false;
  std::vector<Interface> interfaces_;
  std::uint64_t packets_read_ = 0;
};

/// True if the file starts with the pcapng Section Header Block magic
/// (use to dispatch between `Reader` and `NgReader`).
[[nodiscard]] bool looks_like_pcapng(const std::filesystem::path& path);

/// Format-dispatching convenience: reads classic pcap or pcapng.
[[nodiscard]] std::pair<std::vector<net::RawFrame>, ReadStatus> read_any_capture(
    const std::filesystem::path& path);

}  // namespace synscan::pcap
