// Linear and logarithmic histograms for rate/coverage distributions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace synscan::stats {

/// Fixed-width linear histogram over [lo, hi). Out-of-range samples land
/// in saturating underflow/overflow bins.
class LinearHistogram {
 public:
  LinearHistogram(double lo, double hi, std::size_t bins);

  void add(double x, std::uint64_t weight = 1) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Center x-value of a bin.
  [[nodiscard]] double bin_center(std::size_t bin) const;
  /// Left edge of a bin.
  [[nodiscard]] double bin_left(std::size_t bin) const;

  /// Index of the fullest bin (0 if empty).
  [[nodiscard]] std::size_t mode_bin() const noexcept;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Log10-spaced histogram over [lo, hi), lo > 0; the natural shape for
/// scan-speed distributions spanning 1 pps to 10^6+ pps.
class LogHistogram {
 public:
  LogHistogram(double lo, double hi, std::size_t bins_per_decade = 10);

  void add(double x, std::uint64_t weight = 1) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_left(std::size_t bin) const;
  [[nodiscard]] double bin_center(std::size_t bin) const;

 private:
  double log_lo_;
  double log_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace synscan::stats
