#include "stats/hyperloglog.h"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace synscan::stats {
namespace {

constexpr std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Bias-correction constant alpha_m of the HLL paper.
double alpha(std::size_t m) noexcept {
  switch (m) {
    case 16:
      return 0.673;
    case 32:
      return 0.697;
    case 64:
      return 0.709;
    default:
      return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }
}

}  // namespace

HyperLogLog::HyperLogLog(unsigned precision) : precision_(precision) {
  if (precision < 4 || precision > 16) {
    throw std::invalid_argument("HyperLogLog: precision outside [4, 16]");
  }
  registers_.assign(std::size_t{1} << precision, 0);
}

void HyperLogLog::add_hash(std::uint64_t hash) noexcept {
  const auto index = static_cast<std::size_t>(hash >> (64 - precision_));
  const std::uint64_t rest = hash << precision_;
  // Rank: position of the leftmost 1-bit in the remaining bits, 1-based;
  // an all-zero remainder gets the maximum rank.
  const auto rank = static_cast<std::uint8_t>(
      rest == 0 ? 65 - static_cast<int>(precision_) : std::countl_zero(rest) + 1);
  if (rank > registers_[index]) registers_[index] = rank;
}

void HyperLogLog::add(std::uint64_t value) noexcept { add_hash(mix(value)); }

double HyperLogLog::estimate() const noexcept {
  const auto m = static_cast<double>(registers_.size());
  double sum = 0.0;
  std::size_t zeros = 0;
  for (const auto reg : registers_) {
    sum += std::ldexp(1.0, -static_cast<int>(reg));
    if (reg == 0) ++zeros;
  }
  const double raw = alpha(registers_.size()) * m * m / sum;
  // Small-range correction: linear counting while any register is empty
  // and the raw estimate is below 2.5m.
  if (raw <= 2.5 * m && zeros > 0) {
    return m * std::log(m / static_cast<double>(zeros));
  }
  return raw;
}

void HyperLogLog::merge(const HyperLogLog& other) {
  if (other.precision_ != precision_) {
    throw std::invalid_argument("HyperLogLog: precision mismatch in merge");
  }
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
}

}  // namespace synscan::stats
