#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace synscan::stats {

void StreamingMoments::add(double x) noexcept {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double StreamingMoments::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingMoments::stddev() const noexcept { return std::sqrt(variance()); }

void StreamingMoments::merge(const StreamingMoments& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double quantile_inplace(std::vector<double>& sample, double q) {
  if (sample.empty()) throw std::invalid_argument("quantile of empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile q outside [0,1]");
  const double pos = q * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sample.size() - 1);
  std::nth_element(sample.begin(), sample.begin() + static_cast<std::ptrdiff_t>(lo),
                   sample.end());
  const double lo_value = sample[lo];
  if (hi == lo) return lo_value;
  const double hi_value =
      *std::min_element(sample.begin() + static_cast<std::ptrdiff_t>(lo) + 1, sample.end());
  const double frac = pos - static_cast<double>(lo);
  return lo_value + (hi_value - lo_value) * frac;
}

double quantile(std::span<const double> sample, double q) {
  std::vector<double> copy(sample.begin(), sample.end());
  return quantile_inplace(copy, q);
}

double mean(std::span<const double> sample) {
  if (sample.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : sample) sum += x;
  return sum / static_cast<double>(sample.size());
}

}  // namespace synscan::stats
