#include "stats/ecdf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace synscan::stats {

Ecdf::Ecdf(std::vector<double> sample) : sorted_(std::move(sample)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::fraction_at_or_below(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double Ecdf::value_at_fraction(double q) const {
  if (sorted_.empty()) throw std::logic_error("value_at_fraction on empty ECDF");
  if (q <= 0.0 || q > 1.0) throw std::invalid_argument("fraction outside (0,1]");
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())));
  return sorted_[std::min(rank == 0 ? 0 : rank - 1, sorted_.size() - 1)];
}

std::vector<Ecdf::Point> Ecdf::curve(std::size_t max_points) const {
  std::vector<Point> points;
  if (sorted_.empty() || max_points == 0) return points;

  // One step per distinct value.
  std::vector<Point> steps;
  const auto n = static_cast<double>(sorted_.size());
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    if (i + 1 < sorted_.size() && sorted_[i + 1] == sorted_[i]) continue;
    steps.push_back({sorted_[i], static_cast<double>(i + 1) / n});
  }
  if (steps.size() <= max_points) return steps;

  // Uniform subsample of the steps, always keeping the last point
  // (F = 1) so the curve visibly completes.
  points.reserve(max_points);
  const double stride = static_cast<double>(steps.size() - 1) /
                        static_cast<double>(max_points - 1);
  for (std::size_t i = 0; i < max_points; ++i) {
    points.push_back(steps[static_cast<std::size_t>(std::round(stride * static_cast<double>(i)))]);
  }
  points.back() = steps.back();
  return points;
}

}  // namespace synscan::stats
