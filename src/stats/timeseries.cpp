#include "stats/timeseries.h"

#include <algorithm>
#include <stdexcept>

namespace synscan::stats {

BucketedSeries::BucketedSeries(net::TimeUs origin, net::TimeUs bucket_width)
    : origin_(origin), width_(bucket_width) {
  if (bucket_width <= 0) throw std::invalid_argument("BucketedSeries: width must be > 0");
}

std::size_t BucketedSeries::bucket_of(net::TimeUs t) const noexcept {
  if (t <= origin_) return 0;
  return static_cast<std::size_t>((t - origin_) / width_);
}

void BucketedSeries::add(net::TimeUs t, std::uint64_t weight) {
  buckets_[bucket_of(t)] += weight;
}

std::uint64_t BucketedSeries::at(std::size_t bucket) const {
  const auto it = buckets_.find(bucket);
  return it == buckets_.end() ? 0 : it->second;
}

std::size_t BucketedSeries::bucket_count() const noexcept {
  if (buckets_.empty()) return 0;
  return buckets_.rbegin()->first + 1;
}

std::vector<std::uint64_t> BucketedSeries::dense() const {
  std::vector<std::uint64_t> out(bucket_count(), 0);
  for (const auto& [bucket, count] : buckets_) out[bucket] = count;
  return out;
}

std::vector<double> change_factors(std::span<const std::uint64_t> series,
                                   double zero_factor) {
  std::vector<double> out;
  if (series.size() < 2) return out;
  out.reserve(series.size() - 1);
  for (std::size_t i = 1; i < series.size(); ++i) {
    const auto prev = series[i - 1];
    const auto cur = series[i];
    if (prev == 0 && cur == 0) continue;
    if (prev == 0 || cur == 0) {
      out.push_back(zero_factor);
      continue;
    }
    const double up = static_cast<double>(cur) / static_cast<double>(prev);
    out.push_back(std::max(up, 1.0 / up));
  }
  return out;
}

}  // namespace synscan::stats
