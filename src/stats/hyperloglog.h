// HyperLogLog distinct counter.
//
// The paper counts 45 million distinct sources over ten years; exact
// sets at that scale cost gigabytes. This estimator answers "how many
// distinct" in kilobytes with a few percent error — the right tool for
// long-horizon source/destination cardinalities where the exact sets of
// the campaign tracker would not fit.
#pragma once

#include <cstdint>
#include <vector>

namespace synscan::stats {

class HyperLogLog {
 public:
  /// `precision` in [4, 16]: 2^precision one-byte registers; the
  /// standard error is ~1.04 / sqrt(2^precision) (1.6% at 12).
  explicit HyperLogLog(unsigned precision = 12);

  /// Adds a pre-hashed 64-bit value. Inputs must already be well mixed;
  /// use `add` for raw values.
  void add_hash(std::uint64_t hash) noexcept;

  /// Adds a raw value (mixed internally).
  void add(std::uint64_t value) noexcept;

  /// The cardinality estimate, with the standard small-range (linear
  /// counting) correction.
  [[nodiscard]] double estimate() const noexcept;

  /// Merges another sketch of the same precision (register-wise max).
  void merge(const HyperLogLog& other);

  [[nodiscard]] unsigned precision() const noexcept { return precision_; }
  [[nodiscard]] std::size_t registers() const noexcept { return registers_.size(); }

 private:
  unsigned precision_;
  std::vector<std::uint8_t> registers_;
};

}  // namespace synscan::stats
