// Bucketed counter time series and week-over-week change ratios.
//
// The volatility analysis (Fig. 2) needs, per /16 netblock, the weekly
// counts of sources / scans / packets and the distribution of the ratio
// between consecutive weeks. This module provides the bucketing and the
// ratio computation; the analysis layer provides the keys.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "net/packet.h"

namespace synscan::stats {

/// A counter series bucketed on a fixed interval, anchored at `origin`.
/// Buckets are sparse; missing buckets read as zero.
class BucketedSeries {
 public:
  BucketedSeries(net::TimeUs origin, net::TimeUs bucket_width);

  /// Adds `weight` at time `t` (t >= origin; earlier samples clamp into
  /// bucket 0).
  void add(net::TimeUs t, std::uint64_t weight = 1);

  [[nodiscard]] std::uint64_t at(std::size_t bucket) const;
  [[nodiscard]] std::size_t bucket_of(net::TimeUs t) const noexcept;

  /// Index of the last non-empty bucket + 1 (0 when empty).
  [[nodiscard]] std::size_t bucket_count() const noexcept;

  /// Dense copy of buckets [0, bucket_count()).
  [[nodiscard]] std::vector<std::uint64_t> dense() const;

  [[nodiscard]] net::TimeUs origin() const noexcept { return origin_; }
  [[nodiscard]] net::TimeUs bucket_width() const noexcept { return width_; }

 private:
  net::TimeUs origin_;
  net::TimeUs width_;
  std::map<std::size_t, std::uint64_t> buckets_;
};

/// Change ratios between consecutive values of a dense series.
///
/// For each adjacent pair (prev, cur), both non-zero, appends
/// max(cur/prev, prev/cur) — the "factor of change" in whichever
/// direction, always >= 1, matching the paper's "changed by a factor of 2
/// or more" phrasing. Pairs where exactly one side is zero count as a
/// change by `zero_factor` (appearance/disappearance of all activity);
/// pairs where both are zero are skipped.
[[nodiscard]] std::vector<double> change_factors(std::span<const std::uint64_t> series,
                                                 double zero_factor = 64.0);

}  // namespace synscan::stats
