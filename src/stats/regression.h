// Ordinary least squares for the paper's trend claims.
#pragma once

#include <span>

namespace synscan::stats {

/// y = slope * x + intercept, with goodness-of-fit.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
  std::size_t n = 0;

  [[nodiscard]] double predict(double x) const noexcept {
    return slope * x + intercept;
  }
};

/// OLS fit of y on x. Requires x.size() == y.size(); fewer than 2 points
/// or zero x-variance yields a flat fit at the mean of y.
[[nodiscard]] LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

/// Compound annual growth rate implied by first/last of a positive
/// series (the paper's "scan volume increases by 63% per annum"):
/// (last/first)^(1/(n-1)) - 1. Returns 0 for degenerate input.
[[nodiscard]] double annual_growth_rate(std::span<const double> series);

}  // namespace synscan::stats
