// Hypothesis tests used by the paper's analyses:
//  - Pearson correlation with a two-sided p-value (t distribution), used
//    for the trend claims (e.g. ports-per-scan growth R=0.88, top-100
//    speed trend R=0.356, services-vs-scans R=0.047).
//  - Two-sample Kolmogorov–Smirnov test, used in §4.3 to verify that the
//    port-activity distribution returns to "normal" after a disclosure.
#pragma once

#include <span>

namespace synscan::stats {

/// Result of a correlation test.
struct Correlation {
  double r = 0.0;        ///< Pearson product-moment coefficient
  double p_value = 1.0;  ///< two-sided, from Student's t with n-2 dof
  std::size_t n = 0;
};

/// Pearson correlation of paired samples. Requires x.size() == y.size();
/// returns r = 0, p = 1 for fewer than 3 pairs or zero variance.
[[nodiscard]] Correlation pearson(std::span<const double> x, std::span<const double> y);

/// Spearman rank correlation (Pearson over ranks, average ranks on ties).
[[nodiscard]] Correlation spearman(std::span<const double> x, std::span<const double> y);

/// Result of a two-sample KS test.
struct KsTest {
  double statistic = 0.0;  ///< sup-norm distance between the two ECDFs
  double p_value = 1.0;    ///< asymptotic (Kolmogorov distribution)
};

/// Two-sample KS test. Either sample being empty yields D=1, p=0 unless
/// both are empty (D=0, p=1).
[[nodiscard]] KsTest kolmogorov_smirnov(std::span<const double> a,
                                        std::span<const double> b);

/// Regularized incomplete beta function I_x(a, b) via continued fraction
/// (Lentz). Exposed for testing; the t-distribution CDF reduces to it.
[[nodiscard]] double incomplete_beta(double a, double b, double x);

/// Two-sided p-value for a Student-t statistic with `dof` degrees of
/// freedom.
[[nodiscard]] double student_t_two_sided_p(double t, double dof);

}  // namespace synscan::stats
