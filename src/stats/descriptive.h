// Descriptive statistics: streaming moments and order statistics.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace synscan::stats {

/// Numerically stable streaming mean/variance (Welford's algorithm) with
/// min/max tracking. Suitable for telescope-scale streams where holding
/// all samples is not an option.
class StreamingMoments {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merges another accumulator (parallel reduction).
  void merge(const StreamingMoments& other) noexcept;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Quantile of a sample using linear interpolation between order
/// statistics (type-7, the numpy/R default). `q` in [0, 1].
/// The input is copied; use `quantile_inplace` to avoid the copy.
[[nodiscard]] double quantile(std::span<const double> sample, double q);

/// As `quantile`, but partially sorts `sample` in place.
[[nodiscard]] double quantile_inplace(std::vector<double>& sample, double q);

[[nodiscard]] inline double median(std::span<const double> sample) {
  return quantile(sample, 0.5);
}

/// Arithmetic mean; 0 for an empty sample.
[[nodiscard]] double mean(std::span<const double> sample);

}  // namespace synscan::stats
