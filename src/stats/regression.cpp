#include "stats/regression.h"

#include <cmath>
#include <stdexcept>

namespace synscan::stats {

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("linear_fit: size mismatch");
  LinearFit fit;
  fit.n = x.size();
  if (x.empty()) return fit;

  const auto n = static_cast<double>(x.size());
  double mean_x = 0.0;
  double mean_y = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    mean_x += x[i];
    mean_y += y[i];
  }
  mean_x /= n;
  mean_y /= n;

  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) {
    fit.intercept = mean_y;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = mean_y - fit.slope * mean_x;
  fit.r_squared = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

double annual_growth_rate(std::span<const double> series) {
  if (series.size() < 2) return 0.0;
  const double first = series.front();
  const double last = series.back();
  if (!(first > 0.0) || !(last > 0.0)) return 0.0;
  return std::pow(last / first, 1.0 / static_cast<double>(series.size() - 1)) - 1.0;
}

}  // namespace synscan::stats
