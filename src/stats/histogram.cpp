#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace synscan::stats {

LinearHistogram::LinearHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("LinearHistogram: need hi > lo and bins > 0");
  }
}

void LinearHistogram::add(double x, std::uint64_t weight) noexcept {
  total_ += weight;
  if (x < lo_) {
    underflow_ += weight;
    return;
  }
  if (x >= hi_) {
    overflow_ += weight;
    return;
  }
  const auto bin = std::min(counts_.size() - 1,
                            static_cast<std::size_t>((x - lo_) / width_));
  counts_[bin] += weight;
}

double LinearHistogram::bin_center(std::size_t bin) const {
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double LinearHistogram::bin_left(std::size_t bin) const {
  return lo_ + static_cast<double>(bin) * width_;
}

std::size_t LinearHistogram::mode_bin() const noexcept {
  const auto it = std::max_element(counts_.begin(), counts_.end());
  return it == counts_.end() ? 0 : static_cast<std::size_t>(it - counts_.begin());
}

LogHistogram::LogHistogram(double lo, double hi, std::size_t bins_per_decade) {
  if (!(lo > 0.0) || !(hi > lo) || bins_per_decade == 0) {
    throw std::invalid_argument("LogHistogram: need 0 < lo < hi, bins_per_decade > 0");
  }
  log_lo_ = std::log10(lo);
  log_width_ = 1.0 / static_cast<double>(bins_per_decade);
  const double decades = std::log10(hi) - log_lo_;
  counts_.assign(static_cast<std::size_t>(std::ceil(decades / log_width_)) + 1, 0);
}

void LogHistogram::add(double x, std::uint64_t weight) noexcept {
  total_ += weight;
  if (!(x > 0.0)) {
    counts_.front() += weight;  // degenerate values saturate low
    return;
  }
  const double pos = (std::log10(x) - log_lo_) / log_width_;
  const auto bin = static_cast<std::size_t>(
      std::clamp(pos, 0.0, static_cast<double>(counts_.size() - 1)));
  counts_[bin] += weight;
}

double LogHistogram::bin_left(std::size_t bin) const {
  return std::pow(10.0, log_lo_ + static_cast<double>(bin) * log_width_);
}

double LogHistogram::bin_center(std::size_t bin) const {
  return std::pow(10.0, log_lo_ + (static_cast<double>(bin) + 0.5) * log_width_);
}

}  // namespace synscan::stats
