#include "stats/hypothesis.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace synscan::stats {
namespace {

// Continued-fraction evaluation of the incomplete beta (Numerical Recipes
// "betacf" structure, modified Lentz method).
double beta_continued_fraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 3.0e-12;
  constexpr double kTiny = 1.0e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const auto md = static_cast<double>(m);
    const double m2 = 2.0 * md;
    double aa = md * (b - md) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + md) * (qab + md) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

// Ranks with average-rank tie handling.
std::vector<double> ranks(std::span<const double> values) {
  const auto n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return values[i] < values[j]; });
  std::vector<double> out(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) out[order[k]] = avg_rank;
    i = j + 1;
  }
  return out;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  // Use the symmetry relation to keep the continued fraction convergent.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_continued_fraction(a, b, x) / a;
  }
  return 1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b;
}

double student_t_two_sided_p(double t, double dof) {
  if (dof <= 0.0) return 1.0;
  if (!std::isfinite(t)) return 0.0;
  const double x = dof / (dof + t * t);
  // P(|T| > t) = I_{dof/(dof+t^2)}(dof/2, 1/2)
  return std::clamp(incomplete_beta(dof / 2.0, 0.5, x), 0.0, 1.0);
}

Correlation pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("pearson: size mismatch");
  Correlation result;
  result.n = x.size();
  if (x.size() < 3) return result;

  const auto n = static_cast<double>(x.size());
  double mean_x = 0.0;
  double mean_y = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    mean_x += x[i];
    mean_y += y[i];
  }
  mean_x /= n;
  mean_y /= n;

  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return result;

  result.r = std::clamp(sxy / std::sqrt(sxx * syy), -1.0, 1.0);
  const double dof = n - 2.0;
  if (std::fabs(result.r) >= 1.0) {
    result.p_value = 0.0;
  } else {
    const double t = result.r * std::sqrt(dof / (1.0 - result.r * result.r));
    result.p_value = student_t_two_sided_p(t, dof);
  }
  return result;
}

Correlation spearman(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("spearman: size mismatch");
  const auto rx = ranks(x);
  const auto ry = ranks(y);
  return pearson(rx, ry);
}

KsTest kolmogorov_smirnov(std::span<const double> a, std::span<const double> b) {
  KsTest result;
  if (a.empty() && b.empty()) return result;
  if (a.empty() || b.empty()) {
    result.statistic = 1.0;
    result.p_value = 0.0;
    return result;
  }

  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());

  const auto na = static_cast<double>(sa.size());
  const auto nb = static_cast<double>(sb.size());
  std::size_t ia = 0;
  std::size_t ib = 0;
  double d = 0.0;
  while (ia < sa.size() && ib < sb.size()) {
    const double va = sa[ia];
    const double vb = sb[ib];
    if (va <= vb) ++ia;
    if (vb <= va) ++ib;
    const double fa = static_cast<double>(ia) / na;
    const double fb = static_cast<double>(ib) / nb;
    d = std::max(d, std::fabs(fa - fb));
  }
  result.statistic = d;

  // Asymptotic Kolmogorov distribution with the small-sample correction
  // used by scipy's 'asymp' mode.
  const double en = std::sqrt(na * nb / (na + nb));
  const double lambda = (en + 0.12 + 0.11 / en) * d;
  if (lambda < 1e-3) {
    // The alternating series does not converge for lambda -> 0; the
    // distributions are indistinguishable there.
    result.p_value = 1.0;
    return result;
  }
  double p = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * lambda * lambda * k * k);
    p += sign * term;
    sign = -sign;
    if (term < 1e-12) break;
  }
  result.p_value = std::clamp(2.0 * p, 0.0, 1.0);
  return result;
}

}  // namespace synscan::stats
