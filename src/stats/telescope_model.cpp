#include "stats/telescope_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace synscan::stats {

namespace {
constexpr double kIpv4Space = 4294967296.0;  // 2^32
}

TelescopeModel::TelescopeModel(std::uint64_t monitored_addresses)
    : monitored_(monitored_addresses),
      p_(static_cast<double>(monitored_addresses) / kIpv4Space) {
  if (monitored_ == 0 || monitored_ > (std::uint64_t{1} << 32)) {
    throw std::invalid_argument("TelescopeModel: monitored addresses outside (0, 2^32]");
  }
}

double TelescopeModel::detection_probability(double probes) const noexcept {
  if (probes <= 0.0) return 0.0;
  // log1p for numerical stability at small p.
  return 1.0 - std::exp(probes * std::log1p(-p_));
}

double TelescopeModel::detection_probability_within(double pps, double seconds) const noexcept {
  return detection_probability(pps * seconds);
}

double TelescopeModel::probes_for_probability(double target) const {
  if (!(target > 0.0) || !(target < 1.0)) {
    throw std::invalid_argument("probes_for_probability: target outside (0,1)");
  }
  return std::log1p(-target) / std::log1p(-p_);
}

double TelescopeModel::seconds_to_detect(double pps, double target) const {
  if (!(pps > 0.0)) throw std::invalid_argument("seconds_to_detect: pps must be > 0");
  return probes_for_probability(target) / pps;
}

double TelescopeModel::expected_hits(double probes) const noexcept {
  return std::max(0.0, probes) * p_;
}

double TelescopeModel::extrapolate_probes(double hits) const noexcept {
  return std::max(0.0, hits) / p_;
}

double TelescopeModel::coverage_fraction(double hits) const noexcept {
  return std::clamp(extrapolate_probes(hits) / kIpv4Space, 0.0, 1.0);
}

double TelescopeModel::extrapolate_pps(double hits, double seconds) const noexcept {
  if (!(seconds > 0.0)) return 0.0;
  return extrapolate_probes(hits) / seconds;
}

}  // namespace synscan::stats
