// Empirical cumulative distribution functions.
//
// Every CDF figure in the paper (Figs. 2, 3, 6, 7) is an ECDF over a
// derived per-entity metric; this type is the common currency between the
// analysis engines and the report layer.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace synscan::stats {

/// An immutable ECDF built from a sample.
class Ecdf {
 public:
  Ecdf() = default;

  /// Builds from a sample (copied, then sorted).
  explicit Ecdf(std::vector<double> sample);

  [[nodiscard]] bool empty() const noexcept { return sorted_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }

  /// F(x): fraction of the sample <= x. 0 for an empty ECDF.
  [[nodiscard]] double fraction_at_or_below(double x) const noexcept;

  /// Inverse: smallest sample value v with F(v) >= q, for q in (0, 1].
  [[nodiscard]] double value_at_fraction(double q) const;

  /// The underlying sorted sample.
  [[nodiscard]] std::span<const double> sorted() const noexcept { return sorted_; }

  /// Evaluation points for plotting: (x, F(x)) at every distinct sample
  /// value, capped at `max_points` by uniform subsampling of the steps.
  struct Point {
    double x;
    double f;
  };
  [[nodiscard]] std::vector<Point> curve(std::size_t max_points = 256) const;

 private:
  std::vector<double> sorted_;
};

/// A named ECDF, as rendered in multi-series figures.
struct NamedEcdf {
  std::string name;
  Ecdf ecdf;
};

}  // namespace synscan::stats
