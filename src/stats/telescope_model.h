// The geometric telescope-sensitivity model of Moore et al. (2004),
// which the paper uses in §3.4 to justify its campaign thresholds: a
// scanner probing random IPv4 addresses at 100 pps is seen by a /16
// telescope within one hour with probability 99.9%.
//
// Model: each probe independently lands in the telescope with probability
// p = monitored / 2^32, so the number of probes until the first hit is
// geometric with parameter p.
#pragma once

#include <cstdint>

namespace synscan::stats {

/// Sensitivity calculator for a telescope monitoring `monitored_addresses`
/// of the 2^32 IPv4 addresses.
class TelescopeModel {
 public:
  explicit TelescopeModel(std::uint64_t monitored_addresses);

  /// Per-probe hit probability p.
  [[nodiscard]] double hit_probability() const noexcept { return p_; }

  /// Probability of at least one hit after `probes` random probes:
  /// 1 - (1-p)^probes.
  [[nodiscard]] double detection_probability(double probes) const noexcept;

  /// Probability a scanner at `pps` Internet-wide is seen within
  /// `seconds`.
  [[nodiscard]] double detection_probability_within(double pps, double seconds) const noexcept;

  /// Probes needed so the detection probability reaches `target`
  /// (e.g. 0.999).
  [[nodiscard]] double probes_for_probability(double target) const;

  /// Seconds until a scanner at `pps` is detected with probability
  /// `target`.
  [[nodiscard]] double seconds_to_detect(double pps, double target) const;

  /// Expected number of telescope hits for a scan sending `probes`
  /// Internet-wide probes (binomial mean).
  [[nodiscard]] double expected_hits(double probes) const noexcept;

  /// Inverse extrapolation used for scan coverage (§6.4): given `hits`
  /// distinct telescope destinations, the estimated number of Internet-
  /// wide probes is hits / p.
  [[nodiscard]] double extrapolate_probes(double hits) const noexcept;

  /// Fraction of IPv4 a scan covered, assuming one probe per address:
  /// extrapolated probes / 2^32, clamped to [0, 1].
  [[nodiscard]] double coverage_fraction(double hits) const noexcept;

  /// Internet-wide packet rate inferred from `hits` telescope hits over
  /// `seconds` of scan lifetime.
  [[nodiscard]] double extrapolate_pps(double hits, double seconds) const noexcept;

 private:
  std::uint64_t monitored_;
  double p_;
};

}  // namespace synscan::stats
