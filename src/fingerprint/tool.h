// The scanning-tool taxonomy tracked throughout the paper.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace synscan::fingerprint {

/// Tools with known on-the-wire fingerprints (§3.3), plus the catch-all
/// for custom or unfingerprintable scanners.
enum class Tool : std::uint8_t {
  kZmap,     ///< IP-ID fixed at 54321
  kMasscan,  ///< IP-ID = destIP ^ destPort ^ SeqNum (folded to 16 bits)
  kMirai,    ///< TCP sequence number equals the destination IP
  kNmap,     ///< stream-cipher seq encoding; pairwise-detectable
  kUnicorn,  ///< host info encoded in seq; pairwise-detectable
  kUnknown,  ///< custom tooling / fingerprint changed
};

inline constexpr std::array<Tool, 6> kAllTools = {
    Tool::kZmap, Tool::kMasscan, Tool::kMirai,
    Tool::kNmap, Tool::kUnicorn, Tool::kUnknown};

/// Number of distinct Tool values (for dense per-tool arrays).
inline constexpr std::size_t kToolCount = kAllTools.size();

/// Stable lowercase display name ("zmap", "masscan", ...).
[[nodiscard]] std::string_view to_string(Tool tool) noexcept;

/// Parses a display name back to a Tool; kUnknown for anything else.
[[nodiscard]] Tool tool_from_string(std::string_view name) noexcept;

/// Dense index of a Tool for per-tool accumulation arrays.
[[nodiscard]] constexpr std::size_t tool_index(Tool tool) noexcept {
  return static_cast<std::size_t>(tool);
}

}  // namespace synscan::fingerprint
