// Pure fingerprint predicates from §3.3 of the paper.
//
// Single-packet fingerprints (ZMap, Masscan, Mirai) test one probe in
// isolation; pairwise fingerprints (NMap, Unicorn) test a relation that
// must hold between two probes of the same source. All predicates are
// exact restatements of the relations given in the paper.
#pragma once

#include <cstdint>

#include "telescope/sensor.h"

namespace synscan::fingerprint {

/// The IP-ID value classic ZMap stamps on every probe.
inline constexpr std::uint16_t kZmapIpId = 54321;

/// ZMap: IPid == 54321.
[[nodiscard]] bool matches_zmap(const telescope::ScanProbe& probe) noexcept;

/// Masscan: IPid == (destIP ^ destPort ^ SeqNum) folded to 16 bits.
[[nodiscard]] bool matches_masscan(const telescope::ScanProbe& probe) noexcept;

/// The 16-bit fold Masscan applies when deriving the IP-ID; exposed so
/// the traffic generator produces bit-exact probes.
[[nodiscard]] std::uint16_t masscan_ip_id(std::uint32_t dest_ip, std::uint16_t dest_port,
                                          std::uint32_t sequence) noexcept;

/// Mirai: the TCP sequence number equals the destination IP address.
[[nodiscard]] bool matches_mirai(const telescope::ScanProbe& probe) noexcept;

/// NMap pairwise relation: the XOR of two sequence numbers from the same
/// NMap instance has identical high and low 16-bit halves, because NMap
/// encrypts a duplicated 16-bit token (nfo||nfo) with a per-session
/// keystream that cancels under XOR.
[[nodiscard]] bool matches_nmap_pair(std::uint32_t seq1, std::uint32_t seq2) noexcept;

/// Unicorn pairwise relation:
///   seq1 ^ seq2 == destIP1 ^ destIP2 ^ srcPort1 ^ srcPort2
///                  ^ ((destPort1 ^ destPort2) << 16)
[[nodiscard]] bool matches_unicorn_pair(const telescope::ScanProbe& a,
                                        const telescope::ScanProbe& b) noexcept;

}  // namespace synscan::fingerprint
