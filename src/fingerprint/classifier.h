// Per-source tool classification by evidence accumulation.
//
// Single-packet fingerprints are counted per probe; pairwise fingerprints
// (NMap, Unicorn) are evaluated between consecutive probes of the same
// source, which keeps the state O(1) per source — essential when tracking
// millions of concurrent sources. A verdict requires a minimum number of
// matches and a minimum matched fraction, so that chance collisions
// (e.g. the 2^-16 probability of a random NMap pair match) cannot
// misattribute a campaign.
#pragma once

#include <cstdint>
#include <optional>

#include "fingerprint/matchers.h"
#include "fingerprint/tool.h"

namespace synscan::fingerprint {

/// Tunable decision thresholds.
struct ClassifierConfig {
  /// Minimum matching probes (single-packet) or pairs (pairwise).
  std::uint32_t min_matches = 2;
  /// Minimum fraction of observed probes/pairs that must match.
  double min_fraction = 0.5;
};

/// The complete accumulator state of a `ToolEvidence`, exposed so
/// evidence can be persisted (the `.spr` rollup store) and merged across
/// shard boundaries. `first` is valid when `probes > 0`; `previous` when
/// `have_previous` — both are needed to splice the pairwise fingerprints
/// exactly when two evidence streams of the same source are concatenated.
struct EvidenceState {
  std::uint64_t probes = 0;
  std::uint64_t zmap_hits = 0;
  std::uint64_t masscan_hits = 0;
  std::uint64_t mirai_hits = 0;
  std::uint64_t nmap_pair_hits = 0;
  std::uint64_t unicorn_pair_hits = 0;
  std::uint64_t pairs = 0;
  bool have_previous = false;
  telescope::ScanProbe first{};
  telescope::ScanProbe previous{};
};

/// Accumulates fingerprint evidence for one traffic source.
class ToolEvidence {
 public:
  ToolEvidence() = default;
  explicit ToolEvidence(ClassifierConfig config) : config_(config) {}

  /// Feeds the next probe of this source, in arrival order.
  void observe(const telescope::ScanProbe& probe) noexcept;

  /// Appends evidence accumulated over a *later* contiguous probe run of
  /// the same source: counters add, and the pairwise fingerprints are
  /// evaluated once across the seam (this evidence's last probe against
  /// `later`'s first), so the result is bit-identical to having observed
  /// the concatenated probe sequence in one pass. Associative over
  /// consecutive runs — the shard-rollup merge relies on both properties.
  void append(const ToolEvidence& later) noexcept;

  /// Snapshot of the full accumulator state (for the rollup store).
  [[nodiscard]] EvidenceState state() const noexcept;

  /// Rebuilds evidence from a stored state; inverse of `state()`.
  [[nodiscard]] static ToolEvidence from_state(ClassifierConfig config,
                                               const EvidenceState& state) noexcept;

  /// Probes observed so far.
  [[nodiscard]] std::uint64_t probes() const noexcept { return probes_; }

  /// The current best verdict. Single-packet fingerprints take priority
  /// over pairwise ones (a Mirai probe stream can coincidentally satisfy
  /// pairwise relations when ports repeat); ties break in the order
  /// ZMap, Masscan, Mirai, NMap, Unicorn.
  [[nodiscard]] Tool verdict() const noexcept;

  /// Matched-probe count for a single-packet tool, or matched-pair count
  /// for a pairwise tool.
  [[nodiscard]] std::uint64_t matches(Tool tool) const noexcept;

 private:
  ClassifierConfig config_;
  std::uint64_t probes_ = 0;
  std::uint64_t zmap_hits_ = 0;
  std::uint64_t masscan_hits_ = 0;
  std::uint64_t mirai_hits_ = 0;
  std::uint64_t nmap_pair_hits_ = 0;
  std::uint64_t unicorn_pair_hits_ = 0;
  std::uint64_t pairs_ = 0;
  bool have_previous_ = false;
  telescope::ScanProbe first_{};  ///< valid when probes_ > 0
  telescope::ScanProbe previous_{};
};

/// Share-of-total accounting per tool, used for the Table 1 "Tools by
/// scans" block and the per-port tool mixes of Fig. 4.
class ToolTally {
 public:
  void add(Tool tool, std::uint64_t weight = 1) noexcept {
    counts_[tool_index(tool)] += weight;
    total_ += weight;
  }

  [[nodiscard]] std::uint64_t count(Tool tool) const noexcept {
    return counts_[tool_index(tool)];
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Fraction of the total attributed to `tool`; 0 when empty.
  [[nodiscard]] double share(Tool tool) const noexcept {
    return total_ == 0 ? 0.0
                       : static_cast<double>(count(tool)) / static_cast<double>(total_);
  }

  /// Combined share of the fingerprintable tools (everything but
  /// kUnknown) — the paper's "known tools" headline numbers.
  [[nodiscard]] double known_share() const noexcept {
    return total_ == 0 ? 0.0 : 1.0 - share(Tool::kUnknown);
  }

  void merge(const ToolTally& other) noexcept {
    for (std::size_t i = 0; i < kToolCount; ++i) counts_[i] += other.counts_[i];
    total_ += other.total_;
  }

 private:
  std::array<std::uint64_t, kToolCount> counts_{};
  std::uint64_t total_ = 0;
};

}  // namespace synscan::fingerprint
