#include "fingerprint/matchers.h"

namespace synscan::fingerprint {

bool matches_zmap(const telescope::ScanProbe& probe) noexcept {
  return probe.ip_id == kZmapIpId;
}

std::uint16_t masscan_ip_id(std::uint32_t dest_ip, std::uint16_t dest_port,
                            std::uint32_t sequence) noexcept {
  const std::uint32_t mixed = dest_ip ^ dest_port ^ sequence;
  // Masscan derives the 16-bit IP-ID from the low half of the mix.
  return static_cast<std::uint16_t>(mixed & 0xffff);
}

bool matches_masscan(const telescope::ScanProbe& probe) noexcept {
  return probe.ip_id ==
         masscan_ip_id(probe.destination.value(), probe.destination_port, probe.sequence);
}

bool matches_mirai(const telescope::ScanProbe& probe) noexcept {
  return probe.sequence == probe.destination.value();
}

bool matches_nmap_pair(std::uint32_t seq1, std::uint32_t seq2) noexcept {
  const std::uint32_t x = seq1 ^ seq2;
  return (x & 0xffff) == (x >> 16);
}

bool matches_unicorn_pair(const telescope::ScanProbe& a,
                          const telescope::ScanProbe& b) noexcept {
  const std::uint32_t lhs = a.sequence ^ b.sequence;
  const std::uint32_t rhs =
      (a.destination.value() ^ b.destination.value()) ^
      static_cast<std::uint32_t>(a.source_port ^ b.source_port) ^
      (static_cast<std::uint32_t>(a.destination_port ^ b.destination_port) << 16);
  return lhs == rhs;
}

}  // namespace synscan::fingerprint
