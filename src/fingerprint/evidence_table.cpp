#include "fingerprint/evidence_table.h"

#include <algorithm>

namespace synscan::fingerprint {
namespace {

/// splitmix64 finalizer — the same mix the core flat tables use; good
/// dispersion for sequential or netblock-clustered addresses.
[[nodiscard]] constexpr std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr std::size_t kInitialSlots = 64;

}  // namespace

EvidenceTable::EvidenceTable(ClassifierConfig config) : config_(config) {
  slots_.assign(kInitialSlots, kEmpty);
}

std::size_t EvidenceTable::slot_of(std::uint32_t source) const noexcept {
  const auto mask = slots_.size() - 1;
  auto slot = static_cast<std::size_t>(mix(source)) & mask;
  while (slots_[slot] != kEmpty && pool_[slots_[slot]].first != source) {
    slot = (slot + 1) & mask;
  }
  return slot;
}

void EvidenceTable::grow() {
  std::vector<std::uint32_t> old;
  old.swap(slots_);
  slots_.assign(old.size() * 2, kEmpty);
  const auto mask = slots_.size() - 1;
  for (const auto index : old) {
    if (index == kEmpty) continue;
    auto slot = static_cast<std::size_t>(mix(pool_[index].first)) & mask;
    while (slots_[slot] != kEmpty) slot = (slot + 1) & mask;
    slots_[slot] = index;
  }
}

std::uint32_t EvidenceTable::index_of(std::uint32_t source) {
  auto slot = slot_of(source);
  if (slots_[slot] != kEmpty) return slots_[slot];
  // 70% load factor: grow before the cluster lengths degrade.
  if ((pool_.size() + 1) * 10 >= slots_.size() * 7) {
    grow();
    slot = slot_of(source);
  }
  const auto index = static_cast<std::uint32_t>(pool_.size());
  pool_.emplace_back(source, ToolEvidence(config_));
  slots_[slot] = index;
  return index;
}

void EvidenceTable::observe(const telescope::ScanProbe& probe) {
  pool_[index_of(probe.source.value())].second.observe(probe);
}

void EvidenceTable::observe_batch(const telescope::ProbeBatch& batch,
                                  std::span<const std::uint32_t> rows) {
  for (const auto row : rows) {
    const auto source = batch.source[row];
    if (memo_index_ == kEmpty || source != memo_source_) {
      memo_index_ = index_of(source);
      memo_source_ = source;
    }
    pool_[memo_index_].second.observe(batch.get(row));
  }
}

void EvidenceTable::observe_batch(const telescope::ProbeBatch& batch) {
  for (std::size_t row = 0; row < batch.size(); ++row) {
    const auto source = batch.source[row];
    if (memo_index_ == kEmpty || source != memo_source_) {
      memo_index_ = index_of(source);
      memo_source_ = source;
    }
    pool_[memo_index_].second.observe(batch.get(row));
  }
}

const ToolEvidence* EvidenceTable::find(std::uint32_t source) const noexcept {
  const auto slot = slot_of(source);
  return slots_[slot] == kEmpty ? nullptr : &pool_[slots_[slot]].second;
}

std::vector<std::pair<std::uint32_t, const ToolEvidence*>> EvidenceTable::sorted_entries()
    const {
  std::vector<std::pair<std::uint32_t, const ToolEvidence*>> entries;
  entries.reserve(pool_.size());
  for (const auto& [source, evidence] : pool_) entries.emplace_back(source, &evidence);
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return entries;
}

}  // namespace synscan::fingerprint
