#include "fingerprint/classifier.h"

namespace synscan::fingerprint {

void ToolEvidence::observe(const telescope::ScanProbe& probe) noexcept {
  if (probes_ == 0) first_ = probe;
  ++probes_;
  if (matches_zmap(probe)) ++zmap_hits_;
  if (matches_masscan(probe)) ++masscan_hits_;
  if (matches_mirai(probe)) ++mirai_hits_;

  if (have_previous_) {
    ++pairs_;
    if (matches_nmap_pair(previous_.sequence, probe.sequence)) ++nmap_pair_hits_;
    if (matches_unicorn_pair(previous_, probe)) ++unicorn_pair_hits_;
  }
  previous_ = probe;
  have_previous_ = true;
}

void ToolEvidence::append(const ToolEvidence& later) noexcept {
  if (later.probes_ == 0) return;
  if (probes_ == 0) first_ = later.first_;
  // The pair spanning the seam: this run's last probe against the later
  // run's first. Everything else was already counted on either side.
  if (have_previous_) {
    ++pairs_;
    if (matches_nmap_pair(previous_.sequence, later.first_.sequence)) ++nmap_pair_hits_;
    if (matches_unicorn_pair(previous_, later.first_)) ++unicorn_pair_hits_;
  }
  probes_ += later.probes_;
  zmap_hits_ += later.zmap_hits_;
  masscan_hits_ += later.masscan_hits_;
  mirai_hits_ += later.mirai_hits_;
  nmap_pair_hits_ += later.nmap_pair_hits_;
  unicorn_pair_hits_ += later.unicorn_pair_hits_;
  pairs_ += later.pairs_;
  previous_ = later.previous_;
  have_previous_ = later.have_previous_;
}

EvidenceState ToolEvidence::state() const noexcept {
  EvidenceState state;
  state.probes = probes_;
  state.zmap_hits = zmap_hits_;
  state.masscan_hits = masscan_hits_;
  state.mirai_hits = mirai_hits_;
  state.nmap_pair_hits = nmap_pair_hits_;
  state.unicorn_pair_hits = unicorn_pair_hits_;
  state.pairs = pairs_;
  state.have_previous = have_previous_;
  state.first = first_;
  state.previous = previous_;
  return state;
}

ToolEvidence ToolEvidence::from_state(ClassifierConfig config,
                                      const EvidenceState& state) noexcept {
  ToolEvidence evidence(config);
  evidence.probes_ = state.probes;
  evidence.zmap_hits_ = state.zmap_hits;
  evidence.masscan_hits_ = state.masscan_hits;
  evidence.mirai_hits_ = state.mirai_hits;
  evidence.nmap_pair_hits_ = state.nmap_pair_hits;
  evidence.unicorn_pair_hits_ = state.unicorn_pair_hits;
  evidence.pairs_ = state.pairs;
  evidence.have_previous_ = state.have_previous;
  evidence.first_ = state.first;
  evidence.previous_ = state.previous;
  return evidence;
}

std::uint64_t ToolEvidence::matches(Tool tool) const noexcept {
  switch (tool) {
    case Tool::kZmap:
      return zmap_hits_;
    case Tool::kMasscan:
      return masscan_hits_;
    case Tool::kMirai:
      return mirai_hits_;
    case Tool::kNmap:
      return nmap_pair_hits_;
    case Tool::kUnicorn:
      return unicorn_pair_hits_;
    case Tool::kUnknown:
      return 0;
  }
  return 0;
}

Tool ToolEvidence::verdict() const noexcept {
  const auto qualifies_single = [&](std::uint64_t hits) {
    return probes_ > 0 && hits >= config_.min_matches &&
           static_cast<double>(hits) >=
               config_.min_fraction * static_cast<double>(probes_);
  };
  const auto qualifies_pair = [&](std::uint64_t hits) {
    return pairs_ > 0 && hits >= config_.min_matches &&
           static_cast<double>(hits) >= config_.min_fraction * static_cast<double>(pairs_);
  };

  // Single-packet fingerprints first: they are per-probe exact marks and
  // immune to the coincidences pairwise relations can produce.
  if (qualifies_single(zmap_hits_)) return Tool::kZmap;
  if (qualifies_single(masscan_hits_)) return Tool::kMasscan;
  if (qualifies_single(mirai_hits_)) return Tool::kMirai;
  if (qualifies_pair(nmap_pair_hits_)) return Tool::kNmap;
  if (qualifies_pair(unicorn_pair_hits_)) return Tool::kUnicorn;
  return Tool::kUnknown;
}

}  // namespace synscan::fingerprint
