#include "fingerprint/classifier.h"

namespace synscan::fingerprint {

void ToolEvidence::observe(const telescope::ScanProbe& probe) noexcept {
  ++probes_;
  if (matches_zmap(probe)) ++zmap_hits_;
  if (matches_masscan(probe)) ++masscan_hits_;
  if (matches_mirai(probe)) ++mirai_hits_;

  if (have_previous_) {
    ++pairs_;
    if (matches_nmap_pair(previous_.sequence, probe.sequence)) ++nmap_pair_hits_;
    if (matches_unicorn_pair(previous_, probe)) ++unicorn_pair_hits_;
  }
  previous_ = probe;
  have_previous_ = true;
}

std::uint64_t ToolEvidence::matches(Tool tool) const noexcept {
  switch (tool) {
    case Tool::kZmap:
      return zmap_hits_;
    case Tool::kMasscan:
      return masscan_hits_;
    case Tool::kMirai:
      return mirai_hits_;
    case Tool::kNmap:
      return nmap_pair_hits_;
    case Tool::kUnicorn:
      return unicorn_pair_hits_;
    case Tool::kUnknown:
      return 0;
  }
  return 0;
}

Tool ToolEvidence::verdict() const noexcept {
  const auto qualifies_single = [&](std::uint64_t hits) {
    return probes_ > 0 && hits >= config_.min_matches &&
           static_cast<double>(hits) >=
               config_.min_fraction * static_cast<double>(probes_);
  };
  const auto qualifies_pair = [&](std::uint64_t hits) {
    return pairs_ > 0 && hits >= config_.min_matches &&
           static_cast<double>(hits) >= config_.min_fraction * static_cast<double>(pairs_);
  };

  // Single-packet fingerprints first: they are per-probe exact marks and
  // immune to the coincidences pairwise relations can produce.
  if (qualifies_single(zmap_hits_)) return Tool::kZmap;
  if (qualifies_single(masscan_hits_)) return Tool::kMasscan;
  if (qualifies_single(mirai_hits_)) return Tool::kMirai;
  if (qualifies_pair(nmap_pair_hits_)) return Tool::kNmap;
  if (qualifies_pair(unicorn_pair_hits_)) return Tool::kUnicorn;
  return Tool::kUnknown;
}

}  // namespace synscan::fingerprint
