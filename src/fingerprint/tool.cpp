#include "fingerprint/tool.h"

namespace synscan::fingerprint {

std::string_view to_string(Tool tool) noexcept {
  switch (tool) {
    case Tool::kZmap:
      return "zmap";
    case Tool::kMasscan:
      return "masscan";
    case Tool::kMirai:
      return "mirai";
    case Tool::kNmap:
      return "nmap";
    case Tool::kUnicorn:
      return "unicorn";
    case Tool::kUnknown:
      return "unknown";
  }
  return "unknown";
}

Tool tool_from_string(std::string_view name) noexcept {
  for (const auto tool : kAllTools) {
    if (to_string(tool) == name) return tool;
  }
  return Tool::kUnknown;
}

}  // namespace synscan::fingerprint
