// Flat per-source evidence accumulation over probe batches.
//
// The fingerprint CLI used to key `ToolEvidence` by source in a
// `std::map` — one allocation and a tree rebalance per new source, plus
// an O(log n) descent per probe. This table keeps the evidence records
// in a dense insertion-ordered pool indexed by an open-addressing hash
// table (the `FlowIndexTable` recipe), and its batch path exploits the
// bursty arrival of scan traffic: consecutive rows from the same source
// reuse the previously resolved record, so the hash probe — and with it
// the only per-source work besides the matchers themselves — runs once
// per source *run* per batch, not once per probe. Matcher semantics are
// untouched; `observe` is the per-probe reference path the batch path is
// differential-tested against.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "fingerprint/classifier.h"
#include "telescope/probe_batch.h"

namespace synscan::fingerprint {

/// Maps source address -> ToolEvidence, flat and insertion-ordered.
/// Sources are never removed; the table only grows.
class EvidenceTable {
 public:
  explicit EvidenceTable(ClassifierConfig config = {});

  /// Feeds one probe (reference path; no memoization).
  void observe(const telescope::ScanProbe& probe);

  /// Feeds the batch rows listed in `rows`, in order, reading the
  /// columns directly. Bit-identical to calling `observe` per row.
  void observe_batch(const telescope::ProbeBatch& batch,
                     std::span<const std::uint32_t> rows);

  /// Feeds every row of the batch.
  void observe_batch(const telescope::ProbeBatch& batch);

  /// Distinct sources seen.
  [[nodiscard]] std::size_t sources() const noexcept { return pool_.size(); }

  /// Evidence for one source; nullptr when the source was never seen.
  [[nodiscard]] const ToolEvidence* find(std::uint32_t source) const noexcept;

  /// All (source, evidence) entries in ascending source order — the
  /// deterministic report order (matches the old std::map iteration).
  [[nodiscard]] std::vector<std::pair<std::uint32_t, const ToolEvidence*>>
  sorted_entries() const;

 private:
  static constexpr std::uint32_t kEmpty = 0xffffffffu;

  /// Index of `source`'s pool entry, inserting an empty record if new.
  [[nodiscard]] std::uint32_t index_of(std::uint32_t source);
  [[nodiscard]] std::size_t slot_of(std::uint32_t source) const noexcept;
  void grow();

  ClassifierConfig config_;
  /// Open-addressing slots holding pool indices (kEmpty = free); the
  /// key lives in the pool entry. Power-of-two sized, grown at 70% load.
  std::vector<std::uint32_t> slots_;
  std::vector<std::pair<std::uint32_t, ToolEvidence>> pool_;
  /// One-entry memo for the batch path: the last resolved source run.
  std::uint32_t memo_source_ = 0;
  std::uint32_t memo_index_ = kEmpty;
};

}  // namespace synscan::fingerprint
