#include "cli/commands.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <span>
#include <stdexcept>
#include <string_view>
#include <thread>

#include "core/analysis_campaigns.h"
#include "core/analysis_session.h"
#include "core/analysis_summary.h"
#include "core/analysis_types.h"
#include "core/ingest.h"
#include "core/rollup_store.h"
#include "core/shard.h"
#include "fingerprint/evidence_table.h"
#include "obs/run_report.h"
#include "pcap/pcap.h"
#include "report/json.h"
#include "report/table.h"
#include "server/client.h"
#include "server/daemon.h"
#include "server/protocol.h"
#include "simgen/ecosystem.h"
#include "simgen/generator.h"

namespace synscan::cli {
namespace {

/// Minimal flag parser: "--key=value" flags plus positional arguments.
class Args {
 public:
  explicit Args(const std::vector<std::string>& raw) {
    for (const auto& arg : raw) {
      if (arg.rfind("--", 0) == 0) {
        const auto eq = arg.find('=');
        if (eq == std::string::npos) {
          flags_[arg.substr(2)] = "true";
        } else {
          flags_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
        }
      } else {
        positional_.push_back(arg);
      }
    }
  }

  [[nodiscard]] std::optional<std::string> flag(const std::string& key) const {
    const auto it = flags_.find(key);
    return it == flags_.end() ? std::nullopt : std::optional<std::string>(it->second);
  }
  [[nodiscard]] double number(const std::string& key, double fallback) const {
    const auto value = flag(key);
    return value ? std::stod(*value) : fallback;
  }
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

const telescope::Telescope& shared_telescope() {
  static const auto telescope = telescope::Telescope::paper_default();
  return telescope;
}

/// Replay workers when `--workers` is not given: keep one core for the
/// feeder, stay within a sane span. Always >= 2 so the `parallel.*`
/// metrics namespace is populated on any multi-core host.
std::size_t default_workers() {
  const auto hw = static_cast<std::size_t>(std::thread::hardware_concurrency());
  return std::clamp<std::size_t>(hw == 0 ? 2 : hw - 1, 2, 8);
}

/// The ingest switches every command shares: `--no-probe-cache` skips
/// the `.spc` cache in both directions, `--no-mmap` forces the stream
/// fallback.
core::IngestOptions ingest_options(const Args& args) {
  core::IngestOptions options;
  options.use_cache = !args.flag("no-probe-cache");
  options.use_mmap = !args.flag("no-mmap");
  options.scan_chunks =
      static_cast<std::size_t>(args.number("scan-chunks", 0));  // 0 = auto
  return options;
}

/// The shared analysis entry point (core/analysis_session.h) bound to
/// the CLI's fixed telescope and registry. The daemon's LOAD runs the
/// exact same function, which is what makes `QUERY analyze` responses
/// byte-identical to the offline `--json` file.
core::AnalyzedCapture analyze_capture(const std::string& path, std::size_t workers,
                                      const core::IngestOptions& options) {
  return core::analyze_capture(path, shared_telescope(),
                               enrich::InternetRegistry::synthetic_default(), workers,
                               options);
}

void warn_on_truncation(const core::AnalyzedCapture& analysis) {
  if (analysis.final_status == pcap::ReadStatus::kTruncated) {
    std::cerr << "warning: capture ends mid-record (truncated write?); analyzed the "
                 "readable prefix\n";
  } else if (analysis.final_status == pcap::ReadStatus::kBadRecord) {
    std::cerr << "warning: capture framing is corrupt; analyzed the readable prefix\n";
  }
}

}  // namespace

int run_simulate(const std::vector<std::string>& args) {
  const Args parsed(args);
  const int year = static_cast<int>(parsed.number("year", 2022));
  const double scale = parsed.number("scale", 32.0);
  const auto out = parsed.flag("out");
  if (!out) throw std::invalid_argument("simulate requires --out=<file>");

  auto config = simgen::year_config(year, scale);
  if (const auto seed = parsed.flag("seed")) config.seed = std::stoull(*seed);
  if (const auto days = parsed.flag("days")) {
    config.window_days = std::min(config.window_days, std::stod(*days));
  }

  const auto& telescope = shared_telescope();
  auto writer = pcap::Writer::create(*out);
  simgen::TrafficGenerator generator(config, telescope,
                                     enrich::InternetRegistry::synthetic_default());
  const auto stats = generator.run([&](const net::RawFrame& f) { writer.write(f); });
  writer.flush();

  std::cout << "wrote " << stats.total_frames << " frames (" << stats.scan_frames
            << " scan, " << stats.backscatter_frames << " backscatter) to " << *out
            << "\n"
            << "window: " << year << ", " << config.window_days << " days at 1/"
            << simgen::kPacketScale * scale << " packet volume, "
            << stats.planned_campaigns << " planned campaigns\n";
  return 0;
}

int run_analyze(const std::vector<std::string>& args) {
  const Args parsed(args);
  if (parsed.positional().empty()) {
    throw std::invalid_argument("analyze requires a capture path");
  }
  const auto top_n = static_cast<std::size_t>(parsed.number("top", 10));
  // `--metrics` prints a run report; `--metrics=<file>` writes it as
  // JSON (schema in docs/OBSERVABILITY.md). Must be enabled before the
  // pipeline is built: instrumentation resolves its cells at construction.
  const auto metrics = parsed.flag("metrics");
  if (metrics) obs::set_enabled(true);
  const auto workers = static_cast<std::size_t>(parsed.number(
      "workers", static_cast<double>(default_workers())));
  auto analysis =
      analyze_capture(parsed.positional().front(), workers, ingest_options(parsed));
  warn_on_truncation(analysis);
  const auto& campaigns = analysis.result.campaigns;

  std::cout << "frames: " << analysis.frames << ", scan probes "
            << analysis.result.sensor.scan_probes << ", campaigns " << campaigns.size()
            << ", sub-threshold sources "
            << analysis.result.tracker.subthreshold_flows << "\n\n";

  const auto shares = core::tool_shares(campaigns);
  report::Table tools({"tool", "scans", "scan share", "packet share"});
  for (const auto tool : fingerprint::kAllTools) {
    tools.add_row({std::string(fingerprint::to_string(tool)),
                   std::to_string(shares.by_scans.count(tool)),
                   report::percent(shares.by_scans.share(tool)),
                   report::percent(shares.by_packets.share(tool))});
  }
  std::cout << "-- tools --\n" << tools << "\n";

  report::Table ports({"port", "packets", "share", "sources"});
  for (const auto& row : analysis.ports.top_ports_by_packets(top_n)) {
    ports.add_row({std::to_string(row.port), std::to_string(row.count),
                   report::percent(row.share),
                   std::to_string(analysis.ports.sources_on_port(row.port))});
  }
  std::cout << "-- top ports by packets --\n" << ports << "\n";

  const auto type_table = core::type_share_table(
      analysis.types, campaigns, enrich::InternetRegistry::synthetic_default());
  report::Table types({"scanner type", "sources", "scans", "packets"});
  for (const auto& row : type_table) {
    types.add_row({std::string(enrich::to_string(row.type)),
                   report::percent(row.source_share, 2),
                   report::percent(row.scan_share, 2),
                   report::percent(row.packet_share, 2)});
  }
  std::cout << "-- scanner types --\n" << types << "\n";

  report::Table countries({"country", "packets", "share"});
  for (const auto& row : analysis.geo.top_countries(top_n)) {
    countries.add_row({row.country.to_string(), std::to_string(row.packets),
                       report::percent(row.share)});
  }
  std::cout << "-- origin countries --\n" << countries;

  if (const auto json_path = parsed.flag("json")) {
    // Serialize to a string first — the same append_* emission the
    // daemon sends over its socket — then write the bytes in one go.
    std::string payload;
    report::append_counters_json(payload, analysis.result);
    payload.push_back('\n');
    report::append_campaigns_jsonl(payload, campaigns);
    std::ofstream json_out(*json_path, std::ios::trunc | std::ios::binary);
    if (!json_out.is_open()) {
      throw std::runtime_error("cannot write " + *json_path);
    }
    json_out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    std::cout << "\nwrote counters + " << campaigns.size() << " campaigns to "
              << *json_path << " (JSON lines)\n";
  }

  if (metrics) {
    const auto report = obs::RunReport::capture(
        "analyze " + parsed.positional().front(), &analysis.result);
    if (*metrics == "true" || metrics->empty()) {  // no file: print the table
      std::cout << "\n-- run report --\n" << report.to_table();
    } else {
      std::ofstream metrics_out(*metrics, std::ios::trunc);
      if (!metrics_out.is_open()) {
        throw std::runtime_error("cannot write " + *metrics);
      }
      report.write_json(metrics_out);
      metrics_out << '\n';
      std::cout << "\nwrote run report to " << *metrics << "\n";
    }
  }
  return 0;
}

int run_serve(const std::vector<std::string>& args) {
  const Args parsed(args);
  // `--metrics` must precede daemon construction: the server resolves
  // its metric cells once, in the constructor.
  const bool metrics = parsed.flag("metrics").has_value();
  if (metrics) obs::set_enabled(true);

  server::DaemonConfig config;
  if (const auto socket = parsed.flag("socket")) config.unix_socket = *socket;
  if (const auto port = parsed.flag("port")) {
    config.tcp = true;
    config.tcp_port = static_cast<std::uint16_t>(std::stoul(*port));
  }
  if (config.unix_socket.empty() && !config.tcp) {
    throw std::invalid_argument("serve requires --socket=<path> and/or --port=<n>");
  }
  // `--workers` matches analyze's flag on purpose: query bytes are only
  // comparable across the two when the analysis worker count matches.
  config.analysis_workers = static_cast<std::size_t>(
      parsed.number("workers", static_cast<double>(default_workers())));
  config.workers = static_cast<std::size_t>(parsed.number("io-workers", 2));
  config.idle_timeout_ms =
      static_cast<std::uint64_t>(parsed.number("idle-timeout-ms", 0));
  config.force_poll = parsed.flag("poll").has_value();
  config.install_signal_handlers = true;
  config.ingest = ingest_options(parsed);

  server::Daemon daemon(shared_telescope(),
                        enrich::InternetRegistry::synthetic_default(),
                        std::move(config));
  if (const auto capture = parsed.flag("capture")) {
    std::cout << "synscand: loading " << *capture << "\n" << std::flush;
    daemon.preload(*capture);
  }
  std::cout << "synscand: listening";
  if (!daemon.unix_socket_path().empty()) {
    std::cout << " on " << daemon.unix_socket_path();
  }
  if (daemon.tcp_port() != 0) std::cout << " on 127.0.0.1:" << daemon.tcp_port();
  std::cout << "\n" << std::flush;  // scripts wait for this line

  daemon.serve();
  std::cout << "synscand: drained, exiting\n";
  if (metrics) {
    std::cout << "\n-- run report --\n"
              << obs::RunReport::capture("serve").to_table();
  }
  return 0;
}

int run_query(const std::vector<std::string>& args) {
  const Args parsed(args);
  const auto socket = parsed.flag("socket");
  const auto port = parsed.flag("port");
  if (!socket && !port) {
    throw std::invalid_argument("query requires --socket=<path> or --port=<n>");
  }
  std::string command;
  for (const auto& word : parsed.positional()) {
    if (!command.empty()) command.push_back(' ');
    command.append(word);
  }
  if (command.empty()) {
    throw std::invalid_argument(
        "query requires a daemon command, e.g. STATUS or 'QUERY campaigns'");
  }
  auto client = socket ? server::Client::connect_unix(*socket)
                       : server::Client::connect_tcp(
                             parsed.flag("host").value_or("127.0.0.1"),
                             static_cast<std::uint16_t>(std::stoul(*port)));
  const auto response = client.roundtrip(command);
  std::string_view body;
  std::string error;
  if (!server::parse_response(response, body, error)) {
    std::cerr << "synscand error: " << error << "\n";
    return 1;
  }
  std::cout << body;
  return 0;
}

int run_fingerprint(const std::vector<std::string>& args) {
  const Args parsed(args);
  if (parsed.positional().empty()) {
    throw std::invalid_argument("fingerprint requires a capture path");
  }
  const auto& telescope = shared_telescope();
  // Flat evidence table (fingerprint/evidence_table.h): the batch path
  // resolves each source's record once per same-source run.
  fingerprint::EvidenceTable evidence;

  (void)core::ingest_capture(
      parsed.positional().front(), telescope, ingest_options(parsed),
      [&](const telescope::ProbeBatch& batch) { evidence.observe_batch(batch); });

  report::Table table({"source", "probes", "verdict", "zmap", "masscan", "mirai",
                       "nmap-pairs", "unicorn-pairs"});
  std::size_t shown = 0;
  for (const auto& [source, tool_evidence] : evidence.sorted_entries()) {
    if (tool_evidence->probes() < 3) continue;  // skip one-off chatter
    table.add_row({net::Ipv4Address(source).to_string(),
                   std::to_string(tool_evidence->probes()),
                   std::string(fingerprint::to_string(tool_evidence->verdict())),
                   std::to_string(tool_evidence->matches(fingerprint::Tool::kZmap)),
                   std::to_string(tool_evidence->matches(fingerprint::Tool::kMasscan)),
                   std::to_string(tool_evidence->matches(fingerprint::Tool::kMirai)),
                   std::to_string(tool_evidence->matches(fingerprint::Tool::kNmap)),
                   std::to_string(tool_evidence->matches(fingerprint::Tool::kUnicorn))});
    if (++shown == 40) break;
  }
  std::cout << table;
  std::cout << "(" << evidence.sources() << " sources total; showing up to 40 with >=3 "
            << "probes)\n";
  return 0;
}

int run_info(const std::vector<std::string>& args) {
  const Args parsed(args);
  if (parsed.positional().empty()) {
    throw std::invalid_argument("info requires a capture path");
  }
  const auto& path = parsed.positional().front();
  auto reader = pcap::Reader::open(path);
  const auto& info = reader.info();
  std::cout << "capture:      " << path << "\n"
            << "byte order:   " << (info.big_endian ? "big" : "little") << "-endian\n"
            << "timestamps:   " << (info.nanosecond ? "nanosecond" : "microsecond")
            << "\n"
            << "version:      " << info.version_major << "." << info.version_minor
            << "\n"
            << "snap length:  " << info.snap_length << "\n"
            << "link type:    "
            << (info.link_type == pcap::LinkType::kEthernet ? "ethernet" : "other")
            << "\n";

  const auto& telescope = shared_telescope();
  telescope::Sensor sensor(telescope);
  net::RawFrame frame;
  telescope::ScanProbe probe;
  net::TimeUs first = 0;
  net::TimeUs last = 0;
  bool any = false;
  pcap::ReadStatus status;
  while ((status = reader.next(frame)) == pcap::ReadStatus::kOk) {
    (void)sensor.classify(frame, probe);
    if (!any) first = frame.timestamp_us;
    last = frame.timestamp_us;
    any = true;
  }

  const auto& counters = sensor.counters();
  std::cout << "frames:       " << reader.frames_read() << " ("
            << (status == pcap::ReadStatus::kEndOfFile ? "clean end" : "truncated/corrupt")
            << ")\n";
  if (any) {
    std::cout << "time span:    "
              << report::fixed(static_cast<double>(last - first) /
                                   static_cast<double>(net::kMicrosPerDay),
                               3)
              << " days\n";
  }
  report::Table table({"class", "frames"});
  table.add_row({"scan probes", std::to_string(counters.scan_probes)});
  table.add_row({"backscatter", std::to_string(counters.backscatter)});
  table.add_row({"xmas/null", std::to_string(counters.xmas_or_null)});
  table.add_row({"other tcp", std::to_string(counters.other_tcp)});
  table.add_row({"udp", std::to_string(counters.udp)});
  table.add_row({"icmp", std::to_string(counters.icmp)});
  table.add_row({"not monitored", std::to_string(counters.not_monitored)});
  table.add_row({"ingress blocked", std::to_string(counters.ingress_blocked)});
  table.add_row({"malformed", std::to_string(counters.malformed)});
  table.add_row({"spoofed source", std::to_string(counters.spoofed_source)});
  std::cout << table;
  return 0;
}

namespace {

const char* status_name(pcap::ReadStatus status) {
  switch (status) {
    case pcap::ReadStatus::kOk: return "ok";
    case pcap::ReadStatus::kEndOfFile: return "end-of-file";
    case pcap::ReadStatus::kTruncated: return "truncated";
    case pcap::ReadStatus::kBadRecord: return "bad-record";
  }
  return "unknown";
}

const char* codec_name(core::CacheCodec codec) {
  switch (codec) {
    case core::CacheCodec::kRaw: return "raw";
    case core::CacheCodec::kDeltaVarint: return "delta-varint";
  }
  return "unknown";
}

std::string hex64(std::uint64_t value) {
  char buffer[19];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

/// The capture a `.spc` path belongs to, when derivable: caches are
/// named `<capture>.spc`, so stripping the suffix finds the sibling.
std::optional<std::filesystem::path> sibling_capture(const std::string& cache_path) {
  const std::string_view suffix = ".spc";
  if (cache_path.size() <= suffix.size() ||
      cache_path.compare(cache_path.size() - suffix.size(), suffix.size(), suffix) !=
          0) {
    return std::nullopt;
  }
  std::filesystem::path capture(
      cache_path.substr(0, cache_path.size() - suffix.size()));
  std::error_code ec;
  if (!std::filesystem::is_regular_file(capture, ec) || ec) return std::nullopt;
  return capture;
}

int run_cache_stat(const std::string& path) {
  const auto info = core::cache_stat(path);
  if (!info) {
    std::cerr << "synscan cache: not a probe cache: " << path << "\n";
    return 1;
  }
  std::cout << "cache:          " << path << "\n"
            << "version:        " << info->version << "\n"
            << "codec:          " << codec_name(info->codec) << "\n"
            << "file size:      " << info->file_size << " bytes\n"
            << "source size:    " << info->source_size << " bytes\n"
            << "source mtime:   " << hex64(info->source_mtime_ns) << "\n"
            << "frames:         " << info->frame_count << "\n"
            << "probes:         " << info->probe_count << "\n"
            << "terminal:       " << status_name(info->terminal_status) << "\n"
            << "checksum:       " << hex64(info->checksum) << "\n";
  report::Table table({"class", "frames"});
  const auto& counters = info->sensor;
  table.add_row({"scan probes", std::to_string(counters.scan_probes)});
  table.add_row({"backscatter", std::to_string(counters.backscatter)});
  table.add_row({"xmas/null", std::to_string(counters.xmas_or_null)});
  table.add_row({"other tcp", std::to_string(counters.other_tcp)});
  table.add_row({"udp", std::to_string(counters.udp)});
  table.add_row({"icmp", std::to_string(counters.icmp)});
  table.add_row({"not monitored", std::to_string(counters.not_monitored)});
  table.add_row({"ingress blocked", std::to_string(counters.ingress_blocked)});
  table.add_row({"malformed", std::to_string(counters.malformed)});
  table.add_row({"spoofed source", std::to_string(counters.spoofed_source)});
  std::cout << table;
  return 0;
}

int run_cache_verify(const Args& parsed, const std::string& path) {
  std::optional<core::CacheIdentity> expected;
  if (const auto capture = parsed.flag("capture")) {
    expected = core::cache_identity(*capture);
    if (!expected) {
      throw std::invalid_argument("cache verify: cannot stat capture " + *capture);
    }
  } else if (const auto sibling = sibling_capture(path)) {
    expected = core::cache_identity(*sibling);
  }
  const auto report = core::cache_verify(path, expected);
  if (!report.ok) {
    std::cout << "invalid: " << report.error << "\n";
    return 1;
  }
  std::cout << "valid: " << report.rows << " probes in " << report.chunks
            << " chunk(s)"
            << (expected ? ", matches source capture" : ", source identity unchecked")
            << "\n";
  return 0;
}

int run_cache_build(const Args& parsed, const std::string& capture) {
  auto options = ingest_options(parsed);
  options.use_cache = true;
  if (const auto out = parsed.flag("out")) options.cache_path = *out;
  if (const auto codec = parsed.flag("codec")) {
    if (*codec == "raw") {
      options.cache_codec = core::CacheCodec::kRaw;
    } else if (*codec == "delta" || *codec == "delta-varint") {
      options.cache_codec = core::CacheCodec::kDeltaVarint;
    } else {
      throw std::invalid_argument("cache build: unknown codec '" + *codec +
                                  "' (raw | delta)");
    }
  }
  const auto cache_path = options.cache_path.empty()
                              ? std::filesystem::path(capture + ".spc")
                              : options.cache_path;
  if (parsed.flag("force")) {
    std::error_code ec;
    std::filesystem::remove(cache_path, ec);
  }
  const auto result = core::ingest_capture(capture, shared_telescope(), options,
                                           [](const telescope::ProbeBatch&) {});
  std::cout << (result.from_cache ? "already valid: " : "built: ")
            << cache_path.string() << " (" << result.sensor.scan_probes
            << " probes from " << result.frames << " frames, "
            << status_name(result.status) << ")\n";
  return 0;
}

/// Shared by `rollup build|query` and the daemon's ROLLUP verb: plan the
/// capture set in capture-time order and execute it over the `.spr`
/// store.
core::ShardRunResult run_rollup_shards(const Args& parsed,
                                       std::span<const std::string> captures) {
  std::vector<std::filesystem::path> paths(captures.begin(), captures.end());
  const auto plan = core::plan_shards(paths);
  core::ShardRunOptions options;
  options.workers = static_cast<std::size_t>(parsed.number("workers", 0));
  options.use_rollup_store = !parsed.flag("no-rollup-store");
  options.ingest = ingest_options(parsed);
  return core::run_shards(plan, shared_telescope(),
                          enrich::InternetRegistry::synthetic_default(),
                          core::TrackerConfig{}, options);
}

int run_rollup_stat(const std::string& path) {
  const auto info = core::rollup_stat(path);
  if (!info) {
    std::cerr << "synscan rollup: not a rollup file: " << path << "\n";
    return 1;
  }
  std::cout << "rollup:         " << path << "\n"
            << "version:        " << info->version << "\n"
            << "file size:      " << info->file_size << " bytes\n"
            << "payload size:   " << info->payload_size << " bytes\n"
            << "source size:    " << info->source_size << " bytes\n"
            << "source mtime:   " << hex64(info->source_mtime_ns) << "\n"
            << "fingerprint:    " << hex64(info->analysis_fingerprint) << "\n"
            << "campaigns:      " << info->campaigns << "\n"
            << "segments:       " << info->segments << "\n"
            << "checksum:       " << hex64(info->checksum) << "\n";
  return 0;
}

int run_rollup_build(const Args& parsed, std::span<const std::string> captures) {
  const auto result = run_rollup_shards(parsed, captures);
  const auto& stats = result.stats;
  std::cout << "shards:         " << stats.shards << "\n"
            << "store hits:     " << stats.store_hits << "\n"
            << "re-analyzed:    " << stats.store_misses << "\n"
            << "rollups saved:  " << stats.store_writes << "\n"
            << "campaigns:      " << result.analysis.result.campaigns.size() << "\n"
            << "scan probes:    " << result.analysis.result.sensor.scan_probes << "\n";
  warn_on_truncation(result.analysis);
  return 0;
}

int run_rollup_query(const Args& parsed, std::span<const std::string> captures) {
  const auto result = run_rollup_shards(parsed, captures);
  warn_on_truncation(result.analysis);
  // The exact byte stream `analyze --json` writes for the concatenated
  // captures: counters line, then one campaign per line.
  std::string payload;
  report::append_counters_json(payload, result.analysis.result);
  payload.push_back('\n');
  report::append_campaigns_jsonl(payload, result.analysis.result.campaigns);
  if (const auto json_path = parsed.flag("json")) {
    std::ofstream json_out(*json_path, std::ios::trunc | std::ios::binary);
    if (!json_out.is_open()) {
      throw std::runtime_error("cannot write " + *json_path);
    }
    json_out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    std::cout << "wrote counters + " << result.analysis.result.campaigns.size()
              << " campaigns to " << *json_path << " (JSON lines)\n";
  } else {
    std::cout << payload;
  }
  return 0;
}

}  // namespace

int run_rollup(const std::vector<std::string>& args) {
  const Args parsed(args);
  const auto& positional = parsed.positional();
  if (positional.empty()) {
    throw std::invalid_argument("rollup requires a subcommand: build | stat | query");
  }
  const auto& action = positional.front();
  if (positional.size() < 2) {
    throw std::invalid_argument("rollup " + action + " requires a path argument");
  }
  const std::span<const std::string> rest(positional.data() + 1,
                                          positional.size() - 1);
  if (action == "stat") return run_rollup_stat(positional[1]);
  if (action == "build") return run_rollup_build(parsed, rest);
  if (action == "query") return run_rollup_query(parsed, rest);
  throw std::invalid_argument("unknown rollup subcommand '" + action +
                              "' (build | stat | query)");
}

int run_cache(const std::vector<std::string>& args) {
  const Args parsed(args);
  const auto& positional = parsed.positional();
  if (positional.empty()) {
    throw std::invalid_argument("cache requires a subcommand: stat | verify | build");
  }
  const auto& action = positional.front();
  if (positional.size() < 2) {
    throw std::invalid_argument("cache " + action + " requires a path argument");
  }
  const auto& path = positional[1];
  if (action == "stat") return run_cache_stat(path);
  if (action == "verify") return run_cache_verify(parsed, path);
  if (action == "build") return run_cache_build(parsed, path);
  throw std::invalid_argument("unknown cache subcommand '" + action +
                              "' (stat | verify | build)");
}

}  // namespace synscan::cli
