#include "cli/commands.h"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <span>
#include <stdexcept>
#include <thread>

#include "core/analysis_campaigns.h"
#include "core/analysis_geo.h"
#include "core/analysis_summary.h"
#include "core/analysis_types.h"
#include "core/ingest.h"
#include "core/parallel.h"
#include "core/pipeline.h"
#include "core/port_tally.h"
#include "fingerprint/evidence_table.h"
#include "obs/run_report.h"
#include "obs/timer.h"
#include "pcap/pcap.h"
#include "report/json.h"
#include "report/table.h"
#include "simgen/ecosystem.h"
#include "simgen/generator.h"

namespace synscan::cli {
namespace {

/// Minimal flag parser: "--key=value" flags plus positional arguments.
class Args {
 public:
  explicit Args(const std::vector<std::string>& raw) {
    for (const auto& arg : raw) {
      if (arg.rfind("--", 0) == 0) {
        const auto eq = arg.find('=');
        if (eq == std::string::npos) {
          flags_[arg.substr(2)] = "true";
        } else {
          flags_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
        }
      } else {
        positional_.push_back(arg);
      }
    }
  }

  [[nodiscard]] std::optional<std::string> flag(const std::string& key) const {
    const auto it = flags_.find(key);
    return it == flags_.end() ? std::nullopt : std::optional<std::string>(it->second);
  }
  [[nodiscard]] double number(const std::string& key, double fallback) const {
    const auto value = flag(key);
    return value ? std::stod(*value) : fallback;
  }
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

/// Replays a capture through the pipeline with all CLI observers.
struct Analysis {
  core::PipelineResult result;
  core::PortTally ports;
  core::TypeTally types{enrich::InternetRegistry::synthetic_default()};
  core::GeoTally geo{enrich::InternetRegistry::synthetic_default()};
  std::uint64_t frames = 0;
  pcap::ReadStatus final_status = pcap::ReadStatus::kEndOfFile;
};

const telescope::Telescope& shared_telescope() {
  static const auto telescope = telescope::Telescope::paper_default();
  return telescope;
}

/// Replay workers when `--workers` is not given: keep one core for the
/// feeder, stay within a sane span. Always >= 2 so the `parallel.*`
/// metrics namespace is populated on any multi-core host.
std::size_t default_workers() {
  const auto hw = static_cast<std::size_t>(std::thread::hardware_concurrency());
  return std::clamp<std::size_t>(hw == 0 ? 2 : hw - 1, 2, 8);
}

/// The ingest switches every command shares: `--no-probe-cache` skips
/// the `.spc` cache in both directions, `--no-mmap` forces the stream
/// fallback.
core::IngestOptions ingest_options(const Args& args) {
  core::IngestOptions options;
  options.use_cache = !args.flag("no-probe-cache");
  options.use_mmap = !args.flag("no-mmap");
  return options;
}

Analysis analyze_capture(const std::string& path, std::size_t workers,
                         const core::IngestOptions& options) {
  Analysis analysis;
  if (workers <= 1) {
    core::Pipeline pipeline(shared_telescope());
    pipeline.add_observer(analysis.ports);
    pipeline.add_observer(analysis.types);
    pipeline.add_observer(analysis.geo);

    {
      obs::ScopedTimer ingest("analyze.ingest");
      const auto ingested = core::ingest_capture(
          path, shared_telescope(), options,
          [&](const telescope::ProbeBatch& batch) { pipeline.feed_probes(batch); });
      pipeline.absorb_sensor_counters(ingested.sensor);
      analysis.frames = ingested.frames;
      analysis.final_status = ingested.status;
    }
    const obs::ScopedTimer finish("analyze.finish");
    analysis.result = pipeline.finish();
    return analysis;
  }

  // Multi-core replay: campaign tracking runs sharded by source across
  // the workers (each worker receives row-index slices into a shared
  // copy of the batch columns). Classification already happened once on
  // the ingest thread, so the same batch drives both the workers and the
  // (not thread-safe) streaming observers in file order.
  core::ParallelAnalyzer analyzer(shared_telescope(), workers);
  std::vector<std::uint32_t> rows;
  {
    obs::ScopedTimer ingest("analyze.ingest");
    const auto ingested = core::ingest_capture(
        path, shared_telescope(), options, [&](const telescope::ProbeBatch& batch) {
          analyzer.feed_probes(batch);
          const auto n = batch.size();
          if (rows.size() < n) {
            const auto old = static_cast<std::uint32_t>(rows.size());
            rows.resize(n);
            for (std::uint32_t i = old; i < n; ++i) rows[i] = i;
          }
          const std::span<const std::uint32_t> all(rows.data(), n);
          const obs::ScopedTimer observers("analyze.observers");
          analysis.ports.observe_batch(batch, all);
          analysis.types.observe_batch(batch, all);
          analysis.geo.observe_batch(batch, all);
        });
    analyzer.absorb_sensor_counters(ingested.sensor);
    analysis.frames = ingested.frames;
    analysis.final_status = ingested.status;
  }
  const obs::ScopedTimer finish("analyze.finish");
  analysis.result = analyzer.finish();
  return analysis;
}

void warn_on_truncation(const Analysis& analysis) {
  if (analysis.final_status == pcap::ReadStatus::kTruncated) {
    std::cerr << "warning: capture ends mid-record (truncated write?); analyzed the "
                 "readable prefix\n";
  } else if (analysis.final_status == pcap::ReadStatus::kBadRecord) {
    std::cerr << "warning: capture framing is corrupt; analyzed the readable prefix\n";
  }
}

}  // namespace

int run_simulate(const std::vector<std::string>& args) {
  const Args parsed(args);
  const int year = static_cast<int>(parsed.number("year", 2022));
  const double scale = parsed.number("scale", 32.0);
  const auto out = parsed.flag("out");
  if (!out) throw std::invalid_argument("simulate requires --out=<file>");

  auto config = simgen::year_config(year, scale);
  if (const auto seed = parsed.flag("seed")) config.seed = std::stoull(*seed);
  if (const auto days = parsed.flag("days")) {
    config.window_days = std::min(config.window_days, std::stod(*days));
  }

  const auto& telescope = shared_telescope();
  auto writer = pcap::Writer::create(*out);
  simgen::TrafficGenerator generator(config, telescope,
                                     enrich::InternetRegistry::synthetic_default());
  const auto stats = generator.run([&](const net::RawFrame& f) { writer.write(f); });
  writer.flush();

  std::cout << "wrote " << stats.total_frames << " frames (" << stats.scan_frames
            << " scan, " << stats.backscatter_frames << " backscatter) to " << *out
            << "\n"
            << "window: " << year << ", " << config.window_days << " days at 1/"
            << simgen::kPacketScale * scale << " packet volume, "
            << stats.planned_campaigns << " planned campaigns\n";
  return 0;
}

int run_analyze(const std::vector<std::string>& args) {
  const Args parsed(args);
  if (parsed.positional().empty()) {
    throw std::invalid_argument("analyze requires a capture path");
  }
  const auto top_n = static_cast<std::size_t>(parsed.number("top", 10));
  // `--metrics` prints a run report; `--metrics=<file>` writes it as
  // JSON (schema in docs/OBSERVABILITY.md). Must be enabled before the
  // pipeline is built: instrumentation resolves its cells at construction.
  const auto metrics = parsed.flag("metrics");
  if (metrics) obs::set_enabled(true);
  const auto workers = static_cast<std::size_t>(parsed.number(
      "workers", static_cast<double>(default_workers())));
  auto analysis =
      analyze_capture(parsed.positional().front(), workers, ingest_options(parsed));
  warn_on_truncation(analysis);
  const auto& campaigns = analysis.result.campaigns;

  std::cout << "frames: " << analysis.frames << ", scan probes "
            << analysis.result.sensor.scan_probes << ", campaigns " << campaigns.size()
            << ", sub-threshold sources "
            << analysis.result.tracker.subthreshold_flows << "\n\n";

  const auto shares = core::tool_shares(campaigns);
  report::Table tools({"tool", "scans", "scan share", "packet share"});
  for (const auto tool : fingerprint::kAllTools) {
    tools.add_row({std::string(fingerprint::to_string(tool)),
                   std::to_string(shares.by_scans.count(tool)),
                   report::percent(shares.by_scans.share(tool)),
                   report::percent(shares.by_packets.share(tool))});
  }
  std::cout << "-- tools --\n" << tools << "\n";

  report::Table ports({"port", "packets", "share", "sources"});
  for (const auto& row : analysis.ports.top_ports_by_packets(top_n)) {
    ports.add_row({std::to_string(row.port), std::to_string(row.count),
                   report::percent(row.share),
                   std::to_string(analysis.ports.sources_on_port(row.port))});
  }
  std::cout << "-- top ports by packets --\n" << ports << "\n";

  const auto type_table = core::type_share_table(
      analysis.types, campaigns, enrich::InternetRegistry::synthetic_default());
  report::Table types({"scanner type", "sources", "scans", "packets"});
  for (const auto& row : type_table) {
    types.add_row({std::string(enrich::to_string(row.type)),
                   report::percent(row.source_share, 2),
                   report::percent(row.scan_share, 2),
                   report::percent(row.packet_share, 2)});
  }
  std::cout << "-- scanner types --\n" << types << "\n";

  report::Table countries({"country", "packets", "share"});
  for (const auto& row : analysis.geo.top_countries(top_n)) {
    countries.add_row({row.country.to_string(), std::to_string(row.packets),
                       report::percent(row.share)});
  }
  std::cout << "-- origin countries --\n" << countries;

  if (const auto json_path = parsed.flag("json")) {
    std::ofstream json_out(*json_path, std::ios::trunc);
    if (!json_out.is_open()) {
      throw std::runtime_error("cannot write " + *json_path);
    }
    report::write_counters_json(json_out, analysis.result);
    json_out << '\n';
    report::write_campaigns_jsonl(json_out, campaigns);
    std::cout << "\nwrote counters + " << campaigns.size() << " campaigns to "
              << *json_path << " (JSON lines)\n";
  }

  if (metrics) {
    const auto report = obs::RunReport::capture(
        "analyze " + parsed.positional().front(), &analysis.result);
    if (*metrics == "true" || metrics->empty()) {  // no file: print the table
      std::cout << "\n-- run report --\n" << report.to_table();
    } else {
      std::ofstream metrics_out(*metrics, std::ios::trunc);
      if (!metrics_out.is_open()) {
        throw std::runtime_error("cannot write " + *metrics);
      }
      report.write_json(metrics_out);
      metrics_out << '\n';
      std::cout << "\nwrote run report to " << *metrics << "\n";
    }
  }
  return 0;
}

int run_fingerprint(const std::vector<std::string>& args) {
  const Args parsed(args);
  if (parsed.positional().empty()) {
    throw std::invalid_argument("fingerprint requires a capture path");
  }
  const auto& telescope = shared_telescope();
  // Flat evidence table (fingerprint/evidence_table.h): the batch path
  // resolves each source's record once per same-source run.
  fingerprint::EvidenceTable evidence;

  (void)core::ingest_capture(
      parsed.positional().front(), telescope, ingest_options(parsed),
      [&](const telescope::ProbeBatch& batch) { evidence.observe_batch(batch); });

  report::Table table({"source", "probes", "verdict", "zmap", "masscan", "mirai",
                       "nmap-pairs", "unicorn-pairs"});
  std::size_t shown = 0;
  for (const auto& [source, tool_evidence] : evidence.sorted_entries()) {
    if (tool_evidence->probes() < 3) continue;  // skip one-off chatter
    table.add_row({net::Ipv4Address(source).to_string(),
                   std::to_string(tool_evidence->probes()),
                   std::string(fingerprint::to_string(tool_evidence->verdict())),
                   std::to_string(tool_evidence->matches(fingerprint::Tool::kZmap)),
                   std::to_string(tool_evidence->matches(fingerprint::Tool::kMasscan)),
                   std::to_string(tool_evidence->matches(fingerprint::Tool::kMirai)),
                   std::to_string(tool_evidence->matches(fingerprint::Tool::kNmap)),
                   std::to_string(tool_evidence->matches(fingerprint::Tool::kUnicorn))});
    if (++shown == 40) break;
  }
  std::cout << table;
  std::cout << "(" << evidence.sources() << " sources total; showing up to 40 with >=3 "
            << "probes)\n";
  return 0;
}

int run_info(const std::vector<std::string>& args) {
  const Args parsed(args);
  if (parsed.positional().empty()) {
    throw std::invalid_argument("info requires a capture path");
  }
  const auto& path = parsed.positional().front();
  auto reader = pcap::Reader::open(path);
  const auto& info = reader.info();
  std::cout << "capture:      " << path << "\n"
            << "byte order:   " << (info.big_endian ? "big" : "little") << "-endian\n"
            << "timestamps:   " << (info.nanosecond ? "nanosecond" : "microsecond")
            << "\n"
            << "version:      " << info.version_major << "." << info.version_minor
            << "\n"
            << "snap length:  " << info.snap_length << "\n"
            << "link type:    "
            << (info.link_type == pcap::LinkType::kEthernet ? "ethernet" : "other")
            << "\n";

  const auto& telescope = shared_telescope();
  telescope::Sensor sensor(telescope);
  net::RawFrame frame;
  telescope::ScanProbe probe;
  net::TimeUs first = 0;
  net::TimeUs last = 0;
  bool any = false;
  pcap::ReadStatus status;
  while ((status = reader.next(frame)) == pcap::ReadStatus::kOk) {
    (void)sensor.classify(frame, probe);
    if (!any) first = frame.timestamp_us;
    last = frame.timestamp_us;
    any = true;
  }

  const auto& counters = sensor.counters();
  std::cout << "frames:       " << reader.frames_read() << " ("
            << (status == pcap::ReadStatus::kEndOfFile ? "clean end" : "truncated/corrupt")
            << ")\n";
  if (any) {
    std::cout << "time span:    "
              << report::fixed(static_cast<double>(last - first) /
                                   static_cast<double>(net::kMicrosPerDay),
                               3)
              << " days\n";
  }
  report::Table table({"class", "frames"});
  table.add_row({"scan probes", std::to_string(counters.scan_probes)});
  table.add_row({"backscatter", std::to_string(counters.backscatter)});
  table.add_row({"xmas/null", std::to_string(counters.xmas_or_null)});
  table.add_row({"other tcp", std::to_string(counters.other_tcp)});
  table.add_row({"udp", std::to_string(counters.udp)});
  table.add_row({"icmp", std::to_string(counters.icmp)});
  table.add_row({"not monitored", std::to_string(counters.not_monitored)});
  table.add_row({"ingress blocked", std::to_string(counters.ingress_blocked)});
  table.add_row({"malformed", std::to_string(counters.malformed)});
  table.add_row({"spoofed source", std::to_string(counters.spoofed_source)});
  std::cout << table;
  return 0;
}

}  // namespace synscan::cli
