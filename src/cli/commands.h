// The synscan CLI subcommands. Each takes its raw argument list and
// returns a process exit code.
#pragma once

#include <string>
#include <vector>

namespace synscan::cli {

int run_simulate(const std::vector<std::string>& args);
int run_analyze(const std::vector<std::string>& args);
int run_fingerprint(const std::vector<std::string>& args);
int run_info(const std::vector<std::string>& args);
/// `synscan serve`: run the synscand daemon (docs/SYNSCAND.md).
int run_serve(const std::vector<std::string>& args);
/// `synscan query`: one framed command against a running daemon.
int run_query(const std::vector<std::string>& args);
/// `synscan cache`: probe-cache maintenance — `stat` (header dump),
/// `verify` (full offline validation), `build` (prebuild a `.spc`).
int run_cache(const std::vector<std::string>& args);
/// `synscan rollup`: sharded multi-capture analysis over the `.spr`
/// rollup store — `build` (analyze shards, persist rollups), `stat`
/// (rollup header dump), `query` (merged report, analyze-identical).
int run_rollup(const std::vector<std::string>& args);

}  // namespace synscan::cli
