// synscan — command-line front-end to the telescope analytics toolkit.
//
//   synscan simulate --year=2020 --out=window.pcap [--scale=32] [--seed=7]
//       Generate a calibrated measurement window as a pcap capture.
//
//   synscan analyze <capture.pcap> [--top=10] [--workers=N] [--metrics[=file]]
//       Full analysis: sensor statistics, campaign census, tool shares,
//       top ports, scanner types, country mix. --metrics adds an
//       observability run report (docs/OBSERVABILITY.md).
//
//   synscan fingerprint <capture.pcap>
//       Per-source tool verdicts with evidence counts.
//
//   synscan info <capture.pcap>
//       Capture metadata and frame classification counts.
//
//   synscan serve --socket=/run/synscand.sock [--capture=window.pcap]
//       Long-running analysis daemon (synscand): loads captures once,
//       keeps them resident, answers framed queries (docs/SYNSCAND.md).
//
//   synscan query --socket=/run/synscand.sock QUERY campaigns tool=zmap
//       Thin client: send one daemon command, print the response body.
//
//   synscan cache stat|verify|build <path> [--capture=...] [--codec=...]
//       Probe-cache (.spc) maintenance: header dump, full offline
//       validation, or prebuilding a cache ahead of analysis runs.
//
//   synscan rollup build|stat|query <captures...> [--workers=N] [--json=file]
//       Sharded multi-capture analysis over the .spr rollup store:
//       analyze each capture once, answer from merged rollups after.
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>

#include "cli/commands.h"

namespace {

void print_usage(std::ostream& os) {
  os << "usage: synscan <command> [options]\n\n"
        "commands:\n"
        "  simulate     generate a calibrated telescope capture (pcap)\n"
        "  analyze      campaign/tool/port/type analysis of a capture\n"
        "  fingerprint  per-source scanning-tool attribution\n"
        "  info         capture metadata and traffic classification\n"
        "  serve        run the resident analysis daemon (synscand)\n"
        "  query        send one command to a running synscand\n"
        "  cache        probe-cache (.spc) maintenance: stat | verify | build\n"
        "  rollup       sharded multi-capture analysis: build | stat | query\n"
        "\ncommon options:\n"
        "  simulate: --year=<2015..2024> --out=<file> [--scale=<x>] [--seed=<n>]\n"
        "            [--days=<n>]\n"
        "  analyze:  <capture.pcap> [--top=<n>] [--json=<file>] [--workers=<n>]\n"
        "            [--metrics[=<file>]]   run report: ASCII table, or JSON\n"
        "            with per-stage timings (docs/OBSERVABILITY.md)\n"
        "  serve:    --socket=<path> and/or --port=<n> [--capture=<pcap>]\n"
        "            [--workers=<n>] [--io-workers=<n>] [--idle-timeout-ms=<n>]\n"
        "            [--poll] [--metrics]   protocol spec: docs/SYNSCAND.md\n"
        "  query:    --socket=<path> | --port=<n> [--host=<ip>] <command...>\n"
        "            e.g. PING | STATUS | LOAD <pcap> | QUERY analyze | SHUTDOWN\n"
        "  cache:    stat <file.spc> | verify <file.spc> [--capture=<pcap>] |\n"
        "            build <capture.pcap> [--out=<file.spc>] [--codec=raw|delta]\n"
        "            [--force] [--scan-chunks=<n>]\n"
        "  rollup:   build|query <captures...> [--workers=<n>] [--json=<file>]\n"
        "            [--no-rollup-store] | stat <file.spr>   (docs/ARCHITECTURE.md\n"
        "            \"Rollup store\": merged reports match analyze --json bytes)\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage(std::cerr);
    return 2;
  }
  const std::string_view command = argv[1];
  const std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "simulate") return synscan::cli::run_simulate(args);
    if (command == "analyze") return synscan::cli::run_analyze(args);
    if (command == "fingerprint") return synscan::cli::run_fingerprint(args);
    if (command == "info") return synscan::cli::run_info(args);
    if (command == "serve") return synscan::cli::run_serve(args);
    if (command == "query") return synscan::cli::run_query(args);
    if (command == "cache") return synscan::cli::run_cache(args);
    if (command == "rollup") return synscan::cli::run_rollup(args);
    if (command == "--help" || command == "-h" || command == "help") {
      print_usage(std::cout);
      return 0;
    }
  } catch (const std::exception& error) {
    std::cerr << "synscan " << command << ": " << error.what() << "\n";
    return 1;
  }
  std::cerr << "synscan: unknown command '" << command << "'\n";
  print_usage(std::cerr);
  return 2;
}
