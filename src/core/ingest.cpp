#include "core/ingest.h"

#include <algorithm>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <system_error>
#include <vector>

#include "core/probe_cache.h"
#include "obs/metrics.h"
#include "pcap/mapped_reader.h"
#include "pcap/pcapng.h"

namespace synscan::core {
namespace {

/// The `ingest.*` metric cells, resolved once per run iff obs is on.
struct IngestMetrics {
  obs::Counter* batches = nullptr;
  obs::Counter* mmap_bytes = nullptr;
  obs::Counter* fallback_reads = nullptr;
  obs::Counter* cache_hits = nullptr;
  obs::Counter* cache_misses = nullptr;
  obs::Counter* cache_invalidations = nullptr;

  IngestMetrics() {
    if (!obs::enabled()) return;
    auto& registry = obs::MetricsRegistry::global();
    batches = &registry.counter("ingest.batches");
    mmap_bytes = &registry.counter("ingest.mmap_bytes");
    fallback_reads = &registry.counter("ingest.fallback_reads");
    cache_hits = &registry.counter("ingest.cache_hits");
    cache_misses = &registry.counter("ingest.cache_misses");
    cache_invalidations = &registry.counter("ingest.cache_invalidations");
  }
};

}  // namespace

IngestResult ingest_capture(const std::filesystem::path& path,
                            const telescope::Telescope& telescope,
                            const IngestOptions& options, const ProbeBatchSink& sink) {
  const IngestMetrics metrics;
  IngestResult result;
  const auto batch_frames = std::max<std::size_t>(std::size_t{1}, options.batch_frames);

  // Streams and FIFOs have no stable identity, so they are never cached.
  const auto identity =
      options.use_cache ? cache_identity(path) : std::optional<CacheIdentity>{};
  const auto cache_path = options.cache_path.empty()
                              ? std::filesystem::path(path.native() + ".spc")
                              : options.cache_path;

  if (identity) {
    std::error_code ec;
    if (std::filesystem::exists(cache_path, ec) && !ec) {
      if (auto reader = ProbeCacheReader::open(cache_path, *identity)) {
        telescope::ProbeBatch batch;
        while (reader->next_chunk(batch)) {
          ++result.batches;
          if (metrics.batches != nullptr) metrics.batches->add();
          sink(batch);
        }
        result.sensor = reader->sensor();
        result.frames = reader->frame_count();
        result.status = reader->terminal_status();
        result.from_cache = true;
        if (metrics.cache_hits != nullptr) metrics.cache_hits->add();
        return result;
      }
      if (metrics.cache_invalidations != nullptr) metrics.cache_invalidations->add();
    } else if (metrics.cache_misses != nullptr) {
      metrics.cache_misses->add();
    }
  }

  // Cold path: decode + classify in batches, refreshing the cache along
  // the way. Cache creation is best-effort (read-only capture directory
  // must not fail the run).
  std::optional<ProbeCacheWriter> writer;
  if (identity) {
    try {
      writer.emplace(cache_path, *identity);
    } catch (const std::exception&) {
    }
  }

  telescope::Sensor sensor(telescope);
  telescope::ProbeBatch batch;
  batch.reserve(batch_frames);

  const auto deliver = [&](std::span<const net::FrameView> frames) {
    batch.clear();
    sensor.classify_batch(frames, batch);
    result.frames += frames.size();
    ++result.batches;
    if (metrics.batches != nullptr) metrics.batches->add();
    if (batch.empty()) return;
    if (writer) writer->append(batch);
    sink(batch);
  };

  const auto run_mapped = [&](pcap::MappedReader& reader) {
    std::vector<net::FrameView> views;
    views.reserve(batch_frames);
    for (;;) {
      const auto status = reader.next_batch(views, batch_frames);
      if (status != pcap::ReadStatus::kOk) {
        result.status = status;
        return;
      }
      deliver(views);
    }
  };

  if (pcap::looks_like_pcapng(path)) {
    // pcapng stays record-at-a-time (variable block framing), but the
    // frames are still classified in batches.
    auto reader = pcap::NgReader::open(path);
    if (metrics.fallback_reads != nullptr) metrics.fallback_reads->add();
    std::vector<net::RawFrame> frames(batch_frames);
    std::vector<net::FrameView> views;
    views.reserve(batch_frames);
    for (;;) {
      auto status = pcap::ReadStatus::kOk;
      std::size_t filled = 0;
      while (filled < batch_frames &&
             (status = reader.next(frames[filled])) == pcap::ReadStatus::kOk) {
        ++filled;
      }
      views.clear();
      for (std::size_t i = 0; i < filled; ++i) views.push_back(net::as_view(frames[i]));
      if (filled > 0) deliver(views);
      if (status != pcap::ReadStatus::kOk) {
        result.status = status;
        break;
      }
    }
  } else if (!options.use_mmap) {
    std::ifstream stream(path, std::ios::binary);
    if (!stream.is_open()) {
      throw std::runtime_error("pcap: cannot open " + path.string());
    }
    auto reader = pcap::MappedReader::open_stream(stream);
    if (metrics.fallback_reads != nullptr) metrics.fallback_reads->add();
    run_mapped(reader);
  } else {
    auto reader = pcap::MappedReader::open(path);
    result.mapped = reader.mapped();
    if (result.mapped) {
      if (metrics.mmap_bytes != nullptr) metrics.mmap_bytes->add(reader.byte_size());
    } else if (metrics.fallback_reads != nullptr) {
      metrics.fallback_reads->add();
    }
    run_mapped(reader);
  }

  result.sensor = sensor.counters();
  if (writer) {
    (void)writer->commit(result.frames, result.status, result.sensor);
  }
  return result;
}

}  // namespace synscan::core
