#include "core/ingest.h"

#include <algorithm>
#include <exception>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <system_error>
#include <thread>
#include <utility>
#include <vector>

#include "core/probe_cache.h"
#include "core/sync.h"
#include "obs/metrics.h"
#include "pcap/mapped_reader.h"
#include "pcap/pcapng.h"
#include "telescope/classify_detail.h"
#include "telescope/classify_lanes.h"
#include "telescope/simd.h"

namespace synscan::core {
namespace {

/// Chunked scanning only pays once the scan outweighs thread startup;
/// below this capture size the cold path stays serial regardless of
/// `scan_chunks`.
constexpr std::uint64_t kMinChunkedBytes = 4u << 20;
/// Upper bound on scan chunks (and therefore scan threads) per ingest.
constexpr std::size_t kMaxScanChunks = 64;

/// The `ingest.*` metric cells, resolved once per run iff obs is on.
struct IngestMetrics {
  obs::Counter* batches = nullptr;
  obs::Counter* chunks = nullptr;
  obs::Counter* simd_rows = nullptr;
  obs::Counter* mmap_bytes = nullptr;
  obs::Counter* fallback_reads = nullptr;
  obs::Counter* cache_hits = nullptr;
  obs::Counter* cache_misses = nullptr;
  obs::Counter* cache_invalidations = nullptr;

  IngestMetrics() {
    if (!obs::enabled()) return;
    auto& registry = obs::MetricsRegistry::global();
    batches = &registry.counter("ingest.batches");
    chunks = &registry.counter("ingest.chunks");
    simd_rows = &registry.counter("ingest.simd_rows");
    mmap_bytes = &registry.counter("ingest.mmap_bytes");
    fallback_reads = &registry.counter("ingest.fallback_reads");
    cache_hits = &registry.counter("ingest.cache_hits");
    cache_misses = &registry.counter("ingest.cache_misses");
    cache_invalidations = &registry.counter("ingest.cache_invalidations");
  }
};

/// Classifier sink for the fused record walk (`ChunkReader::scan`):
/// consumes records straight off the walk, assembling SIMD lane groups
/// in place instead of staging `net::FrameView`s, and hands off one
/// `ProbeBatch` per `batch_frames` frames. Group formation restarts at
/// every batch boundary (the trailing partial group is classified by the
/// scalar reference), exactly like `Sensor::classify_batch` over the
/// same windows — probes, probe order and counters are bit-identical to
/// the scalar loop on any dispatch level. The deliver callback may move
/// the batch away; buffers are re-armed either way.
class FusedClassifier {
 public:
  using Deliver = std::function<void(telescope::ProbeBatch&)>;
  using GroupFn = void (*)(const telescope::Telescope&,
                           const telescope::detail::PendingLanes&,
                           telescope::SensorCounters&, telescope::detail::ProbeCursor&,
                           std::uint64_t&);

  FusedClassifier(const telescope::Telescope& telescope, std::size_t batch_frames,
                  Deliver deliver)
      : telescope_(&telescope),
        batch_frames_(batch_frames),
        deliver_(std::move(deliver)) {
    switch (telescope::simd::active_level()) {
      case telescope::simd::SimdLevel::kAvx2:
        group_size_ = 8;
        group_fn_ = &telescope::detail::classify_group_avx2;
        break;
      case telescope::simd::SimdLevel::kSse2:
        group_size_ = 4;
        group_fn_ = &telescope::detail::classify_group_sse2;
        break;
      case telescope::simd::SimdLevel::kScalar:
        break;
    }
    arm_batch();
  }

  /// One record, in capture order; the bytes must stay valid until the
  /// batch holding this frame's probe has been delivered (they point
  /// into the capture window, which outlives the scan).
  void consume(net::TimeUs timestamp_us, const std::uint8_t* data,
               std::uint32_t captured_length) {
    if (group_size_ == 0 || captured_length < telescope::detail::kMinLaneBytes) {
      // Short frames can never emit a probe (no room for a full TCP
      // header), so classifying them immediately preserves probe order.
      telescope::detail::classify_raw(*telescope_, timestamp_us,
                                      {data, captured_length}, counters_, cursor_);
    } else {
      pending_.ptr[pending_.count] = data;
      pending_.caplen[pending_.count] = captured_length;
      pending_.ts[pending_.count] = timestamp_us;
      if (++pending_.count == group_size_) {
        group_fn_(*telescope_, pending_, counters_, cursor_, simd_rows_);
        pending_.count = 0;
      }
    }
    if (++window_frames_ == batch_frames_) flush_batch();
  }

  /// Delivers the final partial batch (if any frames were consumed since
  /// the last flush). Call exactly once, after the walk ends.
  void finish() {
    if (window_frames_ > 0) flush_batch();
  }

  [[nodiscard]] const telescope::SensorCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] std::uint64_t simd_rows() const noexcept { return simd_rows_; }

 private:
  /// Sizes every column to the window's worst case (all frames probes)
  /// and points the cursor at the column bases; resize() keeps capacity
  /// on a recycled batch, so steady state re-arms without allocating.
  void arm_batch() {
    batch_.timestamp_us.resize(batch_frames_);
    batch_.source.resize(batch_frames_);
    batch_.destination.resize(batch_frames_);
    batch_.source_port.resize(batch_frames_);
    batch_.destination_port.resize(batch_frames_);
    batch_.sequence.resize(batch_frames_);
    batch_.acknowledgment.resize(batch_frames_);
    batch_.ip_id.resize(batch_frames_);
    batch_.window.resize(batch_frames_);
    batch_.ttl.resize(batch_frames_);
    cursor_ = telescope::detail::ProbeCursor{
        batch_.timestamp_us.data(), batch_.source.data(),
        batch_.destination.data(),  batch_.source_port.data(),
        batch_.destination_port.data(), batch_.sequence.data(),
        batch_.acknowledgment.data(), batch_.ip_id.data(),
        batch_.window.data(),       batch_.ttl.data()};
  }

  void flush_batch() {
    // Scalar tail for the incomplete lane group, exactly like the batch
    // kernels: group formation restarts at every window boundary.
    for (std::size_t i = 0; i < pending_.count; ++i) {
      telescope::detail::classify_raw(*telescope_, pending_.ts[i],
                                      {pending_.ptr[i], pending_.caplen[i]}, counters_,
                                      cursor_);
    }
    pending_.count = 0;
    const auto rows = cursor_.count;
    batch_.timestamp_us.resize(rows);
    batch_.source.resize(rows);
    batch_.destination.resize(rows);
    batch_.source_port.resize(rows);
    batch_.destination_port.resize(rows);
    batch_.sequence.resize(rows);
    batch_.acknowledgment.resize(rows);
    batch_.ip_id.resize(rows);
    batch_.window.resize(rows);
    batch_.ttl.resize(rows);
    deliver_(batch_);
    window_frames_ = 0;
    arm_batch();
  }

  const telescope::Telescope* telescope_;
  std::size_t batch_frames_;
  Deliver deliver_;
  std::size_t group_size_ = 0;  ///< kernel lane width; 0 = scalar loop
  GroupFn group_fn_ = nullptr;
  telescope::detail::PendingLanes pending_;
  telescope::SensorCounters counters_;
  std::uint64_t simd_rows_ = 0;
  std::size_t window_frames_ = 0;  ///< frames consumed since last flush
  telescope::ProbeBatch batch_;
  telescope::detail::ProbeCursor cursor_{};
};

/// Everything one scan worker produced, merged on the caller's thread.
struct ChunkOutcome {
  std::vector<telescope::ProbeBatch> batches;
  telescope::SensorCounters counters;
  std::uint64_t frames = 0;
  std::uint64_t simd_rows = 0;
  pcap::ReadStatus status = pcap::ReadStatus::kEndOfFile;
  std::exception_ptr error;
};

/// Hands chunk outcomes from scan workers back to the caller. Slots are
/// disjoint (worker i writes only slot i), so the lock is uncontended in
/// practice; taking it anyway makes the handoff visible to the
/// thread-safety analysis instead of leaning on the join alone.
class ChunkMerge {
 public:
  explicit ChunkMerge(std::size_t chunks) : outcomes_(chunks) {}

  void publish(std::size_t index, ChunkOutcome outcome) SYNSCAN_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    outcomes_[index] = std::move(outcome);
  }

  /// Moves every outcome out, in chunk (capture) order. Call once,
  /// after all workers are joined.
  [[nodiscard]] std::vector<ChunkOutcome> take() SYNSCAN_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    return std::move(outcomes_);
  }

 private:
  Mutex mutex_;
  std::vector<ChunkOutcome> outcomes_ SYNSCAN_GUARDED_BY(mutex_);
};

}  // namespace

IngestResult ingest_capture(const std::filesystem::path& path,
                            const telescope::Telescope& telescope,
                            const IngestOptions& options, const ProbeBatchSink& sink) {
  const IngestMetrics metrics;
  IngestResult result;
  const auto batch_frames = std::max<std::size_t>(std::size_t{1}, options.batch_frames);

  // Streams and FIFOs have no stable identity, so they are never cached.
  const auto identity =
      options.use_cache ? cache_identity(path) : std::optional<CacheIdentity>{};
  const auto cache_path = options.cache_path.empty()
                              ? std::filesystem::path(path.native() + ".spc")
                              : options.cache_path;

  if (identity) {
    std::error_code ec;
    if (std::filesystem::exists(cache_path, ec) && !ec) {
      if (auto reader = ProbeCacheReader::open(cache_path, *identity)) {
        telescope::ProbeBatch batch;
        while (reader->next_chunk(batch)) {
          ++result.batches;
          if (metrics.batches != nullptr) metrics.batches->add();
          sink(batch);
        }
        result.sensor = reader->sensor();
        result.frames = reader->frame_count();
        result.status = reader->terminal_status();
        result.from_cache = true;
        if (metrics.cache_hits != nullptr) metrics.cache_hits->add();
        return result;
      }
      if (metrics.cache_invalidations != nullptr) metrics.cache_invalidations->add();
    } else if (metrics.cache_misses != nullptr) {
      metrics.cache_misses->add();
    }
  }

  // Cold path: decode + classify, refreshing the cache along the way.
  // Cache creation is best-effort (a read-only capture directory must
  // not fail the run).
  std::optional<ProbeCacheWriter> writer;
  if (identity) {
    try {
      writer.emplace(cache_path, *identity, options.cache_codec);
    } catch (const std::exception&) {
    }
  }

  const auto deliver_batch = [&](telescope::ProbeBatch& batch) {
    ++result.batches;
    if (metrics.batches != nullptr) metrics.batches->add();
    if (batch.empty()) return;
    if (writer) writer->append(batch);
    sink(batch);
  };

  /// Serial fused scan: one walk over the whole record region, records
  /// classified straight off the walk.
  const auto run_serial = [&](pcap::MappedReader& reader) {
    result.chunks = 1;
    FusedClassifier classifier(telescope, batch_frames, deliver_batch);
    pcap::ChunkReader chunk(
        reader.bytes(), reader.info(),
        {std::min<std::size_t>(pcap::kGlobalHeaderSize, reader.bytes().size()),
         reader.bytes().size()});
    result.status = chunk.scan([&classifier](net::TimeUs timestamp_us,
                                             const std::uint8_t* data,
                                             std::uint32_t captured_length) {
      classifier.consume(timestamp_us, data, captured_length);
    });
    classifier.finish();
    result.frames = chunk.frames_read();
    result.sensor = classifier.counters();
    result.simd_rows = classifier.simd_rows();
  };

  /// Parallel fused scan: each chunk is walked and classified by its own
  /// thread into private batches, then everything is merged back on this
  /// thread in capture order. A defect stops `partition_records` from
  /// splitting further, so non-final chunks always end kEndOfFile; the
  /// merge enforces the serial contract anyway — the first non-EOF
  /// status is terminal and every later chunk is discarded.
  const auto run_chunked = [&](pcap::MappedReader& reader,
                               const std::vector<pcap::ScanChunk>& chunks) {
    ChunkMerge merge(chunks.size());
    {
      std::vector<std::thread> workers;
      workers.reserve(chunks.size());
      for (std::size_t i = 0; i < chunks.size(); ++i) {
        workers.emplace_back([&telescope, &reader, &chunks, &merge, batch_frames, i] {
          // Workers accumulate into a private outcome and publish it
          // whole; nothing shared is touched until the final handoff.
          ChunkOutcome outcome;
          try {
            FusedClassifier classifier(telescope, batch_frames,
                                       [&outcome](telescope::ProbeBatch& batch) {
                                         outcome.batches.push_back(std::move(batch));
                                       });
            pcap::ChunkReader chunk(reader.bytes(), reader.info(), chunks[i]);
            outcome.status = chunk.scan([&classifier](net::TimeUs timestamp_us,
                                                      const std::uint8_t* data,
                                                      std::uint32_t captured_length) {
              classifier.consume(timestamp_us, data, captured_length);
            });
            classifier.finish();
            outcome.frames = chunk.frames_read();
            outcome.counters = classifier.counters();
            outcome.simd_rows = classifier.simd_rows();
          } catch (...) {
            outcome.error = std::current_exception();
          }
          merge.publish(i, std::move(outcome));
        });
      }
      for (auto& worker : workers) worker.join();
    }
    result.chunks = chunks.size();
    auto outcomes = merge.take();
    for (auto& outcome : outcomes) {
      if (outcome.error) std::rethrow_exception(outcome.error);
      for (auto& batch : outcome.batches) deliver_batch(batch);
      result.frames += outcome.frames;
      result.sensor.add(outcome.counters);
      result.simd_rows += outcome.simd_rows;
      if (outcome.status != pcap::ReadStatus::kEndOfFile) {
        result.status = outcome.status;
        break;
      }
    }
  };

  const auto run_cold = [&](pcap::MappedReader& reader) {
    auto want = options.scan_chunks;
    if (want == 0) {
      want = std::max<std::size_t>(std::size_t{1}, std::thread::hardware_concurrency());
    }
    want = std::min(want, kMaxScanChunks);
    if (want > 1 && reader.byte_size() >= kMinChunkedBytes) {
      if (auto chunks = reader.partition(want); chunks.size() > 1) {
        run_chunked(reader, chunks);
      } else {
        run_serial(reader);
      }
    } else {
      run_serial(reader);
    }
    if (metrics.chunks != nullptr) metrics.chunks->add(result.chunks);
    if (metrics.simd_rows != nullptr) metrics.simd_rows->add(result.simd_rows);
  };

  if (pcap::looks_like_pcapng(path)) {
    // pcapng stays record-at-a-time (variable block framing), but the
    // frames are still classified in batches.
    auto reader = pcap::NgReader::open(path);
    if (metrics.fallback_reads != nullptr) metrics.fallback_reads->add();
    telescope::Sensor sensor(telescope);
    telescope::ProbeBatch batch;
    batch.reserve(batch_frames);
    std::vector<net::RawFrame> frames(batch_frames);
    std::vector<net::FrameView> views;
    views.reserve(batch_frames);
    for (;;) {
      auto status = pcap::ReadStatus::kOk;
      std::size_t filled = 0;
      while (filled < batch_frames &&
             (status = reader.next(frames[filled])) == pcap::ReadStatus::kOk) {
        ++filled;
      }
      if (filled > 0) {
        views.clear();
        for (std::size_t i = 0; i < filled; ++i) views.push_back(net::as_view(frames[i]));
        batch.clear();
        sensor.classify_batch(views, batch);
        result.frames += filled;
        deliver_batch(batch);
      }
      if (status != pcap::ReadStatus::kOk) {
        result.status = status;
        break;
      }
    }
    result.sensor = sensor.counters();
    result.simd_rows = sensor.simd_rows();
    if (metrics.simd_rows != nullptr) metrics.simd_rows->add(result.simd_rows);
  } else if (!options.use_mmap) {
    std::ifstream stream(path, std::ios::binary);
    if (!stream.is_open()) {
      throw std::runtime_error("pcap: cannot open " + path.string());
    }
    auto reader = pcap::MappedReader::open_stream(stream);
    if (metrics.fallback_reads != nullptr) metrics.fallback_reads->add();
    run_cold(reader);
  } else {
    auto reader = pcap::MappedReader::open(path);
    result.mapped = reader.mapped();
    if (result.mapped) {
      if (metrics.mmap_bytes != nullptr) metrics.mmap_bytes->add(reader.byte_size());
    } else if (metrics.fallback_reads != nullptr) {
      metrics.fallback_reads->add();
    }
    run_cold(reader);
  }

  if (writer) {
    (void)writer->commit(result.frames, result.status, result.sensor);
  }
  return result;
}

}  // namespace synscan::core
