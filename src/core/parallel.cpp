#include "core/parallel.h"

#include <algorithm>
#include <stdexcept>

namespace synscan::core {

ParallelAnalyzer::ParallelAnalyzer(const telescope::Telescope& telescope,
                                   std::size_t workers, TrackerConfig tracker_config) {
  if (workers == 0) throw std::invalid_argument("ParallelAnalyzer: workers must be >= 1");
  workers_.reserve(workers);
  pending_.resize(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.push_back(std::make_unique<Worker>(telescope, tracker_config));
  }
  for (const auto& worker : workers_) {
    worker->thread = std::thread([w = worker.get()] {
      std::vector<Item> batch;
      for (;;) {
        {
          std::unique_lock lock(w->mutex);
          w->ready.wait(lock, [w] { return !w->queue.empty() || w->done; });
          if (w->queue.empty() && w->done) return;
          batch.swap(w->queue);
        }
        for (const auto& item : batch) {
          w->pipeline.feed_decoded(item.timestamp_us, item.frame);
        }
        batch.clear();
      }
    });
  }
}

ParallelAnalyzer::~ParallelAnalyzer() {
  if (!finished_) {
    // Abandon cleanly: wake workers and join.
    for (const auto& worker : workers_) {
      {
        const std::lock_guard lock(worker->mutex);
        worker->done = true;
      }
      worker->ready.notify_one();
    }
    for (const auto& worker : workers_) {
      if (worker->thread.joinable()) worker->thread.join();
    }
  }
}

void ParallelAnalyzer::flush(std::size_t index) {
  auto& batch = pending_[index];
  if (batch.empty()) return;
  auto& worker = *workers_[index];
  {
    const std::lock_guard lock(worker.mutex);
    worker.queue.insert(worker.queue.end(), std::make_move_iterator(batch.begin()),
                        std::make_move_iterator(batch.end()));
  }
  worker.ready.notify_one();
  batch.clear();
}

void ParallelAnalyzer::feed_frame(const net::RawFrame& frame) {
  auto decoded = net::decode_frame(frame.bytes);
  if (!decoded) {
    ++undecodable_;
    return;
  }
  // Same-source frames must land on the same worker (campaigns are
  // per-source); any stable hash works.
  const auto source = decoded->ip.source.value();
  const auto index = static_cast<std::size_t>(
      (static_cast<std::uint64_t>(source) * 0x9e3779b97f4a7c15ull) >> 32) %
      workers_.size();
  pending_[index].push_back({frame.timestamp_us, std::move(*decoded)});
  if (pending_[index].size() >= kBatch) flush(index);
}

PipelineResult ParallelAnalyzer::finish() {
  if (finished_) throw std::logic_error("ParallelAnalyzer::finish called twice");
  finished_ = true;

  for (std::size_t i = 0; i < workers_.size(); ++i) flush(i);
  for (const auto& worker : workers_) {
    {
      const std::lock_guard lock(worker->mutex);
      worker->done = true;
    }
    worker->ready.notify_one();
  }
  for (const auto& worker : workers_) worker->thread.join();

  PipelineResult merged;
  for (const auto& worker : workers_) {
    auto result = worker->pipeline.finish();
    merged.campaigns.insert(merged.campaigns.end(),
                            std::make_move_iterator(result.campaigns.begin()),
                            std::make_move_iterator(result.campaigns.end()));

    merged.sensor.scan_probes += result.sensor.scan_probes;
    merged.sensor.backscatter += result.sensor.backscatter;
    merged.sensor.xmas_or_null += result.sensor.xmas_or_null;
    merged.sensor.other_tcp += result.sensor.other_tcp;
    merged.sensor.udp += result.sensor.udp;
    merged.sensor.icmp += result.sensor.icmp;
    merged.sensor.not_monitored += result.sensor.not_monitored;
    merged.sensor.ingress_blocked += result.sensor.ingress_blocked;
    merged.sensor.malformed += result.sensor.malformed;
    merged.sensor.spoofed_source += result.sensor.spoofed_source;

    merged.tracker.probes += result.tracker.probes;
    merged.tracker.campaigns += result.tracker.campaigns;
    merged.tracker.subthreshold_flows += result.tracker.subthreshold_flows;
    merged.tracker.subthreshold_packets += result.tracker.subthreshold_packets;
  }
  merged.sensor.malformed += undecodable_;

  // Deterministic order regardless of worker count: by first packet,
  // then source. Campaign ids are re-issued to stay unique and ordered.
  std::sort(merged.campaigns.begin(), merged.campaigns.end(),
            [](const Campaign& a, const Campaign& b) {
              if (a.first_seen_us != b.first_seen_us) {
                return a.first_seen_us < b.first_seen_us;
              }
              return a.source < b.source;
            });
  std::uint64_t next_id = 1;
  for (auto& campaign : merged.campaigns) campaign.id = next_id++;
  return merged;
}

}  // namespace synscan::core
