#include "core/parallel.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/timer.h"

namespace synscan::core {

ParallelAnalyzer::ParallelAnalyzer(const telescope::Telescope& telescope,
                                   std::size_t workers, TrackerConfig tracker_config) {
  if (workers == 0) throw std::invalid_argument("ParallelAnalyzer: workers must be >= 1");
  workers_.reserve(workers);
  pending_.resize(workers);
  slice_rows_.resize(workers);
  // Pre-size the feeder batches: in steady state a batch fills to kBatch
  // and is flushed, so no push_back should ever reallocate. The
  // `parallel.feeder_reallocs` counter witnesses regressions.
  for (auto& batch : pending_) batch.reserve(kBatch);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.push_back(std::make_unique<Worker>(telescope, tracker_config));
  }
  if (obs::enabled()) {
    obs_batch_items_ = &obs::MetricsRegistry::global().histogram("parallel.batch_items");
  }
  for (const auto& worker : workers_) {
    worker->thread = std::thread([w = worker.get()] {
      std::vector<Item> batch;
      std::vector<Slice> slices;
      for (;;) {
        {
          UniqueLock lock(w->mutex);
          while (w->queue.empty() && w->slice_queue.empty() && !w->done) {
            w->ready.wait(lock);
          }
          if (w->queue.empty() && w->slice_queue.empty() && w->done) return;
          batch.swap(w->queue);
          slices.swap(w->slice_queue);
        }
        for (const auto& item : batch) {
          w->pipeline.feed_decoded(item.timestamp_us, item.frame);
        }
        for (const auto& slice : slices) {
          w->pipeline.feed_probe_rows(*slice.batch, slice.rows);
        }
        batch.clear();
        slices.clear();  // may drop the last reference to a shared batch
      }
    });
  }
}

ParallelAnalyzer::~ParallelAnalyzer() {
  if (!finished_) {
    // Abandon cleanly: wake workers and join.
    for (const auto& worker : workers_) {
      {
        const MutexLock lock(worker->mutex);
        worker->done = true;
      }
      worker->ready.notify_one();
    }
    for (const auto& worker : workers_) {
      if (worker->thread.joinable()) worker->thread.join();
    }
  }
}

void ParallelAnalyzer::flush(std::size_t index) {
  auto& batch = pending_[index];
  if (batch.empty()) return;
  if (obs_batch_items_ != nullptr) obs_batch_items_->observe(batch.size());
  auto& worker = *workers_[index];
  const auto batch_size = batch.size();
  {
    const MutexLock lock(worker.mutex);
    if (worker.queue.empty()) {
      // Hand the whole buffer over and take the drained one back: the
      // feeder and the worker ping-pong two buffers per lane, and no
      // Item is ever copied or moved element-by-element.
      worker.queue.swap(batch);
    } else {
      worker.queue.insert(worker.queue.end(), std::make_move_iterator(batch.begin()),
                          std::make_move_iterator(batch.end()));
      batch.clear();
    }
    worker.items += batch_size;
    ++worker.batches;
    worker.peak_queue =
        std::max(worker.peak_queue, worker.queue.size() + worker.slice_queue.size());
  }
  worker.ready.notify_one();
  if (batch.capacity() < kBatch) batch.reserve(kBatch);
}

void ParallelAnalyzer::feed_probes(const telescope::ProbeBatch& batch) {
  const auto n = batch.size();
  if (n == 0) return;
  // Bucket rows by owning worker. Same sharding as feed_decoded:
  // campaigns are per-source, so same-source rows must land together.
  for (std::size_t i = 0; i < n; ++i) {
    const auto source = batch.source[i];
    const auto index = static_cast<std::size_t>(
        (static_cast<std::uint64_t>(source) * 0x9e3779b97f4a7c15ull) >> 32) %
        workers_.size();
    slice_rows_[index].push_back(static_cast<std::uint32_t>(i));
  }
  // One columnar copy shares the batch with every worker (the caller's
  // buffer is recycled after this call returns); the slices alias it.
  const auto shared = std::make_shared<const telescope::ProbeBatch>(batch);
  for (std::size_t index = 0; index < workers_.size(); ++index) {
    auto& rows = slice_rows_[index];
    if (rows.empty()) continue;
    if (obs_batch_items_ != nullptr) obs_batch_items_->observe(rows.size());
    auto& worker = *workers_[index];
    const auto row_count = rows.size();
    {
      const MutexLock lock(worker.mutex);
      worker.slice_queue.push_back({shared, std::move(rows)});
      worker.items += row_count;
      ++worker.batches;
      worker.peak_queue =
          std::max(worker.peak_queue, worker.queue.size() + worker.slice_queue.size());
    }
    worker.ready.notify_one();
    ++slices_;
    rows = {};  // moved-from; make the scratch unambiguously empty
  }
}

void ParallelAnalyzer::absorb_sensor_counters(const telescope::SensorCounters& counters) {
  absorbed_.add(counters);
}

void ParallelAnalyzer::feed_frame(const net::RawFrame& frame) {
  auto decoded = net::decode_frame(frame.bytes);
  if (!decoded) {
    ++undecodable_;
    return;
  }
  feed_decoded(frame.timestamp_us, std::move(*decoded));
}

void ParallelAnalyzer::feed_decoded(net::TimeUs timestamp_us, net::DecodedFrame frame) {
  // Same-source frames must land on the same worker (campaigns are
  // per-source); any stable hash works.
  const auto source = frame.ip.source.value();
  const auto index = static_cast<std::size_t>(
      (static_cast<std::uint64_t>(source) * 0x9e3779b97f4a7c15ull) >> 32) %
      workers_.size();
  auto& batch = pending_[index];
  if (batch.size() == batch.capacity()) ++feeder_reallocs_;
  batch.push_back({timestamp_us, std::move(frame)});
  if (batch.size() >= kBatch) flush(index);
}

PipelineResult ParallelAnalyzer::finish() {
  if (finished_) throw std::logic_error("ParallelAnalyzer::finish called twice");
  finished_ = true;

  for (std::size_t i = 0; i < workers_.size(); ++i) flush(i);
  for (const auto& worker : workers_) {
    {
      const MutexLock lock(worker->mutex);
      worker->done = true;
    }
    worker->ready.notify_one();
  }
  for (const auto& worker : workers_) worker->thread.join();

  obs::ScopedTimer merge_timer("parallel.merge");
  PipelineResult merged;
  for (const auto& worker : workers_) {
    auto result = worker->pipeline.finish();
    merged.campaigns.insert(merged.campaigns.end(),
                            std::make_move_iterator(result.campaigns.begin()),
                            std::make_move_iterator(result.campaigns.end()));

    merged.sensor.add(result.sensor);

    merged.tracker.probes += result.tracker.probes;
    merged.tracker.campaigns += result.tracker.campaigns;
    merged.tracker.subthreshold_flows += result.tracker.subthreshold_flows;
    merged.tracker.subthreshold_packets += result.tracker.subthreshold_packets;
    merged.tracker.expired_flows += result.tracker.expired_flows;
    merged.tracker.sweeps += result.tracker.sweeps;
    merged.tracker.flow_reuses += result.tracker.flow_reuses;
    merged.tracker.dest_promotions += result.tracker.dest_promotions;
    merged.tracker.port_promotions += result.tracker.port_promotions;
    merged.tracker.table_rehashes += result.tracker.table_rehashes;
    // Worker flow tables are disjoint (per-source sharding), so the sum
    // of per-worker peaks bounds total simultaneous memory.
    merged.tracker.peak_open_flows += result.tracker.peak_open_flows;
  }
  merged.sensor.malformed += undecodable_;
  merged.sensor.add(absorbed_);

  // Deterministic order regardless of worker count: by first packet,
  // then source. Campaign ids are re-issued to stay unique and ordered.
  std::sort(merged.campaigns.begin(), merged.campaigns.end(),
            [](const Campaign& a, const Campaign& b) {
              if (a.first_seen_us != b.first_seen_us) {
                return a.first_seen_us < b.first_seen_us;
              }
              return a.source < b.source;
            });
  std::uint64_t next_id = 1;
  for (auto& campaign : merged.campaigns) campaign.id = next_id++;
  merge_timer.stop();

  if (obs::enabled()) {
    auto& registry = obs::MetricsRegistry::global();
    registry.gauge("parallel.workers").store(static_cast<std::int64_t>(workers_.size()));
    registry.counter("parallel.undecodable").add(undecodable_);
    registry.counter("parallel.feeder_reallocs").add(feeder_reallocs_);
    registry.counter("parallel.slices").add(slices_);
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      auto& worker = *workers_[i];
      // The workers are joined, so the lock is uncontended; taking it
      // anyway keeps the guarded reads visible to the analysis.
      std::uint64_t items = 0;
      std::uint64_t batches = 0;
      std::size_t peak_queue = 0;
      {
        const MutexLock lock(worker.mutex);
        items = worker.items;
        batches = worker.batches;
        peak_queue = worker.peak_queue;
      }
      registry.counter("parallel.items").add(items);
      registry.counter("parallel.batches").add(batches);
      registry.gauge("parallel.peak_queue")
          .record_max(static_cast<std::int64_t>(peak_queue));
      const auto prefix = "parallel.worker." + std::to_string(i);
      registry.counter(prefix + ".items").add(items);
      registry.gauge(prefix + ".peak_queue")
          .record_max(static_cast<std::int64_t>(peak_queue));
    }
  }
  return merged;
}

}  // namespace synscan::core
