#include "core/tracker.h"

#include <stdexcept>

namespace synscan::core {

CampaignTracker::CampaignTracker(TrackerConfig config, std::uint64_t monitored_addresses,
                                 Sink sink)
    : config_(config), model_(monitored_addresses), sink_(std::move(sink)) {
  if (!sink_) throw std::invalid_argument("CampaignTracker: sink must be callable");
}

void CampaignTracker::feed(const telescope::ScanProbe& probe) {
  ++counters_.probes;
  now_ = std::max(now_, probe.timestamp_us);

  auto [it, inserted] = flows_.try_emplace(probe.source);
  Flow& flow = it->second;
  if (inserted) {
    flow.first_seen_us = probe.timestamp_us;
    flow.evidence = fingerprint::ToolEvidence(config_.classifier);
    // The table only grows on insertion, so the high-water mark can
    // only move here — keeps the per-probe path free of it.
    counters_.peak_open_flows =
        std::max<std::uint64_t>(counters_.peak_open_flows, flows_.size());
  } else if (probe.timestamp_us - flow.last_seen_us > config_.expiry) {
    // The source went quiet for longer than the expiry: that scan is
    // over; what follows is a new one.
    close_flow(it->first, flow);
    ++counters_.expired_flows;
    flow = Flow{};
    flow.first_seen_us = probe.timestamp_us;
    flow.evidence = fingerprint::ToolEvidence(config_.classifier);
  }

  flow.last_seen_us = std::max(flow.last_seen_us, probe.timestamp_us);
  ++flow.packets;
  flow.destinations.insert(probe.destination.value());
  ++flow.port_packets[probe.destination_port];
  flow.evidence.observe(probe);

  if (++feeds_since_sweep_ >= config_.sweep_interval) {
    feeds_since_sweep_ = 0;
    sweep(now_);
  }
}

void CampaignTracker::close_flow(net::Ipv4Address source, Flow& flow) {
  const auto hits = static_cast<double>(flow.packets);
  const double duration = [&] {
    const auto us = flow.last_seen_us - flow.first_seen_us;
    return us < net::kMicrosPerSecond
               ? 1.0
               : static_cast<double>(us) / static_cast<double>(net::kMicrosPerSecond);
  }();
  const double pps = model_.extrapolate_pps(hits, duration);

  if (flow.destinations.size() >= config_.min_distinct_destinations &&
      pps >= config_.min_internet_pps) {
    Campaign campaign;
    campaign.id = next_id_++;
    campaign.source = source;
    campaign.first_seen_us = flow.first_seen_us;
    campaign.last_seen_us = flow.last_seen_us;
    campaign.packets = flow.packets;
    campaign.distinct_destinations = static_cast<std::uint32_t>(flow.destinations.size());
    campaign.port_packets = std::move(flow.port_packets);
    campaign.tool = flow.evidence.verdict();
    campaign.extrapolated_pps = pps;
    campaign.extrapolated_packets = model_.extrapolate_probes(hits);
    campaign.coverage_fraction =
        model_.coverage_fraction(static_cast<double>(flow.destinations.size()));
    ++counters_.campaigns;
    sink_(std::move(campaign));
  } else {
    ++counters_.subthreshold_flows;
    counters_.subthreshold_packets += flow.packets;
  }
}

void CampaignTracker::sweep(net::TimeUs now) {
  ++counters_.sweeps;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (now - it->second.last_seen_us > config_.expiry) {
      close_flow(it->first, it->second);
      ++counters_.expired_flows;
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
}

void CampaignTracker::finish() {
  for (auto& [source, flow] : flows_) {
    close_flow(source, flow);
  }
  flows_.clear();
}

std::vector<Campaign> CampaignTracker::collect(
    TrackerConfig config, std::uint64_t monitored_addresses,
    std::span<const telescope::ScanProbe> probes) {
  std::vector<Campaign> campaigns;
  CampaignTracker tracker(config, monitored_addresses,
                          [&](Campaign&& c) { campaigns.push_back(std::move(c)); });
  for (const auto& probe : probes) tracker.feed(probe);
  tracker.finish();
  return campaigns;
}

}  // namespace synscan::core
