#include "core/tracker.h"

#include <algorithm>
#include <stdexcept>

#include "telescope/probe_batch.h"

namespace synscan::core {

CampaignTracker::CampaignTracker(TrackerConfig config, std::uint64_t monitored_addresses,
                                 Sink sink)
    : config_(config), model_(monitored_addresses), sink_(std::move(sink)) {
  if (!sink_) throw std::invalid_argument("CampaignTracker: sink must be callable");
}

std::uint32_t CampaignTracker::acquire_flow() {
  if (!free_.empty()) {
    const auto index = free_.back();
    free_.pop_back();
    ++counters_.flow_reuses;
    return index;
  }
  pool_.emplace_back();
  return static_cast<std::uint32_t>(pool_.size() - 1);
}

void CampaignTracker::feed(const telescope::ScanProbe& probe) {
  ++counters_.probes;
  now_ = std::max(now_, probe.timestamp_us);

  auto [slot, inserted] = table_.find_or_insert(probe.source.value());
  if (inserted) {
    slot = acquire_flow();
    Flow& fresh = pool_[slot];
    fresh.reset(config_.classifier);
    fresh.first_seen_us = probe.timestamp_us;
    // The table only grows on insertion, so the high-water mark can
    // only move here — keeps the per-probe path free of it.
    counters_.peak_open_flows =
        std::max<std::uint64_t>(counters_.peak_open_flows, table_.size());
  }
  Flow& flow = pool_[slot];
  if (!inserted && probe.timestamp_us - flow.last_seen_us > config_.expiry) {
    // The source went quiet for longer than the expiry: that scan is
    // over; what follows is a new one. Reset in place — the containers
    // keep their backing stores (no realloc on restart).
    if (config_.carry_boundary_flows && carried_sources_.insert(probe.source.value())) {
      // The source's first flow in this shard: it may continue a
      // previous shard's open flow, so export it unjudged.
      export_segment(probe.source, flow, /*head=*/true, /*tail=*/false);
    } else {
      close_flow(probe.source, flow);
      ++counters_.expired_flows;
    }
    ++counters_.flow_reuses;
    flow.reset(config_.classifier);
    flow.first_seen_us = probe.timestamp_us;
  }

  flow.last_seen_us = std::max(flow.last_seen_us, probe.timestamp_us);
  ++flow.packets;
  if (flow.destinations.insert(probe.destination.value()) &&
      flow.destinations.size() == HybridU32Set::kInlineCapacity + 1) {
    ++counters_.dest_promotions;
  }
  if (flow.port_packets.add(probe.destination_port, 1) &&
      flow.port_packets.size() == PortPacketMap::kInlineCapacity + 1) {
    ++counters_.port_promotions;
  }
  flow.evidence.observe(probe);

  if (++feeds_since_sweep_ >= config_.sweep_interval) {
    feeds_since_sweep_ = 0;
    sweep(now_);
  }
  counters_.table_rehashes = table_.rehashes();
}

void CampaignTracker::feed_batch(const telescope::ProbeBatch& batch,
                                 std::span<const std::uint32_t> rows) {
  for (const auto row : rows) feed(batch.get(row));
}

void CampaignTracker::close_flow(net::Ipv4Address source, Flow& flow) {
  const auto hits = static_cast<double>(flow.packets);
  const double duration = [&] {
    const auto us = flow.last_seen_us - flow.first_seen_us;
    return us < net::kMicrosPerSecond
               ? 1.0
               : static_cast<double>(us) / static_cast<double>(net::kMicrosPerSecond);
  }();
  const double pps = model_.extrapolate_pps(hits, duration);

  if (flow.destinations.size() >= config_.min_distinct_destinations &&
      pps >= config_.min_internet_pps) {
    Campaign campaign;
    campaign.id = next_id_++;
    campaign.source = source;
    campaign.first_seen_us = flow.first_seen_us;
    campaign.last_seen_us = flow.last_seen_us;
    campaign.packets = flow.packets;
    campaign.distinct_destinations = static_cast<std::uint32_t>(flow.destinations.size());
    campaign.port_packets = std::move(flow.port_packets);
    campaign.tool = flow.evidence.verdict();
    campaign.extrapolated_pps = pps;
    campaign.extrapolated_packets = model_.extrapolate_probes(hits);
    campaign.coverage_fraction =
        model_.coverage_fraction(static_cast<double>(flow.destinations.size()));
    ++counters_.campaigns;
    sink_(std::move(campaign));
    // The move stole the port map's backing store (it now belongs to the
    // campaign); leave the flow coherent for its next reuse.
    flow.port_packets.clear();
  } else {
    ++counters_.subthreshold_flows;
    counters_.subthreshold_packets += flow.packets;
  }
}

void CampaignTracker::export_segment(net::Ipv4Address source, const Flow& flow,
                                     bool head, bool tail) {
  FlowSegment segment;
  segment.source = source;
  segment.head = head;
  segment.tail = tail;
  segment.first_seen_us = flow.first_seen_us;
  segment.last_seen_us = flow.last_seen_us;
  segment.packets = flow.packets;
  segment.destinations.reserve(flow.destinations.size());
  flow.destinations.for_each(
      [&](std::uint32_t dest) { segment.destinations.push_back(dest); });
  std::sort(segment.destinations.begin(), segment.destinations.end());
  segment.port_packets.reserve(flow.port_packets.size());
  for (const auto [port, packets] : flow.port_packets) {
    segment.port_packets.emplace_back(port, packets);
  }
  std::sort(segment.port_packets.begin(), segment.port_packets.end());
  segment.evidence = flow.evidence.state();
  segments_.push_back(std::move(segment));
}

void CampaignTracker::sweep(net::TimeUs now) {
  ++counters_.sweeps;
  // Collect first, erase after: backward-shift deletion moves entries
  // into already-visited slots, so erasing mid-iteration could skip or
  // revisit flows. The scratch vector keeps its capacity across sweeps.
  sweep_keys_.clear();
  table_.for_each([&](std::uint32_t source, std::uint32_t slot) {
    if (now - pool_[slot].last_seen_us > config_.expiry) sweep_keys_.push_back(source);
  });
  for (const auto source : sweep_keys_) {
    const auto* slot = table_.find(source);
    Flow& flow = pool_[*slot];
    if (config_.carry_boundary_flows && carried_sources_.insert(source)) {
      export_segment(net::Ipv4Address(source), flow, /*head=*/true, /*tail=*/false);
    } else {
      close_flow(net::Ipv4Address(source), flow);
      ++counters_.expired_flows;
    }
    flow.reset(config_.classifier);
    free_.push_back(*slot);
    table_.erase(source);
  }
}

void CampaignTracker::finish() {
  table_.for_each([&](std::uint32_t source, std::uint32_t slot) {
    Flow& flow = pool_[slot];
    if (config_.carry_boundary_flows) {
      // Every still-open flow may continue into the next shard; if no
      // earlier flow of this source closed inside the shard, it is also
      // the source's first (head and tail at once).
      const bool head = carried_sources_.insert(source);
      export_segment(net::Ipv4Address(source), flow, head, /*tail=*/true);
    } else {
      if (now_ - flow.last_seen_us > config_.expiry) ++counters_.expired_flows;
      close_flow(net::Ipv4Address(source), flow);
    }
    flow.reset(config_.classifier);
    free_.push_back(slot);
  });
  table_.clear();
}

std::vector<Campaign> CampaignTracker::collect(
    TrackerConfig config, std::uint64_t monitored_addresses,
    std::span<const telescope::ScanProbe> probes) {
  std::vector<Campaign> campaigns;
  CampaignTracker tracker(config, monitored_addresses,
                          [&](Campaign&& c) { campaigns.push_back(std::move(c)); });
  for (const auto& probe : probes) tracker.feed(probe);
  tracker.finish();
  return campaigns;
}

}  // namespace synscan::core
