#include "core/analysis_geo.h"

#include <algorithm>
#include <stdexcept>

namespace synscan::core {
namespace {

constexpr std::uint32_t port_country_key(std::uint16_t port,
                                         enrich::CountryCode country) noexcept {
  return (static_cast<std::uint32_t>(port) << 16) | country.packed();
}

std::vector<GeoTally::CountryShare> rank(std::vector<GeoTally::CountryShare> rows,
                                         std::uint64_t total, std::size_t n) {
  std::sort(rows.begin(), rows.end(),
            [](const GeoTally::CountryShare& a, const GeoTally::CountryShare& b) {
              return a.packets != b.packets ? a.packets > b.packets
                                            : a.country < b.country;
            });
  if (rows.size() > n) rows.resize(n);
  for (auto& row : rows) {
    row.share =
        total == 0 ? 0.0 : static_cast<double>(row.packets) / static_cast<double>(total);
  }
  return rows;
}

}  // namespace

void GeoTally::on_probe(const telescope::ScanProbe& probe) {
  const auto country = registry_->country_of(probe.source);
  ++total_;
  ++packets_per_country_[country.packed()];
  ++packets_per_port_country_[port_country_key(probe.destination_port, country)];
  packets_per_port_.add(probe.destination_port, 1);
}

void GeoTally::observe_batch(const telescope::ProbeBatch& batch,
                             std::span<const std::uint32_t> rows) {
  total_ += rows.size();
  for (const auto row : rows) {
    const auto source = batch.source[row];
    if (!memo_valid_ || source != memo_source_) {
      memo_country_ = registry_->country_of(net::Ipv4Address(source));
      memo_source_ = source;
      memo_valid_ = true;
    }
    const auto port = batch.destination_port[row];
    ++packets_per_country_[memo_country_.packed()];
    ++packets_per_port_country_[port_country_key(port, memo_country_)];
    packets_per_port_.add(port, 1);
  }
}

void GeoTally::merge(const GeoTally& other) {
  if (registry_ != other.registry_) {
    throw std::invalid_argument("GeoTally::merge: registry mismatch");
  }
  total_ += other.total_;
  other.packets_per_country_.for_each(
      [&](std::uint32_t packed, std::uint64_t packets) {
        packets_per_country_[packed] += packets;
      });
  other.packets_per_port_country_.for_each(
      [&](std::uint32_t key, std::uint64_t packets) {
        packets_per_port_country_[key] += packets;
      });
  for (const auto [port, packets] : other.packets_per_port_) {
    packets_per_port_.add(port, packets);
  }
}

std::vector<GeoTally::CountryShare> GeoTally::top_countries(std::size_t n) const {
  std::vector<CountryShare> rows;
  rows.reserve(packets_per_country_.size());
  for (const auto& [packed, packets] : packets_per_country_) {
    rows.push_back({enrich::CountryCode::from_packed(static_cast<std::uint16_t>(packed)),
                    packets, 0.0});
  }
  return rank(std::move(rows), total_, n);
}

double GeoTally::country_share(enrich::CountryCode country) const {
  const auto* packets = packets_per_country_.find(country.packed());
  if (packets == nullptr || total_ == 0) return 0.0;
  return static_cast<double>(*packets) / static_cast<double>(total_);
}

// The result is a one-shot summary; see the header for why the std map
// type stays.  synscan-lint: allow-file(hot-path-container)
std::unordered_map<enrich::CountryCode, std::uint32_t> GeoTally::dominated_ports(
    double threshold, std::uint64_t min_packets) const {
  std::unordered_map<enrich::CountryCode, std::uint32_t> dominated;
  for (const auto& [port, port_total] : packets_per_port_) {
    if (port_total < min_packets) continue;
    for (const auto& [packed, unused] : packets_per_country_) {
      const auto country =
          enrich::CountryCode::from_packed(static_cast<std::uint16_t>(packed));
      const auto* packets =
          packets_per_port_country_.find(port_country_key(port, country));
      if (packets == nullptr) continue;
      if (static_cast<double>(*packets) > threshold * static_cast<double>(port_total)) {
        ++dominated[country];
        break;  // at most one country can exceed a >50% threshold
      }
    }
  }
  return dominated;
}

std::vector<GeoTally::CountryShare> GeoTally::port_country_mix(std::uint16_t port,
                                                               std::size_t n) const {
  std::vector<CountryShare> rows;
  std::uint64_t port_total = 0;
  for (const auto& [packed, unused] : packets_per_country_) {
    const auto country =
        enrich::CountryCode::from_packed(static_cast<std::uint16_t>(packed));
    const auto* packets = packets_per_port_country_.find(port_country_key(port, country));
    if (packets == nullptr) continue;
    rows.push_back({country, *packets, 0.0});
    port_total += *packets;
  }
  return rank(std::move(rows), port_total, n);
}

std::vector<GeoTally::NormalizedIntensity> GeoTally::normalized_intensity(
    const enrich::InternetRegistry& registry, std::size_t n) const {
  FlatHashMap<std::uint32_t, std::uint64_t> addresses;
  for (const auto& record : registry.records()) {
    addresses[record.country.packed()] += record.prefix.size();
  }
  std::vector<NormalizedIntensity> rows;
  for (const auto& [packed, packets] : packets_per_country_) {
    const auto* allocation = addresses.find(packed);
    if (allocation == nullptr || *allocation == 0) continue;
    NormalizedIntensity row;
    row.country = enrich::CountryCode::from_packed(static_cast<std::uint16_t>(packed));
    row.packets = packets;
    row.addresses = *allocation;
    row.packets_per_k_addresses =
        static_cast<double>(packets) * 1000.0 / static_cast<double>(*allocation);
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(),
            [](const NormalizedIntensity& a, const NormalizedIntensity& b) {
              return a.packets_per_k_addresses > b.packets_per_k_addresses;
            });
  if (rows.size() > n) rows.resize(n);
  return rows;
}

std::vector<GeoTally::CountryShare> campaign_country_shares(
    std::span<const Campaign> campaigns, const enrich::InternetRegistry& registry,
    std::size_t n) {
  FlatHashMap<std::uint32_t, std::uint64_t> counts;
  for (const auto& campaign : campaigns) {
    ++counts[registry.country_of(campaign.source).packed()];
  }
  std::vector<GeoTally::CountryShare> rows;
  rows.reserve(counts.size());
  for (const auto& [packed, scans] : counts) {
    rows.push_back({enrich::CountryCode::from_packed(static_cast<std::uint16_t>(packed)),
                    scans, 0.0});
  }
  std::sort(rows.begin(), rows.end(),
            [](const GeoTally::CountryShare& a, const GeoTally::CountryShare& b) {
              return a.packets != b.packets ? a.packets > b.packets
                                            : a.country < b.country;
            });
  if (rows.size() > n) rows.resize(n);
  for (auto& row : rows) {
    row.share = campaigns.empty() ? 0.0
                                  : static_cast<double>(row.packets) /
                                        static_cast<double>(campaigns.size());
  }
  return rows;
}

}  // namespace synscan::core
