#include "core/analysis_geo.h"

#include <algorithm>

namespace synscan::core {
namespace {

constexpr std::uint32_t port_country_key(std::uint16_t port,
                                         enrich::CountryCode country) noexcept {
  return (static_cast<std::uint32_t>(port) << 16) | country.packed();
}

std::vector<GeoTally::CountryShare> rank(
    const std::unordered_map<enrich::CountryCode, std::uint64_t>& counts,
    std::uint64_t total, std::size_t n) {
  std::vector<GeoTally::CountryShare> rows;
  rows.reserve(counts.size());
  for (const auto& [country, packets] : counts) rows.push_back({country, packets, 0.0});
  std::sort(rows.begin(), rows.end(),
            [](const GeoTally::CountryShare& a, const GeoTally::CountryShare& b) {
              return a.packets != b.packets ? a.packets > b.packets
                                            : a.country < b.country;
            });
  if (rows.size() > n) rows.resize(n);
  for (auto& row : rows) {
    row.share =
        total == 0 ? 0.0 : static_cast<double>(row.packets) / static_cast<double>(total);
  }
  return rows;
}

}  // namespace

void GeoTally::on_probe(const telescope::ScanProbe& probe) {
  const auto country = registry_->country_of(probe.source);
  ++total_;
  ++packets_per_country_[country];
  ++packets_per_port_country_[port_country_key(probe.destination_port, country)];
  ++packets_per_port_[probe.destination_port];
}

std::vector<GeoTally::CountryShare> GeoTally::top_countries(std::size_t n) const {
  return rank(packets_per_country_, total_, n);
}

double GeoTally::country_share(enrich::CountryCode country) const {
  const auto it = packets_per_country_.find(country);
  if (it == packets_per_country_.end() || total_ == 0) return 0.0;
  return static_cast<double>(it->second) / static_cast<double>(total_);
}

std::unordered_map<enrich::CountryCode, std::uint32_t> GeoTally::dominated_ports(
    double threshold, std::uint64_t min_packets) const {
  std::unordered_map<enrich::CountryCode, std::uint32_t> dominated;
  for (const auto& [port, port_total] : packets_per_port_) {
    if (port_total < min_packets) continue;
    for (const auto& [country, packets] : packets_per_country_) {
      const auto it = packets_per_port_country_.find(port_country_key(port, country));
      if (it == packets_per_port_country_.end()) continue;
      if (static_cast<double>(it->second) >
          threshold * static_cast<double>(port_total)) {
        ++dominated[country];
        break;  // at most one country can exceed a >50% threshold
      }
    }
  }
  return dominated;
}

std::vector<GeoTally::CountryShare> GeoTally::port_country_mix(std::uint16_t port,
                                                               std::size_t n) const {
  std::unordered_map<enrich::CountryCode, std::uint64_t> counts;
  std::uint64_t port_total = 0;
  for (const auto& [country, unused] : packets_per_country_) {
    const auto it = packets_per_port_country_.find(port_country_key(port, country));
    if (it == packets_per_port_country_.end()) continue;
    counts[country] = it->second;
    port_total += it->second;
  }
  return rank(counts, port_total, n);
}

std::vector<GeoTally::NormalizedIntensity> GeoTally::normalized_intensity(
    const enrich::InternetRegistry& registry, std::size_t n) const {
  std::unordered_map<enrich::CountryCode, std::uint64_t> addresses;
  for (const auto& record : registry.records()) {
    addresses[record.country] += record.prefix.size();
  }
  std::vector<NormalizedIntensity> rows;
  for (const auto& [country, packets] : packets_per_country_) {
    const auto it = addresses.find(country);
    if (it == addresses.end() || it->second == 0) continue;
    NormalizedIntensity row;
    row.country = country;
    row.packets = packets;
    row.addresses = it->second;
    row.packets_per_k_addresses =
        static_cast<double>(packets) * 1000.0 / static_cast<double>(it->second);
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(),
            [](const NormalizedIntensity& a, const NormalizedIntensity& b) {
              return a.packets_per_k_addresses > b.packets_per_k_addresses;
            });
  if (rows.size() > n) rows.resize(n);
  return rows;
}

std::vector<GeoTally::CountryShare> campaign_country_shares(
    std::span<const Campaign> campaigns, const enrich::InternetRegistry& registry,
    std::size_t n) {
  std::unordered_map<enrich::CountryCode, std::uint64_t> counts;
  for (const auto& campaign : campaigns) {
    ++counts[registry.country_of(campaign.source)];
  }
  std::vector<GeoTally::CountryShare> rows;
  rows.reserve(counts.size());
  for (const auto& [country, scans] : counts) rows.push_back({country, scans, 0.0});
  std::sort(rows.begin(), rows.end(),
            [](const GeoTally::CountryShare& a, const GeoTally::CountryShare& b) {
              return a.packets != b.packets ? a.packets > b.packets
                                            : a.country < b.country;
            });
  if (rows.size() > n) rows.resize(n);
  for (auto& row : rows) {
    row.share = campaigns.empty() ? 0.0
                                  : static_cast<double>(row.packets) /
                                        static_cast<double>(campaigns.size());
  }
  return rows;
}

}  // namespace synscan::core
