#include "core/daily_series.h"

#include <algorithm>
#include <stdexcept>

namespace synscan::core {

void DailyPortSeries::on_probe(const telescope::ScanProbe& probe) {
  const auto day =
      probe.timestamp_us <= origin_
          ? std::size_t{0}
          : static_cast<std::size_t>((probe.timestamp_us - origin_) / net::kMicrosPerDay);
  max_day_ = std::max(max_day_, day);
  ++counts_[(static_cast<std::uint64_t>(probe.destination_port) << 32) | day];
  ++day_totals_[static_cast<std::uint32_t>(day)];
}

void DailyPortSeries::observe_batch(const telescope::ProbeBatch& batch,
                                    std::span<const std::uint32_t> rows) {
  for (const auto row : rows) {
    const auto t = batch.timestamp_us[row];
    const auto day = t <= origin_ ? std::size_t{0}
                                  : static_cast<std::size_t>((t - origin_) /
                                                             net::kMicrosPerDay);
    max_day_ = std::max(max_day_, day);
    ++counts_[(static_cast<std::uint64_t>(batch.destination_port[row]) << 32) | day];
    ++day_totals_[static_cast<std::uint32_t>(day)];
  }
}

void DailyPortSeries::merge(const DailyPortSeries& other) {
  if (origin_ != other.origin_) {
    throw std::invalid_argument("DailyPortSeries::merge: origin mismatch");
  }
  max_day_ = std::max(max_day_, other.max_day_);
  other.counts_.for_each(
      [&](std::uint64_t key, std::uint64_t count) { counts_[key] += count; });
  other.day_totals_.for_each(
      [&](std::uint32_t day, std::uint64_t count) { day_totals_[day] += count; });
}

std::vector<std::uint64_t> DailyPortSeries::series(std::uint16_t port) const {
  std::vector<std::uint64_t> out(days(), 0);
  for (std::size_t day = 0; day < out.size(); ++day) {
    const auto* count = counts_.find((static_cast<std::uint64_t>(port) << 32) | day);
    if (count != nullptr) out[day] = *count;
  }
  return out;
}

std::vector<std::uint64_t> DailyPortSeries::totals() const {
  std::vector<std::uint64_t> out(days(), 0);
  for (const auto& [day, count] : day_totals_) out[day] = count;
  return out;
}

DisclosureDecay disclosure_decay(const DailyPortSeries& series, std::uint16_t port,
                                 std::size_t disclosure_day, std::size_t baseline_days,
                                 double recovered_threshold, std::size_t ks_window) {
  DisclosureDecay decay;
  decay.port = port;
  decay.disclosure_day = disclosure_day;

  const auto daily = series.series(port);
  if (daily.empty() || disclosure_day >= daily.size()) return decay;

  // Baseline: mean daily activity over the window before the event.
  const std::size_t baseline_start =
      disclosure_day > baseline_days ? disclosure_day - baseline_days : 0;
  double baseline_sum = 0.0;
  std::size_t baseline_n = 0;
  std::vector<double> baseline_sample;
  for (std::size_t day = baseline_start; day < disclosure_day; ++day) {
    baseline_sum += static_cast<double>(daily[day]);
    baseline_sample.push_back(static_cast<double>(daily[day]));
    ++baseline_n;
  }
  // A port can be entirely quiet before its disclosure; a one-packet/day
  // floor keeps multipliers finite and comparable across events.
  const double baseline = std::max(1.0, baseline_n ? baseline_sum / static_cast<double>(baseline_n) : 1.0);

  decay.multiplier.reserve(daily.size() - disclosure_day);
  for (std::size_t day = disclosure_day; day < daily.size(); ++day) {
    const double m = static_cast<double>(daily[day]) / baseline;
    decay.multiplier.push_back(m);
    if (m > decay.peak_multiplier) {
      decay.peak_multiplier = m;
      decay.peak_day_after = day - disclosure_day;
    }
  }

  for (std::size_t i = decay.peak_day_after + 1; i < decay.multiplier.size(); ++i) {
    if (decay.multiplier[i] <= recovered_threshold) {
      decay.days_to_recover = i;
      break;
    }
  }

  // "Back to normal": compare the tail window against the baseline
  // sample. A high p-value means the distributions are indistinguishable.
  std::vector<double> tail_sample;
  const std::size_t tail_start =
      daily.size() > ks_window ? daily.size() - ks_window : 0;
  for (std::size_t day = std::max(tail_start, disclosure_day); day < daily.size(); ++day) {
    tail_sample.push_back(static_cast<double>(daily[day]));
  }
  if (!baseline_sample.empty() && !tail_sample.empty()) {
    decay.back_to_normal = stats::kolmogorov_smirnov(baseline_sample, tail_sample);
  }
  return decay;
}

}  // namespace synscan::core
