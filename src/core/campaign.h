// The scan-campaign record — the unit of analysis of the whole paper.
#pragma once

#include <cstdint>
#include <vector>

#include "core/port_map.h"
#include "fingerprint/tool.h"
#include "net/packet.h"

namespace synscan::core {

/// A finalized scan campaign: a sequence of probes from one source that
/// met the §3.4 thresholds (>= 100 distinct dark destinations at an
/// inferred Internet-wide rate of >= 100 pps, with no gap above 1 hour).
struct Campaign {
  std::uint64_t id = 0;
  net::Ipv4Address source;
  net::TimeUs first_seen_us = 0;
  net::TimeUs last_seen_us = 0;
  std::uint64_t packets = 0;
  std::uint32_t distinct_destinations = 0;
  /// Probe count per targeted destination port. Flat inline-first map:
  /// no heap for the (dominant) few-port campaigns, open addressing for
  /// vertical scans. Iteration yields `(port, packets)` pairs like the
  /// `unordered_map` it replaced.
  PortPacketMap port_packets;
  fingerprint::Tool tool = fingerprint::Tool::kUnknown;

  // Derived at finalization time from the telescope's geometric model:
  double extrapolated_pps = 0.0;       ///< inferred Internet-wide probe rate
  double coverage_fraction = 0.0;      ///< inferred fraction of IPv4 covered
  double extrapolated_packets = 0.0;   ///< inferred Internet-wide probe count

  /// Campaign lifetime in seconds, floored at 1 s so single-burst
  /// campaigns have a defined rate.
  [[nodiscard]] double duration_seconds() const noexcept {
    const auto us = last_seen_us - first_seen_us;
    return us < net::kMicrosPerSecond
               ? 1.0
               : static_cast<double>(us) / static_cast<double>(net::kMicrosPerSecond);
  }

  /// Number of distinct destination ports targeted.
  [[nodiscard]] std::size_t distinct_ports() const noexcept { return port_packets.size(); }

  /// Whether the campaign probed `port` at least once.
  [[nodiscard]] bool targets_port(std::uint16_t port) const noexcept {
    return port_packets.contains(port);
  }

  /// Estimated wire speed in megabits/second, assuming minimum-size SYN
  /// frames (60 bytes on the wire).
  [[nodiscard]] double speed_mbps() const noexcept {
    return extrapolated_pps * 60.0 * 8.0 / 1e6;
  }
};

}  // namespace synscan::core
