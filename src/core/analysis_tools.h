// Tool-usage analyses: the per-port tool mix of Fig. 4 and the
// tool-country bias of §6.5.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "core/campaign.h"
#include "enrich/registry.h"
#include "fingerprint/tool.h"

namespace synscan::core {

/// Traffic mix of one port across the fingerprinted tools.
struct PortToolMix {
  std::uint16_t port = 0;
  std::uint64_t packets = 0;
  /// Packet share per tool on this port (indexed by tool_index).
  std::array<double, fingerprint::kToolCount> tool_share{};
};

/// Per-port tool mixes for the `n` ports with the most campaign traffic
/// (Fig. 4 uses the top 10). Packet attribution is campaign-level: each
/// campaign's per-port packets are charged to the campaign's tool.
[[nodiscard]] std::vector<PortToolMix> port_tool_mix(std::span<const Campaign> campaigns,
                                                     std::size_t n);

/// Country mix of campaigns run with one tool (§6.5: ZMap almost
/// exclusively from China and the US; Russia running >80% of Masscan
/// scans in 2018).
struct ToolCountryShare {
  enrich::CountryCode country;
  std::uint64_t scans = 0;
  double share = 0.0;
};

[[nodiscard]] std::vector<ToolCountryShare> tool_country_mix(
    std::span<const Campaign> campaigns, const enrich::InternetRegistry& registry,
    fingerprint::Tool tool, std::size_t n);

}  // namespace synscan::core
