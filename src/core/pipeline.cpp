#include "core/pipeline.h"

namespace synscan::core {

Pipeline::Pipeline(const telescope::Telescope& telescope, TrackerConfig tracker_config)
    : telescope_(&telescope),
      sensor_(telescope),
      tracker_(tracker_config, telescope.monitored_count(),
               [this](Campaign&& campaign) { campaigns_.push_back(std::move(campaign)); }) {}

void Pipeline::add_observer(ProbeObserver& observer) { observers_.push_back(&observer); }

void Pipeline::feed_frame(const net::RawFrame& frame) {
  telescope::ScanProbe probe;
  if (sensor_.classify(frame, probe) == telescope::FrameClass::kScanProbe) {
    feed_probe(probe);
  }
}

void Pipeline::feed_decoded(net::TimeUs timestamp_us, const net::DecodedFrame& frame) {
  telescope::ScanProbe probe;
  if (sensor_.classify_decoded(timestamp_us, frame, probe) ==
      telescope::FrameClass::kScanProbe) {
    feed_probe(probe);
  }
}

void Pipeline::feed_probe(const telescope::ScanProbe& probe) {
  for (auto* observer : observers_) observer->on_probe(probe);
  tracker_.feed(probe);
}

PipelineResult Pipeline::finish() {
  tracker_.finish();
  PipelineResult result;
  result.campaigns = std::move(campaigns_);
  result.sensor = sensor_.counters();
  result.tracker = tracker_.counters();
  campaigns_.clear();
  return result;
}

}  // namespace synscan::core
