#include "core/pipeline.h"

#include <algorithm>

#include "obs/timer.h"

namespace synscan::core {

Pipeline::Pipeline(const telescope::Telescope& telescope, TrackerConfig tracker_config)
    : telescope_(&telescope),
      sensor_(telescope),
      tracker_(tracker_config, telescope.monitored_count(),
               [this](Campaign&& campaign) { campaigns_.push_back(std::move(campaign)); }) {
  if (obs::enabled()) {
    auto& registry = obs::MetricsRegistry::global();
    obs_frames_ = &registry.counter("pipeline.frames");
    obs_probes_ = &registry.counter("pipeline.probes");
    obs_batches_ = &registry.counter("pipeline.batches");
  }
}

void Pipeline::add_observer(ProbeObserver& observer) { observers_.push_back(&observer); }

void Pipeline::feed_frame(const net::RawFrame& frame) {
  if (obs_frames_ != nullptr) obs_frames_->add();
  telescope::ScanProbe probe;
  if (sensor_.classify(frame, probe) == telescope::FrameClass::kScanProbe) {
    feed_probe(probe);
  }
}

void Pipeline::feed_decoded(net::TimeUs timestamp_us, const net::DecodedFrame& frame) {
  if (obs_frames_ != nullptr) obs_frames_->add();
  telescope::ScanProbe probe;
  if (sensor_.classify_decoded(timestamp_us, frame, probe) ==
      telescope::FrameClass::kScanProbe) {
    feed_probe(probe);
  }
}

void Pipeline::feed_probe(const telescope::ScanProbe& probe) {
  if (obs_probes_ != nullptr) obs_probes_->add();
  for (auto* observer : observers_) observer->on_probe(probe);
  tracker_.feed(probe);
}

void Pipeline::feed_probes(const telescope::ProbeBatch& batch) {
  const auto n = batch.size();
  if (n == 0) return;
  // The identity slice [0, n) is built once and reused; ingest batches
  // have a fixed row budget, so this settles after the first call.
  if (identity_rows_.size() < n) {
    const auto old = static_cast<std::uint32_t>(identity_rows_.size());
    identity_rows_.resize(n);
    for (std::uint32_t i = old; i < n; ++i) identity_rows_[i] = i;
  }
  feed_probe_rows(batch, std::span(identity_rows_.data(), n));
}

void Pipeline::feed_probe_rows(const telescope::ProbeBatch& batch,
                               std::span<const std::uint32_t> rows) {
  if (rows.empty()) return;
  if (obs_probes_ != nullptr) obs_probes_->add(rows.size());
  if (obs_batches_ != nullptr) obs_batches_->add();
  for (auto* observer : observers_) observer->observe_batch(batch, rows);
  tracker_.feed_batch(batch, rows);
}

void Pipeline::absorb_sensor_counters(const telescope::SensorCounters& counters) {
  absorbed_.add(counters);
}

PipelineResult Pipeline::finish() {
  {
    obs::ScopedTimer finish_timer("pipeline.finish");
    tracker_.finish();
  }
  PipelineResult result;
  result.campaigns = std::move(campaigns_);
  // Canonical order, matching ParallelAnalyzer::finish(): closure order
  // depends on sweep scheduling and flow-table layout; reports must not.
  std::sort(result.campaigns.begin(), result.campaigns.end(),
            [](const Campaign& a, const Campaign& b) {
              if (a.first_seen_us != b.first_seen_us) {
                return a.first_seen_us < b.first_seen_us;
              }
              return a.source < b.source;
            });
  std::uint64_t next_id = 1;
  for (auto& campaign : result.campaigns) campaign.id = next_id++;
  result.sensor = sensor_.counters();
  result.sensor.add(absorbed_);
  result.tracker = tracker_.counters();
  campaigns_.clear();
  return result;
}

}  // namespace synscan::core
