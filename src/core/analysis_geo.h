// Geographic attribution (§4.2, §5.4): country shares of scanning and
// country-port targeting bias.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>  // synscan-lint: allow(hot-path-container) — dominated_ports result type only
#include <vector>

#include "core/campaign.h"
#include "core/flat_map.h"
#include "core/observers.h"
#include "core/port_map.h"
#include "enrich/registry.h"

namespace synscan::core {

/// Streaming accumulator of per-country and per-(port, country) traffic.
class GeoTally final : public ProbeObserver {
 public:
  explicit GeoTally(const enrich::InternetRegistry& registry) : registry_(&registry) {}

  void on_probe(const telescope::ScanProbe& probe) override;

  /// Column-direct tally with a one-entry source→country memo (probes
  /// arrive in per-source bursts). Bit-identical to `on_probe`.
  void observe_batch(const telescope::ProbeBatch& batch,
                     std::span<const std::uint32_t> rows) override;

  /// Folds another tally in (order-independent sums, so shard merges
  /// equal whole-capture tallying). Both tallies must be bound to the
  /// same registry; throws `std::invalid_argument` otherwise.
  void merge(const GeoTally& other);

  /// A country's share of the total packet volume.
  struct CountryShare {
    enrich::CountryCode country;
    std::uint64_t packets = 0;
    double share = 0.0;
  };

  /// Countries ranked by packet volume.
  [[nodiscard]] std::vector<CountryShare> top_countries(std::size_t n) const;

  /// Packet share of one country.
  [[nodiscard]] double country_share(enrich::CountryCode country) const;

  /// Ports where a single country originates more than `threshold` of
  /// the packets (the §5.4 "China > 80% on 14,444 ports" census).
  /// Returns, per country, the number of such dominated ports; only
  /// ports with at least `min_packets` are considered. The result is a
  /// one-shot summary handed to report code, so the std map type stays.
  // synscan-lint: allow(hot-path-container)
  [[nodiscard]] std::unordered_map<enrich::CountryCode, std::uint32_t> dominated_ports(
      double threshold = 0.8, std::uint64_t min_packets = 10) const;

  /// The country mix on one port, ranked by packets.
  [[nodiscard]] std::vector<CountryShare> port_country_mix(std::uint16_t port,
                                                           std::size_t n) const;

  /// §4.2: packets normalized by a country's allocated address space
  /// (packets per thousand addresses). Under this lens the historically
  /// "aggressive" countries stop standing out and the Netherlands — with
  /// its small allocation but big hosting business — tops the list.
  struct NormalizedIntensity {
    enrich::CountryCode country;
    std::uint64_t packets = 0;
    std::uint64_t addresses = 0;
    double packets_per_k_addresses = 0.0;
  };
  [[nodiscard]] std::vector<NormalizedIntensity> normalized_intensity(
      const enrich::InternetRegistry& registry, std::size_t n) const;

  [[nodiscard]] std::uint64_t total_packets() const noexcept { return total_; }

 private:
  const enrich::InternetRegistry* registry_;
  // Last resolved source, carried across batches.
  std::uint32_t memo_source_ = 0;
  enrich::CountryCode memo_country_;
  bool memo_valid_ = false;
  // Keyed by CountryCode::packed(); per-probe tallies use the flat
  // accumulator maps (docs/PERFORMANCE.md).
  FlatHashMap<std::uint32_t, std::uint64_t> packets_per_country_;
  // (port << 16) | packed country works poorly since packed country is
  // 16 bits of char data; key is (port << 16) ^ packed, collision-free
  // because port and packed occupy disjoint halves of the 32-bit key.
  FlatHashMap<std::uint32_t, std::uint64_t> packets_per_port_country_;
  PortPacketMap packets_per_port_;
  std::uint64_t total_ = 0;

  friend struct RollupTallyIo;  ///< `.spr` serialization (rollup_store.cpp)
};

/// Country shares weighted by campaigns instead of packets.
[[nodiscard]] std::vector<GeoTally::CountryShare> campaign_country_shares(
    std::span<const Campaign> campaigns, const enrich::InternetRegistry& registry,
    std::size_t n);

}  // namespace synscan::core
