// A full capture analysis as one resident, const-queryable value.
//
// `analyze_capture` is the one shared definition of "run the paper's
// analysis over a capture": batched ingest (mmap + `.spc` cache) feeding
// the campaign pipeline plus the standard streaming observers (ports,
// scanner types, geography). The CLI `analyze` command and the
// `synscand` daemon both call it; the daemon keeps the returned
// `AnalyzedCapture` resident behind a shared_ptr and serves concurrent
// queries from it, so every query entry point takes `const&` — nothing
// here mutates after the analysis finishes.
#pragma once

#include <cstdint>
#include <filesystem>

#include "core/analysis_geo.h"
#include "core/analysis_types.h"
#include "core/ingest.h"
#include "core/pipeline.h"
#include "core/port_tally.h"
#include "enrich/registry.h"
#include "pcap/pcap.h"
#include "telescope/telescope.h"

namespace synscan::core {

/// Everything one analysis pass over a capture produces. Immutable once
/// returned: queries (reports, JSON emission) only ever read it, which
/// is what makes concurrent daemon queries against a shared instance
/// safe without locks.
struct AnalyzedCapture {
  explicit AnalyzedCapture(const enrich::InternetRegistry& registry)
      : types(registry), geo(registry) {}

  PipelineResult result;
  PortTally ports;
  TypeTally types;
  GeoTally geo;
  std::uint64_t frames = 0;
  pcap::ReadStatus final_status = pcap::ReadStatus::kEndOfFile;
  bool from_cache = false;  ///< probes came from a validated `.spc` cache
};

/// Replays `path` through the pipeline with all standard observers.
/// `workers <= 1` runs the serial pipeline; otherwise campaign tracking
/// is sharded by source across a `ParallelAnalyzer` while the streaming
/// observers consume the same batches in file order on the feeder.
/// The telescope and registry must outlive the returned value.
[[nodiscard]] AnalyzedCapture analyze_capture(const std::filesystem::path& path,
                                              const telescope::Telescope& telescope,
                                              const enrich::InternetRegistry& registry,
                                              std::size_t workers,
                                              const IngestOptions& options);

}  // namespace synscan::core
