#include "core/analysis_summary.h"

namespace synscan::core {

YearlySummary yearly_summary(int year, double window_days, const PortTally& tally,
                             std::span<const Campaign> campaigns, std::size_t top_n) {
  YearlySummary summary;
  summary.year = year;
  summary.window_days = window_days;
  summary.total_packets = tally.total_packets();
  summary.packets_per_day =
      window_days > 0 ? static_cast<double>(summary.total_packets) / window_days : 0.0;
  summary.total_scans = campaigns.size();
  summary.scans_per_month =
      window_days > 0
          ? static_cast<double>(summary.total_scans) / window_days * 30.44
          : 0.0;
  summary.distinct_sources = tally.total_sources();
  summary.mean_packets_per_scan =
      campaigns.empty()
          ? 0.0
          : static_cast<double>(summary.total_packets) /
                static_cast<double>(campaigns.size());
  summary.top_ports_by_packets = tally.top_ports_by_packets(top_n);
  summary.top_ports_by_sources = tally.top_ports_by_sources(top_n);
  summary.top_ports_by_scans = top_ports_by_scans(campaigns, top_n);
  summary.tools = tool_shares(campaigns);
  return summary;
}

}  // namespace synscan::core
