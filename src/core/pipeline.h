// The end-to-end pipeline: frames -> sensor -> campaign tracker and
// streaming observers -> finalized campaigns.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/observers.h"
#include "core/tracker.h"
#include "obs/metrics.h"
#include "telescope/probe_batch.h"
#include "telescope/sensor.h"
#include "telescope/telescope.h"

namespace synscan::core {

/// Everything a pipeline run produces.
struct PipelineResult {
  std::vector<Campaign> campaigns;
  telescope::SensorCounters sensor;
  TrackerCounters tracker;
};

/// Single-pass analysis driver. Attach observers, feed frames (or
/// pre-sensed probes), then call `finish()` exactly once.
class Pipeline {
 public:
  Pipeline(const telescope::Telescope& telescope, TrackerConfig tracker_config = {});
  /// The pipeline keeps a pointer; a temporary telescope would dangle.
  Pipeline(const telescope::Telescope&&, TrackerConfig = {}) = delete;

  /// Registers a streaming observer; not owned, must outlive the run.
  void add_observer(ProbeObserver& observer);

  /// Feeds one raw frame through sensor, observers and tracker.
  void feed_frame(const net::RawFrame& frame);

  /// Feeds an already decoded frame (generator fast path).
  void feed_decoded(net::TimeUs timestamp_us, const net::DecodedFrame& frame);

  /// Feeds a probe that already passed a sensor (e.g. loaded from a
  /// probe log). Observers and tracker see it; sensor counters do not.
  void feed_probe(const telescope::ScanProbe& probe);

  /// Feeds a whole batch of pre-sensed probes (the batched ingest path).
  /// Observers see the batch through `observe_batch`; the tracker feeds
  /// row by row (its state machine is inherently per-probe).
  void feed_probes(const telescope::ProbeBatch& batch);

  /// Feeds a slice of a batch: the rows listed in `rows`, in order. This
  /// is the parallel path — workers receive index slices into a shared
  /// batch instead of per-probe copies. The batch (and `rows`) are only
  /// borrowed for the duration of the call.
  void feed_probe_rows(const telescope::ProbeBatch& batch,
                       std::span<const std::uint32_t> rows);

  /// Folds counters from an external front-end sensor (the batched
  /// ingest classifies on the feeder, not here) into `finish()`'s result.
  void absorb_sensor_counters(const telescope::SensorCounters& counters);

  /// Flushes the tracker and returns all results. Campaigns come back in
  /// canonical order — by first packet, then source, ids re-issued 1..N —
  /// the same order `ParallelAnalyzer::finish()` produces, so reports are
  /// identical whatever the worker count.
  [[nodiscard]] PipelineResult finish();

  /// Carry mode only (TrackerConfig::carry_boundary_flows): moves out the
  /// boundary flow segments the tracker exported. Call after `finish()`.
  [[nodiscard]] std::vector<FlowSegment> take_carried_segments() {
    return tracker_.take_boundary_segments();
  }

  /// Maximum probe timestamp the tracker observed (the stream's "now").
  [[nodiscard]] net::TimeUs max_timestamp() const noexcept { return tracker_.now(); }

  [[nodiscard]] const telescope::Telescope& telescope() const noexcept { return *telescope_; }
  [[nodiscard]] const telescope::SensorCounters& sensor_counters() const noexcept {
    return sensor_.counters();
  }

 private:
  const telescope::Telescope* telescope_;
  telescope::Sensor sensor_;
  telescope::SensorCounters absorbed_;  ///< external sensor counters
  std::vector<Campaign> campaigns_;
  CampaignTracker tracker_;
  std::vector<ProbeObserver*> observers_;
  /// Identity row indices [0, n) for full-batch feeds; grown on demand
  /// and reused so `feed_probes` allocates only when batches grow.
  std::vector<std::uint32_t> identity_rows_;
  // Resolved once at construction iff obs is enabled; null pointers keep
  // the per-frame cost at one predictable branch when it is off.
  obs::Counter* obs_frames_ = nullptr;
  obs::Counter* obs_probes_ = nullptr;
  obs::Counter* obs_batches_ = nullptr;
};

}  // namespace synscan::core
