// Mergeable per-shard analysis rollups (the decade-scale layer).
//
// A ten-year capture set is analyzed once, shard by shard, and every
// later question is answered by *merging summaries* instead of touching
// probes again. The unit is a `CaptureRollup`: everything one capture's
// analysis produced — counters, interior campaigns, tallies — plus the
// tracker's boundary `FlowSegment`s (core/tracker.h), which carry enough
// state (full destination set, port tally, fingerprint accumulator) that
// flows spanning shard boundaries can be re-joined exactly.
//
// `RollupMerger` left-folds rollups in capture-time order: a shard's
// head segment joins the previous shard's open tail when the gap is
// within the tracker expiry, exactly as the whole-capture tracker would
// have kept the flow alive; everything else finalizes through the same
// qualification rule `CampaignTracker::close_flow` applies. The result
// is an `AnalyzedCapture` whose JSON report is byte-identical to
// analyzing the concatenated captures in one pass (pinned by
// tests/integration/rollup_differential_test.cpp).
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "core/analysis_session.h"
#include "core/flat_map.h"
#include "core/ingest.h"
#include "core/tracker.h"
#include "enrich/registry.h"
#include "pcap/pcap.h"
#include "telescope/telescope.h"

namespace synscan::core {

/// One capture's mergeable analysis summary. Produced by `analyze_shard`
/// (or loaded from a `.spr` rollup file, core/rollup_store.h); consumed
/// by `RollupMerger` in capture-time order.
struct CaptureRollup {
  explicit CaptureRollup(const enrich::InternetRegistry& registry)
      : types(registry), geo(registry) {}

  std::filesystem::path capture;  ///< source capture path (diagnostics)
  std::uint64_t frames = 0;
  pcap::ReadStatus final_status = pcap::ReadStatus::kEndOfFile;
  bool from_cache = false;         ///< probes came from a `.spc` cache
  net::TimeUs max_timestamp_us = 0;  ///< the shard tracker's final "now"
  telescope::SensorCounters sensor;
  /// Interior tracker counters only: boundary segments are not counted
  /// until the merger decides their fate.
  TrackerCounters tracker;
  /// Campaigns that closed entirely inside the shard, canonical order.
  std::vector<Campaign> campaigns;
  /// Boundary flows, sorted by (source, first_seen) for deterministic
  /// `.spr` bytes and merge order.
  std::vector<FlowSegment> segments;
  PortTally ports;
  TypeTally types;
  GeoTally geo;
};

/// Analyzes one capture as a shard: the serial batch-native pipeline
/// with all standard observers, tracker in carry mode. The telescope and
/// registry must outlive the returned value.
[[nodiscard]] CaptureRollup analyze_shard(const std::filesystem::path& path,
                                          const telescope::Telescope& telescope,
                                          const enrich::InternetRegistry& registry,
                                          const TrackerConfig& tracker_config,
                                          const IngestOptions& options);

/// Left-fold reducer over shard rollups. `add` shards in capture-time
/// order (ShardPlan order); `finish` closes the remaining open tails and
/// returns the merged analysis. One-shot: use a fresh merger per query.
class RollupMerger {
 public:
  /// `tracker_config` must match the configuration the shards were
  /// analyzed with — the expiry drives the boundary-join decision and
  /// the thresholds drive qualification.
  RollupMerger(const telescope::Telescope& telescope,
               const enrich::InternetRegistry& registry,
               const TrackerConfig& tracker_config);

  /// Folds the next shard in. Shards must arrive in capture-time order;
  /// boundary segments of adjacent shards are joined here.
  void add(CaptureRollup&& shard);

  /// Closes all still-open tail flows (stream end across the whole
  /// capture set) and returns the merged analysis.
  [[nodiscard]] AnalyzedCapture finish();

 private:
  /// Applies the tracker's qualification rule to a (possibly joined)
  /// boundary segment. `gap_closed` marks segments that were followed by
  /// more same-source traffic after an expiry gap (always expired);
  /// stream-end closes are expired only when the final "now" is more
  /// than `expiry` past the segment's last packet.
  void finalize_segment(FlowSegment&& segment, bool gap_closed);

  /// Joins `later` (a head segment) onto `earlier` (the previous open
  /// tail of the same source), splicing the fingerprint evidence across
  /// the seam. Returns the combined segment.
  [[nodiscard]] FlowSegment join_segments(FlowSegment&& earlier,
                                          FlowSegment&& later) const;

  TrackerConfig config_;
  stats::TelescopeModel model_;
  AnalyzedCapture merged_;
  /// Open tail flows between shards: slots in `open_tails_`, located by
  /// `tail_index_` (source -> slot + 1; 0 = none). The index map never
  /// erases, so consumed slots simply go dead.
  FlatHashMap<std::uint32_t, std::uint32_t> tail_index_;
  std::vector<FlowSegment> open_tails_;
  net::TimeUs now_ = 0;  ///< max timestamp over all folded shards
  bool any_shard_ = false;
  bool finished_ = false;
};

}  // namespace synscan::core
