// Per-port daily packet series and the disclosure-decay analysis
// (§4.3, Fig. 1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/flat_map.h"
#include "core/observers.h"
#include "stats/hypothesis.h"

namespace synscan::core {

/// Streams probes into (port, day) packet counts anchored at `origin`.
class DailyPortSeries final : public ProbeObserver {
 public:
  explicit DailyPortSeries(net::TimeUs origin) : origin_(origin) {}

  void on_probe(const telescope::ScanProbe& probe) override;

  /// Column-direct tally over the timestamp and destination-port
  /// columns; bit-identical to `on_probe`.
  void observe_batch(const telescope::ProbeBatch& batch,
                     std::span<const std::uint32_t> rows) override;

  /// Folds another series in (per-bucket sums, so shard merges equal
  /// whole-capture accumulation). Both series must share the same
  /// origin; throws `std::invalid_argument` otherwise — day buckets
  /// anchored at different origins do not line up.
  void merge(const DailyPortSeries& other);

  /// Dense daily packet counts for a port over [0, days()).
  [[nodiscard]] std::vector<std::uint64_t> series(std::uint16_t port) const;

  /// Dense daily totals over all ports.
  [[nodiscard]] std::vector<std::uint64_t> totals() const;

  /// Number of day buckets spanned by the data.
  [[nodiscard]] std::size_t days() const noexcept { return max_day_ + 1; }

  [[nodiscard]] net::TimeUs origin() const noexcept { return origin_; }

 private:
  net::TimeUs origin_;
  std::size_t max_day_ = 0;
  // (port << 32) | day
  FlatHashMap<std::uint64_t, std::uint64_t> counts_;
  FlatHashMap<std::uint32_t, std::uint64_t> day_totals_;
};

/// The Fig. 1 measurement for one vulnerability-disclosure event.
struct DisclosureDecay {
  std::uint16_t port = 0;
  std::size_t disclosure_day = 0;
  /// Activity multiplier relative to the pre-disclosure daily average,
  /// indexed by days after disclosure (entry 0 = disclosure day).
  std::vector<double> multiplier;
  double peak_multiplier = 0.0;
  std::size_t peak_day_after = 0;
  /// First day after the peak on which activity returns below
  /// `recovered_threshold` times baseline; SIZE_MAX when it never does.
  std::size_t days_to_recover = SIZE_MAX;
  /// KS test comparing the port's daily counts well after the event
  /// against the pre-disclosure baseline ("back to normal": high p).
  stats::KsTest back_to_normal;
};

/// Analyzes the decay of interest in `port` after a disclosure on
/// `disclosure_day`. `baseline_days` of pre-disclosure data form the
/// baseline; recovery compares each post-peak day against
/// `recovered_threshold` x baseline. The KS window is the final
/// `ks_window` days of the series.
[[nodiscard]] DisclosureDecay disclosure_decay(const DailyPortSeries& series,
                                               std::uint16_t port,
                                               std::size_t disclosure_day,
                                               std::size_t baseline_days = 7,
                                               double recovered_threshold = 2.0,
                                               std::size_t ks_window = 7);

}  // namespace synscan::core
