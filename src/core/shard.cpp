#include "core/shard.h"

#include <algorithm>
#include <exception>
#include <memory>
#include <thread>
#include <utility>

#include "core/rollup_store.h"
#include "core/sync.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace synscan::core {
namespace {

/// Reads just far enough into a capture to learn its first record
/// timestamp: the 24-byte global header plus one record. Unreadable,
/// empty or non-pcap files report 0 — the plan still includes them, and
/// `run_shards` surfaces the real error.
net::TimeUs peek_first_timestamp(const std::filesystem::path& path) {
  try {
    auto reader = pcap::Reader::open(path);
    net::RawFrame frame;
    if (reader.next(frame) != pcap::ReadStatus::kOk) return 0;
    return frame.timestamp_us;
  } catch (const std::exception&) {
    return 0;
  }
}

/// State shared by the shard workers. Result slots are deliberately
/// outside: each is written by exactly one worker (the one that claimed
/// the index), so slot disjointness provides the exclusion.
struct ShardQueue {
  Mutex mutex;
  std::size_t next SYNSCAN_GUARDED_BY(mutex) = 0;
  std::uint64_t store_hits SYNSCAN_GUARDED_BY(mutex) = 0;
  std::uint64_t store_misses SYNSCAN_GUARDED_BY(mutex) = 0;
  std::uint64_t store_writes SYNSCAN_GUARDED_BY(mutex) = 0;
  std::exception_ptr error SYNSCAN_GUARDED_BY(mutex);
};

}  // namespace

ShardPlan plan_shards(std::span<const std::filesystem::path> captures) {
  ShardPlan plan;
  plan.shards.reserve(captures.size());
  for (const auto& capture : captures) {
    plan.shards.push_back({capture, peek_first_timestamp(capture)});
  }
  std::sort(plan.shards.begin(), plan.shards.end(),
            [](const ShardPlanEntry& a, const ShardPlanEntry& b) {
              if (a.first_timestamp_us != b.first_timestamp_us) {
                return a.first_timestamp_us < b.first_timestamp_us;
              }
              return a.capture.native() < b.capture.native();
            });
  return plan;
}

ShardRunResult run_shards(const ShardPlan& plan,
                          const telescope::Telescope& telescope,
                          const enrich::InternetRegistry& registry,
                          const TrackerConfig& tracker_config,
                          const ShardRunOptions& options) {
  const auto shard_count = plan.shards.size();
  const auto fingerprint =
      analysis_fingerprint(tracker_config, telescope.monitored_count());

  std::vector<std::unique_ptr<CaptureRollup>> rollups(shard_count);
  ShardQueue queue;

  const auto process = [&](std::size_t index) {
    const auto& capture = plan.shards[index].capture;
    const auto identity = options.use_rollup_store ? cache_identity(capture)
                                                   : std::nullopt;
    const auto store_path = rollup_path_for(capture);
    if (identity) {
      if (auto stored = load_rollup(store_path, registry, *identity, fingerprint)) {
        stored->capture = capture;
        rollups[index] = std::make_unique<CaptureRollup>(std::move(*stored));
        const MutexLock lock(queue.mutex);
        ++queue.store_hits;
        return;
      }
    }
    auto rollup = analyze_shard(capture, telescope, registry, tracker_config,
                                options.ingest);
    bool wrote = false;
    if (identity) {
      wrote = save_rollup(store_path, rollup, *identity, fingerprint);
    }
    rollups[index] = std::make_unique<CaptureRollup>(std::move(rollup));
    const MutexLock lock(queue.mutex);
    ++queue.store_misses;
    if (wrote) ++queue.store_writes;
  };

  const auto worker_loop = [&] {
    for (;;) {
      std::size_t index;
      {
        const MutexLock lock(queue.mutex);
        if (queue.error || queue.next >= shard_count) return;
        index = queue.next++;
      }
      try {
        process(index);
      } catch (...) {
        const MutexLock lock(queue.mutex);
        if (!queue.error) queue.error = std::current_exception();
        return;
      }
    }
  };

  auto workers = options.workers;
  if (workers == 0) {
    const auto hw = std::thread::hardware_concurrency();
    workers = hw == 0 ? 1 : hw;
  }
  workers = std::min(workers, std::max<std::size_t>(shard_count, 1));

  if (workers <= 1) {
    worker_loop();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) pool.emplace_back(worker_loop);
    for (auto& thread : pool) thread.join();
  }

  ShardRunStats stats;
  stats.shards = shard_count;
  {
    // The pool is drained (or never started), so the lock is
    // uncontended; taking it anyway keeps the guarded reads visible.
    const MutexLock lock(queue.mutex);
    if (queue.error) std::rethrow_exception(queue.error);
    stats.store_hits = queue.store_hits;
    stats.store_misses = queue.store_misses;
    stats.store_writes = queue.store_writes;
  }

  ShardRunResult result(registry);
  {
    const obs::ScopedTimer merge_timer("rollup.merge");
    RollupMerger merger(telescope, registry, tracker_config);
    for (auto& rollup : rollups) merger.add(std::move(*rollup));
    result.analysis = merger.finish();
  }
  result.stats = stats;

  if (obs::enabled()) {
    auto& metrics = obs::MetricsRegistry::global();
    metrics.counter("rollup.shards").add(stats.shards);
    metrics.counter("rollup.store_hits").add(stats.store_hits);
    metrics.counter("rollup.store_misses").add(stats.store_misses);
    metrics.counter("rollup.store_writes").add(stats.store_writes);
    metrics.gauge("rollup.workers").store(static_cast<std::int64_t>(workers));
  }
  return result;
}

}  // namespace synscan::core
