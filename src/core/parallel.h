// Multi-threaded analysis driver.
//
// A telescope receives a terabyte of traffic per month (§3.2); replaying
// archives at that volume wants more than one core. Campaign tracking is
// embarrassingly parallel across *sources* — a campaign never spans two
// source addresses — so the driver dispatches work to a worker chosen by
// source-address hash. Two entry shapes exist: raw/decoded frames are
// queued per worker and classified there, while pre-sensed probe batches
// (the batched ingest path) are shared as-is — the feeder copies each
// `ProbeBatch` once into a shared columnar buffer and hands every worker
// a *slice*, a vector of row indices into the shared columns. No
// `ScanProbe` is ever materialized or copied on the feeder; workers
// run batched observers and the tracker straight off the columns via
// `Pipeline::feed_probe_rows`. `finish()` joins the workers and merges
// campaigns and counters into one result, ordered deterministically.
//
// Streaming observers attached on the feeder thread consume the same
// batches in file order (see `cli::analyze_capture`); per-worker
// pipelines carry no observers of their own. Equivalence with the serial
// `Pipeline` is covered by tests.
#pragma once

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "core/sync.h"
#include "obs/metrics.h"
#include "telescope/telescope.h"

namespace synscan::core {

class ParallelAnalyzer {
 public:
  /// `workers` must be >= 1. The telescope must outlive the analyzer.
  ParallelAnalyzer(const telescope::Telescope& telescope, std::size_t workers,
                   TrackerConfig tracker_config = {});
  ParallelAnalyzer(const telescope::Telescope&&, std::size_t, TrackerConfig = {}) =
      delete;

  ~ParallelAnalyzer();
  ParallelAnalyzer(const ParallelAnalyzer&) = delete;
  ParallelAnalyzer& operator=(const ParallelAnalyzer&) = delete;

  /// Decodes and dispatches one frame. Call from one thread only.
  void feed_frame(const net::RawFrame& frame);

  /// Dispatches an already decoded frame (callers that decode on the
  /// feeding thread anyway, e.g. to drive streaming observers, avoid a
  /// second decode).
  void feed_decoded(net::TimeUs timestamp_us, net::DecodedFrame frame);

  /// Dispatches a batch of pre-sensed probes (the batched ingest path:
  /// classification already happened on the feeder). The batch's columns
  /// are copied once into a shared buffer; workers receive row-index
  /// slices into it. Call from one thread only; do not interleave with
  /// the frame-feeding entry points.
  void feed_probes(const telescope::ProbeBatch& batch);

  /// Folds counters from the feeder-side sensor into `finish()`'s
  /// merged result (workers never saw the raw frames on the probe path).
  void absorb_sensor_counters(const telescope::SensorCounters& counters);

  /// Flushes queues, joins workers and merges everything. Call once.
  /// When observability is on, publishes `parallel.*` metrics (per-worker
  /// peak queue depth and item counts, batch-size distribution, merge
  /// time) to the global registry.
  [[nodiscard]] PipelineResult finish();

  [[nodiscard]] std::size_t workers() const noexcept { return workers_.size(); }

 private:
  struct Item {
    net::TimeUs timestamp_us;
    net::DecodedFrame frame;
  };

  /// One worker's share of a shared probe batch: the rows (in batch
  /// order) whose sources hash to that worker. The `shared_ptr` keeps
  /// the columns alive until every worker holding a slice has drained it.
  struct Slice {
    std::shared_ptr<const telescope::ProbeBatch> batch;
    std::vector<std::uint32_t> rows;
  };

  struct Worker {
    explicit Worker(const telescope::Telescope& telescope, TrackerConfig config)
        : pipeline(telescope, config) {}

    /// Owned by the worker thread while it runs; the feeder reads it
    /// only after join() (`finish()`). That handoff is the join itself,
    /// which the capability analysis cannot see.
    /// synscan-lint: allow(guarded-by)
    Pipeline pipeline;
    Mutex mutex;
    CondVar ready;
    std::vector<Item> queue SYNSCAN_GUARDED_BY(mutex);
    std::vector<Slice> slice_queue SYNSCAN_GUARDED_BY(mutex);
    bool done SYNSCAN_GUARDED_BY(mutex) = false;
    std::thread thread;
    // Feeder-side stats, updated under `mutex` on enqueue; cheap enough
    // to keep unconditionally.
    std::uint64_t items SYNSCAN_GUARDED_BY(mutex) = 0;    ///< frames + probe rows
    std::uint64_t batches SYNSCAN_GUARDED_BY(mutex) = 0;  ///< flushes / slices
    /// Deepest pending entry count observed.
    std::size_t peak_queue SYNSCAN_GUARDED_BY(mutex) = 0;
  };

  void flush(std::size_t index);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::vector<Item>> pending_;  ///< feeder-side frame batches
  /// Per-worker row-index scratch, refilled for every shared batch.
  std::vector<std::vector<std::uint32_t>> slice_rows_;
  telescope::SensorCounters absorbed_;  ///< feeder-side sensor counters
  std::uint64_t undecodable_ = 0;
  /// Feeder-side batch reallocations. Zero in steady state (batches are
  /// pre-sized to kBatch and recycled); published as
  /// `parallel.feeder_reallocs` so capacity regressions are visible.
  std::uint64_t feeder_reallocs_ = 0;
  std::uint64_t slices_ = 0;  ///< probe slices enqueued across workers
  bool finished_ = false;
  /// Batch-size distribution; resolved at construction iff obs is on.
  obs::Histogram* obs_batch_items_ = nullptr;

  static constexpr std::size_t kBatch = 256;
};

}  // namespace synscan::core
