// Multi-threaded analysis driver.
//
// A telescope receives a terabyte of traffic per month (§3.2); replaying
// archives at that volume wants more than one core. Campaign tracking is
// embarrassingly parallel across *sources* — a campaign never spans two
// source addresses — so the driver decodes frames on the feeding thread
// and dispatches each to a worker chosen by source-address hash. Each
// worker runs its own sensor-equivalent classification and campaign
// tracker; `finish()` joins the workers and merges campaigns and
// counters into one result, ordered deterministically.
//
// Streaming observers are per-worker and not supported here; run them in
// a serial pass, or use the per-worker results. Equivalence with the
// serial `Pipeline` is covered by tests.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "obs/metrics.h"
#include "telescope/telescope.h"

namespace synscan::core {

class ParallelAnalyzer {
 public:
  /// `workers` must be >= 1. The telescope must outlive the analyzer.
  ParallelAnalyzer(const telescope::Telescope& telescope, std::size_t workers,
                   TrackerConfig tracker_config = {});
  ParallelAnalyzer(const telescope::Telescope&&, std::size_t, TrackerConfig = {}) =
      delete;

  ~ParallelAnalyzer();
  ParallelAnalyzer(const ParallelAnalyzer&) = delete;
  ParallelAnalyzer& operator=(const ParallelAnalyzer&) = delete;

  /// Decodes and dispatches one frame. Call from one thread only.
  void feed_frame(const net::RawFrame& frame);

  /// Dispatches an already decoded frame (callers that decode on the
  /// feeding thread anyway, e.g. to drive streaming observers, avoid a
  /// second decode).
  void feed_decoded(net::TimeUs timestamp_us, net::DecodedFrame frame);

  /// Dispatches a batch of pre-sensed probes (the batched ingest path:
  /// classification already happened on the feeder). Call from one
  /// thread only; do not interleave with the frame-feeding entry points.
  void feed_probes(const telescope::ProbeBatch& batch);

  /// Folds counters from the feeder-side sensor into `finish()`'s
  /// merged result (workers never saw the raw frames on the probe path).
  void absorb_sensor_counters(const telescope::SensorCounters& counters);

  /// Flushes queues, joins workers and merges everything. Call once.
  /// When observability is on, publishes `parallel.*` metrics (per-worker
  /// peak queue depth and item counts, batch-size distribution, merge
  /// time) to the global registry.
  [[nodiscard]] PipelineResult finish();

  [[nodiscard]] std::size_t workers() const noexcept { return workers_.size(); }

 private:
  struct Item {
    net::TimeUs timestamp_us;
    net::DecodedFrame frame;
  };

  struct Worker {
    explicit Worker(const telescope::Telescope& telescope, TrackerConfig config)
        : pipeline(telescope, config) {}

    Pipeline pipeline;
    std::mutex mutex;
    std::condition_variable ready;
    std::vector<Item> queue;
    std::vector<telescope::ScanProbe> probe_queue;
    bool done = false;
    std::thread thread;
    // Feeder-side stats, updated under `mutex` in flush(); cheap enough
    // to keep unconditionally.
    std::uint64_t items = 0;        ///< frames enqueued to this worker
    std::uint64_t batches = 0;      ///< flush batches delivered
    std::size_t peak_queue = 0;     ///< deepest pending queue observed
  };

  void flush(std::size_t index);
  void flush_probes(std::size_t index);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::vector<Item>> pending_;  ///< feeder-side batches
  std::vector<std::vector<telescope::ScanProbe>> probe_pending_;
  telescope::SensorCounters absorbed_;  ///< feeder-side sensor counters
  std::uint64_t undecodable_ = 0;
  /// Feeder-side batch reallocations. Zero in steady state (batches are
  /// pre-sized to kBatch and recycled); published as
  /// `parallel.feeder_reallocs` so capacity regressions are visible.
  std::uint64_t feeder_reallocs_ = 0;
  bool finished_ = false;
  /// Batch-size distribution; resolved at construction iff obs is on.
  obs::Histogram* obs_batch_items_ = nullptr;

  static constexpr std::size_t kBatch = 256;
};

}  // namespace synscan::core
