#include "core/rollup_store.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <system_error>
#include <utility>
#include <vector>

#include "net/endian.h"

namespace synscan::core {
namespace {

constexpr std::uint32_t kMagic = 0x31727073;  // "spr1" on disk
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderSize = 64;
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// FNV-1a over the stream taken as little-endian 64-bit words, the tail
/// word zero-padded — the same hash the `.spc` cache uses.
std::uint64_t fnv1a(const std::uint8_t* bytes, std::size_t size, std::uint64_t state) {
  const std::size_t words = size / 8;
  const std::uint8_t* p = bytes;
  for (std::size_t i = 0; i < words; ++i, p += 8) {
    state ^= net::load_le64(p);
    state *= kFnvPrime;
  }
  const std::size_t tail = size % 8;
  if (tail != 0) {
    std::uint64_t word = 0;
    for (std::size_t i = 0; i < tail; ++i) {
      word |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    }
    state ^= word;
    state *= kFnvPrime;
  }
  return state;
}

/// `TimeUs` is signed; timestamps store as their two's-complement bits.
inline std::uint64_t time_bits(net::TimeUs t) { return static_cast<std::uint64_t>(t); }
inline net::TimeUs time_from(std::uint64_t v) { return static_cast<net::TimeUs>(v); }

// --- payload writer ---------------------------------------------------

class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { grow(2, [&](std::uint8_t* p) { net::store_le16(p, v); }); }
  void u32(std::uint32_t v) { grow(4, [&](std::uint8_t* p) { net::store_le32(p, v); }); }
  void u64(std::uint64_t v) { grow(8, [&](std::uint8_t* p) { net::store_le64(p, v); }); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return out_; }

 private:
  template <typename Store>
  void grow(std::size_t n, Store&& store) {
    const auto at = out_.size();
    out_.resize(at + n);
    store(out_.data() + at);
  }

  std::vector<std::uint8_t> out_;
};

/// Thrown (and caught inside `load_rollup`) on any payload defect; the
/// caller only ever sees nullopt.
struct ParseError {};

// --- payload reader ---------------------------------------------------

class Reader {
 public:
  Reader(const std::uint8_t* begin, std::size_t size) : p_(begin), end_(begin + size) {}

  std::uint8_t u8() {
    need(1);
    return *p_++;
  }
  std::uint16_t u16() {
    need(2);
    const auto v = net::load_le16(p_);
    p_ += 2;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    const auto v = net::load_le32(p_);
    p_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    const auto v = net::load_le64(p_);
    p_ += 8;
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }

  /// A stored element count, sanity-bounded by the remaining bytes so a
  /// corrupt length cannot drive a multi-gigabyte reserve.
  std::size_t count(std::size_t min_bytes_each) {
    const auto n = u64();
    if (min_bytes_each != 0 &&
        n > static_cast<std::uint64_t>(end_ - p_) / min_bytes_each) {
      throw ParseError{};
    }
    return static_cast<std::size_t>(n);
  }

  [[nodiscard]] bool exhausted() const noexcept { return p_ == end_; }

 private:
  void need(std::size_t n) {
    if (static_cast<std::size_t>(end_ - p_) < n) throw ParseError{};
  }

  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

// --- shared pieces ----------------------------------------------------

void put_probe(Writer& out, const telescope::ScanProbe& probe) {
  out.u64(time_bits(probe.timestamp_us));
  out.u32(probe.source.value());
  out.u32(probe.destination.value());
  out.u16(probe.source_port);
  out.u16(probe.destination_port);
  out.u32(probe.sequence);
  out.u32(probe.acknowledgment);
  out.u16(probe.ip_id);
  out.u16(probe.window);
  out.u8(probe.ttl);
}

telescope::ScanProbe get_probe(Reader& in) {
  telescope::ScanProbe probe;
  probe.timestamp_us = time_from(in.u64());
  probe.source = net::Ipv4Address(in.u32());
  probe.destination = net::Ipv4Address(in.u32());
  probe.source_port = in.u16();
  probe.destination_port = in.u16();
  probe.sequence = in.u32();
  probe.acknowledgment = in.u32();
  probe.ip_id = in.u16();
  probe.window = in.u16();
  probe.ttl = in.u8();
  return probe;
}

/// Emits a PortPacketMap as sorted (port, packets) rows — the map's own
/// iteration order is a function of insertion history, which must never
/// leak into the file bytes.
void put_port_map(Writer& out, const PortPacketMap& map) {
  std::vector<std::pair<std::uint16_t, std::uint64_t>> rows;
  rows.reserve(map.size());
  for (const auto& [port, packets] : map) rows.emplace_back(port, packets);
  std::sort(rows.begin(), rows.end());
  out.u32(static_cast<std::uint32_t>(rows.size()));
  for (const auto& [port, packets] : rows) {
    out.u16(port);
    out.u64(packets);
  }
}

void get_port_map(Reader& in, PortPacketMap& map) {
  const auto n = in.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto port = in.u16();
    map.add(port, in.u64());
  }
}

void put_sensor(Writer& out, const telescope::SensorCounters& sensor) {
  out.u64(sensor.scan_probes);
  out.u64(sensor.backscatter);
  out.u64(sensor.xmas_or_null);
  out.u64(sensor.other_tcp);
  out.u64(sensor.udp);
  out.u64(sensor.icmp);
  out.u64(sensor.not_monitored);
  out.u64(sensor.ingress_blocked);
  out.u64(sensor.malformed);
  out.u64(sensor.spoofed_source);
}

void get_sensor(Reader& in, telescope::SensorCounters& sensor) {
  sensor.scan_probes = in.u64();
  sensor.backscatter = in.u64();
  sensor.xmas_or_null = in.u64();
  sensor.other_tcp = in.u64();
  sensor.udp = in.u64();
  sensor.icmp = in.u64();
  sensor.not_monitored = in.u64();
  sensor.ingress_blocked = in.u64();
  sensor.malformed = in.u64();
  sensor.spoofed_source = in.u64();
}

void put_tracker(Writer& out, const TrackerCounters& counters) {
  out.u64(counters.probes);
  out.u64(counters.campaigns);
  out.u64(counters.subthreshold_flows);
  out.u64(counters.subthreshold_packets);
  out.u64(counters.expired_flows);
  out.u64(counters.sweeps);
  out.u64(counters.peak_open_flows);
  out.u64(counters.flow_reuses);
  out.u64(counters.dest_promotions);
  out.u64(counters.port_promotions);
  out.u64(counters.table_rehashes);
}

void get_tracker(Reader& in, TrackerCounters& counters) {
  counters.probes = in.u64();
  counters.campaigns = in.u64();
  counters.subthreshold_flows = in.u64();
  counters.subthreshold_packets = in.u64();
  counters.expired_flows = in.u64();
  counters.sweeps = in.u64();
  counters.peak_open_flows = in.u64();
  counters.flow_reuses = in.u64();
  counters.dest_promotions = in.u64();
  counters.port_promotions = in.u64();
  counters.table_rehashes = in.u64();
}

void put_campaign(Writer& out, const Campaign& campaign) {
  out.u64(campaign.id);
  out.u32(campaign.source.value());
  out.u64(time_bits(campaign.first_seen_us));
  out.u64(time_bits(campaign.last_seen_us));
  out.u64(campaign.packets);
  out.u32(campaign.distinct_destinations);
  out.u8(static_cast<std::uint8_t>(campaign.tool));
  out.f64(campaign.extrapolated_pps);
  out.f64(campaign.coverage_fraction);
  out.f64(campaign.extrapolated_packets);
  put_port_map(out, campaign.port_packets);
}

Campaign get_campaign(Reader& in) {
  Campaign campaign;
  campaign.id = in.u64();
  campaign.source = net::Ipv4Address(in.u32());
  campaign.first_seen_us = time_from(in.u64());
  campaign.last_seen_us = time_from(in.u64());
  campaign.packets = in.u64();
  campaign.distinct_destinations = in.u32();
  const auto tool = in.u8();
  if (tool >= fingerprint::kToolCount) throw ParseError{};
  campaign.tool = static_cast<fingerprint::Tool>(tool);
  campaign.extrapolated_pps = in.f64();
  campaign.coverage_fraction = in.f64();
  campaign.extrapolated_packets = in.f64();
  get_port_map(in, campaign.port_packets);
  return campaign;
}

void put_segment(Writer& out, const FlowSegment& segment) {
  out.u32(segment.source.value());
  out.u8(static_cast<std::uint8_t>((segment.head ? 1 : 0) | (segment.tail ? 2 : 0)));
  out.u64(time_bits(segment.first_seen_us));
  out.u64(time_bits(segment.last_seen_us));
  out.u64(segment.packets);
  out.u64(segment.destinations.size());
  for (const auto destination : segment.destinations) out.u32(destination);
  out.u32(static_cast<std::uint32_t>(segment.port_packets.size()));
  for (const auto& [port, packets] : segment.port_packets) {
    out.u16(port);
    out.u64(packets);
  }
  const auto& evidence = segment.evidence;
  out.u64(evidence.probes);
  out.u64(evidence.zmap_hits);
  out.u64(evidence.masscan_hits);
  out.u64(evidence.mirai_hits);
  out.u64(evidence.nmap_pair_hits);
  out.u64(evidence.unicorn_pair_hits);
  out.u64(evidence.pairs);
  out.u8(evidence.have_previous ? 1 : 0);
  put_probe(out, evidence.first);
  put_probe(out, evidence.previous);
}

FlowSegment get_segment(Reader& in) {
  FlowSegment segment;
  segment.source = net::Ipv4Address(in.u32());
  const auto flags = in.u8();
  segment.head = (flags & 1) != 0;
  segment.tail = (flags & 2) != 0;
  segment.first_seen_us = time_from(in.u64());
  segment.last_seen_us = time_from(in.u64());
  segment.packets = in.u64();
  const auto destinations = in.count(4);
  segment.destinations.reserve(destinations);
  for (std::size_t i = 0; i < destinations; ++i) segment.destinations.push_back(in.u32());
  const auto ports = in.u32();
  segment.port_packets.reserve(ports);
  for (std::uint32_t i = 0; i < ports; ++i) {
    const auto port = in.u16();
    segment.port_packets.emplace_back(port, in.u64());
  }
  auto& evidence = segment.evidence;
  evidence.probes = in.u64();
  evidence.zmap_hits = in.u64();
  evidence.masscan_hits = in.u64();
  evidence.mirai_hits = in.u64();
  evidence.nmap_pair_hits = in.u64();
  evidence.unicorn_pair_hits = in.u64();
  evidence.pairs = in.u64();
  evidence.have_previous = in.u8() != 0;
  evidence.first = get_probe(in);
  evidence.previous = get_probe(in);
  return segment;
}

}  // namespace

/// `.spr` serialization of the tally internals; befriended by the three
/// tally classes so the store can emit their flat accumulator maps in
/// sorted canonical order and rebuild them exactly.
struct RollupTallyIo {
  static void save_ports(Writer& out, const PortTally& tally) {
    put_port_map(out, tally.packets_per_port_);
    std::vector<std::pair<std::uint32_t, std::vector<std::uint16_t>>> sources;
    sources.reserve(tally.ports_per_source_.size());
    tally.ports_per_source_.for_each([&](std::uint32_t source, const HybridU32Set& set) {
      std::vector<std::uint16_t> ports;
      ports.reserve(set.size());
      set.for_each([&](std::uint32_t port) {
        ports.push_back(static_cast<std::uint16_t>(port));
      });
      std::sort(ports.begin(), ports.end());
      sources.emplace_back(source, std::move(ports));
    });
    std::sort(sources.begin(), sources.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    out.u64(sources.size());
    for (const auto& [source, ports] : sources) {
      out.u32(source);
      out.u32(static_cast<std::uint32_t>(ports.size()));
      for (const auto port : ports) out.u16(port);
    }
    out.u64(tally.total_packets_);
  }

  static void load_ports(Reader& in, PortTally& tally) {
    get_port_map(in, tally.packets_per_port_);
    const auto sources = in.count(8);
    for (std::size_t i = 0; i < sources; ++i) {
      const auto source = in.u32();
      const auto ports = in.u32();
      auto& set = tally.ports_per_source_[source];
      for (std::uint32_t j = 0; j < ports; ++j) {
        const auto port = in.u16();
        set.insert(port);
        // `sources_per_port_` is the per-port projection of this map.
        tally.sources_per_port_.add(port, 1);
      }
    }
    tally.total_packets_ = in.u64();
  }

  static void save_types(Writer& out, const TypeTally& tally) {
    for (const auto packets : tally.packets_) out.u64(packets);
    for (const auto& sources : tally.sources_) {
      std::vector<std::uint32_t> sorted(sources.begin(), sources.end());
      std::sort(sorted.begin(), sorted.end());
      out.u64(sorted.size());
      for (const auto source : sorted) out.u32(source);
    }
    std::vector<std::pair<std::uint32_t, std::uint64_t>> rows(
        tally.port_type_packets_.begin(), tally.port_type_packets_.end());
    std::sort(rows.begin(), rows.end());
    out.u64(rows.size());
    for (const auto& [key, packets] : rows) {
      out.u32(key);
      out.u64(packets);
    }
    put_port_map(out, tally.port_packets_);
    out.u64(tally.total_packets_);
  }

  static void load_types(Reader& in, TypeTally& tally) {
    for (auto& packets : tally.packets_) packets = in.u64();
    for (auto& sources : tally.sources_) {
      const auto n = in.count(4);
      sources.reserve(n);
      for (std::size_t i = 0; i < n; ++i) sources.insert(in.u32());
    }
    const auto rows = in.count(12);
    tally.port_type_packets_.reserve(rows);
    for (std::size_t i = 0; i < rows; ++i) {
      const auto key = in.u32();
      tally.port_type_packets_[key] = in.u64();
    }
    get_port_map(in, tally.port_packets_);
    tally.total_packets_ = in.u64();
  }

  static void save_geo(Writer& out, const GeoTally& tally) {
    const auto put_map = [&](const FlatHashMap<std::uint32_t, std::uint64_t>& map) {
      std::vector<std::pair<std::uint32_t, std::uint64_t>> rows;
      rows.reserve(map.size());
      map.for_each([&](std::uint32_t key, const std::uint64_t& packets) {
        rows.emplace_back(key, packets);
      });
      std::sort(rows.begin(), rows.end());
      out.u64(rows.size());
      for (const auto& [key, packets] : rows) {
        out.u32(key);
        out.u64(packets);
      }
    };
    put_map(tally.packets_per_country_);
    put_map(tally.packets_per_port_country_);
    put_port_map(out, tally.packets_per_port_);
    out.u64(tally.total_);
  }

  static void load_geo(Reader& in, GeoTally& tally) {
    const auto get_map = [&](FlatHashMap<std::uint32_t, std::uint64_t>& map) {
      const auto rows = in.count(12);
      for (std::size_t i = 0; i < rows; ++i) {
        const auto key = in.u32();
        map[key] = in.u64();
      }
    };
    get_map(tally.packets_per_country_);
    get_map(tally.packets_per_port_country_);
    get_port_map(in, tally.packets_per_port_);
    tally.total_ = in.u64();
  }
};

std::uint64_t analysis_fingerprint(const TrackerConfig& config,
                                   std::uint64_t monitored_addresses) {
  // Everything that can change the analysis result, and nothing that
  // cannot: sweep_interval is pure scheduling (see the header comment).
  const std::uint64_t words[] = {
      static_cast<std::uint64_t>(config.min_distinct_destinations),
      std::bit_cast<std::uint64_t>(config.min_internet_pps),
      static_cast<std::uint64_t>(config.expiry),
      static_cast<std::uint64_t>(config.classifier.min_matches),
      std::bit_cast<std::uint64_t>(config.classifier.min_fraction),
      monitored_addresses,
  };
  std::uint64_t state = kFnvOffset;
  for (const auto word : words) {
    state ^= word;
    state *= kFnvPrime;
  }
  return state;
}

std::filesystem::path rollup_path_for(const std::filesystem::path& capture) {
  return std::filesystem::path(capture.native() + ".spr");
}

std::optional<RollupFileInfo> rollup_stat(const std::filesystem::path& path) {
  std::ifstream stream(path, std::ios::binary);
  if (!stream) return std::nullopt;
  std::uint8_t header[kHeaderSize];
  stream.read(reinterpret_cast<char*>(header), kHeaderSize);
  if (stream.gcount() != static_cast<std::streamsize>(kHeaderSize)) return std::nullopt;
  if (net::load_le32(header) != kMagic) return std::nullopt;
  RollupFileInfo info;
  info.version = net::load_le32(header + 4);
  info.source_size = net::load_le64(header + 8);
  info.source_mtime_ns = net::load_le64(header + 16);
  info.analysis_fingerprint = net::load_le64(header + 24);
  info.campaigns = net::load_le64(header + 32);
  info.segments = net::load_le64(header + 40);
  info.payload_size = net::load_le64(header + 48);
  info.checksum = net::load_le64(header + 56);
  std::error_code ec;
  info.file_size = std::filesystem::file_size(path, ec);
  if (ec) return std::nullopt;
  return info;
}

bool save_rollup(const std::filesystem::path& path, const CaptureRollup& rollup,
                 const CacheIdentity& identity, std::uint64_t fingerprint) {
  Writer out;
  out.u64(rollup.frames);
  out.u32(static_cast<std::uint32_t>(rollup.final_status));
  out.u8(rollup.from_cache ? 1 : 0);
  out.u64(time_bits(rollup.max_timestamp_us));
  put_sensor(out, rollup.sensor);
  put_tracker(out, rollup.tracker);
  out.u64(rollup.campaigns.size());
  for (const auto& campaign : rollup.campaigns) put_campaign(out, campaign);
  out.u64(rollup.segments.size());
  for (const auto& segment : rollup.segments) put_segment(out, segment);
  RollupTallyIo::save_ports(out, rollup.ports);
  RollupTallyIo::save_types(out, rollup.types);
  RollupTallyIo::save_geo(out, rollup.geo);

  const auto& payload = out.bytes();
  std::uint8_t header[kHeaderSize];
  net::store_le32(header, kMagic);
  net::store_le32(header + 4, kVersion);
  net::store_le64(header + 8, identity.source_size);
  net::store_le64(header + 16, identity.source_mtime_ns);
  net::store_le64(header + 24, fingerprint);
  net::store_le64(header + 32, rollup.campaigns.size());
  net::store_le64(header + 40, rollup.segments.size());
  net::store_le64(header + 48, payload.size());
  net::store_le64(header + 56, fnv1a(payload.data(), payload.size(), kFnvOffset));

  const auto tmp = std::filesystem::path(path.native() + ".tmp");
  {
    std::ofstream stream(tmp, std::ios::binary | std::ios::trunc);
    if (!stream) return false;
    stream.write(reinterpret_cast<const char*>(header), kHeaderSize);
    stream.write(reinterpret_cast<const char*>(payload.data()),
                 static_cast<std::streamsize>(payload.size()));
    stream.flush();
    if (!stream) {
      stream.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

std::optional<CaptureRollup> load_rollup(const std::filesystem::path& path,
                                         const enrich::InternetRegistry& registry,
                                         const CacheIdentity& expected,
                                         std::uint64_t fingerprint) {
  const auto info = rollup_stat(path);
  if (!info) return std::nullopt;
  if (info->version != kVersion) return std::nullopt;
  if (info->source_size != expected.source_size ||
      info->source_mtime_ns != expected.source_mtime_ns) {
    return std::nullopt;  // stale: the capture changed under the rollup
  }
  if (info->analysis_fingerprint != fingerprint) return std::nullopt;
  if (info->file_size != kHeaderSize + info->payload_size) return std::nullopt;

  std::ifstream stream(path, std::ios::binary);
  if (!stream) return std::nullopt;
  stream.seekg(static_cast<std::streamoff>(kHeaderSize));
  std::vector<std::uint8_t> payload(static_cast<std::size_t>(info->payload_size));
  stream.read(reinterpret_cast<char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
  if (stream.gcount() != static_cast<std::streamsize>(payload.size())) {
    return std::nullopt;
  }
  if (fnv1a(payload.data(), payload.size(), kFnvOffset) != info->checksum) {
    return std::nullopt;
  }

  try {
    Reader in(payload.data(), payload.size());
    CaptureRollup rollup(registry);
    rollup.capture = path;
    rollup.frames = in.u64();
    rollup.final_status = static_cast<pcap::ReadStatus>(in.u32());
    rollup.from_cache = in.u8() != 0;
    rollup.max_timestamp_us = time_from(in.u64());
    get_sensor(in, rollup.sensor);
    get_tracker(in, rollup.tracker);
    const auto campaigns = in.count(8);
    rollup.campaigns.reserve(campaigns);
    for (std::size_t i = 0; i < campaigns; ++i) {
      rollup.campaigns.push_back(get_campaign(in));
    }
    const auto segments = in.count(8);
    rollup.segments.reserve(segments);
    for (std::size_t i = 0; i < segments; ++i) {
      rollup.segments.push_back(get_segment(in));
    }
    RollupTallyIo::load_ports(in, rollup.ports);
    RollupTallyIo::load_types(in, rollup.types);
    RollupTallyIo::load_geo(in, rollup.geo);
    if (!in.exhausted()) return std::nullopt;
    if (rollup.campaigns.size() != info->campaigns ||
        rollup.segments.size() != info->segments) {
      return std::nullopt;
    }
    return rollup;
  } catch (const ParseError&) {
    return std::nullopt;
  }
}

}  // namespace synscan::core
