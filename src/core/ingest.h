// Batched capture ingest: capture file -> classified probe batches.
//
// This is the front half of every replay. It picks the fastest available
// path for the input —
//   1. a validated columnar probe cache (`.spc`, core/probe_cache.h):
//      skip decode and classification entirely;
//   2. a memory-mapped classic pcap (`pcap::MappedReader`): zero-copy
//      frame views, batched classification via `Sensor::classify_batch`;
//   3. record-at-a-time fallback (pcapng input, non-mappable files, or
//      `use_mmap = false`), still classified in batches —
// and hands the probes to the caller one `ProbeBatch` at a time. The
// three paths produce bit-identical probes and sensor counters (held
// together by tests/integration/ingest_differential_test.cpp).
//
// After a cold decode of a regular file the probes are written back as a
// cache (best-effort: cache I/O failures never fail the run), so the
// second replay of the same capture takes path 1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <functional>

#include "core/probe_cache.h"
#include "pcap/pcap.h"
#include "telescope/probe_batch.h"
#include "telescope/sensor.h"
#include "telescope/telescope.h"

namespace synscan::core {

struct IngestOptions {
  /// Map regular classic-pcap files instead of streaming them.
  bool use_mmap = true;
  /// Read and write the sibling `.spc` probe cache.
  bool use_cache = true;
  /// Frames classified per batch on the decode paths.
  std::size_t batch_frames = 4096;
  /// Cold-scan parallelism: the capture's record region is split into
  /// this many record-aligned chunks (`pcap::partition_records`), each
  /// scanned and classified by its own thread, and the per-chunk probe
  /// batches are merged back in capture order — probes, counters,
  /// terminal status and `.spc` bytes are identical to the serial scan.
  /// 0 = auto (one chunk per hardware thread), 1 = serial. Small
  /// captures stay serial regardless: splitting pays off only once the
  /// scan outweighs thread startup.
  std::size_t scan_chunks = 0;
  /// Chunk encoding for caches this run writes (reads auto-detect).
  CacheCodec cache_codec = CacheCodec::kDeltaVarint;
  /// Cache location override; empty means `<capture>.spc`.
  std::filesystem::path cache_path;
};

struct IngestResult {
  telescope::SensorCounters sensor;
  std::uint64_t frames = 0;
  pcap::ReadStatus status = pcap::ReadStatus::kEndOfFile;
  std::uint64_t batches = 0;
  std::uint64_t chunks = 0;     ///< scan chunks used by the cold path
  std::uint64_t simd_rows = 0;  ///< frames resolved on a vector lane
  bool from_cache = false;      ///< probes came from a validated cache
  bool mapped = false;          ///< capture bytes were mmap'ed
};

/// Receives each probe batch in capture order. The batch is only valid
/// for the duration of the call (buffers are recycled).
using ProbeBatchSink = std::function<void(const telescope::ProbeBatch&)>;

/// Replays `path` (classic pcap or pcapng) through the fastest available
/// ingest path and feeds every scan probe to `sink` in capture order.
/// Throws what the underlying readers throw (unopenable file, bad
/// global header). `result.status` carries the reader's terminal status
/// exactly as `pcap::Reader` would have reported it.
IngestResult ingest_capture(const std::filesystem::path& path,
                            const telescope::Telescope& telescope,
                            const IngestOptions& options, const ProbeBatchSink& sink);

}  // namespace synscan::core
