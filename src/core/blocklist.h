// Blocklist-effectiveness evaluation.
//
// §4.4 and §6.6 argue that lists of observed scanner IPs age out almost
// immediately: non-institutional sources rarely return, so by the time
// a list is distributed, its entries are dead. This module quantifies
// that claim: build a blocklist from the campaigns of a training window,
// then measure how much of a later window's scanning it would actually
// have blocked.
#pragma once

#include <cstdint>
#include <span>

#include "core/campaign.h"
#include "core/hybrid_set.h"

namespace synscan::core {

/// A set of source IPs harvested from observed campaigns.
class Blocklist {
 public:
  Blocklist() = default;

  /// Builds from all campaigns that *ended* inside [from, to).
  static Blocklist harvest(std::span<const Campaign> campaigns, net::TimeUs from,
                           net::TimeUs to);

  void add(net::Ipv4Address source) { entries_.insert(source.value()); }
  [[nodiscard]] bool contains(net::Ipv4Address source) const {
    return entries_.contains(source.value());
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  HybridU32Set entries_;
};

/// How well a blocklist performs against a later evaluation window.
struct BlocklistEffectiveness {
  std::size_t list_size = 0;
  std::uint64_t eval_campaigns = 0;
  std::uint64_t blocked_campaigns = 0;   ///< campaigns whose source is listed
  std::uint64_t eval_packets = 0;
  std::uint64_t blocked_packets = 0;

  [[nodiscard]] double campaign_block_rate() const noexcept {
    return eval_campaigns == 0 ? 0.0
                               : static_cast<double>(blocked_campaigns) /
                                     static_cast<double>(eval_campaigns);
  }
  [[nodiscard]] double packet_block_rate() const noexcept {
    return eval_packets == 0 ? 0.0
                             : static_cast<double>(blocked_packets) /
                                   static_cast<double>(eval_packets);
  }
};

/// Evaluates `list` against the campaigns that *started* in [from, to).
[[nodiscard]] BlocklistEffectiveness evaluate_blocklist(
    const Blocklist& list, std::span<const Campaign> campaigns, net::TimeUs from,
    net::TimeUs to);

/// The full decay experiment: harvest from day `harvest_day`, deploy
/// after `lag_days`, evaluate one day at a time for `eval_days`.
/// Returns the per-day campaign block rates — the "blocklists age out"
/// curve.
[[nodiscard]] std::vector<double> blocklist_decay_curve(
    std::span<const Campaign> campaigns, net::TimeUs origin, std::size_t harvest_day,
    std::size_t lag_days, std::size_t eval_days);

}  // namespace synscan::core
