// Week-over-week volatility per /16 source netblock (§4.4, Fig. 2).
//
// For every /16 netblock on the Internet that sent traffic, this
// accumulator builds weekly series of (a) packets, (b) distinct source
// IPs and (c) campaigns launched, and reduces each series to
// "change factors" — max(cur/prev, prev/cur) for consecutive weeks. The
// figure is the CDF of those factors pooled over all netblocks.
#pragma once

#include <cstdint>

#include "core/campaign.h"
#include "core/flat_map.h"
#include "core/hybrid_set.h"
#include "core/observers.h"
#include "stats/ecdf.h"

namespace synscan::core {

class VolatilityTracker final : public ProbeObserver {
 public:
  /// `origin` anchors week boundaries (the start of the measurement
  /// window); `week` overrides the bucket width for tests.
  explicit VolatilityTracker(net::TimeUs origin, net::TimeUs week = net::kMicrosPerWeek);

  void on_probe(const telescope::ScanProbe& probe) override;

  /// Column-direct tally over the source and timestamp columns;
  /// bit-identical to `on_probe`.
  void observe_batch(const telescope::ProbeBatch& batch,
                     std::span<const std::uint32_t> rows) override;

  /// Campaigns are attributed to the week of their first packet.
  void on_campaign(const Campaign& campaign);

  /// Folds another tracker in (per-bucket sums and source-set unions, so
  /// shard merges equal whole-capture accumulation). Both trackers must
  /// share origin and week width; throws `std::invalid_argument`
  /// otherwise — differently anchored week buckets do not line up.
  void merge(const VolatilityTracker& other);

  /// The three pooled change-factor distributions.
  struct Result {
    stats::Ecdf packet_change;
    stats::Ecdf source_change;
    stats::Ecdf campaign_change;
    std::size_t netblocks = 0;  ///< /16s with any activity
    std::size_t weeks = 0;      ///< weeks spanned by the data
  };
  [[nodiscard]] Result result() const;

 private:
  [[nodiscard]] std::uint32_t week_of(net::TimeUs t) const noexcept;

  net::TimeUs origin_;
  net::TimeUs week_;
  std::uint32_t max_week_ = 0;
  // Keyed by (slash16 << 32) | week.
  FlatHashMap<std::uint64_t, std::uint64_t> packets_;
  FlatHashMap<std::uint64_t, std::uint64_t> campaigns_;
  FlatHashMap<std::uint64_t, HybridU32Set> sources_;
  HybridU32Set active_blocks_;
};

}  // namespace synscan::core
