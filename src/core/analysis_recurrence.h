// Scanner recurrence (§6.6, Fig. 6): how often source IPs come back to
// scan again, and how long they stay away, split by scanner type.
#pragma once

#include <cstdint>
#include <span>

#include "core/campaign.h"
#include "enrich/registry.h"
#include "stats/ecdf.h"

namespace synscan::core {

/// Per-scanner-type recurrence distributions.
struct RecurrenceResult {
  enrich::ScannerType type = enrich::ScannerType::kUnknown;
  /// ECDF of campaigns-per-source.
  stats::Ecdf campaigns_per_source;
  /// ECDF of downtime (seconds) between the end of one campaign and the
  /// start of the next, per recurring source.
  stats::Ecdf downtime_seconds;
  std::uint64_t sources = 0;
  std::uint64_t recurring_sources = 0;  ///< sources with >= 2 campaigns
  /// Fraction of recurring sources whose *median* downtime falls within
  /// [0.5, 1.5] days — the "scans the Internet every day" mode.
  double daily_mode_fraction = 0.0;
  /// Fraction of sources with more than 100 campaigns (the paper: a
  /// large share of research scanners performs over 100 campaigns).
  double over_100_campaigns_fraction = 0.0;
};

/// Groups campaigns by source, sorts each source's campaigns by start
/// time and derives the Fig. 6 distributions per scanner type.
[[nodiscard]] std::vector<RecurrenceResult> recurrence_by_type(
    std::span<const Campaign> campaigns, const enrich::InternetRegistry& registry);

}  // namespace synscan::core
