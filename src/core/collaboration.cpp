#include "core/collaboration.h"

// One-shot grouping over the final campaign list; the ordered std::map
// keeps collaboration-group output deterministic. Not the per-probe hot
// path.  synscan-lint: allow-file(hot-path-container)

#include <algorithm>
#include <map>
#include <tuple>

namespace synscan::core {
namespace {

/// The primary port of a campaign: the one with the most packets.
std::uint16_t primary_port(const Campaign& campaign) {
  std::uint16_t best_port = 0;
  std::uint64_t best_count = 0;
  for (const auto& [port, packets] : campaign.port_packets) {
    if (packets > best_count || (packets == best_count && port < best_port)) {
      best_count = packets;
      best_port = port;
    }
  }
  return best_port;
}

}  // namespace

CollaborationCensus detect_collaborations(std::span<const Campaign> campaigns,
                                          const CollaborationConfig& config) {
  CollaborationCensus census;
  census.total_campaigns = campaigns.size();
  if (campaigns.empty()) return census;

  const int shift = 32 - config.source_prefix;

  // Group key: (source prefix, primary port, tool). Within each group,
  // sort by start time and cut clusters at start_window boundaries.
  struct Member {
    const Campaign* campaign;
    net::TimeUs start;
  };
  std::map<std::tuple<std::uint32_t, std::uint16_t, fingerprint::Tool>,
           std::vector<Member>>
      groups;
  for (const auto& campaign : campaigns) {
    const auto prefix =
        shift >= 32 ? 0u : campaign.source.value() >> shift;
    groups[{prefix, primary_port(campaign), campaign.tool}].push_back(
        {&campaign, campaign.first_seen_us});
  }

  for (auto& [key, members] : groups) {
    if (members.size() < config.min_members) continue;
    std::sort(members.begin(), members.end(),
              [](const Member& a, const Member& b) { return a.start < b.start; });

    std::size_t begin = 0;
    while (begin < members.size()) {
      std::size_t end = begin + 1;
      while (end < members.size() &&
             members[end].start - members[begin].start <= config.start_window) {
        ++end;
      }
      const auto size = end - begin;
      if (size >= config.min_members) {
        LogicalScan scan;
        scan.members = static_cast<std::uint32_t>(size);
        const int prefix_shift = 32 - config.source_prefix;
        scan.subnet = net::Ipv4Address(
            prefix_shift >= 32
                ? 0u
                : (members[begin].campaign->source.value() >> prefix_shift)
                      << prefix_shift);
        scan.port = std::get<1>(key);
        scan.tool = std::get<2>(key);
        scan.first_start = members[begin].start;
        double coverage_sum = 0.0;
        for (std::size_t i = begin; i < end; ++i) {
          scan.campaign_ids.push_back(members[i].campaign->id);
          coverage_sum += members[i].campaign->coverage_fraction;
        }
        scan.joint_coverage = std::min(1.0, coverage_sum);
        scan.mean_member_coverage = coverage_sum / static_cast<double>(size);
        census.collaborating_campaigns += size;
        census.scans.push_back(std::move(scan));
      }
      begin = end;
    }
  }

  std::sort(census.scans.begin(), census.scans.end(),
            [](const LogicalScan& a, const LogicalScan& b) {
              return a.members != b.members ? a.members > b.members
                                            : a.first_start < b.first_start;
            });
  return census;
}

}  // namespace synscan::core
