#include "core/analysis_tools.h"

// One-shot reducers over the final campaign list — not the per-probe
// hot path, so std containers are fine.
// synscan-lint: allow-file(hot-path-container)

#include <algorithm>
#include <unordered_map>

namespace synscan::core {

std::vector<PortToolMix> port_tool_mix(std::span<const Campaign> campaigns, std::size_t n) {
  struct Mix {
    std::uint64_t total = 0;
    std::array<std::uint64_t, fingerprint::kToolCount> per_tool{};
  };
  std::unordered_map<std::uint16_t, Mix> mixes;
  for (const auto& campaign : campaigns) {
    const auto tool = fingerprint::tool_index(campaign.tool);
    for (const auto& [port, packets] : campaign.port_packets) {
      auto& mix = mixes[port];
      mix.total += packets;
      mix.per_tool[tool] += packets;
    }
  }

  std::vector<std::pair<std::uint16_t, Mix>> rows(mixes.begin(), mixes.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total != b.second.total ? a.second.total > b.second.total
                                            : a.first < b.first;
  });
  if (rows.size() > n) rows.resize(n);

  std::vector<PortToolMix> out;
  out.reserve(rows.size());
  for (const auto& [port, mix] : rows) {
    PortToolMix row;
    row.port = port;
    row.packets = mix.total;
    for (std::size_t i = 0; i < fingerprint::kToolCount; ++i) {
      row.tool_share[i] = mix.total == 0 ? 0.0
                                         : static_cast<double>(mix.per_tool[i]) /
                                               static_cast<double>(mix.total);
    }
    out.push_back(row);
  }
  return out;
}

std::vector<ToolCountryShare> tool_country_mix(std::span<const Campaign> campaigns,
                                               const enrich::InternetRegistry& registry,
                                               fingerprint::Tool tool, std::size_t n) {
  std::unordered_map<enrich::CountryCode, std::uint64_t> counts;
  std::uint64_t total = 0;
  for (const auto& campaign : campaigns) {
    if (campaign.tool != tool) continue;
    ++counts[registry.country_of(campaign.source)];
    ++total;
  }
  std::vector<ToolCountryShare> rows;
  rows.reserve(counts.size());
  for (const auto& [country, scans] : counts) rows.push_back({country, scans, 0.0});
  std::sort(rows.begin(), rows.end(),
            [](const ToolCountryShare& a, const ToolCountryShare& b) {
              return a.scans != b.scans ? a.scans > b.scans : a.country < b.country;
            });
  if (rows.size() > n) rows.resize(n);
  for (auto& row : rows) {
    row.share =
        total == 0 ? 0.0 : static_cast<double>(row.scans) / static_cast<double>(total);
  }
  return rows;
}

}  // namespace synscan::core
