#include "core/probe_cache.h"

#include <array>
#include <bit>
#include <chrono>
#include <cstring>
#include <span>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "net/endian.h"

namespace synscan::core {
namespace {

constexpr std::uint32_t kMagic = 0x31637073;  // "spc1" on disk
constexpr std::uint32_t kVersion = 2;
constexpr std::size_t kHeaderSize = 136;
constexpr std::size_t kBytesPerRow = 33;  ///< sum of the ten column widths
/// Raw bytes per row of the seven columns kDeltaVarint leaves unencoded.
constexpr std::size_t kFixedTailBytes = kBytesPerRow - 8 - 4 - 4;
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// FNV-1a over the stream taken as little-endian 64-bit words, the tail
/// word zero-padded. Word-at-a-time keeps the validating pass in open()
/// (which hashes the whole file before releasing a single probe) at
/// one multiply per 8 bytes instead of per byte.
std::uint64_t fnv1a(std::span<const std::uint8_t> bytes, std::uint64_t state) {
  const std::size_t words = bytes.size() / 8;
  const std::uint8_t* p = bytes.data();
  for (std::size_t i = 0; i < words; ++i, p += 8) {
    state ^= net::load_le64(p);
    state *= kFnvPrime;
  }
  const std::size_t tail = bytes.size() % 8;
  if (tail != 0) {
    std::uint64_t word = 0;
    for (std::size_t i = 0; i < tail; ++i) {
      word |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    }
    state ^= word;
    state *= kFnvPrime;
  }
  return state;
}

/// Bulk column copy: the on-disk layout is little-endian, so on a
/// little-endian host each column is one memcpy; big-endian hosts take
/// the per-element load/store path.
template <typename T>
void copy_column_out(const std::uint8_t*& p, std::size_t rows, std::vector<T>& out) {
  out.resize(rows);
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out.data(), p, rows * sizeof(T));
    p += rows * sizeof(T);
  } else {
    for (std::size_t i = 0; i < rows; ++i, p += sizeof(T)) {
      if constexpr (sizeof(T) == 8) {
        out[i] = static_cast<T>(net::load_le64(p));
      } else if constexpr (sizeof(T) == 4) {
        out[i] = static_cast<T>(net::load_le32(p));
      } else if constexpr (sizeof(T) == 2) {
        out[i] = static_cast<T>(net::load_le16(p));
      } else {
        out[i] = static_cast<T>(*p);
      }
    }
  }
}

template <typename T>
void append_raw_column(std::vector<std::uint8_t>& out, const T* data, std::size_t rows) {
  const auto at = out.size();
  out.resize(at + rows * sizeof(T));
  std::uint8_t* p = out.data() + at;
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(p, data, rows * sizeof(T));
  } else {
    for (std::size_t i = 0; i < rows; ++i, p += sizeof(T)) {
      if constexpr (sizeof(T) == 8) {
        net::store_le64(p, static_cast<std::uint64_t>(data[i]));
      } else if constexpr (sizeof(T) == 4) {
        net::store_le32(p, static_cast<std::uint32_t>(data[i]));
      } else if constexpr (sizeof(T) == 2) {
        net::store_le16(p, static_cast<std::uint16_t>(data[i]));
      } else {
        *p = static_cast<std::uint8_t>(data[i]);
      }
    }
  }
}

// --- zigzag LEB128 ---------------------------------------------------

inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Bounds-checked LEB128 decode; false when the stream ends mid-varint
/// or the value would not fit 64 bits.
inline bool get_varint(const std::uint8_t*& p, const std::uint8_t* end,
                       std::uint64_t& v) {
  v = 0;
  unsigned shift = 0;
  while (p < end && shift < 64) {
    const std::uint8_t byte = *p++;
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return true;
    shift += 7;
  }
  return false;
}

/// Appends one delta+zigzag-varint column: `u64 byte_length` followed by
/// the LEB128 stream of row-over-row deltas (row 0 against 0, so the
/// chunk decodes standalone).
template <typename T>
void append_delta_column(std::vector<std::uint8_t>& out, const T* data,
                         std::size_t rows) {
  const auto length_at = out.size();
  out.resize(length_at + 8);
  std::int64_t prev = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    const auto cur = static_cast<std::int64_t>(static_cast<std::uint64_t>(data[i]));
    put_varint(out, zigzag(cur - prev));
    prev = cur;
  }
  net::store_le64(out.data() + length_at, out.size() - length_at - 8);
}

/// Bounds-checked inverse of append_delta_column. The cursor never moves
/// past `end` even on malformed input; false on any inconsistency
/// (short length field, truncated stream, trailing garbage).
template <typename T>
bool decode_delta_column(const std::uint8_t*& p, const std::uint8_t* end,
                         std::size_t rows, std::vector<T>& out) {
  if (static_cast<std::size_t>(end - p) < 8) return false;
  const auto length = net::load_le64(p);
  p += 8;
  if (static_cast<std::uint64_t>(end - p) < length) return false;
  const std::uint8_t* const stream_end = p + length;
  out.resize(rows);
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    std::uint64_t z;
    if (!get_varint(p, stream_end, z)) return false;
    prev += static_cast<std::uint64_t>(unzigzag(z));
    out[i] = static_cast<T>(prev);
  }
  if (p != stream_end) return false;
  return true;
}

// --- chunk encode/decode ---------------------------------------------

/// Serializes `rows` probes starting at `begin` as one chunk.
void encode_chunk(const telescope::ProbeBatch& batch, std::size_t begin,
                  std::size_t rows, CacheCodec codec, std::vector<std::uint8_t>& out) {
  out.clear();
  out.resize(8);
  net::store_le64(out.data(), rows);
  if (codec == CacheCodec::kDeltaVarint) {
    append_delta_column(out, batch.timestamp_us.data() + begin, rows);
    append_delta_column(out, batch.source.data() + begin, rows);
    append_delta_column(out, batch.destination.data() + begin, rows);
  } else {
    append_raw_column(out, batch.timestamp_us.data() + begin, rows);
    append_raw_column(out, batch.source.data() + begin, rows);
    append_raw_column(out, batch.destination.data() + begin, rows);
  }
  append_raw_column(out, batch.source_port.data() + begin, rows);
  append_raw_column(out, batch.destination_port.data() + begin, rows);
  append_raw_column(out, batch.sequence.data() + begin, rows);
  append_raw_column(out, batch.acknowledgment.data() + begin, rows);
  append_raw_column(out, batch.ip_id.data() + begin, rows);
  append_raw_column(out, batch.window.data() + begin, rows);
  append_raw_column(out, batch.ttl.data() + begin, rows);
}

/// Decodes the chunk body at `p` (past the row count) into `out`,
/// advancing `p` past everything consumed. Fully bounds-checked: a
/// malformed body returns false without ever reading past `end`.
bool decode_chunk_body(const std::uint8_t*& p, const std::uint8_t* end,
                       std::size_t rows, CacheCodec codec,
                       telescope::ProbeBatch& out) {
  if (codec == CacheCodec::kDeltaVarint) {
    if (!decode_delta_column(p, end, rows, out.timestamp_us) ||
        !decode_delta_column(p, end, rows, out.source) ||
        !decode_delta_column(p, end, rows, out.destination)) {
      return false;
    }
    if (static_cast<std::size_t>(end - p) < rows * kFixedTailBytes) return false;
  } else {
    if (static_cast<std::size_t>(end - p) < rows * kBytesPerRow) return false;
    copy_column_out(p, rows, out.timestamp_us);
    copy_column_out(p, rows, out.source);
    copy_column_out(p, rows, out.destination);
  }
  copy_column_out(p, rows, out.source_port);
  copy_column_out(p, rows, out.destination_port);
  copy_column_out(p, rows, out.sequence);
  copy_column_out(p, rows, out.acknowledgment);
  copy_column_out(p, rows, out.ip_id);
  copy_column_out(p, rows, out.window);
  copy_column_out(p, rows, out.ttl);
  return true;
}

void encode_header(std::uint8_t* p, const CacheIdentity& identity, CacheCodec codec,
                   std::uint64_t frame_count, std::uint64_t probe_count,
                   pcap::ReadStatus terminal_status,
                   const telescope::SensorCounters& sensor, std::uint64_t checksum) {
  net::store_le32(p, kMagic);
  net::store_le32(p + 4, kVersion);
  net::store_le64(p + 8, identity.source_size);
  net::store_le64(p + 16, identity.source_mtime_ns);
  net::store_le64(p + 24, frame_count);
  net::store_le64(p + 32, probe_count);
  net::store_le32(p + 40, static_cast<std::uint32_t>(terminal_status));
  net::store_le32(p + 44, static_cast<std::uint32_t>(codec));
  net::store_le64(p + 48, sensor.scan_probes);
  net::store_le64(p + 56, sensor.backscatter);
  net::store_le64(p + 64, sensor.xmas_or_null);
  net::store_le64(p + 72, sensor.other_tcp);
  net::store_le64(p + 80, sensor.udp);
  net::store_le64(p + 88, sensor.icmp);
  net::store_le64(p + 96, sensor.not_monitored);
  net::store_le64(p + 104, sensor.ingress_blocked);
  net::store_le64(p + 112, sensor.malformed);
  net::store_le64(p + 120, sensor.spoofed_source);
  net::store_le64(p + 128, checksum);
}

/// Raw header parse: everything `cache_stat` can report. Only rejects
/// what makes the fields meaningless (short file, wrong magic, a
/// terminal status outside the enum).
const char* parse_header(std::span<const std::uint8_t> bytes, CacheFileInfo& info) {
  if (bytes.size() < kHeaderSize) return "file shorter than the spc header";
  const std::uint8_t* h = bytes.data();
  if (net::load_le32(h) != kMagic) return "bad magic (not an spc file)";
  info.version = net::load_le32(h + 4);
  info.source_size = net::load_le64(h + 8);
  info.source_mtime_ns = net::load_le64(h + 16);
  info.frame_count = net::load_le64(h + 24);
  info.probe_count = net::load_le64(h + 32);
  const auto status = net::load_le32(h + 40);
  if (status > static_cast<std::uint32_t>(pcap::ReadStatus::kBadRecord)) {
    return "corrupt terminal status";
  }
  info.terminal_status = static_cast<pcap::ReadStatus>(status);
  info.codec = static_cast<CacheCodec>(net::load_le32(h + 44));
  info.sensor.scan_probes = net::load_le64(h + 48);
  info.sensor.backscatter = net::load_le64(h + 56);
  info.sensor.xmas_or_null = net::load_le64(h + 64);
  info.sensor.other_tcp = net::load_le64(h + 72);
  info.sensor.udp = net::load_le64(h + 80);
  info.sensor.icmp = net::load_le64(h + 88);
  info.sensor.not_monitored = net::load_le64(h + 96);
  info.sensor.ingress_blocked = net::load_le64(h + 104);
  info.sensor.malformed = net::load_le64(h + 112);
  info.sensor.spoofed_source = net::load_le64(h + 120);
  info.checksum = net::load_le64(h + 128);
  info.file_size = bytes.size();
  return nullptr;
}

/// Structural acceptance for replay: does this reader understand the
/// file at all? (Version gate: a future v3 reads as "stale", never as
/// garbage probes.)
const char* check_header(const CacheFileInfo& info) {
  if (info.version != 1 && info.version != kVersion) return "unsupported version";
  if (info.version == 1 && info.codec != CacheCodec::kRaw) {
    return "v1 file with nonzero reserved field";
  }
  if (info.codec != CacheCodec::kRaw && info.codec != CacheCodec::kDeltaVarint) {
    return "unknown codec";
  }
  // Every encoding spends well over one byte per row, so a probe count
  // beyond the file size is corrupt; it also bounds the chunk-size
  // arithmetic below against overflow.
  if (info.probe_count > info.file_size) return "probe count exceeds file size";
  if (info.sensor.scan_probes != info.probe_count) {
    return "probe count disagrees with sensor counters";
  }
  return nullptr;
}

/// Walks and checksums the chunk region. A torn write must read as "no
/// cache", not as partial data, so every framing field is validated
/// before anything downstream trusts it.
const char* walk_chunks(std::span<const std::uint8_t> bytes, const CacheFileInfo& info,
                        std::uint64_t& chunks_seen, std::uint64_t& rows_seen) {
  chunks_seen = 0;
  rows_seen = 0;
  std::uint64_t checksum = kFnvOffset;
  std::size_t offset = kHeaderSize;
  while (offset < bytes.size()) {
    if (bytes.size() - offset < 8) return "truncated chunk header";
    const auto rows = net::load_le64(bytes.data() + offset);
    if (rows == 0 || rows > info.probe_count) return "implausible chunk row count";
    std::size_t body = 0;
    if (info.codec == CacheCodec::kDeltaVarint) {
      // Three length-prefixed varint streams, then the fixed-width tail.
      std::size_t at = offset + 8;
      for (int column = 0; column < 3; ++column) {
        if (bytes.size() - at < 8) return "truncated column length";
        const auto length = net::load_le64(bytes.data() + at);
        at += 8;
        if (bytes.size() - at < length) return "truncated compressed column";
        at += static_cast<std::size_t>(length);
      }
      if (bytes.size() - at < rows * kFixedTailBytes) return "truncated column";
      body = at + rows * kFixedTailBytes - (offset + 8);
    } else {
      if (bytes.size() - offset - 8 < rows * kBytesPerRow) return "truncated column";
      body = rows * kBytesPerRow;
    }
    checksum = fnv1a(bytes.subspan(offset, 8 + body), checksum);
    ++chunks_seen;
    rows_seen += rows;
    offset += 8 + body;
  }
  if (rows_seen != info.probe_count) return "row total disagrees with header";
  if (checksum != info.checksum) return "checksum mismatch";
  return nullptr;
}

}  // namespace

std::optional<CacheIdentity> cache_identity(const std::filesystem::path& source) {
  std::error_code ec;
  if (!std::filesystem::is_regular_file(source, ec) || ec) return std::nullopt;
  const auto size = std::filesystem::file_size(source, ec);
  if (ec) return std::nullopt;
  const auto mtime = std::filesystem::last_write_time(source, ec);
  if (ec) return std::nullopt;
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      mtime.time_since_epoch())
                      .count();
  CacheIdentity identity;
  identity.source_size = size;
  identity.source_mtime_ns = static_cast<std::uint64_t>(ns);
  return identity;
}

std::optional<CacheFileInfo> cache_stat(const std::filesystem::path& path) {
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec) || ec) return std::nullopt;
  pcap::MappedFile file;
  try {
    file = pcap::MappedFile::open(path);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  CacheFileInfo info;
  if (parse_header(file.bytes(), info) != nullptr) return std::nullopt;
  return info;
}

CacheVerifyReport cache_verify(const std::filesystem::path& path,
                               const std::optional<CacheIdentity>& expected) {
  CacheVerifyReport report;
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec) || ec) {
    report.error = "not a regular file";
    return report;
  }
  pcap::MappedFile file;
  try {
    file = pcap::MappedFile::open(path);
  } catch (const std::exception&) {
    report.error = "cannot open file";
    return report;
  }
  const auto bytes = file.bytes();
  CacheFileInfo info;
  if (const char* err = parse_header(bytes, info)) {
    report.error = err;
    return report;
  }
  if (const char* err = check_header(info)) {
    report.error = err;
    return report;
  }
  if (expected && (info.source_size != expected->source_size ||
                   info.source_mtime_ns != expected->source_mtime_ns)) {
    report.error = "stale: source capture changed since the cache was cut";
    return report;
  }
  if (const char* err = walk_chunks(bytes, info, report.chunks, report.rows)) {
    report.error = err;
    return report;
  }
  report.ok = true;
  return report;
}

ProbeCacheWriter::ProbeCacheWriter(std::filesystem::path path,
                                   const CacheIdentity& identity, CacheCodec codec)
    : path_(std::move(path)),
      tmp_path_(path_.native() + ".tmp"),
      stream_(tmp_path_, std::ios::binary | std::ios::trunc),
      checksum_(kFnvOffset),
      identity_(identity),
      codec_(codec) {
  if (!stream_.is_open()) {
    throw std::runtime_error("probe cache: cannot create " + tmp_path_.string());
  }
  const std::vector<char> placeholder(kHeaderSize, 0);
  stream_.write(placeholder.data(), static_cast<std::streamsize>(placeholder.size()));
  open_ = true;
}

ProbeCacheWriter::~ProbeCacheWriter() { abandon(); }

void ProbeCacheWriter::emit_chunk(std::size_t begin, std::size_t rows) {
  encode_chunk(staging_, begin, rows, codec_, scratch_);
  checksum_ = fnv1a(scratch_, checksum_);
  probe_count_ += rows;
  stream_.write(reinterpret_cast<const char*>(scratch_.data()),
                static_cast<std::streamsize>(scratch_.size()));
}

void ProbeCacheWriter::flush_staging(bool final_flush) {
  std::size_t begin = 0;
  while (staging_.size() - begin >= kCacheRowsPerChunk) {
    emit_chunk(begin, kCacheRowsPerChunk);
    begin += kCacheRowsPerChunk;
  }
  if (final_flush && staging_.size() > begin) {
    emit_chunk(begin, staging_.size() - begin);
    begin = staging_.size();
  }
  if (begin == 0) return;
  const auto drop = [begin](auto& column) {
    column.erase(column.begin(),
                 column.begin() + static_cast<std::ptrdiff_t>(begin));
  };
  drop(staging_.timestamp_us);
  drop(staging_.source);
  drop(staging_.destination);
  drop(staging_.source_port);
  drop(staging_.destination_port);
  drop(staging_.sequence);
  drop(staging_.acknowledgment);
  drop(staging_.ip_id);
  drop(staging_.window);
  drop(staging_.ttl);
}

void ProbeCacheWriter::append(const telescope::ProbeBatch& batch) {
  if (!open_ || batch.empty()) return;
  // Restage through a fixed row grid: the emitted chunk boundaries — and
  // therefore the file bytes — depend only on the probe stream, not on
  // how the classifier happened to batch its appends.
  const auto splice = [](auto& into, const auto& from) {
    into.insert(into.end(), from.begin(), from.end());
  };
  splice(staging_.timestamp_us, batch.timestamp_us);
  splice(staging_.source, batch.source);
  splice(staging_.destination, batch.destination);
  splice(staging_.source_port, batch.source_port);
  splice(staging_.destination_port, batch.destination_port);
  splice(staging_.sequence, batch.sequence);
  splice(staging_.acknowledgment, batch.acknowledgment);
  splice(staging_.ip_id, batch.ip_id);
  splice(staging_.window, batch.window);
  splice(staging_.ttl, batch.ttl);
  flush_staging(false);
}

bool ProbeCacheWriter::commit(std::uint64_t frame_count, pcap::ReadStatus terminal_status,
                              const telescope::SensorCounters& sensor) {
  if (!open_) return false;
  flush_staging(true);
  std::array<std::uint8_t, kHeaderSize> header{};
  encode_header(header.data(), identity_, codec_, frame_count, probe_count_,
                terminal_status, sensor, checksum_);
  stream_.seekp(0);
  stream_.write(reinterpret_cast<const char*>(header.data()),
                static_cast<std::streamsize>(header.size()));
  stream_.flush();
  const bool ok = stream_.good();
  stream_.close();
  open_ = false;
  std::error_code ec;
  if (ok) {
    std::filesystem::rename(tmp_path_, path_, ec);
    if (!ec) return true;
  }
  std::filesystem::remove(tmp_path_, ec);
  return false;
}

void ProbeCacheWriter::abandon() {
  if (!open_) return;
  stream_.close();
  open_ = false;
  std::error_code ec;
  std::filesystem::remove(tmp_path_, ec);
}

std::optional<ProbeCacheReader> ProbeCacheReader::open(
    const std::filesystem::path& path, const CacheIdentity& expected) {
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec) || ec) return std::nullopt;

  ProbeCacheReader reader;
  try {
    reader.file_ = pcap::MappedFile::open(path);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  const auto bytes = reader.file_.bytes();
  CacheFileInfo info;
  if (parse_header(bytes, info) != nullptr || check_header(info) != nullptr) {
    return std::nullopt;
  }
  if (info.source_size != expected.source_size ||
      info.source_mtime_ns != expected.source_mtime_ns) {
    return std::nullopt;  // stale: the capture changed since the cache was cut
  }
  // Walk the chunk framing and checksum every byte before releasing any
  // probe: a torn write must read as "no cache", not as partial data.
  std::uint64_t chunks = 0;
  std::uint64_t rows = 0;
  if (walk_chunks(bytes, info, chunks, rows) != nullptr) return std::nullopt;

  reader.frame_count_ = info.frame_count;
  reader.probe_count_ = info.probe_count;
  reader.codec_ = info.codec;
  reader.terminal_status_ = info.terminal_status;
  reader.sensor_ = info.sensor;
  reader.offset_ = kHeaderSize;
  return reader;
}

bool ProbeCacheReader::next_chunk(telescope::ProbeBatch& out) {
  const auto bytes = file_.bytes();
  if (offset_ >= bytes.size()) {
    out.clear();
    return false;
  }
  // Framing was fully validated in open(); the decode below re-checks
  // every bound anyway (memory safety over trust) and treats an
  // inconsistency as end-of-cache.
  const auto rows = static_cast<std::size_t>(net::load_le64(bytes.data() + offset_));
  const std::uint8_t* p = bytes.data() + offset_ + 8;
  if (!decode_chunk_body(p, bytes.data() + bytes.size(), rows, codec_, out)) {
    out.clear();
    offset_ = bytes.size();
    return false;
  }
  offset_ = static_cast<std::size_t>(p - bytes.data());
  return true;
}

}  // namespace synscan::core
