#include "core/probe_cache.h"

#include <array>
#include <bit>
#include <chrono>
#include <cstring>
#include <span>
#include <stdexcept>
#include <system_error>

#include "net/endian.h"

namespace synscan::core {
namespace {

constexpr std::uint32_t kMagic = 0x31637073;  // "spc1" on disk
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderSize = 136;
constexpr std::size_t kBytesPerRow = 33;  ///< sum of the ten column widths
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// FNV-1a over the stream taken as little-endian 64-bit words, the tail
/// word zero-padded. Word-at-a-time keeps the validating pass in open()
/// (which hashes the whole file before releasing a single probe) at
/// one multiply per 8 bytes instead of per byte.
std::uint64_t fnv1a(std::span<const std::uint8_t> bytes, std::uint64_t state) {
  const std::size_t words = bytes.size() / 8;
  const std::uint8_t* p = bytes.data();
  for (std::size_t i = 0; i < words; ++i, p += 8) {
    state ^= net::load_le64(p);
    state *= kFnvPrime;
  }
  const std::size_t tail = bytes.size() % 8;
  if (tail != 0) {
    std::uint64_t word = 0;
    for (std::size_t i = 0; i < tail; ++i) {
      word |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    }
    state ^= word;
    state *= kFnvPrime;
  }
  return state;
}

/// Bulk column copy: the on-disk layout is little-endian, so on a
/// little-endian host each column is one memcpy; big-endian hosts take
/// the per-element load/store path.
template <typename T>
void copy_column_out(const std::uint8_t*& p, std::size_t rows, std::vector<T>& out) {
  out.resize(rows);
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out.data(), p, rows * sizeof(T));
    p += rows * sizeof(T);
  } else {
    for (std::size_t i = 0; i < rows; ++i, p += sizeof(T)) {
      if constexpr (sizeof(T) == 8) {
        out[i] = static_cast<T>(net::load_le64(p));
      } else if constexpr (sizeof(T) == 4) {
        out[i] = static_cast<T>(net::load_le32(p));
      } else if constexpr (sizeof(T) == 2) {
        out[i] = static_cast<T>(net::load_le16(p));
      } else {
        out[i] = static_cast<T>(*p);
      }
    }
  }
}

template <typename T>
void copy_column_in(std::uint8_t*& p, const std::vector<T>& column) {
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(p, column.data(), column.size() * sizeof(T));
    p += column.size() * sizeof(T);
  } else {
    for (std::size_t i = 0; i < column.size(); ++i, p += sizeof(T)) {
      if constexpr (sizeof(T) == 8) {
        net::store_le64(p, static_cast<std::uint64_t>(column[i]));
      } else if constexpr (sizeof(T) == 4) {
        net::store_le32(p, static_cast<std::uint32_t>(column[i]));
      } else if constexpr (sizeof(T) == 2) {
        net::store_le16(p, static_cast<std::uint16_t>(column[i]));
      } else {
        *p = static_cast<std::uint8_t>(column[i]);
      }
    }
  }
}

/// Serializes `batch` as one chunk into `out` (resized to fit).
void encode_chunk(const telescope::ProbeBatch& batch, std::vector<std::uint8_t>& out) {
  const auto rows = batch.size();
  out.resize(8 + rows * kBytesPerRow);
  std::uint8_t* p = out.data();
  net::store_le64(p, rows);
  p += 8;
  copy_column_in(p, batch.timestamp_us);
  copy_column_in(p, batch.source);
  copy_column_in(p, batch.destination);
  copy_column_in(p, batch.source_port);
  copy_column_in(p, batch.destination_port);
  copy_column_in(p, batch.sequence);
  copy_column_in(p, batch.acknowledgment);
  copy_column_in(p, batch.ip_id);
  copy_column_in(p, batch.window);
  copy_column_in(p, batch.ttl);
}

/// Decodes the chunk at `chunk` (past the row count) into `out`.
void decode_columns(const std::uint8_t* p, std::size_t rows, telescope::ProbeBatch& out) {
  copy_column_out(p, rows, out.timestamp_us);
  copy_column_out(p, rows, out.source);
  copy_column_out(p, rows, out.destination);
  copy_column_out(p, rows, out.source_port);
  copy_column_out(p, rows, out.destination_port);
  copy_column_out(p, rows, out.sequence);
  copy_column_out(p, rows, out.acknowledgment);
  copy_column_out(p, rows, out.ip_id);
  copy_column_out(p, rows, out.window);
  copy_column_out(p, rows, out.ttl);
}

void encode_header(std::uint8_t* p, const CacheIdentity& identity,
                   std::uint64_t frame_count, std::uint64_t probe_count,
                   pcap::ReadStatus terminal_status,
                   const telescope::SensorCounters& sensor, std::uint64_t checksum) {
  net::store_le32(p, kMagic);
  net::store_le32(p + 4, kVersion);
  net::store_le64(p + 8, identity.source_size);
  net::store_le64(p + 16, identity.source_mtime_ns);
  net::store_le64(p + 24, frame_count);
  net::store_le64(p + 32, probe_count);
  net::store_le32(p + 40, static_cast<std::uint32_t>(terminal_status));
  net::store_le32(p + 44, 0);
  net::store_le64(p + 48, sensor.scan_probes);
  net::store_le64(p + 56, sensor.backscatter);
  net::store_le64(p + 64, sensor.xmas_or_null);
  net::store_le64(p + 72, sensor.other_tcp);
  net::store_le64(p + 80, sensor.udp);
  net::store_le64(p + 88, sensor.icmp);
  net::store_le64(p + 96, sensor.not_monitored);
  net::store_le64(p + 104, sensor.ingress_blocked);
  net::store_le64(p + 112, sensor.malformed);
  net::store_le64(p + 120, sensor.spoofed_source);
  net::store_le64(p + 128, checksum);
}

}  // namespace

std::optional<CacheIdentity> cache_identity(const std::filesystem::path& source) {
  std::error_code ec;
  if (!std::filesystem::is_regular_file(source, ec) || ec) return std::nullopt;
  const auto size = std::filesystem::file_size(source, ec);
  if (ec) return std::nullopt;
  const auto mtime = std::filesystem::last_write_time(source, ec);
  if (ec) return std::nullopt;
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      mtime.time_since_epoch())
                      .count();
  CacheIdentity identity;
  identity.source_size = size;
  identity.source_mtime_ns = static_cast<std::uint64_t>(ns);
  return identity;
}

ProbeCacheWriter::ProbeCacheWriter(std::filesystem::path path,
                                   const CacheIdentity& identity)
    : path_(std::move(path)),
      tmp_path_(path_.native() + ".tmp"),
      stream_(tmp_path_, std::ios::binary | std::ios::trunc),
      checksum_(kFnvOffset),
      identity_(identity) {
  if (!stream_.is_open()) {
    throw std::runtime_error("probe cache: cannot create " + tmp_path_.string());
  }
  const std::vector<char> placeholder(kHeaderSize, 0);
  stream_.write(placeholder.data(), static_cast<std::streamsize>(placeholder.size()));
  open_ = true;
}

ProbeCacheWriter::~ProbeCacheWriter() { abandon(); }

void ProbeCacheWriter::append(const telescope::ProbeBatch& batch) {
  if (!open_ || batch.empty()) return;
  encode_chunk(batch, scratch_);
  checksum_ = fnv1a(scratch_, checksum_);
  probe_count_ += batch.size();
  stream_.write(reinterpret_cast<const char*>(scratch_.data()),
                static_cast<std::streamsize>(scratch_.size()));
}

bool ProbeCacheWriter::commit(std::uint64_t frame_count, pcap::ReadStatus terminal_status,
                              const telescope::SensorCounters& sensor) {
  if (!open_) return false;
  std::array<std::uint8_t, kHeaderSize> header{};
  encode_header(header.data(), identity_, frame_count, probe_count_, terminal_status,
                sensor, checksum_);
  stream_.seekp(0);
  stream_.write(reinterpret_cast<const char*>(header.data()),
                static_cast<std::streamsize>(header.size()));
  stream_.flush();
  const bool ok = stream_.good();
  stream_.close();
  open_ = false;
  std::error_code ec;
  if (ok) {
    std::filesystem::rename(tmp_path_, path_, ec);
    if (!ec) return true;
  }
  std::filesystem::remove(tmp_path_, ec);
  return false;
}

void ProbeCacheWriter::abandon() {
  if (!open_) return;
  stream_.close();
  open_ = false;
  std::error_code ec;
  std::filesystem::remove(tmp_path_, ec);
}

std::optional<ProbeCacheReader> ProbeCacheReader::open(
    const std::filesystem::path& path, const CacheIdentity& expected) {
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec) || ec) return std::nullopt;

  ProbeCacheReader reader;
  try {
    reader.file_ = pcap::MappedFile::open(path);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  const auto bytes = reader.file_.bytes();
  if (bytes.size() < kHeaderSize) return std::nullopt;
  const std::uint8_t* h = bytes.data();
  if (net::load_le32(h) != kMagic || net::load_le32(h + 4) != kVersion) {
    return std::nullopt;
  }
  if (net::load_le64(h + 8) != expected.source_size ||
      net::load_le64(h + 16) != expected.source_mtime_ns) {
    return std::nullopt;  // stale: the capture changed since the cache was cut
  }
  reader.frame_count_ = net::load_le64(h + 24);
  reader.probe_count_ = net::load_le64(h + 32);
  const auto status = net::load_le32(h + 40);
  if (status > static_cast<std::uint32_t>(pcap::ReadStatus::kBadRecord)) {
    return std::nullopt;
  }
  reader.terminal_status_ = static_cast<pcap::ReadStatus>(status);
  reader.sensor_.scan_probes = net::load_le64(h + 48);
  reader.sensor_.backscatter = net::load_le64(h + 56);
  reader.sensor_.xmas_or_null = net::load_le64(h + 64);
  reader.sensor_.other_tcp = net::load_le64(h + 72);
  reader.sensor_.udp = net::load_le64(h + 80);
  reader.sensor_.icmp = net::load_le64(h + 88);
  reader.sensor_.not_monitored = net::load_le64(h + 96);
  reader.sensor_.ingress_blocked = net::load_le64(h + 104);
  reader.sensor_.malformed = net::load_le64(h + 112);
  reader.sensor_.spoofed_source = net::load_le64(h + 120);
  const auto expected_checksum = net::load_le64(h + 128);
  if (reader.sensor_.scan_probes != reader.probe_count_) return std::nullopt;

  // Walk the chunk framing and checksum every byte before releasing any
  // probe: a torn write must read as "no cache", not as partial data.
  std::size_t offset = kHeaderSize;
  std::uint64_t rows_seen = 0;
  std::uint64_t checksum = kFnvOffset;
  while (offset < bytes.size()) {
    if (bytes.size() - offset < 8) return std::nullopt;
    const auto rows = net::load_le64(bytes.data() + offset);
    const auto chunk_size = 8 + static_cast<std::size_t>(rows) * kBytesPerRow;
    if (rows == 0 || rows > reader.probe_count_ ||
        bytes.size() - offset < chunk_size) {
      return std::nullopt;
    }
    checksum = fnv1a(bytes.subspan(offset, chunk_size), checksum);
    rows_seen += rows;
    offset += chunk_size;
  }
  if (rows_seen != reader.probe_count_ || checksum != expected_checksum) {
    return std::nullopt;
  }
  reader.offset_ = kHeaderSize;
  return reader;
}

bool ProbeCacheReader::next_chunk(telescope::ProbeBatch& out) {
  const auto bytes = file_.bytes();
  if (offset_ >= bytes.size()) {
    out.clear();
    return false;
  }
  // Framing was fully validated in open(); this walk cannot run past the
  // mapping.
  const auto rows = static_cast<std::size_t>(net::load_le64(bytes.data() + offset_));
  decode_columns(bytes.data() + offset_ + 8, rows, out);
  offset_ += 8 + rows * kBytesPerRow;
  return true;
}

}  // namespace synscan::core
