// The campaign tracker: per-source scan state with threshold-based
// qualification and inactivity expiry (§3.4).
//
// Definition implemented here (extending Durumeric et al.): a scan is a
// probe sequence from one source address that hits at least
// `min_distinct_destinations` dark addresses at an inferred Internet-wide
// rate of at least `min_internet_pps`, and expires after
// `expiry` without a packet. Expired or stream-end state that meets the
// thresholds is emitted as a Campaign; everything else is counted as
// sub-threshold noise.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/campaign.h"
#include "fingerprint/classifier.h"
#include "stats/telescope_model.h"
#include "telescope/sensor.h"

namespace synscan::core {

/// Tracker thresholds; defaults are the paper's.
struct TrackerConfig {
  std::uint32_t min_distinct_destinations = 100;
  double min_internet_pps = 100.0;
  net::TimeUs expiry = net::kMicrosPerHour;
  /// Sweep for expired sources every this many fed probes.
  std::uint64_t sweep_interval = 1 << 16;
  fingerprint::ClassifierConfig classifier;
};

/// Counters describing everything the tracker saw, including traffic
/// that never qualified as a campaign.
struct TrackerCounters {
  std::uint64_t probes = 0;
  std::uint64_t campaigns = 0;
  std::uint64_t subthreshold_flows = 0;  ///< expired flows that did not qualify
  std::uint64_t subthreshold_packets = 0;
  std::uint64_t expired_flows = 0;   ///< flows closed by inactivity (not stream end)
  std::uint64_t sweeps = 0;          ///< expiry sweeps over the flow table
  std::uint64_t peak_open_flows = 0; ///< high-water mark of the flow table
};

/// Streaming campaign detector. Feed probes in timestamp order; expired
/// qualifying flows are emitted through the sink as they close, and
/// `finish()` flushes everything still open.
class CampaignTracker {
 public:
  using Sink = std::function<void(Campaign&&)>;

  /// `monitored_addresses` parameterizes the geometric extrapolation
  /// model (usually `telescope.monitored_count()`).
  CampaignTracker(TrackerConfig config, std::uint64_t monitored_addresses, Sink sink);

  /// Feeds the next probe. Probes may arrive slightly out of order; the
  /// tracker uses the maximum timestamp seen as "now" for expiry.
  void feed(const telescope::ScanProbe& probe);

  /// Flushes all open flows (end of measurement window).
  void finish();

  [[nodiscard]] const TrackerCounters& counters() const noexcept { return counters_; }

  /// Number of currently open (unexpired) flows.
  [[nodiscard]] std::size_t open_flows() const noexcept { return flows_.size(); }

  /// Convenience: run a full probe vector through a fresh tracker and
  /// return the campaigns.
  [[nodiscard]] static std::vector<Campaign> collect(
      TrackerConfig config, std::uint64_t monitored_addresses,
      std::span<const telescope::ScanProbe> probes);

 private:
  struct Flow {
    net::TimeUs first_seen_us = 0;
    net::TimeUs last_seen_us = 0;
    std::uint64_t packets = 0;
    std::unordered_set<std::uint32_t> destinations;
    std::unordered_map<std::uint16_t, std::uint64_t> port_packets;
    fingerprint::ToolEvidence evidence;
  };

  void close_flow(net::Ipv4Address source, Flow& flow);
  void sweep(net::TimeUs now);

  TrackerConfig config_;
  stats::TelescopeModel model_;
  Sink sink_;
  std::unordered_map<net::Ipv4Address, Flow> flows_;
  TrackerCounters counters_;
  net::TimeUs now_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t feeds_since_sweep_ = 0;
};

}  // namespace synscan::core
