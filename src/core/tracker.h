// The campaign tracker: per-source scan state with threshold-based
// qualification and inactivity expiry (§3.4).
//
// Definition implemented here (extending Durumeric et al.): a scan is a
// probe sequence from one source address that hits at least
// `min_distinct_destinations` dark addresses at an inferred Internet-wide
// rate of at least `min_internet_pps`, and expires after
// `expiry` without a packet. Expired or stream-end state that meets the
// thresholds is emitted as a Campaign; everything else is counted as
// sub-threshold noise.
//
// Hot-path layout (see docs/PERFORMANCE.md): sources are keyed in an
// open-addressing `FlowIndexTable` pointing into a pooled `Flow` vector;
// per-flow destination sets and port tallies are inline-first hybrid
// containers that only touch the allocator once a source proves it is a
// real scanner. Closed flows return to a free list with their container
// capacity intact, so steady-state tracking performs no allocations.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/campaign.h"
#include "core/flow_table.h"
#include "core/hybrid_set.h"
#include "core/port_map.h"
#include "fingerprint/classifier.h"
#include "stats/telescope_model.h"
#include "telescope/sensor.h"

namespace synscan::core {

/// Tracker thresholds; defaults are the paper's.
struct TrackerConfig {
  std::uint32_t min_distinct_destinations = 100;
  double min_internet_pps = 100.0;
  net::TimeUs expiry = net::kMicrosPerHour;
  /// Sweep for expired sources every this many fed probes.
  std::uint64_t sweep_interval = 1 << 16;
  fingerprint::ClassifierConfig classifier;
  /// Shard mode (core/rollup.h): instead of finalizing flows whose
  /// qualification could depend on traffic outside this capture's time
  /// range, export them as `FlowSegment`s — each source's *first* flow
  /// (it may continue a previous shard's open flow) and every flow still
  /// open at stream end (it may continue into the next shard). Interior
  /// flows close normally. `take_boundary_segments()` collects the
  /// exports after `finish()`.
  bool carry_boundary_flows = false;
};

/// One source's flow state at a shard boundary, exported by a tracker
/// running in carry mode. Holds everything `close_flow` needs —
/// including the full destination set and fingerprint evidence — so
/// that joining the segments of adjacent shards and then finalizing is
/// bit-identical to having tracked the whole capture in one pass.
struct FlowSegment {
  net::Ipv4Address source;
  bool head = false;  ///< first flow of this source in the shard
  bool tail = false;  ///< still open at stream end
  net::TimeUs first_seen_us = 0;
  net::TimeUs last_seen_us = 0;
  std::uint64_t packets = 0;
  std::vector<std::uint32_t> destinations;  ///< distinct, sorted
  std::vector<std::pair<std::uint16_t, std::uint64_t>> port_packets;  ///< sorted by port
  fingerprint::EvidenceState evidence;
};

/// Counters describing everything the tracker saw, including traffic
/// that never qualified as a campaign.
struct TrackerCounters {
  std::uint64_t probes = 0;
  std::uint64_t campaigns = 0;
  std::uint64_t subthreshold_flows = 0;  ///< expired flows that did not qualify
  std::uint64_t subthreshold_packets = 0;
  std::uint64_t expired_flows = 0;   ///< flows closed by inactivity (not stream end)
  std::uint64_t sweeps = 0;          ///< expiry sweeps over the flow table
  std::uint64_t peak_open_flows = 0; ///< high-water mark of the flow table
  // Allocation-behaviour counters for the flat hot path:
  std::uint64_t flow_reuses = 0;      ///< flows recycled from the pool / reset in place
  std::uint64_t dest_promotions = 0;  ///< destination sets grown past the inline array
  std::uint64_t port_promotions = 0;  ///< port tallies grown past the inline array
  std::uint64_t table_rehashes = 0;   ///< flow-index table growth events
};

/// Streaming campaign detector. Feed probes in timestamp order; expired
/// qualifying flows are emitted through the sink as they close, and
/// `finish()` flushes everything still open.
class CampaignTracker {
 public:
  using Sink = std::function<void(Campaign&&)>;

  /// `monitored_addresses` parameterizes the geometric extrapolation
  /// model (usually `telescope.monitored_count()`).
  CampaignTracker(TrackerConfig config, std::uint64_t monitored_addresses, Sink sink);

  /// Feeds the next probe. Probes may arrive slightly out of order; the
  /// tracker uses the maximum timestamp seen as "now" for expiry.
  void feed(const telescope::ScanProbe& probe);

  /// Feeds the batch rows listed in `rows`, in order. The tracker's flow
  /// state machine is inherently per-probe, so this materializes each
  /// row; it exists so batch-slice callers need no ScanProbe staging.
  void feed_batch(const telescope::ProbeBatch& batch,
                  std::span<const std::uint32_t> rows);

  /// Flushes all open flows (end of measurement window). A flow whose
  /// last packet is more than `expiry` before the final observed
  /// timestamp counts as expired — the scan had ended, the stream end
  /// merely delivered the verdict — which keeps `expired_flows` a pure
  /// function of the probe timestamps (and therefore shard-mergeable)
  /// instead of an artifact of sweep scheduling.
  void finish();

  /// Carry mode only: the boundary segments collected so far (heads as
  /// they closed, tails at `finish()`). Moves the collection out.
  [[nodiscard]] std::vector<FlowSegment> take_boundary_segments() {
    return std::move(segments_);
  }

  /// Maximum probe timestamp observed ("now" for expiry decisions).
  [[nodiscard]] net::TimeUs now() const noexcept { return now_; }

  [[nodiscard]] const TrackerCounters& counters() const noexcept { return counters_; }

  /// Number of currently open (unexpired) flows.
  [[nodiscard]] std::size_t open_flows() const noexcept { return table_.size(); }

  /// Pool slots currently parked on the free list (capacity held for
  /// reuse); exposed for the capacity-recycling tests.
  [[nodiscard]] std::size_t pooled_free_flows() const noexcept { return free_.size(); }

  /// Convenience: run a full probe vector through a fresh tracker and
  /// return the campaigns.
  [[nodiscard]] static std::vector<Campaign> collect(
      TrackerConfig config, std::uint64_t monitored_addresses,
      std::span<const telescope::ScanProbe> probes);

 private:
  struct Flow {
    net::TimeUs first_seen_us = 0;
    net::TimeUs last_seen_us = 0;
    std::uint64_t packets = 0;
    HybridU32Set destinations;
    PortPacketMap port_packets;
    fingerprint::ToolEvidence evidence;

    /// Restart in place for a new scan from the same or a recycled
    /// source: containers are emptied but keep their backing stores.
    void reset(const fingerprint::ClassifierConfig& classifier) {
      first_seen_us = 0;
      last_seen_us = 0;
      packets = 0;
      destinations.clear();
      port_packets.clear();
      evidence = fingerprint::ToolEvidence(classifier);
    }
  };

  /// Pool slot for a fresh flow: recycled from the free list when
  /// possible, appended otherwise.
  std::uint32_t acquire_flow();

  void close_flow(net::Ipv4Address source, Flow& flow);
  /// Copies `flow` out as a boundary segment (carry mode).
  void export_segment(net::Ipv4Address source, const Flow& flow, bool head, bool tail);
  void sweep(net::TimeUs now);

  TrackerConfig config_;
  stats::TelescopeModel model_;
  Sink sink_;
  FlowIndexTable table_;             ///< source -> pool index
  std::vector<Flow> pool_;           ///< flow storage, indexed by the table
  std::vector<std::uint32_t> free_;  ///< recycled pool slots
  std::vector<std::uint32_t> sweep_keys_;  ///< scratch: sources expiring this sweep
  std::vector<FlowSegment> segments_;      ///< carry mode: exported boundary flows
  HybridU32Set carried_sources_;  ///< carry mode: sources whose head was already exported
  TrackerCounters counters_;
  net::TimeUs now_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t feeds_since_sweep_ = 0;
};

}  // namespace synscan::core
