#include "core/analysis_session.h"

#include <span>
#include <vector>

#include "core/parallel.h"
#include "obs/timer.h"
#include "telescope/probe_batch.h"

namespace synscan::core {

AnalyzedCapture analyze_capture(const std::filesystem::path& path,
                                const telescope::Telescope& telescope,
                                const enrich::InternetRegistry& registry,
                                std::size_t workers, const IngestOptions& options) {
  AnalyzedCapture analysis(registry);
  if (workers <= 1) {
    Pipeline pipeline(telescope);
    pipeline.add_observer(analysis.ports);
    pipeline.add_observer(analysis.types);
    pipeline.add_observer(analysis.geo);

    {
      obs::ScopedTimer ingest("analyze.ingest");
      const auto ingested = ingest_capture(
          path, telescope, options,
          [&](const telescope::ProbeBatch& batch) { pipeline.feed_probes(batch); });
      pipeline.absorb_sensor_counters(ingested.sensor);
      analysis.frames = ingested.frames;
      analysis.final_status = ingested.status;
      analysis.from_cache = ingested.from_cache;
    }
    const obs::ScopedTimer finish("analyze.finish");
    analysis.result = pipeline.finish();
    return analysis;
  }

  // Multi-core replay: campaign tracking runs sharded by source across
  // the workers (each worker receives row-index slices into a shared
  // copy of the batch columns). Classification already happened once on
  // the ingest thread, so the same batch drives both the workers and the
  // (not thread-safe) streaming observers in file order.
  ParallelAnalyzer analyzer(telescope, workers);
  std::vector<std::uint32_t> rows;
  {
    obs::ScopedTimer ingest("analyze.ingest");
    const auto ingested = ingest_capture(
        path, telescope, options, [&](const telescope::ProbeBatch& batch) {
          analyzer.feed_probes(batch);
          const auto n = batch.size();
          if (rows.size() < n) {
            const auto old = static_cast<std::uint32_t>(rows.size());
            rows.resize(n);
            for (std::uint32_t i = old; i < n; ++i) rows[i] = i;
          }
          const std::span<const std::uint32_t> all(rows.data(), n);
          const obs::ScopedTimer observers("analyze.observers");
          analysis.ports.observe_batch(batch, all);
          analysis.types.observe_batch(batch, all);
          analysis.geo.observe_batch(batch, all);
        });
    analyzer.absorb_sensor_counters(ingested.sensor);
    analysis.frames = ingested.frames;
    analysis.final_status = ingested.status;
    analysis.from_cache = ingested.from_cache;
  }
  const obs::ScopedTimer finish("analyze.finish");
  analysis.result = analyzer.finish();
  return analysis;
}

}  // namespace synscan::core
