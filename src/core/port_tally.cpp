#include "core/port_tally.h"

#include <algorithm>

namespace synscan::core {

void PortTally::on_probe(const telescope::ScanProbe& probe) {
  ++total_packets_;
  packets_per_port_.add(probe.destination_port, 1);
  if (ports_per_source_[probe.source.value()].insert(probe.destination_port)) {
    sources_per_port_.add(probe.destination_port, 1);
  }
}

void PortTally::observe_batch(const telescope::ProbeBatch& batch,
                              std::span<const std::uint32_t> rows) {
  total_packets_ += rows.size();
  for (const auto row : rows) {
    const auto port = batch.destination_port[row];
    packets_per_port_.add(port, 1);
    if (ports_per_source_[batch.source[row]].insert(port)) {
      sources_per_port_.add(port, 1);
    }
  }
}

void PortTally::merge(const PortTally& other) {
  total_packets_ += other.total_packets_;
  for (const auto [port, packets] : other.packets_per_port_) {
    packets_per_port_.add(port, packets);
  }
  // The per-source port sets drive the distinct-source counts exactly as
  // in on_probe: an insert that returns true is a new (source, port) pair.
  other.ports_per_source_.for_each([&](std::uint32_t source, const HybridU32Set& ports) {
    auto& mine = ports_per_source_[source];
    ports.for_each([&](std::uint32_t port) {
      if (mine.insert(port)) {
        sources_per_port_.add(static_cast<std::uint16_t>(port), 1);
      }
    });
  });
}

namespace {

std::vector<PortCount> top_n(const PortPacketMap& counts, std::size_t n,
                             std::uint64_t denominator) {
  std::vector<PortCount> rows;
  rows.reserve(counts.size());
  for (const auto& [port, count] : counts) rows.push_back({port, count, 0.0});
  std::sort(rows.begin(), rows.end(), [](const PortCount& a, const PortCount& b) {
    return a.count != b.count ? a.count > b.count : a.port < b.port;
  });
  if (rows.size() > n) rows.resize(n);
  for (auto& row : rows) {
    row.share = denominator == 0
                    ? 0.0
                    : static_cast<double>(row.count) / static_cast<double>(denominator);
  }
  return rows;
}

}  // namespace

std::vector<PortCount> PortTally::top_ports_by_packets(std::size_t n) const {
  return top_n(packets_per_port_, n, total_packets_);
}

std::vector<PortCount> PortTally::top_ports_by_sources(std::size_t n) const {
  return top_n(sources_per_port_, n, total_sources());
}

std::uint64_t PortTally::packets_on_port(std::uint16_t port) const {
  return packets_per_port_.get(port);
}

std::uint64_t PortTally::sources_on_port(std::uint16_t port) const {
  return sources_per_port_.get(port);
}

std::size_t PortTally::ports_with_at_least(std::uint64_t min_packets) const {
  std::size_t count = 0;
  for (const auto& [port, packets] : packets_per_port_) {
    if (packets >= min_packets) ++count;
  }
  return count;
}

double PortTally::privileged_port_coverage(double noise_floor) const {
  std::uint64_t privileged_total = 0;
  for (const auto& [port, packets] : packets_per_port_) {
    if (port >= 1 && port <= 1023) privileged_total += packets;
  }
  if (privileged_total == 0) return 0.0;
  const double threshold =
      noise_floor * static_cast<double>(privileged_total) / 1023.0;
  std::size_t above = 0;
  for (const auto& [port, packets] : packets_per_port_) {
    if (port >= 1 && port <= 1023 && static_cast<double>(packets) > threshold) ++above;
  }
  return static_cast<double>(above) / 1023.0;
}

std::vector<double> PortTally::ports_per_source_sample() const {
  std::vector<double> sample;
  sample.reserve(ports_per_source_.size());
  for (const auto& [source, ports] : ports_per_source_) {
    sample.push_back(static_cast<double>(ports.size()));
  }
  return sample;
}

double PortTally::co_scan_fraction(std::uint16_t a, std::uint16_t b) const {
  std::uint64_t scans_a = 0;
  std::uint64_t scans_both = 0;
  for (const auto& [source, ports] : ports_per_source_) {
    if (!ports.contains(a)) continue;
    ++scans_a;
    if (ports.contains(b)) ++scans_both;
  }
  return scans_a == 0 ? 0.0 : static_cast<double>(scans_both) / static_cast<double>(scans_a);
}

}  // namespace synscan::core
