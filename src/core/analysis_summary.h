// Assembly of the Table 1 yearly ecosystem summary.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/analysis_campaigns.h"
#include "core/campaign.h"
#include "core/port_tally.h"

namespace synscan::core {

/// One Table 1 column: the ecosystem metrics of a measurement window.
struct YearlySummary {
  int year = 0;
  double window_days = 0.0;
  std::uint64_t total_packets = 0;
  double packets_per_day = 0.0;
  std::uint64_t total_scans = 0;
  double scans_per_month = 0.0;
  std::uint64_t distinct_sources = 0;
  double mean_packets_per_scan = 0.0;
  std::vector<PortCount> top_ports_by_packets;
  std::vector<PortCount> top_ports_by_sources;
  std::vector<PortCount> top_ports_by_scans;
  ToolShares tools;
};

/// Builds the yearly summary from a window's probe tallies and finalized
/// campaigns. `window_days` is the measurement period length (29–61 days
/// in the paper).
[[nodiscard]] YearlySummary yearly_summary(int year, double window_days,
                                           const PortTally& tally,
                                           std::span<const Campaign> campaigns,
                                           std::size_t top_n = 5);

}  // namespace synscan::core
