#include "core/rollup.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/pipeline.h"
#include "obs/timer.h"

namespace synscan::core {
namespace {

/// The canonical campaign order every finish path emits (see
/// Pipeline::finish / ParallelAnalyzer::finish).
void canonicalize(std::vector<Campaign>& campaigns) {
  std::sort(campaigns.begin(), campaigns.end(),
            [](const Campaign& a, const Campaign& b) {
              if (a.first_seen_us != b.first_seen_us) {
                return a.first_seen_us < b.first_seen_us;
              }
              return a.source < b.source;
            });
  std::uint64_t next_id = 1;
  for (auto& campaign : campaigns) campaign.id = next_id++;
}

}  // namespace

CaptureRollup analyze_shard(const std::filesystem::path& path,
                            const telescope::Telescope& telescope,
                            const enrich::InternetRegistry& registry,
                            const TrackerConfig& tracker_config,
                            const IngestOptions& options) {
  CaptureRollup rollup(registry);
  rollup.capture = path;

  TrackerConfig config = tracker_config;
  config.carry_boundary_flows = true;
  Pipeline pipeline(telescope, config);
  pipeline.add_observer(rollup.ports);
  pipeline.add_observer(rollup.types);
  pipeline.add_observer(rollup.geo);

  {
    const obs::ScopedTimer ingest("rollup.analyze_shard");
    const auto ingested = ingest_capture(
        path, telescope, options,
        [&](const telescope::ProbeBatch& batch) { pipeline.feed_probes(batch); });
    pipeline.absorb_sensor_counters(ingested.sensor);
    rollup.frames = ingested.frames;
    rollup.final_status = ingested.status;
    rollup.from_cache = ingested.from_cache;
  }

  auto result = pipeline.finish();
  rollup.sensor = result.sensor;
  rollup.tracker = result.tracker;
  rollup.campaigns = std::move(result.campaigns);
  rollup.segments = pipeline.take_carried_segments();
  rollup.max_timestamp_us = pipeline.max_timestamp();
  // Export order depends on sweep timing and flow-table layout; the
  // rollup must not (it is checksummed on disk and folded in order).
  std::sort(rollup.segments.begin(), rollup.segments.end(),
            [](const FlowSegment& a, const FlowSegment& b) {
              if (a.source.value() != b.source.value()) {
                return a.source.value() < b.source.value();
              }
              return a.first_seen_us < b.first_seen_us;
            });
  return rollup;
}

RollupMerger::RollupMerger(const telescope::Telescope& telescope,
                           const enrich::InternetRegistry& registry,
                           const TrackerConfig& tracker_config)
    : config_(tracker_config),
      model_(telescope.monitored_count()),
      merged_(registry) {}

FlowSegment RollupMerger::join_segments(FlowSegment&& earlier,
                                        FlowSegment&& later) const {
  FlowSegment joined = std::move(earlier);
  joined.tail = later.tail;
  joined.last_seen_us = std::max(joined.last_seen_us, later.last_seen_us);
  joined.packets += later.packets;

  std::vector<std::uint32_t> destinations;
  destinations.reserve(joined.destinations.size() + later.destinations.size());
  std::set_union(joined.destinations.begin(), joined.destinations.end(),
                 later.destinations.begin(), later.destinations.end(),
                 std::back_inserter(destinations));
  joined.destinations = std::move(destinations);

  // Both port lists are sorted; merge them summing counts of shared ports.
  std::vector<std::pair<std::uint16_t, std::uint64_t>> ports;
  ports.reserve(joined.port_packets.size() + later.port_packets.size());
  auto a = joined.port_packets.begin();
  auto b = later.port_packets.begin();
  while (a != joined.port_packets.end() && b != later.port_packets.end()) {
    if (a->first < b->first) {
      ports.push_back(*a++);
    } else if (b->first < a->first) {
      ports.push_back(*b++);
    } else {
      ports.emplace_back(a->first, a->second + b->second);
      ++a;
      ++b;
    }
  }
  ports.insert(ports.end(), a, joined.port_packets.end());
  ports.insert(ports.end(), b, later.port_packets.end());
  joined.port_packets = std::move(ports);

  // Splice the fingerprint accumulators: counters add and the pairwise
  // fingerprints are evaluated once across the seam, bit-identical to
  // having observed the concatenated probe run in one tracker.
  auto evidence = fingerprint::ToolEvidence::from_state(config_.classifier,
                                                        joined.evidence);
  evidence.append(
      fingerprint::ToolEvidence::from_state(config_.classifier, later.evidence));
  joined.evidence = evidence.state();
  return joined;
}

void RollupMerger::finalize_segment(FlowSegment&& segment, bool gap_closed) {
  auto& counters = merged_.result.tracker;
  if (gap_closed || now_ - segment.last_seen_us > config_.expiry) {
    ++counters.expired_flows;
  }

  // The same qualification rule as CampaignTracker::close_flow, applied
  // to the joined segment.
  const auto hits = static_cast<double>(segment.packets);
  const double duration = [&] {
    const auto us = segment.last_seen_us - segment.first_seen_us;
    return us < net::kMicrosPerSecond
               ? 1.0
               : static_cast<double>(us) / static_cast<double>(net::kMicrosPerSecond);
  }();
  const double pps = model_.extrapolate_pps(hits, duration);

  if (segment.destinations.size() >= config_.min_distinct_destinations &&
      pps >= config_.min_internet_pps) {
    Campaign campaign;
    campaign.source = segment.source;
    campaign.first_seen_us = segment.first_seen_us;
    campaign.last_seen_us = segment.last_seen_us;
    campaign.packets = segment.packets;
    campaign.distinct_destinations =
        static_cast<std::uint32_t>(segment.destinations.size());
    for (const auto& [port, packets] : segment.port_packets) {
      campaign.port_packets.add(port, packets);
    }
    campaign.tool =
        fingerprint::ToolEvidence::from_state(config_.classifier, segment.evidence)
            .verdict();
    campaign.extrapolated_pps = pps;
    campaign.extrapolated_packets = model_.extrapolate_probes(hits);
    campaign.coverage_fraction =
        model_.coverage_fraction(static_cast<double>(segment.destinations.size()));
    ++counters.campaigns;
    merged_.result.campaigns.push_back(std::move(campaign));
  } else {
    ++counters.subthreshold_flows;
    counters.subthreshold_packets += segment.packets;
  }
}

void RollupMerger::add(CaptureRollup&& shard) {
  if (finished_) throw std::logic_error("RollupMerger::add after finish");

  merged_.frames += shard.frames;
  if (merged_.final_status == pcap::ReadStatus::kEndOfFile) {
    merged_.final_status = shard.final_status;  // first defect wins
  }
  merged_.from_cache =
      any_shard_ ? (merged_.from_cache && shard.from_cache) : shard.from_cache;
  any_shard_ = true;
  now_ = std::max(now_, shard.max_timestamp_us);

  merged_.result.sensor.add(shard.sensor);
  auto& counters = merged_.result.tracker;
  const auto& theirs = shard.tracker;
  counters.probes += theirs.probes;
  counters.campaigns += theirs.campaigns;
  counters.subthreshold_flows += theirs.subthreshold_flows;
  counters.subthreshold_packets += theirs.subthreshold_packets;
  counters.expired_flows += theirs.expired_flows;
  counters.sweeps += theirs.sweeps;
  counters.flow_reuses += theirs.flow_reuses;
  counters.dest_promotions += theirs.dest_promotions;
  counters.port_promotions += theirs.port_promotions;
  counters.table_rehashes += theirs.table_rehashes;
  // Shards run one at a time conceptually, but the sum still bounds the
  // peak (same convention as ParallelAnalyzer::finish).
  counters.peak_open_flows += theirs.peak_open_flows;

  merged_.result.campaigns.insert(merged_.result.campaigns.end(),
                                  std::make_move_iterator(shard.campaigns.begin()),
                                  std::make_move_iterator(shard.campaigns.end()));
  merged_.ports.merge(shard.ports);
  merged_.types.merge(shard.types);
  merged_.geo.merge(shard.geo);

  for (auto& exported : shard.segments) {
    FlowSegment segment = std::move(exported);
    const auto source = segment.source.value();
    if (segment.head) {
      auto& slot = tail_index_[source];
      if (slot != 0) {
        FlowSegment previous = std::move(open_tails_[slot - 1]);
        slot = 0;
        if (segment.first_seen_us - previous.last_seen_us <= config_.expiry) {
          // The gap fits inside the expiry: the whole-capture tracker
          // would have kept this flow alive across the boundary.
          segment = join_segments(std::move(previous), std::move(segment));
        } else {
          finalize_segment(std::move(previous), /*gap_closed=*/true);
        }
      }
    }
    if (segment.tail) {
      open_tails_.push_back(std::move(segment));
      tail_index_[source] = static_cast<std::uint32_t>(open_tails_.size());
    } else {
      // Followed inside its own shard by same-source traffic after an
      // expiry gap, so the whole-capture tracker gap-closed it too.
      finalize_segment(std::move(segment), /*gap_closed=*/true);
    }
  }
}

AnalyzedCapture RollupMerger::finish() {
  if (finished_) throw std::logic_error("RollupMerger::finish called twice");
  finished_ = true;

  const obs::ScopedTimer merge_timer("rollup.finish");
  tail_index_.for_each([&](std::uint32_t, std::uint32_t slot) {
    if (slot == 0) return;
    finalize_segment(std::move(open_tails_[slot - 1]), /*gap_closed=*/false);
  });
  open_tails_.clear();

  canonicalize(merged_.result.campaigns);
  if (!any_shard_) merged_.from_cache = false;
  return std::move(merged_);
}

}  // namespace synscan::core
