// Streaming probe observers.
//
// Several analyses need probe-level aggregates that would be too large to
// recompute from stored probes (the paper's dataset is 45 billion
// packets). Observers attach to the pipeline and accumulate during the
// single pass over the traffic.
#pragma once

#include "telescope/sensor.h"

namespace synscan::core {

/// Interface for streaming consumers of qualified scan probes.
class ProbeObserver {
 public:
  virtual ~ProbeObserver() = default;
  virtual void on_probe(const telescope::ScanProbe& probe) = 0;
};

}  // namespace synscan::core
