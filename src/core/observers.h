// Streaming probe observers.
//
// Several analyses need probe-level aggregates that would be too large to
// recompute from stored probes (the paper's dataset is 45 billion
// packets). Observers attach to the pipeline and accumulate during the
// single pass over the traffic.
//
// The pipeline moves probes as `telescope::ProbeBatch` columns, so the
// interface has two granularities: `on_probe` consumes one materialized
// `ScanProbe`, and `observe_batch` consumes a batch slice — a span of row
// indices into the batch's columns. The default `observe_batch` loops
// `on_probe(batch.get(row))`; it is deliberately kept as the differential
// reference for the column-direct overrides (tests feed both paths and
// require bit-identical tallies). Batch slices are borrowed: the batch is
// only valid for the duration of the call (ingest recycles its buffers),
// so observers must copy out anything they keep.
#pragma once

#include <cstdint>
#include <span>

#include "telescope/probe_batch.h"
#include "telescope/sensor.h"

namespace synscan::core {

/// Interface for streaming consumers of qualified scan probes.
class ProbeObserver {
 public:
  virtual ~ProbeObserver() = default;

  /// Consumes one probe (the per-probe reference path).
  virtual void on_probe(const telescope::ScanProbe& probe) = 0;

  /// Consumes the batch rows listed in `rows`, in order. Overrides read
  /// the columns directly; the default materializes each row and is the
  /// reference implementation batched overrides are tested against.
  virtual void observe_batch(const telescope::ProbeBatch& batch,
                             std::span<const std::uint32_t> rows) {
    for (const auto row : rows) on_probe(batch.get(row));
  }
};

}  // namespace synscan::core
