// Capability-annotated synchronization layer.
//
// Every lock in the concurrent core (the ParallelAnalyzer worker
// lanes, the synscand job/completion queues, the chunked-scan merge,
// the obs metrics registry) goes through these wrappers instead of the
// raw std primitives, for one reason: the wrappers carry Clang
// Thread Safety Analysis attributes, which turn the protection rules
// documented in docs/ARCHITECTURE.md ("Ownership and threading rules")
// into *compile errors* under `-Wthread-safety`:
//
//   - a member declared `SYNSCAN_GUARDED_BY(mutex_)` cannot be read or
//     written without holding `mutex_`;
//   - a function declared `SYNSCAN_REQUIRES(mutex_)` cannot be called
//     without holding `mutex_`;
//   - acquiring a `Mutex` twice, or returning with it held, is an error.
//
// The analysis runs only under clang (CMake option
// `SYNSCAN_THREAD_SAFETY`, on by default there; the CI job
// `clang-thread-safety` builds the tree with `-Werror=thread-safety`).
// Under gcc every macro below expands to nothing and the wrappers are
// zero-overhead shims over std::mutex/std::condition_variable, so
// non-clang builds are bit-identical in behavior. The seeded-violation
// fixtures under tests/threadsafety/ prove the analysis actually
// rejects guarded-access, missing-REQUIRES and double-acquire bugs.
//
// Raw `std::mutex` & friends are banned in src/core, src/obs and
// src/server by the `raw-sync-primitive` lint rule
// (tools/lint/synscan_lint.py); this header is the single allowed
// owner of the primitives. docs/STATIC_ANALYSIS.md "Thread-safety
// analysis" documents the macros and the suppression policy.
#pragma once

#include <condition_variable>
#include <mutex>

// Attribute spelling: GNU attributes, present in every clang new
// enough to build C++20. Expand to nothing elsewhere (gcc accepts
// none of the capability attributes).
#if defined(__clang__)
#define SYNSCAN_TSA(x) __attribute__((x))
#else
#define SYNSCAN_TSA(x)
#endif

/// Marks a type as a lockable capability ("mutex" names the kind in
/// diagnostics).
#define SYNSCAN_CAPABILITY(name) SYNSCAN_TSA(capability(name))
/// Marks an RAII type whose constructor acquires and destructor
/// releases a capability.
#define SYNSCAN_SCOPED_CAPABILITY SYNSCAN_TSA(scoped_lockable)
/// Data member readable/writable only while holding `x`.
#define SYNSCAN_GUARDED_BY(x) SYNSCAN_TSA(guarded_by(x))
/// Pointer member whose *pointee* is guarded by `x`.
#define SYNSCAN_PT_GUARDED_BY(x) SYNSCAN_TSA(pt_guarded_by(x))
/// Function callable only while holding the listed capabilities.
#define SYNSCAN_REQUIRES(...) SYNSCAN_TSA(requires_capability(__VA_ARGS__))
/// Function that acquires the listed capabilities (held on return).
#define SYNSCAN_ACQUIRE(...) SYNSCAN_TSA(acquire_capability(__VA_ARGS__))
/// Function that releases the listed capabilities.
#define SYNSCAN_RELEASE(...) SYNSCAN_TSA(release_capability(__VA_ARGS__))
/// Function that acquires the capability iff it returns the first
/// argument (e.g. `SYNSCAN_TRY_ACQUIRE(true)`).
#define SYNSCAN_TRY_ACQUIRE(...) SYNSCAN_TSA(try_acquire_capability(__VA_ARGS__))
/// Function that must NOT be entered with the listed capabilities held
/// (the annotation for "locks internally" — prevents self-deadlock).
#define SYNSCAN_EXCLUDES(...) SYNSCAN_TSA(locks_excluded(__VA_ARGS__))
/// Runtime assertion that the capability is held (trusted by analysis).
#define SYNSCAN_ASSERT_CAPABILITY(x) SYNSCAN_TSA(assert_capability(x))
/// Function returning a reference to the capability guarding its result.
#define SYNSCAN_RETURN_CAPABILITY(x) SYNSCAN_TSA(lock_returned(x))
/// Escape hatch: function body is not analyzed. Every use must carry a
/// comment explaining which out-of-band mechanism (thread join, slot
/// disjointness) provides the exclusion the analysis cannot see.
#define SYNSCAN_NO_THREAD_SAFETY_ANALYSIS \
  SYNSCAN_TSA(no_thread_safety_analysis)

namespace synscan::core {

/// std::mutex as a capability. Prefer the scoped holders below; call
/// `lock()`/`unlock()` directly only where a scope cannot express the
/// critical section.
class SYNSCAN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  // The bodies are excluded from analysis (the std primitive carries
  // no annotations under libstdc++, so the analysis cannot see that
  // the declared effect happens); the declarations are what callers
  // are checked against.
  void lock() SYNSCAN_ACQUIRE() SYNSCAN_NO_THREAD_SAFETY_ANALYSIS {
    mutex_.lock();
  }
  void unlock() SYNSCAN_RELEASE() SYNSCAN_NO_THREAD_SAFETY_ANALYSIS {
    mutex_.unlock();
  }
  [[nodiscard]] bool try_lock()
      SYNSCAN_TRY_ACQUIRE(true) SYNSCAN_NO_THREAD_SAFETY_ANALYSIS {
    return mutex_.try_lock();
  }

 private:
  friend class UniqueLock;
  std::mutex mutex_;
};

/// RAII holder for the plain lock/unlock critical sections (the
/// std::lock_guard shape). Not movable; lives exactly one scope.
class SYNSCAN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex)
      SYNSCAN_ACQUIRE(mutex) SYNSCAN_NO_THREAD_SAFETY_ANALYSIS
      : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() SYNSCAN_RELEASE() SYNSCAN_NO_THREAD_SAFETY_ANALYSIS {
    mutex_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// RAII holder for condition-variable waits (the std::unique_lock
/// shape): `CondVar::wait` releases and reacquires it atomically.
class SYNSCAN_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mutex)
      SYNSCAN_ACQUIRE(mutex) SYNSCAN_NO_THREAD_SAFETY_ANALYSIS
      : lock_(mutex.mutex_) {}
  ~UniqueLock() SYNSCAN_RELEASE() SYNSCAN_NO_THREAD_SAFETY_ANALYSIS {}
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable bound to `UniqueLock`. The analysis treats the
/// capability as continuously held across `wait` (matching the caller's
/// view: the lock is reacquired before `wait` returns), so guarded
/// state may be re-checked directly in the wait loop:
///
///   UniqueLock lock(mutex_);
///   while (queue_.empty() && !stop_) ready_.wait(lock);
///
/// Predicate overloads are deliberately absent: a predicate lambda is
/// analyzed as a separate function that does not hold the capability,
/// so every wait is written as an explicit loop instead.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(UniqueLock& lock) { cv_.wait(lock.lock_); }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace synscan::core
