// Per-port and per-source port-breadth accumulation.
//
// Feeds Table 1's "top ports by packets / by sources" blocks, the
// port-space coverage analysis (§5.1) and the ports-per-source CDF
// (Fig. 3).
#pragma once

#include <cstdint>
#include <vector>

#include "core/flat_map.h"
#include "core/hybrid_set.h"
#include "core/observers.h"
#include "core/port_map.h"

namespace synscan::core {

/// A (port, weight) result row.
struct PortCount {
  std::uint16_t port = 0;
  std::uint64_t count = 0;
  double share = 0.0;  ///< of the total across all ports
};

class PortTally final : public ProbeObserver {
 public:
  void on_probe(const telescope::ScanProbe& probe) override;

  /// Column-direct tally over a batch slice: reads only the source and
  /// destination-port columns, no `ScanProbe` materialization. Must stay
  /// bit-identical to the `on_probe` reference (differential-tested).
  void observe_batch(const telescope::ProbeBatch& batch,
                     std::span<const std::uint32_t> rows) override;

  /// Folds another tally in. All state is order-independent sums and
  /// set unions, so merging per-shard tallies in any order equals
  /// tallying the whole capture in one pass (the rollup invariant).
  void merge(const PortTally& other);

  /// Total probes observed.
  [[nodiscard]] std::uint64_t total_packets() const noexcept { return total_packets_; }

  /// Distinct source count.
  [[nodiscard]] std::uint64_t total_sources() const noexcept {
    return ports_per_source_.size();
  }

  /// Top `n` ports by packet count, with shares.
  [[nodiscard]] std::vector<PortCount> top_ports_by_packets(std::size_t n) const;

  /// Top `n` ports by distinct scanning sources, with shares of the
  /// total source count (a source scanning two ports counts for both,
  /// matching the paper's per-port source percentages).
  [[nodiscard]] std::vector<PortCount> top_ports_by_sources(std::size_t n) const;

  /// Packets seen on one port.
  [[nodiscard]] std::uint64_t packets_on_port(std::uint16_t port) const;

  /// Distinct sources seen on one port.
  [[nodiscard]] std::uint64_t sources_on_port(std::uint16_t port) const;

  /// Number of distinct ports receiving at least `min_packets`.
  [[nodiscard]] std::size_t ports_with_at_least(std::uint64_t min_packets) const;

  /// Fraction of privileged ports (1..1023) whose packet count exceeds
  /// `noise_floor` times the mean privileged-port packet count — the
  /// §5.1 "31% of privileged ports probed above a 1% noise floor".
  [[nodiscard]] double privileged_port_coverage(double noise_floor = 0.01) const;

  /// The per-source distinct-port counts (the Fig. 3 sample).
  [[nodiscard]] std::vector<double> ports_per_source_sample() const;

  /// Fraction of sources scanning `a` that also scan `b` (the §5.1
  /// "18% of scans targeting 80 also targeted 8080 in 2015, 87% in
  /// 2020" measurement). Returns 0 when no source scans `a`.
  [[nodiscard]] double co_scan_fraction(std::uint16_t a, std::uint16_t b) const;

 private:
  // Flat inline-first tallies (see docs/PERFORMANCE.md): the per-source
  // port sets answer "is this (source, port) pair new" from their insert
  // result, so no separate seen-pair set is needed, and the 83%-of-
  // sources-scan-one-port population (Fig. 3) never allocates.
  PortPacketMap packets_per_port_;
  PortPacketMap sources_per_port_;
  FlatHashMap<std::uint32_t, HybridU32Set> ports_per_source_;
  std::uint64_t total_packets_ = 0;

  friend struct RollupTallyIo;  ///< `.spr` serialization (rollup_store.cpp)
};

}  // namespace synscan::core
