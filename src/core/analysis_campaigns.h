// Campaign-level aggregations: tool shares, port-by-scans rankings,
// speed and coverage distributions, vertical-scan census (§5.2, §6.1,
// §6.3, §6.4).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/campaign.h"
#include "core/port_tally.h"
#include "fingerprint/classifier.h"
#include "stats/ecdf.h"

namespace synscan::core {

/// Tool shares weighted by campaigns and by packets (the two views of
/// Table 1 / §6.1: "54% of scans", "92% of packets").
struct ToolShares {
  fingerprint::ToolTally by_scans;
  fingerprint::ToolTally by_packets;
};

[[nodiscard]] ToolShares tool_shares(std::span<const Campaign> campaigns);

/// Top `n` ports ranked by the number of campaigns targeting them; the
/// share denominator is the total campaign count.
[[nodiscard]] std::vector<PortCount> top_ports_by_scans(std::span<const Campaign> campaigns,
                                                        std::size_t n);

/// Inferred Internet-wide speed sample (pps) of campaigns attributed to
/// `tool`; pass kUnknown to sample custom tooling.
[[nodiscard]] std::vector<double> speed_sample(std::span<const Campaign> campaigns,
                                               fingerprint::Tool tool);

/// Speed sample over all campaigns.
[[nodiscard]] std::vector<double> speed_sample(std::span<const Campaign> campaigns);

/// IPv4-coverage sample (fraction in [0,1]) per campaign for one tool.
[[nodiscard]] std::vector<double> coverage_sample(std::span<const Campaign> campaigns,
                                                  fingerprint::Tool tool);

/// Mean speed of the `n` fastest campaigns (the §6.3 top-100 trend).
[[nodiscard]] double top_speed_mean(std::span<const Campaign> campaigns, std::size_t n);

/// Vertical-scan census (§5.2): how many campaigns target more than each
/// port-count threshold, and how fast the big ones go.
struct VerticalScanCensus {
  std::uint64_t total_campaigns = 0;
  std::uint64_t over_10_ports = 0;
  std::uint64_t over_100_ports = 0;
  std::uint64_t over_1000_ports = 0;
  std::uint64_t over_10000_ports = 0;
  std::uint32_t max_ports = 0;           ///< largest port breadth seen
  double mean_speed_over_1000_mbps = 0;  ///< mean wire speed of >1000-port scans
  double mean_speed_all_mbps = 0;
};

[[nodiscard]] VerticalScanCensus vertical_scan_census(std::span<const Campaign> campaigns);

/// Correlation inputs for the §5.3 claim that scan speed correlates with
/// port breadth: pairs (ports targeted, pps), one per campaign.
struct SpeedBreadthSample {
  std::vector<double> ports;
  std::vector<double> pps;
};
[[nodiscard]] SpeedBreadthSample speed_breadth_sample(std::span<const Campaign> campaigns);

/// Campaigns grouped per day-index (relative to `origin`), per tool —
/// feeds the §4.1 "minimum ZMap scans per day" comparison.
[[nodiscard]] std::vector<std::uint64_t> campaigns_per_day(
    std::span<const Campaign> campaigns, net::TimeUs origin, fingerprint::Tool tool);

/// Distinct sources participating in campaigns of one tool.
[[nodiscard]] std::uint64_t distinct_sources(std::span<const Campaign> campaigns,
                                             fingerprint::Tool tool);

}  // namespace synscan::core
