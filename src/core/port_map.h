// Flat small-map from destination port to packet count.
//
// The per-flow and per-campaign port tally is overwhelmingly tiny — 83%
// of sources scan exactly one port (Fig. 3) — yet `std::unordered_map`
// pays a node allocation per port. This map keeps the first
// `kInlineCapacity` (port, count) entries in an inline array and
// promotes to a linear-probing flat table only for genuine multi-port
// scanners (vertical scans promote once and then stay flat).
//
// The API mirrors the subset of `std::unordered_map<uint16_t, uint64_t>`
// the analysis layer uses: `operator[]`, `at`, `contains`, `size`,
// `clear`, and range-for iteration yielding `(port, packets)` pairs.
// `clear()` keeps the promoted backing store so pooled flows recycle it.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

namespace synscan::core {

class PortPacketMap {
 public:
  /// Inline capacity before promotion. Eight entries cover everything
  /// but vertical/multi-service scanners.
  static constexpr std::uint32_t kInlineCapacity = 8;

  using value_type = std::pair<std::uint16_t, std::uint64_t>;

  /// Adds `n` packets to `port`; returns true when the port is new.
  bool add(std::uint16_t port, std::uint64_t n) {
    std::uint64_t* cell = find_cell(port);
    if (cell != nullptr) {
      *cell += n;
      return false;
    }
    *insert_new(port) = n;
    return true;
  }

  /// Insert-or-lookup, `std::unordered_map` style.
  std::uint64_t& operator[](std::uint16_t port) {
    std::uint64_t* cell = find_cell(port);
    return cell != nullptr ? *cell : *insert_new(port);
  }

  /// Packet count for `port`; throws `std::out_of_range` when absent.
  [[nodiscard]] std::uint64_t at(std::uint16_t port) const {
    const std::uint64_t* cell = find_cell(port);
    if (cell == nullptr) throw std::out_of_range("PortPacketMap::at: port not present");
    return *cell;
  }

  /// Packet count for `port`, 0 when absent.
  [[nodiscard]] std::uint64_t get(std::uint16_t port) const noexcept {
    const std::uint64_t* cell = find_cell(port);
    return cell == nullptr ? 0 : *cell;
  }

  [[nodiscard]] bool contains(std::uint16_t port) const noexcept {
    return find_cell(port) != nullptr;
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return promoted_ ? promoted_size_ : inline_size_;
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  [[nodiscard]] bool promoted() const noexcept { return promoted_; }
  [[nodiscard]] std::size_t slot_capacity() const noexcept { return slots_.capacity(); }

  /// Empties the map but keeps any promoted backing store allocated.
  void clear() noexcept {
    inline_size_ = 0;
    promoted_ = false;
    promoted_size_ = 0;
    slots_.clear();  // keeps capacity
  }

  /// Forward iterator yielding `(port, packets)` pairs by value, in
  /// unspecified order (like the `unordered_map` it replaces).
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = PortPacketMap::value_type;
    using difference_type = std::ptrdiff_t;
    using pointer = void;
    using reference = value_type;

    const_iterator() = default;
    const_iterator(const PortPacketMap* map, std::size_t pos) : map_(map), pos_(pos) {
      skip_empty();
    }

    [[nodiscard]] value_type operator*() const {
      if (!map_->promoted_) {
        const auto& entry = map_->inline_[pos_];
        return {entry.port, entry.packets};
      }
      const auto& slot = map_->slots_[pos_];
      return {static_cast<std::uint16_t>(slot.key), slot.packets};
    }

    const_iterator& operator++() {
      ++pos_;
      skip_empty();
      return *this;
    }
    const_iterator operator++(int) {
      auto copy = *this;
      ++*this;
      return copy;
    }

    [[nodiscard]] bool operator==(const const_iterator& other) const noexcept {
      return pos_ == other.pos_;
    }
    [[nodiscard]] bool operator!=(const const_iterator& other) const noexcept {
      return pos_ != other.pos_;
    }

   private:
    void skip_empty() noexcept {
      if (map_ == nullptr || !map_->promoted_) return;
      while (pos_ < map_->slots_.size() && map_->slots_[pos_].key == kEmptyKey) ++pos_;
    }

    const PortPacketMap* map_ = nullptr;
    std::size_t pos_ = 0;
  };

  [[nodiscard]] const_iterator begin() const noexcept { return {this, 0}; }
  [[nodiscard]] const_iterator end() const noexcept {
    return {this, promoted_ ? slots_.size() : inline_size_};
  }

 private:
  struct InlineEntry {
    std::uint16_t port = 0;
    std::uint64_t packets = 0;
  };
  struct Slot {
    std::uint32_t key = kEmptyKey;  ///< port, or kEmptyKey when free
    std::uint64_t packets = 0;
  };
  static constexpr std::uint32_t kEmptyKey = 0xffffffffu;

  [[nodiscard]] static std::uint64_t hash(std::uint16_t port) noexcept {
    return (static_cast<std::uint64_t>(port) * 0x9e3779b97f4a7c15ull) >> 13;
  }

  [[nodiscard]] const std::uint64_t* find_cell(std::uint16_t port) const noexcept {
    if (!promoted_) {
      for (std::uint32_t i = 0; i < inline_size_; ++i) {
        if (inline_[i].port == port) return &inline_[i].packets;
      }
      return nullptr;
    }
    const std::uint64_t mask = slots_.size() - 1;
    for (std::uint64_t index = hash(port) & mask;; index = (index + 1) & mask) {
      if (slots_[index].key == port) return &slots_[index].packets;
      if (slots_[index].key == kEmptyKey) return nullptr;
    }
  }
  [[nodiscard]] std::uint64_t* find_cell(std::uint16_t port) noexcept {
    return const_cast<std::uint64_t*>(std::as_const(*this).find_cell(port));
  }

  /// Inserts a fresh key (must not be present) and returns its cell,
  /// zero-initialized.
  std::uint64_t* insert_new(std::uint16_t port) {
    if (!promoted_) {
      if (inline_size_ < kInlineCapacity) {
        inline_[inline_size_] = {port, 0};
        return &inline_[inline_size_++].packets;
      }
      promote();
    }
    if ((promoted_size_ + 1) * 10 >= slots_.size() * 7) grow();
    const std::uint64_t mask = slots_.size() - 1;
    std::uint64_t index = hash(port) & mask;
    while (slots_[index].key != kEmptyKey) index = (index + 1) & mask;
    slots_[index] = {port, 0};
    ++promoted_size_;
    return &slots_[index].packets;
  }

  void promote() {
    // Reuse a recycled buffer when present, rounded down to a power of
    // two so the probe mask stays valid whatever the allocator did.
    std::size_t capacity = 32;
    while (capacity * 2 <= slots_.capacity()) capacity *= 2;
    slots_.assign(capacity, Slot{});
    promoted_ = true;
    promoted_size_ = 0;
    const std::uint64_t mask = slots_.size() - 1;
    for (std::uint32_t i = 0; i < inline_size_; ++i) {
      std::uint64_t index = hash(inline_[i].port) & mask;
      while (slots_[index].key != kEmptyKey) index = (index + 1) & mask;
      slots_[index] = {inline_[i].port, inline_[i].packets};
      ++promoted_size_;
    }
    inline_size_ = 0;
  }

  void grow() {
    std::vector<Slot> old;
    old.swap(slots_);
    slots_.assign(old.size() * 2, Slot{});
    const std::uint64_t mask = slots_.size() - 1;
    for (const auto& slot : old) {
      if (slot.key == kEmptyKey) continue;
      std::uint64_t index = hash(static_cast<std::uint16_t>(slot.key)) & mask;
      while (slots_[index].key != kEmptyKey) index = (index + 1) & mask;
      slots_[index] = slot;
    }
  }

  std::uint32_t inline_size_ = 0;
  bool promoted_ = false;
  std::size_t promoted_size_ = 0;
  std::array<InlineEntry, kInlineCapacity> inline_{};
  std::vector<Slot> slots_;
};

}  // namespace synscan::core
