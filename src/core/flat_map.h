// Flat accumulator map: open-addressing index over a dense entry array.
//
// The streaming accumulators (PortTally, DailyPortSeries,
// VolatilityTracker, GeoTally) are insert-or-increment maps fed once per
// probe and drained once per run — they never erase. `std::unordered_map`
// pays a node allocation per key and chases pointers on every lookup;
// this map keeps (key, value) entries contiguous in insertion order and
// probes a flat slot array of (key, entry-index) pairs, so the feed path
// touches two small arrays and iteration is a linear scan with a
// deterministic order.
//
// Not a general map: no erase, and references returned by
// `find_or_insert`/`operator[]` are invalidated by the next insertion
// (the dense entry array may grow). Accumulate immediately, as in
// `++map[key]`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace synscan::core {

template <typename Key, typename Value>
class FlatHashMap {
 public:
  using value_type = std::pair<Key, Value>;

  FlatHashMap() : slots_(kInitialCapacity, Slot{}) {}

  /// Looks `key` up, inserting a default-constructed value when absent.
  /// Returns the value plus whether it was inserted. The reference dies
  /// at the next insertion.
  std::pair<Value&, bool> find_or_insert(Key key) {
    if ((entries_.size() + 1) * 10 >= slots_.size() * 7) rehash(slots_.size() * 2);
    const std::uint64_t mask = slots_.size() - 1;
    std::uint64_t index = hash(key) & mask;
    while (slots_[index].entry != kEmpty) {
      if (slots_[index].key == key) return {entries_[slots_[index].entry].second, false};
      index = (index + 1) & mask;
    }
    slots_[index] = {key, static_cast<std::uint32_t>(entries_.size())};
    entries_.emplace_back(key, Value{});
    return {entries_.back().second, true};
  }

  /// Insert-or-lookup, `std::unordered_map` style.
  Value& operator[](Key key) { return find_or_insert(key).first; }

  /// Pointer to the value for `key`, or nullptr when absent.
  [[nodiscard]] const Value* find(Key key) const noexcept {
    const std::uint64_t mask = slots_.size() - 1;
    for (std::uint64_t index = hash(key) & mask; slots_[index].entry != kEmpty;
         index = (index + 1) & mask) {
      if (slots_[index].key == key) return &entries_[slots_[index].entry].second;
    }
    return nullptr;
  }

  [[nodiscard]] bool contains(Key key) const noexcept { return find(key) != nullptr; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  /// Entries in insertion order (deterministic for a given feed).
  [[nodiscard]] auto begin() const noexcept { return entries_.begin(); }
  [[nodiscard]] auto end() const noexcept { return entries_.end(); }

  /// Calls `f(key, const Value&)` in insertion order.
  template <typename F>
  void for_each(F&& f) const {
    for (const auto& [key, value] : entries_) f(key, value);
  }

  void clear() noexcept {
    entries_.clear();
    for (auto& slot : slots_) slot.entry = kEmpty;
  }

 private:
  struct Slot {
    Key key = Key{};
    std::uint32_t entry = kEmpty;
  };

  static constexpr std::uint32_t kEmpty = 0xffffffffu;
  static constexpr std::size_t kInitialCapacity = 64;

  [[nodiscard]] static std::uint64_t hash(Key key) noexcept {
    // splitmix64 finalizer: keys are packed bit-fields (ports, packed
    // country codes, (block, week) pairs), so mix every input bit.
    auto x = static_cast<std::uint64_t>(key);
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  void rehash(std::size_t new_capacity) {
    slots_.assign(new_capacity, Slot{});
    const std::uint64_t mask = slots_.size() - 1;
    for (std::uint32_t i = 0; i < entries_.size(); ++i) {
      std::uint64_t index = hash(entries_[i].first) & mask;
      while (slots_[index].entry != kEmpty) index = (index + 1) & mask;
      slots_[index] = {entries_[i].first, i};
    }
  }

  std::vector<Slot> slots_;
  std::vector<value_type> entries_;
};

}  // namespace synscan::core
