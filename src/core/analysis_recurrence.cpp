#include "core/analysis_recurrence.h"

// One-shot reducers over the final campaign list — not the per-probe
// hot path, so std containers are fine.
// synscan-lint: allow-file(hot-path-container)

#include <algorithm>
#include <unordered_map>

#include "stats/descriptive.h"

namespace synscan::core {

std::vector<RecurrenceResult> recurrence_by_type(std::span<const Campaign> campaigns,
                                                 const enrich::InternetRegistry& registry) {
  struct SourceCampaign {
    net::TimeUs start;
    net::TimeUs end;
  };
  std::unordered_map<std::uint32_t, std::vector<SourceCampaign>> per_source;
  for (const auto& campaign : campaigns) {
    per_source[campaign.source.value()].push_back(
        {campaign.first_seen_us, campaign.last_seen_us});
  }

  struct Accumulator {
    std::vector<double> campaign_counts;
    std::vector<double> downtimes;
    std::uint64_t sources = 0;
    std::uint64_t recurring = 0;
    std::uint64_t daily_mode = 0;
    std::uint64_t over_100 = 0;
  };
  std::array<Accumulator, enrich::kScannerTypeCount> accumulators;

  for (auto& [source, list] : per_source) {
    std::sort(list.begin(), list.end(),
              [](const SourceCampaign& a, const SourceCampaign& b) {
                return a.start < b.start;
              });
    const auto type = registry.type_of(net::Ipv4Address(source));
    auto& acc = accumulators[enrich::scanner_type_index(type)];
    ++acc.sources;
    acc.campaign_counts.push_back(static_cast<double>(list.size()));
    if (list.size() > 100) ++acc.over_100;
    if (list.size() < 2) continue;
    ++acc.recurring;

    std::vector<double> gaps;
    gaps.reserve(list.size() - 1);
    for (std::size_t i = 1; i < list.size(); ++i) {
      const auto gap_us = std::max<net::TimeUs>(0, list[i].start - list[i - 1].end);
      const auto gap_s =
          static_cast<double>(gap_us) / static_cast<double>(net::kMicrosPerSecond);
      gaps.push_back(gap_s);
      acc.downtimes.push_back(gap_s);
    }
    const double median_gap_days =
        stats::median(gaps) / (24.0 * 3600.0);
    if (median_gap_days >= 0.5 && median_gap_days <= 1.5) ++acc.daily_mode;
  }

  std::vector<RecurrenceResult> results;
  for (const auto type : enrich::kAllScannerTypes) {
    auto& acc = accumulators[enrich::scanner_type_index(type)];
    RecurrenceResult result;
    result.type = type;
    result.sources = acc.sources;
    result.recurring_sources = acc.recurring;
    if (acc.sources > 0) {
      result.over_100_campaigns_fraction =
          static_cast<double>(acc.over_100) / static_cast<double>(acc.sources);
    }
    if (acc.recurring > 0) {
      result.daily_mode_fraction =
          static_cast<double>(acc.daily_mode) / static_cast<double>(acc.recurring);
    }
    result.campaigns_per_source = stats::Ecdf(std::move(acc.campaign_counts));
    result.downtime_seconds = stats::Ecdf(std::move(acc.downtimes));
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace synscan::core
