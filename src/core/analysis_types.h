// Scanner-type analyses (§6.6–§6.8): Table 2, the per-port type mix
// (Fig. 5), speed/coverage by type (Fig. 7) and the known-scanner port
// census (Figs. 8–10).
//
// One-shot reducers over the final campaign list — not the per-probe
// hot path, so std containers are fine.
// synscan-lint: allow-file(hot-path-container)
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/campaign.h"
#include "core/observers.h"
#include "enrich/registry.h"
#include "stats/ecdf.h"

namespace synscan::core {

/// Streaming per-scanner-type tallies: packets, distinct sources, and
/// per-(port, type) packets for the Fig. 5 mix.
class TypeTally final : public ProbeObserver {
 public:
  explicit TypeTally(const enrich::InternetRegistry& registry) : registry_(&registry) {}

  void on_probe(const telescope::ScanProbe& probe) override;

  /// Column-direct tally with a one-entry source→type memo: scan probes
  /// arrive in per-source bursts, so most rows skip the registry lookup
  /// entirely. Bit-identical to `on_probe` (the registry is immutable).
  void observe_batch(const telescope::ProbeBatch& batch,
                     std::span<const std::uint32_t> rows) override;

  /// Folds another tally in (order-independent sums and set unions, so
  /// shard merges equal whole-capture tallying). Both tallies must be
  /// bound to the same registry; throws `std::invalid_argument` otherwise.
  void merge(const TypeTally& other);

  [[nodiscard]] std::uint64_t packets(enrich::ScannerType type) const noexcept {
    return packets_[enrich::scanner_type_index(type)];
  }
  [[nodiscard]] std::uint64_t sources(enrich::ScannerType type) const noexcept {
    return sources_[enrich::scanner_type_index(type)].size();
  }
  [[nodiscard]] std::uint64_t total_packets() const noexcept { return total_packets_; }
  [[nodiscard]] std::uint64_t total_sources() const noexcept;

  /// Per-type packet mix on one port (shares of that port's packets).
  [[nodiscard]] std::array<double, enrich::kScannerTypeCount> port_type_mix(
      std::uint16_t port) const;

  /// The `n` ports with the most packets, for the Fig. 5 x-axis.
  [[nodiscard]] std::vector<std::uint16_t> top_ports(std::size_t n) const;

 private:
  const enrich::InternetRegistry* registry_;
  // Last resolved source, carried across batches.
  std::uint32_t memo_source_ = 0;
  enrich::ScannerType memo_type_ = enrich::ScannerType::kUnknown;
  bool memo_valid_ = false;
  std::array<std::uint64_t, enrich::kScannerTypeCount> packets_{};
  std::array<std::unordered_set<std::uint32_t>, enrich::kScannerTypeCount> sources_;
  // (port << 3) | type — type fits in 3 bits.
  std::unordered_map<std::uint32_t, std::uint64_t> port_type_packets_;
  PortPacketMap port_packets_;
  std::uint64_t total_packets_ = 0;

  friend struct RollupTallyIo;  ///< `.spr` serialization (rollup_store.cpp)
};

/// Table 2: share of sources / scans / packets per scanner type.
struct TypeShareRow {
  enrich::ScannerType type = enrich::ScannerType::kUnknown;
  double source_share = 0.0;
  double scan_share = 0.0;
  double packet_share = 0.0;
};

[[nodiscard]] std::vector<TypeShareRow> type_share_table(
    const TypeTally& tally, std::span<const Campaign> campaigns,
    const enrich::InternetRegistry& registry);

/// Fig. 7: per-type speed (pps) and coverage (fraction) samples averaged
/// per source IP.
struct TypeSpeedCoverage {
  enrich::ScannerType type = enrich::ScannerType::kUnknown;
  stats::Ecdf speed_pps;
  stats::Ecdf coverage;
  double mean_speed_pps = 0.0;
  double mean_coverage = 0.0;
  /// Fraction of sources whose mean speed exceeds 1,000 pps (the §6.8
  /// "12% of residential vs 84% of institutional" comparison).
  double fraction_over_1000pps = 0.0;
};

[[nodiscard]] std::vector<TypeSpeedCoverage> type_speed_coverage(
    std::span<const Campaign> campaigns, const enrich::InternetRegistry& registry);

/// Figs. 8–10: distinct ports scanned per known (institutional)
/// organization.
struct OrgPortCoverage {
  std::string organization;
  std::uint32_t distinct_ports = 0;
  std::uint64_t campaigns = 0;
  std::uint64_t packets = 0;
};

[[nodiscard]] std::vector<OrgPortCoverage> org_port_coverage(
    std::span<const Campaign> campaigns, const enrich::InternetRegistry& registry);

}  // namespace synscan::core
