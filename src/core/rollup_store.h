// Persistent rollup store (`.spr`): one capture's analysis, on disk.
//
// The decade-scale workflow analyzes each capture shard once and
// answers every later question by merging rollups (core/rollup.h). The
// expensive half of that bargain only pays off if the per-shard
// analysis itself survives between runs — so a `CaptureRollup` persists
// as a compact little-endian columnar file next to the capture, sibling
// to its `.spc` probe cache and under the same discipline: identity
// check against the source capture (byte size + mtime), an FNV-1a
// checksum over the payload, tmp-file + rename commits, and full
// validation before a single byte is trusted. Any mismatch — torn file,
// stale capture, different analysis configuration — invalidates the
// rollup and the caller falls back to re-analyzing the shard.
//
// Layout (all integers little-endian):
//   header (64 bytes):
//     u32 magic "spr1"        u32 version (=1)
//     u64 source_size         u64 source_mtime_ns
//     u64 analysis_fingerprint (see `analysis_fingerprint`)
//     u64 campaign_count      u64 segment_count
//     u64 payload_size        u64 checksum (FNV-1a over the payload)
//   payload: meta, sensor counters, tracker counters, campaigns,
//     boundary segments (with full fingerprint accumulator state) and
//     the three tallies, every map emitted in sorted key order so the
//     bytes are a pure function of the analysis result.
//
// The analysis fingerprint hashes every configuration knob that can
// change the result — tracker thresholds, expiry, classifier thresholds
// and the telescope size — but deliberately not `sweep_interval`:
// results are sweep-schedule-independent (that invariant is what makes
// rollups mergeable at all), so retuning the sweep cadence must not
// invalidate a decade of cached shards.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>

#include "core/probe_cache.h"
#include "core/rollup.h"

namespace synscan::core {

/// Hash of every analysis parameter that affects a rollup's contents.
/// A stored rollup is only valid for the exact configuration it was
/// computed under; `monitored_addresses` is the telescope size feeding
/// the extrapolation model.
[[nodiscard]] std::uint64_t analysis_fingerprint(const TrackerConfig& config,
                                                 std::uint64_t monitored_addresses);

/// Default rollup location: `<capture>.spr`, sibling to the `.spc`.
[[nodiscard]] std::filesystem::path rollup_path_for(const std::filesystem::path& capture);

/// Header fields of a rollup file, as stored (no payload validation).
/// Powers `synscan rollup stat`.
struct RollupFileInfo {
  std::uint32_t version = 0;
  std::uint64_t source_size = 0;
  std::uint64_t source_mtime_ns = 0;
  std::uint64_t analysis_fingerprint = 0;
  std::uint64_t campaigns = 0;
  std::uint64_t segments = 0;
  std::uint64_t payload_size = 0;
  std::uint64_t checksum = 0;
  std::uint64_t file_size = 0;
};

/// Parses just the header. nullopt when the file is missing, too short,
/// or not an spr file.
[[nodiscard]] std::optional<RollupFileInfo> rollup_stat(const std::filesystem::path& path);

/// Writes `rollup` to `path` via a sibling ".tmp" and rename. Returns
/// false on any I/O failure (after cleaning up the temp file) — rollup
/// persistence is best-effort and must never fail the run.
[[nodiscard]] bool save_rollup(const std::filesystem::path& path,
                               const CaptureRollup& rollup,
                               const CacheIdentity& identity,
                               std::uint64_t fingerprint);

/// Loads and fully validates a stored rollup: magic, version, source
/// identity, analysis fingerprint, checksum and payload framing.
/// nullopt on any defect — the caller re-analyzes and rewrites. The
/// registry must be the one the analysis ran with (tally merges check).
[[nodiscard]] std::optional<CaptureRollup> load_rollup(
    const std::filesystem::path& path, const enrich::InternetRegistry& registry,
    const CacheIdentity& expected, std::uint64_t fingerprint);

}  // namespace synscan::core
