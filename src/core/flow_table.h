// Open-addressing flow index: IPv4 source -> slot in the tracker's flow
// pool.
//
// Robin-hood linear probing over a power-of-two slot array with
// backward-shift deletion, so the table never accumulates tombstones and
// stays fully probeable at high load — the replacement for the
// per-source `std::unordered_map` whose node allocations dominated
// `CampaignTracker::feed` (see docs/PERFORMANCE.md). Entries are 8 bytes
// (key + pool index) plus a 2-byte probe distance, so a probe sequence
// touches a handful of contiguous cache lines instead of chasing nodes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace synscan::core {

class FlowIndexTable {
 public:
  FlowIndexTable() { rehash(kInitialCapacity); }

  /// Looks `key` up, inserting it when absent. Returns a reference to
  /// the mapped pool index plus whether the key was inserted; on insert
  /// the caller must assign the value before the next table operation.
  std::pair<std::uint32_t&, bool> find_or_insert(std::uint32_t key) {
    if ((size_ + 1) * 8 >= slots_.size() * 7) rehash(slots_.size() * 2);
    const std::uint64_t mask = slots_.size() - 1;
    std::uint64_t index = hash(key) & mask;
    std::uint16_t dist = 1;  // stored probe distance: 1 = home slot, 0 = empty
    for (;;) {
      if (dist_[index] == 0) {
        slots_[index] = {key, 0};
        dist_[index] = dist;
        ++size_;
        return {slots_[index].value, true};
      }
      if (slots_[index].key == key) return {slots_[index].value, false};
      if (dist_[index] < dist) {
        // Robin hood: the resident is closer to home than we are; take
        // its slot and carry it onward.
        Slot carried = slots_[index];
        std::uint16_t carried_dist = dist_[index];
        slots_[index] = {key, 0};
        dist_[index] = dist;
        const std::uint64_t placed = index;
        shift_in(carried, carried_dist, (index + 1) & mask);
        ++size_;
        return {slots_[placed].value, true};
      }
      index = (index + 1) & mask;
      if (++dist == kMaxDistance) {
        // Pathological clustering: grow and retry (rehash resets
        // distances well below the cap).
        rehash(slots_.size() * 2);
        return find_or_insert(key);
      }
    }
  }

  /// Pool index for `key`, or nullptr when absent.
  [[nodiscard]] const std::uint32_t* find(std::uint32_t key) const noexcept {
    const std::uint64_t mask = slots_.size() - 1;
    std::uint64_t index = hash(key) & mask;
    std::uint16_t dist = 1;
    for (;;) {
      if (dist_[index] == 0 || dist_[index] < dist) return nullptr;
      if (slots_[index].key == key) return &slots_[index].value;
      index = (index + 1) & mask;
      ++dist;
    }
  }

  /// Removes `key` via backward-shift deletion (no tombstones). Returns
  /// whether the key was present.
  bool erase(std::uint32_t key) noexcept {
    const std::uint64_t mask = slots_.size() - 1;
    std::uint64_t index = hash(key) & mask;
    std::uint16_t dist = 1;
    for (;;) {
      if (dist_[index] == 0 || dist_[index] < dist) return false;
      if (slots_[index].key == key) break;
      index = (index + 1) & mask;
      ++dist;
    }
    // Shift the probe chain back over the vacated slot until a hole or a
    // home-slot entry terminates it.
    std::uint64_t hole = index;
    for (;;) {
      const std::uint64_t next = (hole + 1) & mask;
      if (dist_[next] <= 1) break;
      slots_[hole] = slots_[next];
      dist_[hole] = static_cast<std::uint16_t>(dist_[next] - 1);
      hole = next;
    }
    dist_[hole] = 0;
    --size_;
    return true;
  }

  /// Calls `f(key, value)` for every entry, in slot order (deterministic
  /// for a given insertion/erasure history).
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (dist_[i] != 0) f(slots_[i].key, slots_[i].value);
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
  [[nodiscard]] std::uint64_t rehashes() const noexcept { return rehashes_; }

  /// Drops all entries, keeping the current capacity.
  void clear() noexcept {
    std::fill(dist_.begin(), dist_.end(), std::uint16_t{0});
    size_ = 0;
  }

 private:
  struct Slot {
    std::uint32_t key = 0;
    std::uint32_t value = 0;
  };

  static constexpr std::size_t kInitialCapacity = 1024;
  static constexpr std::uint16_t kMaxDistance = 128;

  [[nodiscard]] static std::uint64_t hash(std::uint32_t key) noexcept {
    // Fibonacci multiply; scan sources cluster in prefixes, this spreads
    // them across the high bits we mask with.
    std::uint64_t x = (static_cast<std::uint64_t>(key) + 1) * 0x9e3779b97f4a7c15ull;
    return x ^ (x >> 29);
  }

  void shift_in(Slot carried, std::uint16_t carried_dist, std::uint64_t index) noexcept {
    const std::uint64_t mask = slots_.size() - 1;
    ++carried_dist;
    for (;;) {
      if (dist_[index] == 0) {
        slots_[index] = carried;
        dist_[index] = carried_dist;
        return;
      }
      if (dist_[index] < carried_dist) {
        std::swap(carried, slots_[index]);
        std::swap(carried_dist, dist_[index]);
      }
      index = (index + 1) & mask;
      ++carried_dist;
    }
  }

  void rehash(std::size_t new_capacity) {
    std::vector<Slot> old_slots;
    std::vector<std::uint16_t> old_dist;
    old_slots.swap(slots_);
    old_dist.swap(dist_);
    slots_.resize(new_capacity);
    dist_.assign(new_capacity, 0);
    size_ = 0;
    if (!old_slots.empty()) ++rehashes_;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (old_dist[i] != 0) {
        auto [value, inserted] = find_or_insert(old_slots[i].key);
        value = old_slots[i].value;
        (void)inserted;
      }
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::uint16_t> dist_;
  std::size_t size_ = 0;
  std::uint64_t rehashes_ = 0;
};

}  // namespace synscan::core
