#include "core/volatility.h"

#include <stdexcept>

#include "stats/timeseries.h"

namespace synscan::core {
namespace {

constexpr std::uint64_t key_of(std::uint32_t block, std::uint32_t week) noexcept {
  return (static_cast<std::uint64_t>(block) << 32) | week;
}

}  // namespace

VolatilityTracker::VolatilityTracker(net::TimeUs origin, net::TimeUs week)
    : origin_(origin), week_(week) {}

std::uint32_t VolatilityTracker::week_of(net::TimeUs t) const noexcept {
  if (t <= origin_) return 0;
  return static_cast<std::uint32_t>((t - origin_) / week_);
}

void VolatilityTracker::on_probe(const telescope::ScanProbe& probe) {
  const auto block = static_cast<std::uint32_t>(probe.source.slash16());
  const auto week = week_of(probe.timestamp_us);
  max_week_ = std::max(max_week_, week);
  const auto key = key_of(block, week);
  ++packets_[key];
  sources_[key].insert(probe.source.value());
  active_blocks_.insert(block);
}

void VolatilityTracker::observe_batch(const telescope::ProbeBatch& batch,
                                      std::span<const std::uint32_t> rows) {
  for (const auto row : rows) {
    const auto source = batch.source[row];
    const auto block = static_cast<std::uint32_t>(net::Ipv4Address(source).slash16());
    const auto week = week_of(batch.timestamp_us[row]);
    max_week_ = std::max(max_week_, week);
    const auto key = key_of(block, week);
    ++packets_[key];
    sources_[key].insert(source);
    active_blocks_.insert(block);
  }
}

void VolatilityTracker::on_campaign(const Campaign& campaign) {
  const auto block = static_cast<std::uint32_t>(campaign.source.slash16());
  const auto week = week_of(campaign.first_seen_us);
  max_week_ = std::max(max_week_, week);
  ++campaigns_[key_of(block, week)];
  active_blocks_.insert(block);
}

void VolatilityTracker::merge(const VolatilityTracker& other) {
  if (origin_ != other.origin_ || week_ != other.week_) {
    throw std::invalid_argument("VolatilityTracker::merge: origin/week mismatch");
  }
  max_week_ = std::max(max_week_, other.max_week_);
  other.packets_.for_each(
      [&](std::uint64_t key, std::uint64_t count) { packets_[key] += count; });
  other.campaigns_.for_each(
      [&](std::uint64_t key, std::uint64_t count) { campaigns_[key] += count; });
  other.sources_.for_each([&](std::uint64_t key, const HybridU32Set& set) {
    auto& mine = sources_[key];
    set.for_each([&](std::uint32_t source) { mine.insert(source); });
  });
  other.active_blocks_.for_each(
      [&](std::uint32_t block) { active_blocks_.insert(block); });
}

VolatilityTracker::Result VolatilityTracker::result() const {
  const std::size_t weeks = static_cast<std::size_t>(max_week_) + 1;
  std::vector<double> packet_factors;
  std::vector<double> source_factors;
  std::vector<double> campaign_factors;

  std::vector<std::uint64_t> series(weeks);
  const auto reduce = [&](auto&& value_at, std::vector<double>& out) {
    for (std::size_t w = 0; w < weeks; ++w) {
      series[w] = value_at(w);
    }
    const auto factors = stats::change_factors(series);
    out.insert(out.end(), factors.begin(), factors.end());
  };

  active_blocks_.for_each([&](std::uint32_t block) {
    reduce(
        [&](std::size_t w) {
          const auto* packets = packets_.find(key_of(block, static_cast<std::uint32_t>(w)));
          return packets == nullptr ? std::uint64_t{0} : *packets;
        },
        packet_factors);
    reduce(
        [&](std::size_t w) {
          const auto* sources = sources_.find(key_of(block, static_cast<std::uint32_t>(w)));
          return sources == nullptr ? std::uint64_t{0}
                                    : static_cast<std::uint64_t>(sources->size());
        },
        source_factors);
    reduce(
        [&](std::size_t w) {
          const auto* count = campaigns_.find(key_of(block, static_cast<std::uint32_t>(w)));
          return count == nullptr ? std::uint64_t{0} : *count;
        },
        campaign_factors);
  });

  Result result;
  result.packet_change = stats::Ecdf(std::move(packet_factors));
  result.source_change = stats::Ecdf(std::move(source_factors));
  result.campaign_change = stats::Ecdf(std::move(campaign_factors));
  result.netblocks = active_blocks_.size();
  result.weeks = weeks;
  return result;
}

}  // namespace synscan::core
