// Hybrid distinct-destination set for the tracker hot path.
//
// 83% of scan sources target one port and most never reach the
// 100-destination campaign threshold (Fig. 3 / §3.4), so the common case
// is a source with a handful of distinct destinations. Storing those in
// a per-source `std::unordered_set` pays one node allocation per
// destination — the dominant cost when digesting tens of billions of
// probes. This set keeps the first `kInlineCapacity` values in an inline
// array (no heap at all) and promotes to a linear-probing flat hash set
// only once a source proves it is fanning out.
//
// `clear()` keeps the promoted backing store, so pooled flows recycle
// capacity instead of re-allocating it (see CampaignTracker's flow pool).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace synscan::core {

class HybridU32Set {
 public:
  /// Inline capacity before promotion to the flat hash set. 16 u32s is
  /// one cache line; the campaign threshold (100 destinations) means
  /// every qualifying flow promotes, but the millions of sub-threshold
  /// noise sources never do.
  static constexpr std::uint32_t kInlineCapacity = 16;

  /// Inserts `value`; returns true when it was not present before.
  bool insert(std::uint32_t value) {
    if (!promoted_) {
      for (std::uint32_t i = 0; i < inline_size_; ++i) {
        if (inline_[i] == value) return false;
      }
      if (inline_size_ < kInlineCapacity) {
        inline_[inline_size_++] = value;
        return true;
      }
      promote();
    }
    return insert_promoted(value);
  }

  [[nodiscard]] bool contains(std::uint32_t value) const {
    if (!promoted_) {
      for (std::uint32_t i = 0; i < inline_size_; ++i) {
        if (inline_[i] == value) return true;
      }
      return false;
    }
    if (value == 0) return has_zero_;
    const std::uint64_t mask = slots_.size() - 1;
    for (std::uint64_t index = hash(value) & mask;; index = (index + 1) & mask) {
      if (slots_[index] == value) return true;
      if (slots_[index] == 0) return false;
    }
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return promoted_ ? promoted_size_ : inline_size_;
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  [[nodiscard]] bool promoted() const noexcept { return promoted_; }

  /// Backing-store capacity (for capacity-recycling assertions).
  [[nodiscard]] std::size_t slot_capacity() const noexcept { return slots_.capacity(); }

  /// Calls `f(value)` for every element, in unspecified order.
  template <typename F>
  void for_each(F&& f) const {
    if (!promoted_) {
      for (std::uint32_t i = 0; i < inline_size_; ++i) f(inline_[i]);
      return;
    }
    if (has_zero_) f(std::uint32_t{0});
    for (const auto value : slots_) {
      if (value != 0) f(value);
    }
  }

  /// Empties the set but keeps any promoted backing store allocated, so
  /// a recycled flow re-promotes without touching the allocator.
  void clear() noexcept {
    inline_size_ = 0;
    promoted_ = false;
    has_zero_ = false;
    promoted_size_ = 0;
    slots_.clear();  // keeps capacity
  }

 private:
  [[nodiscard]] static std::uint64_t hash(std::uint32_t value) noexcept {
    return (static_cast<std::uint64_t>(value) * 0x9e3779b97f4a7c15ull) >> 13;
  }

  void promote() {
    // Start at 64 slots: big enough that a qualifying flow (>= 100
    // destinations) rehashes only a couple of times, small enough not to
    // bloat the pool. `assign` reuses a recycled buffer when present,
    // rounded down to a power of two so the probe mask stays valid.
    std::size_t capacity = 64;
    while (capacity * 2 <= slots_.capacity()) capacity *= 2;
    slots_.assign(capacity, 0);
    promoted_ = true;
    has_zero_ = false;
    promoted_size_ = 0;
    for (std::uint32_t i = 0; i < inline_size_; ++i) insert_promoted(inline_[i]);
    inline_size_ = 0;
  }

  bool insert_promoted(std::uint32_t value) {
    // Slot value 0 marks "empty"; an actual 0 (0.0.0.0) is tracked in a
    // side flag so no value is unrepresentable.
    if (value == 0) {
      if (has_zero_) return false;
      has_zero_ = true;
      ++promoted_size_;
      return true;
    }
    const std::uint64_t mask = slots_.size() - 1;
    std::uint64_t index = hash(value) & mask;
    while (slots_[index] != 0) {
      if (slots_[index] == value) return false;
      index = (index + 1) & mask;
    }
    slots_[index] = value;
    ++promoted_size_;
    // Grow at 70% load (counting the zero-flag conservatively).
    if ((promoted_size_ + 1) * 10 >= slots_.size() * 7) grow();
    return true;
  }

  void grow() {
    std::vector<std::uint32_t> old;
    old.swap(slots_);
    slots_.assign(old.size() * 2, 0);
    const std::uint64_t mask = slots_.size() - 1;
    for (const auto value : old) {
      if (value == 0) continue;
      std::uint64_t index = hash(value) & mask;
      while (slots_[index] != 0) index = (index + 1) & mask;
      slots_[index] = value;
    }
  }

  std::uint32_t inline_size_ = 0;
  std::array<std::uint32_t, kInlineCapacity> inline_{};
  bool promoted_ = false;
  bool has_zero_ = false;
  std::size_t promoted_size_ = 0;
  std::vector<std::uint32_t> slots_;
};

}  // namespace synscan::core
