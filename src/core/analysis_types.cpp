#include "core/analysis_types.h"

// One-shot reducers over the final campaign list — not the per-probe
// hot path, so std containers are fine.
// synscan-lint: allow-file(hot-path-container)

#include <algorithm>
#include <stdexcept>

namespace synscan::core {
namespace {

constexpr std::uint32_t port_type_key(std::uint16_t port, enrich::ScannerType type) noexcept {
  return (static_cast<std::uint32_t>(port) << 3) |
         static_cast<std::uint32_t>(enrich::scanner_type_index(type));
}

}  // namespace

void TypeTally::on_probe(const telescope::ScanProbe& probe) {
  const auto type = registry_->type_of(probe.source);
  const auto index = enrich::scanner_type_index(type);
  ++total_packets_;
  ++packets_[index];
  sources_[index].insert(probe.source.value());
  ++port_type_packets_[port_type_key(probe.destination_port, type)];
  port_packets_.add(probe.destination_port, 1);
}

void TypeTally::observe_batch(const telescope::ProbeBatch& batch,
                              std::span<const std::uint32_t> rows) {
  total_packets_ += rows.size();
  for (const auto row : rows) {
    const auto source = batch.source[row];
    if (!memo_valid_ || source != memo_source_) {
      memo_type_ = registry_->type_of(net::Ipv4Address(source));
      memo_source_ = source;
      memo_valid_ = true;
    }
    const auto index = enrich::scanner_type_index(memo_type_);
    const auto port = batch.destination_port[row];
    ++packets_[index];
    sources_[index].insert(source);
    ++port_type_packets_[port_type_key(port, memo_type_)];
    port_packets_.add(port, 1);
  }
}

void TypeTally::merge(const TypeTally& other) {
  if (registry_ != other.registry_) {
    throw std::invalid_argument("TypeTally::merge: registry mismatch");
  }
  total_packets_ += other.total_packets_;
  for (std::size_t i = 0; i < enrich::kScannerTypeCount; ++i) {
    packets_[i] += other.packets_[i];
    sources_[i].insert(other.sources_[i].begin(), other.sources_[i].end());
  }
  for (const auto& [key, packets] : other.port_type_packets_) {
    port_type_packets_[key] += packets;
  }
  for (const auto [port, packets] : other.port_packets_) {
    port_packets_.add(port, packets);
  }
}

std::uint64_t TypeTally::total_sources() const noexcept {
  std::uint64_t total = 0;
  for (const auto& set : sources_) total += set.size();
  return total;
}

std::array<double, enrich::kScannerTypeCount> TypeTally::port_type_mix(
    std::uint16_t port) const {
  std::array<double, enrich::kScannerTypeCount> mix{};
  const auto port_total = port_packets_.get(port);
  if (port_total == 0) return mix;
  const auto total = static_cast<double>(port_total);
  for (const auto type : enrich::kAllScannerTypes) {
    const auto pt = port_type_packets_.find(port_type_key(port, type));
    if (pt != port_type_packets_.end()) {
      mix[enrich::scanner_type_index(type)] = static_cast<double>(pt->second) / total;
    }
  }
  return mix;
}

std::vector<std::uint16_t> TypeTally::top_ports(std::size_t n) const {
  std::vector<std::pair<std::uint16_t, std::uint64_t>> rows(port_packets_.begin(),
                                                            port_packets_.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (rows.size() > n) rows.resize(n);
  std::vector<std::uint16_t> ports;
  ports.reserve(rows.size());
  for (const auto& [port, packets] : rows) ports.push_back(port);
  return ports;
}

std::vector<TypeShareRow> type_share_table(const TypeTally& tally,
                                           std::span<const Campaign> campaigns,
                                           const enrich::InternetRegistry& registry) {
  std::array<std::uint64_t, enrich::kScannerTypeCount> scans{};
  for (const auto& campaign : campaigns) {
    ++scans[enrich::scanner_type_index(registry.type_of(campaign.source))];
  }

  const auto total_sources = tally.total_sources();
  const auto total_packets = tally.total_packets();
  const auto total_scans = campaigns.size();

  std::vector<TypeShareRow> rows;
  for (const auto type : enrich::kAllScannerTypes) {
    TypeShareRow row;
    row.type = type;
    const auto index = enrich::scanner_type_index(type);
    row.source_share = total_sources == 0
                           ? 0.0
                           : static_cast<double>(tally.sources(type)) /
                                 static_cast<double>(total_sources);
    row.scan_share = total_scans == 0 ? 0.0
                                      : static_cast<double>(scans[index]) /
                                            static_cast<double>(total_scans);
    row.packet_share = total_packets == 0
                           ? 0.0
                           : static_cast<double>(tally.packets(type)) /
                                 static_cast<double>(total_packets);
    rows.push_back(row);
  }
  return rows;
}

std::vector<TypeSpeedCoverage> type_speed_coverage(
    std::span<const Campaign> campaigns, const enrich::InternetRegistry& registry) {
  // Average speed and coverage per source IP first (the figure plots
  // per-source averages, not per-campaign points).
  struct SourceAgg {
    double speed_sum = 0.0;
    double coverage_sum = 0.0;
    std::uint64_t campaigns = 0;
    enrich::ScannerType type = enrich::ScannerType::kUnknown;
  };
  std::unordered_map<std::uint32_t, SourceAgg> per_source;
  for (const auto& campaign : campaigns) {
    auto& agg = per_source[campaign.source.value()];
    if (agg.campaigns == 0) agg.type = registry.type_of(campaign.source);
    agg.speed_sum += campaign.extrapolated_pps;
    agg.coverage_sum += campaign.coverage_fraction;
    ++agg.campaigns;
  }

  std::array<std::vector<double>, enrich::kScannerTypeCount> speeds;
  std::array<std::vector<double>, enrich::kScannerTypeCount> coverages;
  for (const auto& [source, agg] : per_source) {
    const auto index = enrich::scanner_type_index(agg.type);
    speeds[index].push_back(agg.speed_sum / static_cast<double>(agg.campaigns));
    coverages[index].push_back(agg.coverage_sum / static_cast<double>(agg.campaigns));
  }

  std::vector<TypeSpeedCoverage> rows;
  for (const auto type : enrich::kAllScannerTypes) {
    const auto index = enrich::scanner_type_index(type);
    TypeSpeedCoverage row;
    row.type = type;
    if (!speeds[index].empty()) {
      double speed_sum = 0.0;
      double coverage_sum = 0.0;
      std::size_t over_1000 = 0;
      for (const auto s : speeds[index]) {
        speed_sum += s;
        if (s > 1000.0) ++over_1000;
      }
      for (const auto c : coverages[index]) coverage_sum += c;
      const auto n = static_cast<double>(speeds[index].size());
      row.mean_speed_pps = speed_sum / n;
      row.mean_coverage = coverage_sum / n;
      row.fraction_over_1000pps = static_cast<double>(over_1000) / n;
    }
    row.speed_pps = stats::Ecdf(std::move(speeds[index]));
    row.coverage = stats::Ecdf(std::move(coverages[index]));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<OrgPortCoverage> org_port_coverage(std::span<const Campaign> campaigns,
                                               const enrich::InternetRegistry& registry) {
  struct OrgAgg {
    std::unordered_set<std::uint16_t> ports;
    std::uint64_t campaigns = 0;
    std::uint64_t packets = 0;
  };
  std::unordered_map<std::string, OrgAgg> per_org;
  for (const auto& campaign : campaigns) {
    const auto* record = registry.lookup(campaign.source);
    if (record == nullptr || record->type != enrich::ScannerType::kInstitutional) continue;
    auto& agg = per_org[record->organization];
    for (const auto& [port, packets] : campaign.port_packets) agg.ports.insert(port);
    ++agg.campaigns;
    agg.packets += campaign.packets;
  }

  std::vector<OrgPortCoverage> rows;
  rows.reserve(per_org.size());
  for (auto& [org, agg] : per_org) {
    rows.push_back({org, static_cast<std::uint32_t>(agg.ports.size()), agg.campaigns,
                    agg.packets});
  }
  std::sort(rows.begin(), rows.end(), [](const OrgPortCoverage& a, const OrgPortCoverage& b) {
    return a.distinct_ports != b.distinct_ports ? a.distinct_ports > b.distinct_ports
                                                : a.organization < b.organization;
  });
  return rows;
}

}  // namespace synscan::core
