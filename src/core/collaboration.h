// Distributed-scan (collaboration) detection.
//
// §4.1 and §6.4 observe that scans are increasingly split over multiple
// hosts: ZMap's sharding, /24s of academic scanners covering the same
// slice, botnets dividing the target space. Following the approach of
// Griffioen & Doerr (NOMS 2020), this module clusters finalized
// campaigns into *logical scans*: campaigns whose sources sit in the
// same /24, that started within a small window of each other, target
// the same port set, and carry the same tool fingerprint.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/campaign.h"

namespace synscan::core {

/// Clustering parameters.
struct CollaborationConfig {
  /// Campaigns must start within this window of the cluster's first.
  net::TimeUs start_window = 2 * net::kMicrosPerHour;
  /// Minimum members for a cluster to count as a collaboration.
  std::uint32_t min_members = 3;
  /// Group sources by this prefix length (24 = classic shard subnets).
  int source_prefix = 24;
};

/// One detected logical scan spread over several hosts.
struct LogicalScan {
  std::vector<std::uint64_t> campaign_ids;
  std::uint32_t members = 0;
  net::Ipv4Address subnet;          ///< base of the shared source prefix
  std::uint16_t port = 0;           ///< primary targeted port
  net::TimeUs first_start = 0;
  double joint_coverage = 0.0;      ///< sum of member coverage, capped at 1
  double mean_member_coverage = 0.0;
  fingerprint::Tool tool = fingerprint::Tool::kUnknown;
};

/// Summary statistics over a window.
struct CollaborationCensus {
  std::vector<LogicalScan> scans;
  std::uint64_t collaborating_campaigns = 0;  ///< campaigns inside clusters
  std::uint64_t total_campaigns = 0;

  /// Fraction of campaigns that are part of a multi-host logical scan —
  /// the §4.1 "increase in collaborating scanners" metric.
  [[nodiscard]] double collaborating_fraction() const noexcept {
    return total_campaigns == 0 ? 0.0
                                : static_cast<double>(collaborating_campaigns) /
                                      static_cast<double>(total_campaigns);
  }
};

/// Clusters campaigns into logical scans. O(n log n) in the number of
/// campaigns.
[[nodiscard]] CollaborationCensus detect_collaborations(
    std::span<const Campaign> campaigns, const CollaborationConfig& config = {});

}  // namespace synscan::core
