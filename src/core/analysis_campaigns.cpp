#include "core/analysis_campaigns.h"

// One-shot reducers over the final campaign list — not the per-probe
// hot path, so std containers are fine.
// synscan-lint: allow-file(hot-path-container)

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace synscan::core {

ToolShares tool_shares(std::span<const Campaign> campaigns) {
  ToolShares shares;
  for (const auto& campaign : campaigns) {
    shares.by_scans.add(campaign.tool);
    shares.by_packets.add(campaign.tool, campaign.packets);
  }
  return shares;
}

std::vector<PortCount> top_ports_by_scans(std::span<const Campaign> campaigns,
                                          std::size_t n) {
  std::unordered_map<std::uint16_t, std::uint64_t> scans_per_port;
  for (const auto& campaign : campaigns) {
    for (const auto& [port, packets] : campaign.port_packets) {
      ++scans_per_port[port];
    }
  }
  std::vector<PortCount> rows;
  rows.reserve(scans_per_port.size());
  for (const auto& [port, count] : scans_per_port) rows.push_back({port, count, 0.0});
  std::sort(rows.begin(), rows.end(), [](const PortCount& a, const PortCount& b) {
    return a.count != b.count ? a.count > b.count : a.port < b.port;
  });
  if (rows.size() > n) rows.resize(n);
  for (auto& row : rows) {
    row.share = campaigns.empty()
                    ? 0.0
                    : static_cast<double>(row.count) / static_cast<double>(campaigns.size());
  }
  return rows;
}

std::vector<double> speed_sample(std::span<const Campaign> campaigns,
                                 fingerprint::Tool tool) {
  std::vector<double> sample;
  for (const auto& campaign : campaigns) {
    if (campaign.tool == tool) sample.push_back(campaign.extrapolated_pps);
  }
  return sample;
}

std::vector<double> speed_sample(std::span<const Campaign> campaigns) {
  std::vector<double> sample;
  sample.reserve(campaigns.size());
  for (const auto& campaign : campaigns) sample.push_back(campaign.extrapolated_pps);
  return sample;
}

std::vector<double> coverage_sample(std::span<const Campaign> campaigns,
                                    fingerprint::Tool tool) {
  std::vector<double> sample;
  for (const auto& campaign : campaigns) {
    if (campaign.tool == tool) sample.push_back(campaign.coverage_fraction);
  }
  return sample;
}

double top_speed_mean(std::span<const Campaign> campaigns, std::size_t n) {
  auto speeds = speed_sample(campaigns);
  if (speeds.empty()) return 0.0;
  const auto take = std::min(n, speeds.size());
  std::partial_sort(speeds.begin(), speeds.begin() + static_cast<std::ptrdiff_t>(take),
                    speeds.end(), std::greater<>());
  double sum = 0.0;
  for (std::size_t i = 0; i < take; ++i) sum += speeds[i];
  return sum / static_cast<double>(take);
}

VerticalScanCensus vertical_scan_census(std::span<const Campaign> campaigns) {
  VerticalScanCensus census;
  census.total_campaigns = campaigns.size();
  double speed_sum_1000 = 0.0;
  double speed_sum_all = 0.0;
  std::uint64_t over_1000 = 0;
  for (const auto& campaign : campaigns) {
    const auto ports = campaign.distinct_ports();
    census.max_ports = std::max(census.max_ports, static_cast<std::uint32_t>(ports));
    if (ports > 10) ++census.over_10_ports;
    if (ports > 100) ++census.over_100_ports;
    if (ports > 1000) {
      ++census.over_1000_ports;
      ++over_1000;
      speed_sum_1000 += campaign.speed_mbps();
    }
    if (ports > 10000) ++census.over_10000_ports;
    speed_sum_all += campaign.speed_mbps();
  }
  if (over_1000 > 0) {
    census.mean_speed_over_1000_mbps = speed_sum_1000 / static_cast<double>(over_1000);
  }
  if (!campaigns.empty()) {
    census.mean_speed_all_mbps = speed_sum_all / static_cast<double>(campaigns.size());
  }
  return census;
}

SpeedBreadthSample speed_breadth_sample(std::span<const Campaign> campaigns) {
  SpeedBreadthSample sample;
  sample.ports.reserve(campaigns.size());
  sample.pps.reserve(campaigns.size());
  for (const auto& campaign : campaigns) {
    sample.ports.push_back(static_cast<double>(campaign.distinct_ports()));
    sample.pps.push_back(campaign.extrapolated_pps);
  }
  return sample;
}

std::vector<std::uint64_t> campaigns_per_day(std::span<const Campaign> campaigns,
                                             net::TimeUs origin, fingerprint::Tool tool) {
  std::vector<std::uint64_t> days;
  for (const auto& campaign : campaigns) {
    if (campaign.tool != tool) continue;
    const auto day = campaign.first_seen_us <= origin
                         ? std::size_t{0}
                         : static_cast<std::size_t>((campaign.first_seen_us - origin) /
                                                    net::kMicrosPerDay);
    if (day >= days.size()) days.resize(day + 1, 0);
    ++days[day];
  }
  return days;
}

std::uint64_t distinct_sources(std::span<const Campaign> campaigns,
                               fingerprint::Tool tool) {
  std::unordered_set<std::uint32_t> sources;
  for (const auto& campaign : campaigns) {
    if (campaign.tool == tool) sources.insert(campaign.source.value());
  }
  return sources.size();
}

}  // namespace synscan::core
