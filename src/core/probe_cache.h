// Columnar probe cache (`.spc`): decode a capture once, replay probes.
//
// A capture's sensor verdict never changes between runs, but the decode
// dominates replay time. After the first pass the ingest driver persists
// every scan probe — plus the sensor counter histogram and the reader's
// terminal status — in a compact little-endian columnar file next to the
// capture. Later runs stream probes straight out of the cache and skip
// frame decode and classification entirely.
//
// Layout (all integers little-endian):
//   header (136 bytes):
//     u32 magic "spc1"        u32 version (=2; v1 files stay readable)
//     u64 source_size         u64 source_mtime_ns
//     u64 frame_count         u64 probe_count
//     u32 terminal_status     u32 codec (CacheCodec; v1 wrote 0 here)
//     u64 x 10 sensor counters (SensorCounters field order)
//     u64 checksum            FNV-1a (64-bit words) over every chunk byte
//   chunks, until probe_count rows are consumed:
//     u64 row_count, then the ten probe columns back-to-back in
//     ProbeBatch field order (timestamp u64; source, destination,
//     sequence, acknowledgment u32; ports, ip_id, window u16; ttl u8).
//     codec kRaw: every column is a plain little-endian array.
//     codec kDeltaVarint: the three high-entropy-but-correlated columns
//     (timestamp_us, source, destination) are each stored as
//     `u64 byte_length` + a zigzag-LEB128 stream of row-over-row deltas
//     (first delta is against 0, so every chunk decodes standalone);
//     the remaining seven columns stay raw.
//
// A v2 writer normalizes chunking to a fixed row count per chunk
// (kCacheRowsPerChunk), independent of how the classifier batched its
// appends — the cache bytes are a pure function of the probe stream, so
// serial, chunked-parallel and SIMD-dispatch ingests commit identical
// files (pinned by tests/integration/ingest_differential_test.cpp).
//
// Validity = magic + version + codec + source identity (byte size and
// mtime in nanoseconds) + chunk framing + checksum. Any mismatch
// invalidates the cache; callers fall back to decoding and rewrite it.
// Writes go to a sibling ".tmp" and rename into place so a crashed run
// never leaves a torn cache.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>

#include "pcap/mapped_reader.h"
#include "pcap/pcap.h"
#include "telescope/probe_batch.h"
#include "telescope/sensor.h"

namespace synscan::core {

/// Chunk encoding, stored at header offset 44. v1 files predate the
/// field and always decode as kRaw (they wrote 0 there as "reserved").
enum class CacheCodec : std::uint32_t {
  kRaw = 0,          ///< plain little-endian column arrays
  kDeltaVarint = 1,  ///< delta+zigzag LEB128 on timestamp/source/destination
};

/// Rows per chunk a v2 writer emits (the last chunk may be shorter).
inline constexpr std::size_t kCacheRowsPerChunk = 65536;

/// What ties a cache file to its source capture.
struct CacheIdentity {
  std::uint64_t source_size = 0;
  std::uint64_t source_mtime_ns = 0;
};

/// Stats the source capture as a cache identity; nullopt when the path
/// is not a regular file (streams and FIFOs are never cached).
[[nodiscard]] std::optional<CacheIdentity> cache_identity(
    const std::filesystem::path& source);

/// Header fields of a cache file, as stored (no chunk validation).
struct CacheFileInfo {
  std::uint32_t version = 0;
  CacheCodec codec = CacheCodec::kRaw;
  std::uint64_t source_size = 0;
  std::uint64_t source_mtime_ns = 0;
  std::uint64_t frame_count = 0;
  std::uint64_t probe_count = 0;
  pcap::ReadStatus terminal_status = pcap::ReadStatus::kEndOfFile;
  telescope::SensorCounters sensor;
  std::uint64_t checksum = 0;
  std::uint64_t file_size = 0;
};

/// Parses just the header (magic + version + codec sanity). nullopt when
/// the file is missing, too short, or not an spc file. Powers the
/// `synscan cache stat` subcommand.
[[nodiscard]] std::optional<CacheFileInfo> cache_stat(const std::filesystem::path& path);

/// Outcome of a full offline validation pass (`synscan cache verify`).
struct CacheVerifyReport {
  bool ok = false;
  std::string error;  ///< first defect found; empty when ok
  std::uint64_t chunks = 0;
  std::uint64_t rows = 0;
};

/// Runs the same validation a replay would — header, optional source
/// identity, chunk framing, checksum — and reports the first defect as
/// text instead of silently falling back.
[[nodiscard]] CacheVerifyReport cache_verify(
    const std::filesystem::path& path,
    const std::optional<CacheIdentity>& expected = std::nullopt);

/// Streaming writer. Appended batches are restaged into fixed-row chunks
/// (kCacheRowsPerChunk) so the file bytes do not depend on the caller's
/// batch boundaries; `commit` flushes the tail chunk, patches the header
/// and renames the temp file into place. Destruction without a commit
/// removes the temp file.
class ProbeCacheWriter {
 public:
  /// Starts writing `path`'s sibling temp file. Throws when the temp
  /// file cannot be created.
  ProbeCacheWriter(std::filesystem::path path, const CacheIdentity& identity,
                   CacheCodec codec = CacheCodec::kDeltaVarint);
  ~ProbeCacheWriter();
  ProbeCacheWriter(const ProbeCacheWriter&) = delete;
  ProbeCacheWriter& operator=(const ProbeCacheWriter&) = delete;

  /// Stages one `ProbeBatch`, emitting every full fixed-row chunk.
  void append(const telescope::ProbeBatch& batch);

  /// Finalizes header + checksum and renames into place. Returns false
  /// (after cleaning up the temp file) when any write failed — a cache
  /// is best-effort and must never fail the run.
  [[nodiscard]] bool commit(std::uint64_t frame_count, pcap::ReadStatus terminal_status,
                            const telescope::SensorCounters& sensor);

  /// Drops the temp file without committing.
  void abandon();

 private:
  void emit_chunk(std::size_t begin, std::size_t rows);
  void flush_staging(bool final_flush);

  std::filesystem::path path_;
  std::filesystem::path tmp_path_;
  std::ofstream stream_;
  std::vector<std::uint8_t> scratch_;
  telescope::ProbeBatch staging_;
  std::uint64_t probe_count_ = 0;
  std::uint64_t checksum_;
  CacheIdentity identity_;
  CacheCodec codec_;
  bool open_ = false;
};

/// Validating reader over a mapped cache file. `open` fully verifies the
/// file (identity + checksum + framing) before the first chunk is handed
/// out, so a torn or stale cache can never leak probes into a run.
class ProbeCacheReader {
 public:
  /// Returns nullopt when the file is missing, unreadable, or fails any
  /// validity check.
  [[nodiscard]] static std::optional<ProbeCacheReader> open(
      const std::filesystem::path& path, const CacheIdentity& expected);

  /// Clears `out` and fills it with the next chunk; false at end.
  bool next_chunk(telescope::ProbeBatch& out);

  [[nodiscard]] const telescope::SensorCounters& sensor() const noexcept {
    return sensor_;
  }
  [[nodiscard]] std::uint64_t frame_count() const noexcept { return frame_count_; }
  [[nodiscard]] std::uint64_t probe_count() const noexcept { return probe_count_; }
  [[nodiscard]] CacheCodec codec() const noexcept { return codec_; }
  [[nodiscard]] pcap::ReadStatus terminal_status() const noexcept {
    return terminal_status_;
  }

 private:
  ProbeCacheReader() = default;

  pcap::MappedFile file_;
  std::size_t offset_ = 0;  ///< cursor into the chunk region
  telescope::SensorCounters sensor_;
  std::uint64_t frame_count_ = 0;
  std::uint64_t probe_count_ = 0;
  CacheCodec codec_ = CacheCodec::kRaw;
  pcap::ReadStatus terminal_status_ = pcap::ReadStatus::kEndOfFile;
};

}  // namespace synscan::core
