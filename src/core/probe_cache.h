// Columnar probe cache (`.spc`): decode a capture once, replay probes.
//
// A capture's sensor verdict never changes between runs, but the decode
// dominates replay time. After the first pass the ingest driver persists
// every scan probe — plus the sensor counter histogram and the reader's
// terminal status — in a compact little-endian columnar file next to the
// capture. Later runs stream probes straight out of the cache and skip
// frame decode and classification entirely.
//
// Layout (all integers little-endian):
//   header (136 bytes):
//     u32 magic "spc1"        u32 version (=1)
//     u64 source_size         u64 source_mtime_ns
//     u64 frame_count         u64 probe_count
//     u32 terminal_status     u32 reserved (=0)
//     u64 x 10 sensor counters (SensorCounters field order)
//     u64 checksum            FNV-1a (64-bit words) over every chunk byte
//   chunks, until probe_count rows are consumed:
//     u64 row_count, then the ten probe columns back-to-back, each
//     row_count elements wide (timestamp u64; source, destination,
//     sequence, acknowledgment u32; ports, ip_id, window u16; ttl u8).
//
// Validity = magic + version + source identity (byte size and mtime in
// nanoseconds) + checksum. Any mismatch invalidates the cache; callers
// fall back to decoding and rewrite it. Writes go to a sibling ".tmp"
// and rename into place so a crashed run never leaves a torn cache.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>

#include "pcap/mapped_reader.h"
#include "pcap/pcap.h"
#include "telescope/probe_batch.h"
#include "telescope/sensor.h"

namespace synscan::core {

/// What ties a cache file to its source capture.
struct CacheIdentity {
  std::uint64_t source_size = 0;
  std::uint64_t source_mtime_ns = 0;
};

/// Stats the source capture as a cache identity; nullopt when the path
/// is not a regular file (streams and FIFOs are never cached).
[[nodiscard]] std::optional<CacheIdentity> cache_identity(
    const std::filesystem::path& source);

/// Streaming writer. Chunks are appended batch-by-batch during the first
/// decode; `commit` patches the header and renames the temp file into
/// place. Destruction without a commit removes the temp file.
class ProbeCacheWriter {
 public:
  /// Starts writing `path`'s sibling temp file. Throws when the temp
  /// file cannot be created.
  ProbeCacheWriter(std::filesystem::path path, const CacheIdentity& identity);
  ~ProbeCacheWriter();
  ProbeCacheWriter(const ProbeCacheWriter&) = delete;
  ProbeCacheWriter& operator=(const ProbeCacheWriter&) = delete;

  /// Appends one chunk (one column-encoded `ProbeBatch`). Empty batches
  /// are skipped.
  void append(const telescope::ProbeBatch& batch);

  /// Finalizes header + checksum and renames into place. Returns false
  /// (after cleaning up the temp file) when any write failed — a cache
  /// is best-effort and must never fail the run.
  [[nodiscard]] bool commit(std::uint64_t frame_count, pcap::ReadStatus terminal_status,
                            const telescope::SensorCounters& sensor);

  /// Drops the temp file without committing.
  void abandon();

 private:
  std::filesystem::path path_;
  std::filesystem::path tmp_path_;
  std::ofstream stream_;
  std::vector<std::uint8_t> scratch_;
  std::uint64_t probe_count_ = 0;
  std::uint64_t checksum_;
  CacheIdentity identity_;
  bool open_ = false;
};

/// Validating reader over a mapped cache file. `open` fully verifies the
/// file (identity + checksum + framing) before the first chunk is handed
/// out, so a torn or stale cache can never leak probes into a run.
class ProbeCacheReader {
 public:
  /// Returns nullopt when the file is missing, unreadable, or fails any
  /// validity check.
  [[nodiscard]] static std::optional<ProbeCacheReader> open(
      const std::filesystem::path& path, const CacheIdentity& expected);

  /// Clears `out` and fills it with the next chunk; false at end.
  bool next_chunk(telescope::ProbeBatch& out);

  [[nodiscard]] const telescope::SensorCounters& sensor() const noexcept {
    return sensor_;
  }
  [[nodiscard]] std::uint64_t frame_count() const noexcept { return frame_count_; }
  [[nodiscard]] std::uint64_t probe_count() const noexcept { return probe_count_; }
  [[nodiscard]] pcap::ReadStatus terminal_status() const noexcept {
    return terminal_status_;
  }

 private:
  ProbeCacheReader() = default;

  pcap::MappedFile file_;
  std::size_t offset_ = 0;  ///< cursor into the chunk region
  telescope::SensorCounters sensor_;
  std::uint64_t frame_count_ = 0;
  std::uint64_t probe_count_ = 0;
  pcap::ReadStatus terminal_status_ = pcap::ReadStatus::kEndOfFile;
};

}  // namespace synscan::core
