// Shard planning and execution for multi-capture analysis.
//
// A decade of telescope data arrives as many capture files. `plan_shards`
// turns a file set into a deterministic capture-time ordering (by first
// record timestamp, path as tie-break) — the order `RollupMerger`
// requires so adjacent shards' boundary flows line up. `run_shards`
// executes the plan on a worker pool: each shard is served from its
// `.spr` rollup store when the stored rollup is still valid (same
// capture bytes, same analysis configuration) and re-analyzed through
// the batch-native pipeline otherwise, then everything reduces to one
// `AnalyzedCapture` whose report is byte-identical to analyzing the
// concatenated captures serially.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <vector>

#include "core/rollup.h"

namespace synscan::core {

/// One capture in execution order.
struct ShardPlanEntry {
  std::filesystem::path capture;
  /// First record timestamp; 0 when the capture is unreadable or empty
  /// (such shards sort first and fail later, at analysis time, with a
  /// real error instead of a planning error).
  net::TimeUs first_timestamp_us = 0;
};

/// A capture set in capture-time order.
struct ShardPlan {
  std::vector<ShardPlanEntry> shards;
};

/// Orders `captures` by first record timestamp (path as tie-break).
/// Reads only the global header and one record header per file.
[[nodiscard]] ShardPlan plan_shards(std::span<const std::filesystem::path> captures);

struct ShardRunOptions {
  /// Shard-level parallelism; 0 = one worker per hardware thread
  /// (bounded by the shard count).
  std::size_t workers = 0;
  /// Read and write the sibling `.spr` rollup store.
  bool use_rollup_store = true;
  /// Ingest options for shards that need re-analysis.
  IngestOptions ingest;
};

/// What the run did, for reporting and the `rollup.*` metrics.
struct ShardRunStats {
  std::uint64_t shards = 0;
  std::uint64_t store_hits = 0;    ///< shards served from a valid `.spr`
  std::uint64_t store_misses = 0;  ///< shards re-analyzed
  std::uint64_t store_writes = 0;  ///< rollups (re)persisted this run
};

struct ShardRunResult {
  explicit ShardRunResult(const enrich::InternetRegistry& registry)
      : analysis(registry) {}

  AnalyzedCapture analysis;
  ShardRunStats stats;
};

/// Executes `plan`: analyzes or loads every shard on a worker pool, then
/// folds the rollups in plan order. Throws the first per-shard error
/// (unopenable capture, bad global header) after the pool drains.
[[nodiscard]] ShardRunResult run_shards(const ShardPlan& plan,
                                        const telescope::Telescope& telescope,
                                        const enrich::InternetRegistry& registry,
                                        const TrackerConfig& tracker_config,
                                        const ShardRunOptions& options);

}  // namespace synscan::core
