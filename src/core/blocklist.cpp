#include "core/blocklist.h"

namespace synscan::core {

Blocklist Blocklist::harvest(std::span<const Campaign> campaigns, net::TimeUs from,
                             net::TimeUs to) {
  Blocklist list;
  for (const auto& campaign : campaigns) {
    if (campaign.last_seen_us >= from && campaign.last_seen_us < to) {
      list.add(campaign.source);
    }
  }
  return list;
}

BlocklistEffectiveness evaluate_blocklist(const Blocklist& list,
                                          std::span<const Campaign> campaigns,
                                          net::TimeUs from, net::TimeUs to) {
  BlocklistEffectiveness effectiveness;
  effectiveness.list_size = list.size();
  for (const auto& campaign : campaigns) {
    if (campaign.first_seen_us < from || campaign.first_seen_us >= to) continue;
    ++effectiveness.eval_campaigns;
    effectiveness.eval_packets += campaign.packets;
    if (list.contains(campaign.source)) {
      ++effectiveness.blocked_campaigns;
      effectiveness.blocked_packets += campaign.packets;
    }
  }
  return effectiveness;
}

std::vector<double> blocklist_decay_curve(std::span<const Campaign> campaigns,
                                          net::TimeUs origin, std::size_t harvest_day,
                                          std::size_t lag_days, std::size_t eval_days) {
  const auto day = [&](std::size_t index) {
    return origin + static_cast<net::TimeUs>(index) * net::kMicrosPerDay;
  };
  const auto list =
      Blocklist::harvest(campaigns, day(harvest_day), day(harvest_day + 1));

  std::vector<double> curve;
  curve.reserve(eval_days);
  for (std::size_t offset = 0; offset < eval_days; ++offset) {
    const auto start = harvest_day + 1 + lag_days + offset;
    const auto result = evaluate_blocklist(list, campaigns, day(start), day(start + 1));
    curve.push_back(result.campaign_block_rate());
  }
  return curve;
}

}  // namespace synscan::core
