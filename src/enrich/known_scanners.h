// Catalog of known ("institutional") scanning organizations.
//
// The paper identifies 36 (2023) / 40 (2024) organizations that
// publicize their Internet scanning — search engines like Censys and
// Shodan, attack-surface vendors like Palo Alto Cortex Xpanse, non-
// profits like Shadowserver, and universities. This catalog is the
// reproduction's stand-in for the Greynoise/Collins ground truth: it
// assigns each organization a source prefix, a port-coverage profile for
// 2023 and 2024, a scan cadence, and a speed class. The traffic
// generator emits their campaigns from exactly these prefixes, and the
// enrichment/ETL layer labels them back, closing the loop.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "enrich/country.h"
#include "net/ipv4.h"

namespace synscan::enrich {

/// How an organization spreads its scanning over the port space.
enum class PortSelection : std::uint8_t {
  kFullRange,  ///< all 65,536 TCP ports
  kTopPorts,   ///< the N most common service ports
  kFewPorts,   ///< a small hand-picked research set
};

/// Static facts about one known scanner.
struct KnownScannerSpec {
  std::string_view name;
  CountryCode country;
  net::Ipv4Prefix prefix;  ///< announced scanning prefix (synthetic)
  std::uint32_t asn = 0;
  std::uint32_t ports_2023 = 0;  ///< distinct ports targeted in 2023
  std::uint32_t ports_2024 = 0;  ///< distinct ports targeted in 2024
  PortSelection selection = PortSelection::kTopPorts;
  bool scans_daily = true;       ///< §6.6: institutional scanners recur daily
  double packets_per_second = 50'000;  ///< Internet-wide probe rate
  bool academic = false;
};

/// The catalog, in stable order. Prefixes are carved from 64.0.0.0/10 and
/// never overlap other synthetic allocations.
[[nodiscard]] std::span<const KnownScannerSpec> known_scanner_specs();

/// Looks up a spec by organization name; nullptr if absent.
[[nodiscard]] const KnownScannerSpec* find_known_scanner(std::string_view name);

/// Number of organizations active in a given year (the catalog grows:
/// organizations with `ports_<year> == 0` are not yet active).
[[nodiscard]] std::size_t active_known_scanners(int year);

}  // namespace synscan::enrich
