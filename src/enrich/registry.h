// Prefix-to-metadata registry with longest-prefix-match lookup.
//
// Substitutes for the commercial geo/AS databases the paper enriches
// with. The synthetic default allocation plan assigns residential,
// hosting and enterprise space across ~30 countries with realistic skew,
// and carves out institutional prefixes for the known scanning
// organizations, so that geographic and scanner-type analyses exercise
// the same code paths they would with MaxMind/Greynoise data.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "enrich/country.h"
#include "enrich/scanner_type.h"
#include "net/ipv4.h"

namespace synscan::enrich {

/// One allocation: a prefix with its AS, country, network type and the
/// owning organization (empty for anonymous allocations).
struct PrefixRecord {
  net::Ipv4Prefix prefix;
  std::uint32_t asn = 0;
  CountryCode country;
  ScannerType type = ScannerType::kUnknown;
  std::string organization;
};

/// Immutable longest-prefix-match registry.
class InternetRegistry {
 public:
  explicit InternetRegistry(std::vector<PrefixRecord> records);

  /// The deterministic synthetic allocation plan used throughout the
  /// reproduction; see registry.cpp for its layout.
  [[nodiscard]] static const InternetRegistry& synthetic_default();

  /// Longest-prefix match; nullptr when `addr` is unallocated.
  [[nodiscard]] const PrefixRecord* lookup(net::Ipv4Address addr) const noexcept;

  [[nodiscard]] ScannerType type_of(net::Ipv4Address addr) const noexcept {
    const auto* rec = lookup(addr);
    return rec ? rec->type : ScannerType::kUnknown;
  }
  [[nodiscard]] CountryCode country_of(net::Ipv4Address addr) const noexcept {
    const auto* rec = lookup(addr);
    return rec ? rec->country : CountryCode();
  }

  [[nodiscard]] std::span<const PrefixRecord> records() const noexcept { return records_; }

  /// All records of a given network type (e.g. every residential pool),
  /// in registry order; used by the traffic generator to site actors.
  [[nodiscard]] std::vector<const PrefixRecord*> records_of(ScannerType type) const;

  /// All records of a country.
  [[nodiscard]] std::vector<const PrefixRecord*> records_of(CountryCode country) const;

 private:
  /// One entry per point where the longest-prefix-match answer changes:
  /// addresses in [start, next.start) resolve to `records_[record]`, or
  /// to nothing when `record == kNoRecord`. Built once by a base-order
  /// sweep (CIDR prefixes either nest or are disjoint, so a stack of
  /// active prefixes yields the most-specific cover); lookup is a single
  /// binary search over a dense sorted array instead of up to 33 hash
  /// probes longest-length-first.
  struct Interval {
    std::uint32_t start = 0;
    std::uint32_t record = kNoRecord;
  };
  static constexpr std::uint32_t kNoRecord = 0xffffffffu;

  std::vector<PrefixRecord> records_;
  std::vector<Interval> intervals_;  ///< sorted by `start`, first is 0
};

}  // namespace synscan::enrich
