#include "enrich/registry.h"

#include <algorithm>
#include <stdexcept>

#include "enrich/known_scanners.h"

namespace synscan::enrich {
namespace {

// Per-country pool counts for the synthetic plan. Weights reflect the
// paper's geography: China and the US dominate scanning origin early on;
// the Netherlands is over-represented in hosting ("cheap hosting,
// bulletproof hosting"); the rest of the world provides the long tail
// the ecosystem diversifies into.
struct CountryPlan {
  const char* code;
  int residential_pools;
  int hosting_pools;
  int enterprise_pools;
};

constexpr CountryPlan kCountryPlans[] = {
    {"CN", 9, 4, 3}, {"US", 8, 6, 4}, {"NL", 2, 6, 1}, {"RU", 4, 3, 2},
    {"BR", 4, 1, 1}, {"TW", 3, 1, 1}, {"IR", 3, 1, 1}, {"DE", 3, 2, 2},
    {"FR", 2, 2, 1}, {"GB", 2, 2, 2}, {"IN", 4, 1, 1}, {"VN", 3, 1, 1},
    {"ID", 3, 1, 1}, {"KR", 2, 2, 1}, {"JP", 2, 1, 1}, {"UA", 2, 1, 1},
    {"TR", 2, 1, 1}, {"TH", 2, 1, 1}, {"MX", 2, 1, 1}, {"AR", 2, 1, 1},
    {"EG", 2, 1, 0}, {"ZA", 1, 1, 0}, {"PL", 1, 1, 1}, {"IT", 1, 1, 1},
    {"ES", 1, 1, 1}, {"CA", 1, 1, 1}, {"AU", 1, 1, 1}, {"SG", 1, 2, 1},
    {"HK", 1, 2, 1}, {"RO", 1, 1, 0}, {"SE", 1, 1, 1}, {"PT", 1, 1, 0},
    {"BE", 1, 1, 0},
};

// Space the plan must never allocate: reserved ranges, the telescope's
// own blocks (192.88/198.51/203.0), and the institutional carve-out.
[[nodiscard]] bool forbidden(net::Ipv4Prefix candidate) {
  static const net::Ipv4Prefix kForbidden[] = {
      *net::Ipv4Prefix::parse("0.0.0.0/8"),    *net::Ipv4Prefix::parse("10.0.0.0/8"),
      *net::Ipv4Prefix::parse("100.64.0.0/10"), *net::Ipv4Prefix::parse("127.0.0.0/8"),
      *net::Ipv4Prefix::parse("169.254.0.0/16"), *net::Ipv4Prefix::parse("172.16.0.0/12"),
      *net::Ipv4Prefix::parse("192.0.0.0/8"),  *net::Ipv4Prefix::parse("198.0.0.0/8"),
      *net::Ipv4Prefix::parse("203.0.0.0/16"), *net::Ipv4Prefix::parse("64.0.0.0/10"),
      *net::Ipv4Prefix::parse("224.0.0.0/3"),
  };
  for (const auto& bad : kForbidden) {
    // Two prefixes overlap iff one contains the other's base.
    if (bad.contains(candidate.base()) || candidate.contains(bad.base())) return true;
  }
  return false;
}

std::vector<PrefixRecord> build_synthetic_plan() {
  std::vector<PrefixRecord> records;

  // Walk /14 blocks from 1.0.0.0 upward, skipping forbidden space.
  std::uint32_t cursor = (1u << 24);
  std::uint32_t next_asn = 1000;
  const auto take_pool = [&]() {
    for (;;) {
      const net::Ipv4Prefix candidate(net::Ipv4Address(cursor), 14);
      cursor += static_cast<std::uint32_t>(candidate.size());
      if (!forbidden(candidate)) return candidate;
      if (cursor < (1u << 24)) throw std::logic_error("synthetic plan: address space exhausted");
    }
  };

  for (const auto& plan : kCountryPlans) {
    const CountryCode country{plan.code};
    for (int i = 0; i < plan.residential_pools; ++i) {
      records.push_back({take_pool(), next_asn++, country, ScannerType::kResidential,
                         std::string(plan.code) + "-telecom-" + std::to_string(i)});
    }
    for (int i = 0; i < plan.hosting_pools; ++i) {
      records.push_back({take_pool(), next_asn++, country, ScannerType::kHosting,
                         std::string(plan.code) + "-hosting-" + std::to_string(i)});
    }
    for (int i = 0; i < plan.enterprise_pools; ++i) {
      // The paper calls out ASN 18403 (FPT, Vietnam) as the enterprise
      // space behind the JSON-RPC (8545/TCP) scanning; give the first
      // Vietnamese enterprise pool that identity.
      const bool fpt = std::string_view(plan.code) == "VN" && i == 0;
      records.push_back({take_pool(), fpt ? 18403u : next_asn++, country,
                         ScannerType::kEnterprise,
                         fpt ? std::string("FPT-AS-AP")
                             : std::string(plan.code) + "-enterprise-" + std::to_string(i)});
    }
  }

  // Institutional scanners from the known-scanner catalog.
  for (const auto& spec : known_scanner_specs()) {
    records.push_back({spec.prefix, spec.asn, spec.country, ScannerType::kInstitutional,
                       std::string(spec.name)});
  }
  return records;
}

}  // namespace

InternetRegistry::InternetRegistry(std::vector<PrefixRecord> records)
    : records_(std::move(records)) {
  // Build the interval index with a base-order sweep. CIDR prefixes
  // either nest or are disjoint, so sorting by (base, length) visits
  // outer prefixes before the prefixes they contain, and a stack of
  // still-active prefixes always has the most-specific cover on top.
  std::vector<std::uint32_t> order(records_.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    const auto base_a = records_[a].prefix.base().value();
    const auto base_b = records_[b].prefix.base().value();
    if (base_a != base_b) return base_a < base_b;
    if (records_[a].prefix.length() != records_[b].prefix.length()) {
      return records_[a].prefix.length() < records_[b].prefix.length();
    }
    return a < b;  // duplicates keep registry order; first one wins
  });

  const auto last_of = [&](std::uint32_t index) {
    const auto& prefix = records_[index].prefix;
    return prefix.base().value() +
           static_cast<std::uint32_t>(prefix.size() - 1);  // inclusive end
  };
  // Appends "addresses from `start` on resolve to `record`", overwriting
  // a same-start entry (a more specific prefix opening at the same base).
  const auto emit = [&](std::uint64_t start, std::uint32_t record) {
    if (start > 0xffffffffull) return;  // closed at the top of the space
    const auto start32 = static_cast<std::uint32_t>(start);
    if (!intervals_.empty() && intervals_.back().start == start32) {
      intervals_.back().record = record;
    } else {
      intervals_.push_back({start32, record});
    }
  };

  emit(0, kNoRecord);
  std::vector<std::uint32_t> active;  // indices of prefixes covering the cursor
  for (const auto index : order) {
    const auto start = records_[index].prefix.base().value();
    while (!active.empty() && last_of(active.back()) < start) {
      const auto closed = active.back();
      active.pop_back();
      emit(static_cast<std::uint64_t>(last_of(closed)) + 1,
           active.empty() ? kNoRecord : active.back());
    }
    if (!active.empty() && records_[active.back()].prefix == records_[index].prefix) {
      continue;  // exact duplicate prefix: the first record keeps it
    }
    active.push_back(index);
    emit(start, index);
  }
  while (!active.empty()) {
    const auto closed = active.back();
    active.pop_back();
    emit(static_cast<std::uint64_t>(last_of(closed)) + 1,
         active.empty() ? kNoRecord : active.back());
  }
}

const InternetRegistry& InternetRegistry::synthetic_default() {
  static const InternetRegistry registry{build_synthetic_plan()};
  return registry;
}

const PrefixRecord* InternetRegistry::lookup(net::Ipv4Address addr) const noexcept {
  // The index always opens with {0, ...}, so the predecessor exists.
  const auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), addr.value(),
      [](std::uint32_t value, const Interval& interval) { return value < interval.start; });
  const auto record = (it - 1)->record;
  return record == kNoRecord ? nullptr : &records_[record];
}

std::vector<const PrefixRecord*> InternetRegistry::records_of(ScannerType type) const {
  std::vector<const PrefixRecord*> out;
  for (const auto& rec : records_) {
    if (rec.type == type) out.push_back(&rec);
  }
  return out;
}

std::vector<const PrefixRecord*> InternetRegistry::records_of(CountryCode country) const {
  std::vector<const PrefixRecord*> out;
  for (const auto& rec : records_) {
    if (rec.country == country) out.push_back(&rec);
  }
  return out;
}

}  // namespace synscan::enrich
