#include "enrich/registry.h"

#include <stdexcept>

#include "enrich/known_scanners.h"

namespace synscan::enrich {
namespace {

// Per-country pool counts for the synthetic plan. Weights reflect the
// paper's geography: China and the US dominate scanning origin early on;
// the Netherlands is over-represented in hosting ("cheap hosting,
// bulletproof hosting"); the rest of the world provides the long tail
// the ecosystem diversifies into.
struct CountryPlan {
  const char* code;
  int residential_pools;
  int hosting_pools;
  int enterprise_pools;
};

constexpr CountryPlan kCountryPlans[] = {
    {"CN", 9, 4, 3}, {"US", 8, 6, 4}, {"NL", 2, 6, 1}, {"RU", 4, 3, 2},
    {"BR", 4, 1, 1}, {"TW", 3, 1, 1}, {"IR", 3, 1, 1}, {"DE", 3, 2, 2},
    {"FR", 2, 2, 1}, {"GB", 2, 2, 2}, {"IN", 4, 1, 1}, {"VN", 3, 1, 1},
    {"ID", 3, 1, 1}, {"KR", 2, 2, 1}, {"JP", 2, 1, 1}, {"UA", 2, 1, 1},
    {"TR", 2, 1, 1}, {"TH", 2, 1, 1}, {"MX", 2, 1, 1}, {"AR", 2, 1, 1},
    {"EG", 2, 1, 0}, {"ZA", 1, 1, 0}, {"PL", 1, 1, 1}, {"IT", 1, 1, 1},
    {"ES", 1, 1, 1}, {"CA", 1, 1, 1}, {"AU", 1, 1, 1}, {"SG", 1, 2, 1},
    {"HK", 1, 2, 1}, {"RO", 1, 1, 0}, {"SE", 1, 1, 1}, {"PT", 1, 1, 0},
    {"BE", 1, 1, 0},
};

// Space the plan must never allocate: reserved ranges, the telescope's
// own blocks (192.88/198.51/203.0), and the institutional carve-out.
[[nodiscard]] bool forbidden(net::Ipv4Prefix candidate) {
  static const net::Ipv4Prefix kForbidden[] = {
      *net::Ipv4Prefix::parse("0.0.0.0/8"),    *net::Ipv4Prefix::parse("10.0.0.0/8"),
      *net::Ipv4Prefix::parse("100.64.0.0/10"), *net::Ipv4Prefix::parse("127.0.0.0/8"),
      *net::Ipv4Prefix::parse("169.254.0.0/16"), *net::Ipv4Prefix::parse("172.16.0.0/12"),
      *net::Ipv4Prefix::parse("192.0.0.0/8"),  *net::Ipv4Prefix::parse("198.0.0.0/8"),
      *net::Ipv4Prefix::parse("203.0.0.0/16"), *net::Ipv4Prefix::parse("64.0.0.0/10"),
      *net::Ipv4Prefix::parse("224.0.0.0/3"),
  };
  for (const auto& bad : kForbidden) {
    // Two prefixes overlap iff one contains the other's base.
    if (bad.contains(candidate.base()) || candidate.contains(bad.base())) return true;
  }
  return false;
}

std::vector<PrefixRecord> build_synthetic_plan() {
  std::vector<PrefixRecord> records;

  // Walk /14 blocks from 1.0.0.0 upward, skipping forbidden space.
  std::uint32_t cursor = (1u << 24);
  std::uint32_t next_asn = 1000;
  const auto take_pool = [&]() {
    for (;;) {
      const net::Ipv4Prefix candidate(net::Ipv4Address(cursor), 14);
      cursor += static_cast<std::uint32_t>(candidate.size());
      if (!forbidden(candidate)) return candidate;
      if (cursor < (1u << 24)) throw std::logic_error("synthetic plan: address space exhausted");
    }
  };

  for (const auto& plan : kCountryPlans) {
    const CountryCode country{plan.code};
    for (int i = 0; i < plan.residential_pools; ++i) {
      records.push_back({take_pool(), next_asn++, country, ScannerType::kResidential,
                         std::string(plan.code) + "-telecom-" + std::to_string(i)});
    }
    for (int i = 0; i < plan.hosting_pools; ++i) {
      records.push_back({take_pool(), next_asn++, country, ScannerType::kHosting,
                         std::string(plan.code) + "-hosting-" + std::to_string(i)});
    }
    for (int i = 0; i < plan.enterprise_pools; ++i) {
      // The paper calls out ASN 18403 (FPT, Vietnam) as the enterprise
      // space behind the JSON-RPC (8545/TCP) scanning; give the first
      // Vietnamese enterprise pool that identity.
      const bool fpt = std::string_view(plan.code) == "VN" && i == 0;
      records.push_back({take_pool(), fpt ? 18403u : next_asn++, country,
                         ScannerType::kEnterprise,
                         fpt ? std::string("FPT-AS-AP")
                             : std::string(plan.code) + "-enterprise-" + std::to_string(i)});
    }
  }

  // Institutional scanners from the known-scanner catalog.
  for (const auto& spec : known_scanner_specs()) {
    records.push_back({spec.prefix, spec.asn, spec.country, ScannerType::kInstitutional,
                       std::string(spec.name)});
  }
  return records;
}

}  // namespace

InternetRegistry::InternetRegistry(std::vector<PrefixRecord> records)
    : records_(std::move(records)) {
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const auto& rec = records_[i];
    const auto len = rec.prefix.length();
    by_length_[static_cast<std::size_t>(len)].emplace(rec.prefix.base().value(), i);
    max_length_ = std::max(max_length_, len);
    min_length_ = std::min(min_length_, len);
  }
  if (records_.empty()) {
    min_length_ = 0;
    max_length_ = -1;  // lookup loop never runs
  }
}

const InternetRegistry& InternetRegistry::synthetic_default() {
  static const InternetRegistry registry{build_synthetic_plan()};
  return registry;
}

const PrefixRecord* InternetRegistry::lookup(net::Ipv4Address addr) const noexcept {
  for (int len = max_length_; len >= min_length_; --len) {
    const auto& bucket = by_length_[static_cast<std::size_t>(len)];
    if (bucket.empty()) continue;
    const std::uint32_t mask = len == 0 ? 0u : ~std::uint32_t{0} << (32 - len);
    const auto it = bucket.find(addr.value() & mask);
    if (it != bucket.end()) return &records_[it->second];
  }
  return nullptr;
}

std::vector<const PrefixRecord*> InternetRegistry::records_of(ScannerType type) const {
  std::vector<const PrefixRecord*> out;
  for (const auto& rec : records_) {
    if (rec.type == type) out.push_back(&rec);
  }
  return out;
}

std::vector<const PrefixRecord*> InternetRegistry::records_of(CountryCode country) const {
  std::vector<const PrefixRecord*> out;
  for (const auto& rec : records_) {
    if (rec.country == country) out.push_back(&rec);
  }
  return out;
}

}  // namespace synscan::enrich
