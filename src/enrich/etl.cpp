#include "enrich/etl.h"

#include <algorithm>
#include <array>
#include <cctype>

namespace synscan::enrich {

std::string ascii_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

namespace {

// Keyword extraction: each organization contributes the lowercase words
// of its name that are long enough to be discriminative (>= 4 chars,
// skipping generic tokens).
bool generic_token(std::string_view token) {
  static constexpr std::array<std::string_view, 12> kGeneric = {
      "university", "labs",  "group", "networks", "foundation", "project",
      "research",   "cyber", "surface", "internet", "global",   "security"};
  return std::find(kGeneric.begin(), kGeneric.end(), token) != kGeneric.end();
}

}  // namespace

KnownScannerEtl::KnownScannerEtl(std::span<const KnownScannerSpec> catalog)
    : catalog_(catalog) {
  for (const auto& spec : catalog_) {
    const auto lower = ascii_lower(spec.name);
    std::size_t start = 0;
    while (start < lower.size()) {
      const auto end = lower.find_first_of(" .()/-", start);
      const auto token =
          lower.substr(start, end == std::string::npos ? std::string::npos : end - start);
      if (token.size() >= 4 && !generic_token(token)) {
        keywords_.push_back({std::string(token), spec.name});
      }
      if (end == std::string::npos) break;
      start = end + 1;
    }
  }
}

void KnownScannerEtl::add_keyword(std::string_view keyword, std::string_view organization) {
  keywords_.push_back({ascii_lower(keyword), organization});
}

EtlResult KnownScannerEtl::match(const SourceIntelRecord& record) const {
  // Phase-1: direct IP match against known scanner prefixes.
  for (const auto& spec : catalog_) {
    if (spec.prefix.contains(record.ip)) {
      return {EtlPhase::kIpMatch, spec.name, {}, -1};
    }
  }

  // Phase-2: keyword match over the text fields, most important first.
  const std::array<const std::string*, 5> fields = {
      &record.whois_network_name, &record.organization_name, &record.abuse_email,
      &record.reverse_dns, &record.service_banner};
  for (int field_index = 0; field_index < static_cast<int>(fields.size()); ++field_index) {
    const auto haystack = ascii_lower(*fields[static_cast<std::size_t>(field_index)]);
    if (haystack.empty()) continue;
    for (const auto& keyword : keywords_) {
      if (haystack.find(keyword.text) != std::string::npos) {
        return {EtlPhase::kKeywordMatch, keyword.organization, keyword.text, field_index};
      }
    }
  }
  return {};
}

KnownScannerEtl::Summary KnownScannerEtl::run(
    std::span<const SourceIntelRecord> records) const {
  Summary summary;
  summary.total = records.size();
  for (const auto& record : records) {
    switch (match(record).phase) {
      case EtlPhase::kIpMatch:
        ++summary.ip_matched;
        break;
      case EtlPhase::kKeywordMatch:
        ++summary.keyword_matched;
        break;
      case EtlPhase::kUnmatched:
        break;
    }
  }
  return summary;
}

}  // namespace synscan::enrich
