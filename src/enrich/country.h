// Two-letter country codes as a small value type (the paper only reports
// country-level origin statistics).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace synscan::enrich {

/// An ISO 3166-1 alpha-2 country code. The default value "??" denotes
/// unknown origin.
class CountryCode {
 public:
  constexpr CountryCode() noexcept : chars_{'?', '?'} {}

  /// Builds from exactly two characters; other lengths yield "??".
  constexpr explicit CountryCode(std::string_view code) noexcept : chars_{'?', '?'} {
    if (code.size() == 2) {
      chars_[0] = code[0];
      chars_[1] = code[1];
    }
  }

  [[nodiscard]] std::string to_string() const { return std::string(chars_.data(), 2); }
  [[nodiscard]] constexpr std::string_view view() const noexcept {
    return std::string_view(chars_.data(), 2);
  }
  [[nodiscard]] constexpr bool known() const noexcept { return chars_[0] != '?'; }

  /// Packs into a 16-bit key for dense tallies.
  [[nodiscard]] constexpr std::uint16_t packed() const noexcept {
    return static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(static_cast<unsigned char>(chars_[0])) << 8) |
        static_cast<std::uint16_t>(static_cast<unsigned char>(chars_[1])));
  }

  /// Rebuilds a code from its `packed()` key.
  [[nodiscard]] static constexpr CountryCode from_packed(std::uint16_t key) noexcept {
    CountryCode code;
    code.chars_[0] = static_cast<char>(key >> 8);
    code.chars_[1] = static_cast<char>(key & 0xff);
    return code;
  }

  friend constexpr auto operator<=>(const CountryCode&, const CountryCode&) noexcept = default;

 private:
  std::array<char, 2> chars_;
};

}  // namespace synscan::enrich

template <>
struct std::hash<synscan::enrich::CountryCode> {
  std::size_t operator()(synscan::enrich::CountryCode c) const noexcept {
    return c.packed();
  }
};
