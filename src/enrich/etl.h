// The appendix-A ETL process for identifying known scanners.
//
// The paper integrates Greynoise, the Censys API, IPinfo and reverse DNS
// through a two-phase Extract-Transform-Load pipeline: Phase-1 matches
// source IPs directly against known scanner prefixes; Phase-2 matches a
// keyword list (extracted from Phase-1 actors, plus manual additions)
// against the WHOIS/rDNS/banner text fields of unmatched sources, in
// decreasing field importance. This module reproduces that pipeline over
// the synthetic intelligence records the simulator can emit.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "enrich/known_scanners.h"
#include "net/ipv4.h"

namespace synscan::enrich {

/// One intelligence record about a source IP, mirroring the fields the
/// paper extracts from Censys/IPinfo/rDNS ("ordered from the most
/// important to the least important one").
struct SourceIntelRecord {
  net::Ipv4Address ip;
  std::string whois_network_name;
  std::string organization_name;
  std::string abuse_email;
  std::string reverse_dns;
  std::string service_banner;
};

/// How a source was attributed.
enum class EtlPhase : std::uint8_t {
  kUnmatched,
  kIpMatch,       ///< Phase-1: IP inside a known scanner prefix
  kKeywordMatch,  ///< Phase-2: keyword hit in a text field
};

struct EtlResult {
  EtlPhase phase = EtlPhase::kUnmatched;
  std::string_view organization;  ///< valid when phase != kUnmatched
  std::string_view matched_keyword;
  /// 0 = whois network name (most important) ... 4 = banner.
  int matched_field = -1;
};

/// The two-phase matcher. Construction derives the keyword list from the
/// catalog's organization names; callers may add manual keywords (the
/// paper enriches the extracted list by hand).
class KnownScannerEtl {
 public:
  explicit KnownScannerEtl(std::span<const KnownScannerSpec> catalog);

  /// Uses the default catalog.
  KnownScannerEtl() : KnownScannerEtl(known_scanner_specs()) {}

  /// Adds a manual keyword mapping to an organization.
  void add_keyword(std::string_view keyword, std::string_view organization);

  /// Runs both phases on one record.
  [[nodiscard]] EtlResult match(const SourceIntelRecord& record) const;

  /// Batch statistics: match counts per phase over a record set.
  struct Summary {
    std::uint64_t total = 0;
    std::uint64_t ip_matched = 0;
    std::uint64_t keyword_matched = 0;
    [[nodiscard]] std::uint64_t matched() const noexcept {
      return ip_matched + keyword_matched;
    }
  };
  [[nodiscard]] Summary run(std::span<const SourceIntelRecord> records) const;

  [[nodiscard]] std::size_t keyword_count() const noexcept { return keywords_.size(); }

 private:
  struct Keyword {
    std::string text;  ///< lowercase
    std::string_view organization;
  };

  std::span<const KnownScannerSpec> catalog_;
  std::vector<Keyword> keywords_;
};

/// Lowercases ASCII text (the ETL's normalization step).
[[nodiscard]] std::string ascii_lower(std::string_view text);

}  // namespace synscan::enrich
