// The scanner-origin taxonomy of §6.6 / Table 2.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace synscan::enrich {

/// What kind of network a scanning source lives in. "Institutional"
/// means an organization that publicizes its scanning (Censys, Rapid7,
/// universities, ...); hosting/enterprise/residential follow the AS
/// classification; unknown is everything unmatched.
enum class ScannerType : std::uint8_t {
  kInstitutional,
  kHosting,
  kEnterprise,
  kResidential,
  kUnknown,
};

inline constexpr std::array<ScannerType, 5> kAllScannerTypes = {
    ScannerType::kInstitutional, ScannerType::kHosting, ScannerType::kEnterprise,
    ScannerType::kResidential, ScannerType::kUnknown};

inline constexpr std::size_t kScannerTypeCount = kAllScannerTypes.size();

[[nodiscard]] constexpr std::size_t scanner_type_index(ScannerType type) noexcept {
  return static_cast<std::size_t>(type);
}

[[nodiscard]] constexpr std::string_view to_string(ScannerType type) noexcept {
  switch (type) {
    case ScannerType::kInstitutional:
      return "institutional";
    case ScannerType::kHosting:
      return "hosting";
    case ScannerType::kEnterprise:
      return "enterprise";
    case ScannerType::kResidential:
      return "residential";
    case ScannerType::kUnknown:
      return "unknown";
  }
  return "unknown";
}

}  // namespace synscan::enrich
