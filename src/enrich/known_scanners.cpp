#include "enrich/known_scanners.h"

#include <array>
#include <vector>

namespace synscan::enrich {
namespace {

// Institutional space: organization i owns 64.0.0.0 + i * 1024 (/22).
constexpr std::uint32_t kInstitutionalBase = (64u << 24);
constexpr std::uint32_t kInstitutionalStride = 1024;

[[nodiscard]] net::Ipv4Prefix org_prefix(std::uint32_t index) {
  return net::Ipv4Prefix(net::Ipv4Address(kInstitutionalBase + index * kInstitutionalStride),
                         22);
}

[[nodiscard]] std::uint32_t org_asn(std::uint32_t index) { return 394000 + index; }

struct OrgSeed {
  std::string_view name;
  const char* country;
  std::uint32_t ports_2023;
  std::uint32_t ports_2024;
  PortSelection selection;
  bool daily;
  double pps;
  bool academic;
};

// Port counts follow Figs. 8–10: Censys / Palo Alto / Shodan / Criminal IP
// cover the full range by 2024; Onyphe scales from under half to full;
// Shadowserver and Rapid7 cover large-but-partial sets; universities stay
// at a handful of ports with no growth. Organizations with ports_2023 == 0
// first appear in 2024 (the catalog grows 36 -> 40).
constexpr std::array kSeeds = {
    OrgSeed{"Censys", "US", 65536, 65536, PortSelection::kFullRange, true, 180000, false},
    OrgSeed{"Palo Alto Cortex Xpanse", "US", 65536, 65536, PortSelection::kFullRange, true, 150000, false},
    OrgSeed{"Shodan", "US", 62000, 65536, PortSelection::kFullRange, true, 120000, false},
    OrgSeed{"Criminal IP", "KR", 58000, 65536, PortSelection::kFullRange, true, 90000, false},
    OrgSeed{"Onyphe", "FR", 28000, 65536, PortSelection::kFullRange, true, 80000, false},
    OrgSeed{"Shadowserver Foundation", "US", 21000, 28000, PortSelection::kTopPorts, true, 140000, false},
    OrgSeed{"Rapid7 Project Sonar", "US", 12000, 15000, PortSelection::kTopPorts, true, 110000, false},
    OrgSeed{"Internet Census Group", "DE", 15000, 17000, PortSelection::kTopPorts, true, 70000, false},
    OrgSeed{"Driftnet.io", "GB", 18000, 26000, PortSelection::kTopPorts, true, 60000, false},
    OrgSeed{"Alpha Strike Labs", "DE", 9500, 11000, PortSelection::kTopPorts, true, 50000, false},
    OrgSeed{"LeakIX", "BE", 7800, 9000, PortSelection::kTopPorts, true, 40000, false},
    OrgSeed{"Stretchoid", "US", 4200, 4800, PortSelection::kTopPorts, true, 55000, false},
    OrgSeed{"SecurityTrails", "US", 6100, 6600, PortSelection::kTopPorts, true, 45000, false},
    OrgSeed{"Bit Discovery (Tenable)", "US", 6800, 7400, PortSelection::kTopPorts, true, 35000, false},
    OrgSeed{"CyberResilience.io", "GB", 4900, 5600, PortSelection::kTopPorts, true, 30000, false},
    OrgSeed{"Intrinsec", "FR", 3100, 3400, PortSelection::kTopPorts, true, 25000, false},
    OrgSeed{"Hadrian.io", "NL", 3900, 4400, PortSelection::kTopPorts, true, 28000, false},
    OrgSeed{"DataGrid Surface", "US", 2400, 2700, PortSelection::kTopPorts, true, 20000, false},
    OrgSeed{"Leitwert.net", "DE", 1500, 1700, PortSelection::kTopPorts, true, 15000, false},
    OrgSeed{"bufferover.run", "US", 480, 520, PortSelection::kFewPorts, true, 12000, false},
    OrgSeed{"Adscore", "PL", 290, 310, PortSelection::kFewPorts, true, 9000, false},
    OrgSeed{"BinaryEdge", "PT", 34000, 39000, PortSelection::kTopPorts, true, 65000, false},
    OrgSeed{"Netcraft", "GB", 900, 1000, PortSelection::kFewPorts, true, 14000, false},
    OrgSeed{"Recyber", "NL", 2100, 2400, PortSelection::kTopPorts, true, 16000, false},
    OrgSeed{"Quadmetrics", "US", 1100, 1300, PortSelection::kFewPorts, true, 11000, false},
    OrgSeed{"CENSYS-ARC", "SG", 12000, 14000, PortSelection::kTopPorts, true, 30000, false},
    OrgSeed{"Cortex-Probe EU", "NL", 8200, 9400, PortSelection::kTopPorts, true, 26000, false},
    OrgSeed{"ShadowProbe Labs", "SE", 950, 1150, PortSelection::kFewPorts, true, 8000, false},
    OrgSeed{"University of Michigan", "US", 42, 42, PortSelection::kFewPorts, true, 100000, true},
    OrgSeed{"UCSD", "US", 24, 24, PortSelection::kFewPorts, true, 60000, true},
    OrgSeed{"TU Munich", "DE", 12, 12, PortSelection::kFewPorts, true, 40000, true},
    OrgSeed{"RWTH Aachen", "DE", 8, 8, PortSelection::kFewPorts, true, 30000, true},
    OrgSeed{"Stanford University", "US", 10, 10, PortSelection::kFewPorts, true, 45000, true},
    OrgSeed{"TU Delft", "NL", 15, 15, PortSelection::kFewPorts, true, 25000, true},
    OrgSeed{"Kyoto University", "JP", 9, 9, PortSelection::kFewPorts, false, 15000, true},
    OrgSeed{"GWU Research", "US", 11, 11, PortSelection::kFewPorts, false, 12000, true},
    // 2024 newcomers (36 organizations in 2023, 40 in 2024).
    OrgSeed{"Validin", "US", 0, 21000, PortSelection::kTopPorts, true, 48000, false},
    OrgSeed{"Bitsight", "US", 0, 5200, PortSelection::kTopPorts, true, 22000, false},
    OrgSeed{"Modat.io", "NL", 0, 31000, PortSelection::kTopPorts, true, 52000, false},
    OrgSeed{"Searchlight Cyber", "GB", 0, 2600, PortSelection::kFewPorts, true, 13000, false},
};

std::vector<KnownScannerSpec> build_catalog() {
  std::vector<KnownScannerSpec> catalog;
  catalog.reserve(kSeeds.size());
  std::uint32_t index = 0;
  for (const auto& seed : kSeeds) {
    KnownScannerSpec spec;
    spec.name = seed.name;
    spec.country = CountryCode(seed.country);
    spec.prefix = org_prefix(index);
    spec.asn = org_asn(index);
    spec.ports_2023 = seed.ports_2023;
    spec.ports_2024 = seed.ports_2024;
    spec.selection = seed.selection;
    spec.scans_daily = seed.daily;
    spec.packets_per_second = seed.pps;
    spec.academic = seed.academic;
    catalog.push_back(spec);
    ++index;
  }
  return catalog;
}

}  // namespace

std::span<const KnownScannerSpec> known_scanner_specs() {
  static const std::vector<KnownScannerSpec> catalog = build_catalog();
  return catalog;
}

const KnownScannerSpec* find_known_scanner(std::string_view name) {
  for (const auto& spec : known_scanner_specs()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

std::size_t active_known_scanners(int year) {
  std::size_t active = 0;
  for (const auto& spec : known_scanner_specs()) {
    const auto ports = year >= 2024 ? spec.ports_2024 : spec.ports_2023;
    if (ports > 0) ++active;
  }
  return active;
}

}  // namespace synscan::enrich
