// Query execution over a resident `core::AnalyzedCapture`.
//
// Every report serializes through the same `report::append_*` string
// emission the offline `analyze --json` path uses, so a daemon QUERY
// response is byte-identical to the offline file for the same capture
// and worker count. Execution is const over the shared analysis — the
// daemon's worker pool runs these concurrently against one instance
// with no locking (see docs/SYNSCAND.md, "State residency").
//
// Reports:
//   counters                      the run's counters object + '\n'
//   campaigns [tool=] [min_packets=] [max_ports=]
//                                 campaign JSONL, optionally filtered
//   analyze                       counters + '\n' + campaign JSONL —
//                                 exactly the offline `--json` file bytes
#pragma once

#include <string>

#include "core/analysis_session.h"
#include "server/protocol.h"

namespace synscan::server {

/// Serializes the report named by `request` (kind kQuery) into `out`,
/// appending. Returns false with a reason in `error` for unknown report
/// names or bad filters; `out` is untouched in that case.
[[nodiscard]] bool run_query(const core::AnalyzedCapture& analysis,
                             const Request& request, std::string& out,
                             std::string& error);

}  // namespace synscan::server
