// synscand: the resident analysis daemon.
//
// A `Daemon` owns one or two listening sockets (Unix and/or loopback
// TCP), a single-threaded event loop (epoll on Linux, poll(2)
// otherwise), and a small worker pool. Captures load once — through the
// `.spc`-cached batched ingest — into an immutable
// `core::AnalyzedCapture` held behind a shared_ptr; queries snapshot
// that pointer and serialize reports concurrently without locks, so a
// LOAD swapping in a new capture never stalls or corrupts in-flight
// queries.
//
// Threading rules (docs/SYNSCAND.md has the full model):
//   - The event loop thread owns all connection state: buffers, frame
//     decoders, response ordering, the poller. Nothing else touches it.
//   - Workers only (a) read an AnalyzedCapture snapshot and (b) push
//     completed response bytes onto the completion queue, waking the
//     loop through a pipe. A slow query therefore never stalls accepts
//     or other clients' responses.
//   - Responses on one connection are delivered in request order even
//     when the pool finishes them out of order.
//
// Counters publish to the global obs registry under `server.*`
// (docs/OBSERVABILITY.md) when observability is enabled before
// construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "core/analysis_session.h"
#include "server/frame.h"

namespace synscan::server {

struct DaemonConfig {
  /// Unix-domain listener path; empty disables it. A stale socket file
  /// from a previous run is unlinked before binding.
  std::string unix_socket;
  /// Enable the loopback TCP listener (binds 127.0.0.1 only — the
  /// protocol has no authentication; port 0 picks an ephemeral port,
  /// readable from `Daemon::tcp_port()` after construction).
  bool tcp = false;
  std::uint16_t tcp_port = 0;
  /// Query worker threads (>= 1). Queries and LOADs run here; the event
  /// loop never blocks on them.
  std::size_t workers = 2;
  /// Worker count passed to `core::analyze_capture` during LOAD. Keep
  /// identical between daemon and offline runs when comparing report
  /// bytes: the parallel merge orders campaigns deterministically, but
  /// differently from the serial close order.
  std::size_t analysis_workers = 2;
  /// Close connections with no traffic and no pending responses after
  /// this long. 0 disables the sweep.
  std::uint64_t idle_timeout_ms = 0;
  /// Graceful-shutdown budget: in-flight queries may finish and flush
  /// for this long before remaining connections are dropped.
  std::uint64_t drain_timeout_ms = 5000;
  /// Request frames larger than this poison the connection: the client
  /// gets one ERR response and the connection closes after it flushes.
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Disconnect a client whose unread response backlog exceeds this.
  std::size_t max_outbox_bytes = 64u << 20;
  /// Install SIGINT/SIGTERM handlers for the lifetime of `serve()` that
  /// trigger a graceful drain. At most one daemon per process may set
  /// this.
  bool install_signal_handlers = false;
  /// Use the poll(2) event loop even where epoll is available (the
  /// fallback path is differential-tested through this switch).
  bool force_poll = false;
  /// Ingest switches for LOAD (probe cache, mmap).
  core::IngestOptions ingest;
};

class Daemon {
 public:
  /// Binds the configured listeners and resolves metric cells; throws
  /// `std::runtime_error` when no listener is configured or a socket
  /// call fails. The telescope and registry must outlive the daemon.
  Daemon(const telescope::Telescope& telescope,
         const enrich::InternetRegistry& registry, DaemonConfig config);
  Daemon(const telescope::Telescope&&, const enrich::InternetRegistry&,
         DaemonConfig) = delete;
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Analyzes `capture` on the calling thread and makes it the resident
  /// state, exactly as a client LOAD would. Throws on ingest errors.
  void preload(const std::string& capture);

  /// Runs the event loop until SHUTDOWN, `request_shutdown()`, or a
  /// handled signal, then drains and returns. Call at most once.
  void serve();

  /// Triggers the same graceful drain as SHUTDOWN. Safe from any thread
  /// and from before `serve()` (which then returns immediately).
  void request_shutdown();

  /// The bound TCP port (resolved for ephemeral binds), 0 if TCP is off.
  [[nodiscard]] std::uint16_t tcp_port() const noexcept;

  /// The Unix listener path, empty if disabled.
  [[nodiscard]] const std::string& unix_socket_path() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace synscan::server
