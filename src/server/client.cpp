#include "server/client.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <stdexcept>
#include <sys/socket.h>
#include <sys/un.h>
#include <system_error>
#include <unistd.h>
#include <utility>

namespace synscan::server {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  // std::system_error formats the errno message itself; std::strerror
  // is not thread-safe (shared static buffer, concurrency-mt-unsafe).
  throw std::system_error(errno, std::generic_category(), what);
}

void send_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw_errno("send");
  }
}

}  // namespace

Client Client::connect_unix(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (path.size() >= sizeof(address.sun_path)) {
    throw std::runtime_error("unix socket path too long: " + path);
  }
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect(" + path + ")");
  }
  return Client(fd);
}

Client Client::connect_tcp(const std::string& host, std::uint16_t port) {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    throw std::runtime_error("not an IPv4 address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_INET)");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect(" + host + ":" + std::to_string(port) + ")");
  }
  return Client(fd);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), decoder_(std::move(other.decoder_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    decoder_ = std::move(other.decoder_);
  }
  return *this;
}

void Client::send_command(std::string_view command) {
  send_all(fd_, encode_frame(command));
}

std::string Client::read_response() {
  std::string payload;
  for (;;) {
    const auto status = decoder_.next(payload);
    if (status == FrameDecoder::Status::kFrame) return payload;
    if (status == FrameDecoder::Status::kTooLarge) {
      throw std::runtime_error("response frame exceeds the client-side limit");
    }
    char buffer[16384];
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n > 0) {
      decoder_.absorb(std::string_view(buffer, static_cast<std::size_t>(n)));
      continue;
    }
    if (n == 0) throw std::runtime_error("daemon closed the connection");
    if (errno == EINTR) continue;
    throw_errno("recv");
  }
}

std::string Client::roundtrip(std::string_view command) {
  send_command(command);
  return read_response();
}

}  // namespace synscan::server
