#include "server/query.h"

#include <charconv>
#include <cstdint>

#include "fingerprint/tool.h"
#include "report/json.h"

namespace synscan::server {
namespace {

/// Campaign-list filters, parsed from `key=value` pairs.
struct CampaignFilters {
  bool filter_tool = false;
  fingerprint::Tool tool = fingerprint::Tool::kUnknown;
  std::uint64_t min_packets = 0;
  std::size_t max_ports = 64;  ///< matches report::append_campaign_json default
};

bool parse_u64(std::string_view text, std::uint64_t& value) {
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  return ec == std::errc() && ptr == end;
}

bool parse_campaign_filters(const Request& request, CampaignFilters& filters,
                            std::string& error) {
  for (const auto& filter : request.filters) {
    if (filter.key == "tool") {
      filters.filter_tool = true;
      filters.tool = fingerprint::tool_from_string(filter.value);
      // tool_from_string folds unknown names into kUnknown; only accept
      // that when the client literally asked for "unknown".
      if (filters.tool == fingerprint::Tool::kUnknown && filter.value != "unknown") {
        error = "unknown tool '" + filter.value + "'";
        return false;
      }
    } else if (filter.key == "min_packets") {
      if (!parse_u64(filter.value, filters.min_packets)) {
        error = "min_packets expects a non-negative integer";
        return false;
      }
    } else if (filter.key == "max_ports") {
      std::uint64_t ports = 0;
      if (!parse_u64(filter.value, ports)) {
        error = "max_ports expects a non-negative integer";
        return false;
      }
      filters.max_ports = static_cast<std::size_t>(ports);
    } else {
      error = "unknown filter '" + filter.key + "'";
      return false;
    }
  }
  return true;
}

void append_campaigns(std::string& out, const core::AnalyzedCapture& analysis,
                      const CampaignFilters& filters) {
  for (const auto& campaign : analysis.result.campaigns) {
    if (filters.filter_tool && campaign.tool != filters.tool) continue;
    if (campaign.packets < filters.min_packets) continue;
    report::append_campaign_json(out, campaign, filters.max_ports);
    out.push_back('\n');
  }
}

}  // namespace

bool run_query(const core::AnalyzedCapture& analysis, const Request& request,
               std::string& out, std::string& error) {
  if (request.argument == "counters") {
    if (!request.filters.empty()) {
      error = "counters takes no filters";
      return false;
    }
    report::append_counters_json(out, analysis.result);
    out.push_back('\n');
    return true;
  }
  if (request.argument == "campaigns") {
    CampaignFilters filters;
    if (!parse_campaign_filters(request, filters, error)) return false;
    append_campaigns(out, analysis, filters);
    return true;
  }
  if (request.argument == "analyze") {
    // The exact bytes `analyze --json=<file>` writes: counters object,
    // newline, campaign JSONL (docs/SYNSCAND.md pins this equivalence).
    if (!request.filters.empty()) {
      error = "analyze takes no filters";
      return false;
    }
    report::append_counters_json(out, analysis.result);
    out.push_back('\n');
    report::append_campaigns_jsonl(out, analysis.result.campaigns);
    return true;
  }
  error = "unknown report '" + request.argument +
          "' (expected counters, campaigns, or analyze)";
  return false;
}

}  // namespace synscan::server
