// synscand wire framing: length-prefixed frames over a byte stream.
//
// Every message — request or response — travels as one frame:
//
//   [u32 little-endian payload length][payload bytes]
//
// The decoder is push-based and stream-oriented: feed it whatever the
// socket produced (half a header, three coalesced frames, one byte at a
// time) and pull complete payloads out. A length above the configured
// cap poisons the stream — the framing can no longer be trusted, so the
// caller answers with an error and closes the connection (tested in
// tests/server/frame_test.cpp and daemon_test.cpp). Zero-length frames
// are valid at this layer; the protocol layer rejects empty requests.
//
// Full protocol spec: docs/SYNSCAND.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace synscan::server {

/// Default cap on one frame's payload. Requests are short command lines;
/// anything near this size is a confused or malicious peer. Responses
/// (which can be large JSONL bodies) are sent, not decoded, by the
/// daemon, so the cap only guards the receive path.
inline constexpr std::size_t kDefaultMaxFrameBytes = 1u << 20;

/// Bytes of length prefix in front of every payload.
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// Appends one encoded frame (header + payload) to `out`.
void append_frame(std::string& out, std::string_view payload);

/// One encoded frame as a fresh string.
[[nodiscard]] std::string encode_frame(std::string_view payload);

/// Incremental frame parser over a reassembly buffer.
class FrameDecoder {
 public:
  enum class Status {
    kFrame,     ///< `payload` holds one complete frame's payload
    kNeedMore,  ///< no complete frame buffered yet
    kTooLarge,  ///< advertised length exceeds the cap — close the stream
  };

  explicit FrameDecoder(std::size_t max_payload_bytes = kDefaultMaxFrameBytes)
      : max_payload_(max_payload_bytes) {}

  /// Appends raw socket bytes to the reassembly buffer.
  void absorb(std::string_view bytes);

  /// Extracts the next complete payload, if any. After `kTooLarge` the
  /// decoder stays poisoned and keeps returning `kTooLarge`.
  [[nodiscard]] Status next(std::string& payload);

  /// Bytes currently buffered and not yet consumed by `next`.
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buffer_.size() - consumed_;
  }

  [[nodiscard]] std::size_t max_payload_bytes() const noexcept { return max_payload_; }

 private:
  std::size_t max_payload_;
  std::string buffer_;
  std::size_t consumed_ = 0;  ///< drained prefix, compacted opportunistically
  bool poisoned_ = false;
};

}  // namespace synscan::server
