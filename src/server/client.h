// Blocking synscand client: one socket, framed request/response.
//
// This is the thin side of the protocol — connect, send one framed
// command, block until the response frame arrives. The CLI `query`
// command, the integration tests and the load harness's warmup path all
// speak through it; the bench hot loop uses its own non-blocking
// pipelined reader instead (bench/bench_synscand.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "server/frame.h"

namespace synscan::server {

/// Responses (large JSONL report bodies) are allowed to be far bigger
/// than the request cap the daemon enforces on its receive path.
inline constexpr std::size_t kMaxResponseBytes = 1u << 30;

class Client {
 public:
  /// Both throw `std::runtime_error` when the endpoint is unreachable.
  [[nodiscard]] static Client connect_unix(const std::string& path);
  [[nodiscard]] static Client connect_tcp(const std::string& host, std::uint16_t port);

  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one command and blocks for its response payload (the raw
  /// `OK\n...`/`ERR ...` envelope; see protocol.h `parse_response`).
  /// Throws `std::runtime_error` on socket errors or a closed peer.
  [[nodiscard]] std::string roundtrip(std::string_view command);

  /// Sends one framed command without waiting (pipelining).
  void send_command(std::string_view command);

  /// Blocks for the next response frame (pairs with `send_command`).
  [[nodiscard]] std::string read_response();

  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Relinquishes ownership of the connected socket and returns it —
  /// for callers that drive the fd directly (the non-blocking open-loop
  /// reader in bench_synscand). The Client must not be used afterwards.
  [[nodiscard]] int release() noexcept { return std::exchange(fd_, -1); }

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  FrameDecoder decoder_{kMaxResponseBytes};
};

}  // namespace synscan::server
