#include "server/frame.h"

#include <cstring>

namespace synscan::server {
namespace {

/// The length prefix is serialized explicitly byte-by-byte so the wire
/// format is little-endian on every host.
void put_u32_le(char* out, std::uint32_t value) {
  out[0] = static_cast<char>(value & 0xff);
  out[1] = static_cast<char>((value >> 8) & 0xff);
  out[2] = static_cast<char>((value >> 16) & 0xff);
  out[3] = static_cast<char>((value >> 24) & 0xff);
}

std::uint32_t get_u32_le(const char* in) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(in[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(in[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(in[2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(in[3])) << 24);
}

}  // namespace

void append_frame(std::string& out, std::string_view payload) {
  char header[kFrameHeaderBytes];
  put_u32_le(header, static_cast<std::uint32_t>(payload.size()));
  out.append(header, kFrameHeaderBytes);
  out.append(payload);
}

std::string encode_frame(std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  append_frame(out, payload);
  return out;
}

void FrameDecoder::absorb(std::string_view bytes) {
  if (poisoned_) return;  // stream is dead; don't grow the buffer
  // Compact once the drained prefix dominates, so a long-lived
  // connection's buffer doesn't creep: memmove the live suffix down
  // instead of erasing per frame.
  if (consumed_ > 4096 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(bytes);
}

FrameDecoder::Status FrameDecoder::next(std::string& payload) {
  if (poisoned_) return Status::kTooLarge;
  if (buffered() < kFrameHeaderBytes) return Status::kNeedMore;
  const std::uint32_t length = get_u32_le(buffer_.data() + consumed_);
  if (length > max_payload_) {
    poisoned_ = true;
    return Status::kTooLarge;
  }
  if (buffered() < kFrameHeaderBytes + length) return Status::kNeedMore;
  payload.assign(buffer_, consumed_ + kFrameHeaderBytes, length);
  consumed_ += kFrameHeaderBytes + length;
  if (consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  }
  return Status::kFrame;
}

}  // namespace synscan::server
