// synscand request/response protocol: the text commands carried inside
// wire frames (server/frame.h) and the response envelope.
//
// Requests are single-line UTF-8 commands:
//
//   PING
//   STATUS
//   LOAD <capture-path>
//   ROLLUP <capture-path> [capture-path ...]
//   QUERY <report> [key=value ...]
//   SHUTDOWN
//
// ROLLUP paths are space-delimited, so paths containing spaces cannot
// be expressed (LOAD, whose argument is the remainder verbatim, can
// still load such a capture on its own).
//
// Responses are `OK\n<body>` (body may be empty) or `ERR <message>`.
// For QUERY the body bytes are exactly what the offline `analyze`
// report emission produces for the same capture — byte-identical by
// construction (both go through report::append_* — pinned by
// tests/server/daemon_test.cpp).
//
// Full spec with examples: docs/SYNSCAND.md.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace synscan::server {

enum class RequestKind : std::uint8_t {
  kPing,
  kStatus,
  kLoad,
  kRollup,
  kQuery,
  kShutdown,
};

/// One `key=value` filter on a QUERY.
struct QueryFilter {
  std::string key;
  std::string value;
};

struct Request {
  RequestKind kind = RequestKind::kPing;
  /// LOAD: the capture path. QUERY: the report name.
  std::string argument;
  /// QUERY filters, in request order.
  std::vector<QueryFilter> filters;
  /// ROLLUP: the capture paths, in request order.
  std::vector<std::string> paths;
};

/// Parses one request payload. Returns false and fills `error` (a
/// human-readable reason, sent back verbatim in an ERR response) on
/// empty input, unknown verbs, missing arguments, or malformed filters.
[[nodiscard]] bool parse_request(std::string_view payload, Request& request,
                                 std::string& error);

/// The success envelope prefix; the body follows the newline.
inline constexpr std::string_view kOkHeader = "OK\n";

/// Appends the success header; the caller appends the body after it.
inline void append_ok_header(std::string& out) { out.append(kOkHeader); }

/// A complete error response payload ("ERR <message>").
[[nodiscard]] std::string error_response(std::string_view message);

/// Splits a response payload. Returns true for OK responses (`body`
/// points into `payload`); false for ERR (message in `error`) and for
/// envelopes that are neither (error says so).
[[nodiscard]] bool parse_response(std::string_view payload, std::string_view& body,
                                  std::string& error);

}  // namespace synscan::server
