#include "server/daemon.h"

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <fcntl.h>
#include <filesystem>
#include <memory>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <stdexcept>
#include <string>
#include <string_view>
#include <sys/socket.h>
#include <sys/un.h>
#include <system_error>
#include <thread>
#include <unistd.h>
#include <utility>
#include <vector>

#include "core/shard.h"
#include "core/sync.h"
#include "obs/metrics.h"
#include "report/json.h"
#include "server/protocol.h"
#include "server/query.h"

namespace synscan::server {
namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void throw_errno(const std::string& what) {
  // std::system_error formats the errno message itself; std::strerror
  // is not thread-safe (shared static buffer, concurrency-mt-unsafe).
  throw std::system_error(errno, std::generic_category(), what);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

void set_cloexec(int fd) { (void)::fcntl(fd, F_SETFD, FD_CLOEXEC); }

/// Signal -> event loop bridge. The handler may only touch lock-free
/// state: it flags the request and writes one byte into the daemon's
/// wake pipe. Only one daemon per process may install handlers, which
/// is why these are globals rather than Impl members.
///
/// Async-signal-safety constraints (the handler can interrupt any
/// thread, including one holding a lock):
///   - no locks, no allocation, no I/O beyond the async-signal-safe
///     write(2) — which is also what makes the wakeup reliable when the
///     loop is parked in epoll_wait/poll;
///   - both atomics must be lock-free, or the "atomic" op could take an
///     internal lock the interrupted thread already holds (deadlock).
///     The static_asserts make that assumption a compile-time fact.
///   - `g_signal_pending` is relaxed: the pipe write/read pair already
///     orders the flag store before the loop's `exchange`, and the
///     loop also polls the flag every timeout tick.
///   - `g_signal_wake_fd` is published with release and read with
///     acquire so a handler running on another thread sees the pipe fd
///     only after the pipe is fully set up.
std::atomic<bool> g_signal_pending{false};
std::atomic<int> g_signal_wake_fd{-1};
static_assert(std::atomic<bool>::is_always_lock_free,
              "signal handler requires a lock-free pending flag");
static_assert(std::atomic<int>::is_always_lock_free,
              "signal handler requires a lock-free wake-fd cell");

void on_signal(int /*signum*/) {
  g_signal_pending.store(true, std::memory_order_relaxed);
  const int fd = g_signal_wake_fd.load(std::memory_order_acquire);
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

/// One fd the loop watches plus the opaque pointer handed back with its
/// events (null for listeners and the wake pipe, Connection* otherwise).
struct Watch {
  int fd = -1;
  void* data = nullptr;
  bool want_write = false;
};

/// What one fd reported this iteration. Translated eagerly out of the
/// OS structures so that closing other fds mid-batch cannot dangle.
struct PollEvent {
  int fd = -1;
  void* data = nullptr;
  bool readable = false;
  bool writable = false;
  bool closed = false;
};

/// Readiness backend: epoll on Linux unless `force_poll`, poll(2)
/// otherwise. The poll path is exercised on Linux too (tests and the
/// `--poll` CLI switch) so the fallback cannot rot.
class Poller {
 public:
  explicit Poller(bool force_poll) {
#ifdef __linux__
    if (!force_poll) {
      epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
      if (epoll_fd_ < 0) throw_errno("epoll_create1");
    }
#else
    (void)force_poll;
#endif
  }

  ~Poller() {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
  }

  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  void add(int fd, void* data, bool want_write) {
    auto watch = std::make_unique<Watch>();
    watch->fd = fd;
    watch->data = data;
    watch->want_write = want_write;
#ifdef __linux__
    if (epoll_fd_ >= 0) {
      epoll_event event{};
      event.events = interest(want_write);
      event.data.ptr = watch.get();
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) < 0) {
        throw_errno("epoll_ctl(ADD)");
      }
    }
#endif
    watches_.push_back(std::move(watch));
  }

  void update(int fd, bool want_write) {
    Watch* watch = find(fd);
    if (watch == nullptr || watch->want_write == want_write) return;
    watch->want_write = want_write;
#ifdef __linux__
    if (epoll_fd_ >= 0) {
      epoll_event event{};
      event.events = interest(want_write);
      event.data.ptr = watch;
      (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event);
    }
#endif
  }

  void remove(int fd) {
#ifdef __linux__
    if (epoll_fd_ >= 0) (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
#endif
    const auto it = std::find_if(watches_.begin(), watches_.end(),
                                 [fd](const auto& w) { return w->fd == fd; });
    if (it != watches_.end()) watches_.erase(it);
  }

  void wait(std::vector<PollEvent>& out, int timeout_ms) {
    out.clear();
#ifdef __linux__
    if (epoll_fd_ >= 0) {
      std::array<epoll_event, 64> events{};
      const int count =
          ::epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()), timeout_ms);
      for (int i = 0; i < count; ++i) {
        const auto& raw = events[static_cast<std::size_t>(i)];
        const auto* watch = static_cast<const Watch*>(raw.data.ptr);
        PollEvent event;
        event.fd = watch->fd;
        event.data = watch->data;
        event.readable = (raw.events & EPOLLIN) != 0;
        event.writable = (raw.events & EPOLLOUT) != 0;
        event.closed = (raw.events & (EPOLLHUP | EPOLLERR)) != 0;
        out.push_back(event);
      }
      return;
    }
#endif
    pollfds_.clear();
    for (const auto& watch : watches_) {
      pollfd entry{};
      entry.fd = watch->fd;
      entry.events = static_cast<short>(POLLIN | (watch->want_write ? POLLOUT : 0));
      pollfds_.push_back(entry);
    }
    const int count =
        ::poll(pollfds_.data(), static_cast<nfds_t>(pollfds_.size()), timeout_ms);
    if (count <= 0) return;
    for (std::size_t i = 0; i < pollfds_.size(); ++i) {
      const auto revents = pollfds_[i].revents;
      if (revents == 0) continue;
      PollEvent event;
      event.fd = watches_[i]->fd;
      event.data = watches_[i]->data;
      event.readable = (revents & POLLIN) != 0;
      event.writable = (revents & POLLOUT) != 0;
      event.closed = (revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
      out.push_back(event);
    }
  }

 private:
#ifdef __linux__
  static std::uint32_t interest(bool want_write) {
    return static_cast<std::uint32_t>(EPOLLIN) |
           (want_write ? static_cast<std::uint32_t>(EPOLLOUT) : 0u);
  }
#endif

  Watch* find(int fd) {
    for (const auto& watch : watches_) {
      if (watch->fd == fd) return watch.get();
    }
    return nullptr;
  }

  std::vector<std::unique_ptr<Watch>> watches_;
  std::vector<pollfd> pollfds_;
  int epoll_fd_ = -1;
};

/// A response finished out of request order, parked until its turn.
struct ReadyResponse {
  std::uint64_t seq = 0;
  std::string frame;
};

struct Connection {
  explicit Connection(std::size_t max_frame_bytes) : decoder(max_frame_bytes) {}

  int fd = -1;
  std::uint32_t slot = 0;
  /// Distinguishes this connection from an earlier occupant of the same
  /// slot; completions carry {slot, id} and are dropped on mismatch.
  std::uint64_t id = 0;
  FrameDecoder decoder;
  std::string outbox;
  std::size_t outbox_sent = 0;
  /// Requests read so far; each frame takes the next sequence number.
  std::uint64_t next_seq = 0;
  /// The sequence number whose response goes out next.
  std::uint64_t next_response = 0;
  std::vector<ReadyResponse> ready;
  Clock::time_point last_activity{};
  /// Flush pending responses, then close (poisoned framing, SHUTDOWN).
  bool closing = false;

  [[nodiscard]] bool responses_pending() const noexcept {
    return next_response != next_seq || outbox.size() != outbox_sent;
  }
};

struct Job {
  std::uint32_t slot = 0;
  std::uint64_t conn_id = 0;
  std::uint64_t seq = 0;
  Request request;
  Clock::time_point received{};
};

struct Completion {
  std::uint32_t slot = 0;
  std::uint64_t conn_id = 0;
  std::uint64_t seq = 0;
  std::string frame;
  std::uint64_t latency_us = 0;
  bool is_query = false;
  bool ok = false;
};

/// The loaded capture plus its analysis, immutable once published.
struct ResidentCapture {
  ResidentCapture(std::string capture_path, core::AnalyzedCapture capture_analysis)
      : path(std::move(capture_path)), analysis(std::move(capture_analysis)) {}

  std::string path;
  core::AnalyzedCapture analysis;
};

/// Swap cell for the resident capture pointer: workers take snapshots,
/// loads publish replacements. The shared_ptr itself is the guarded
/// state; the pointed-to capture is immutable once published.
class SnapshotCell {
 public:
  [[nodiscard]] std::shared_ptr<const ResidentCapture> snapshot() const
      SYNSCAN_EXCLUDES(mutex_) {
    const core::MutexLock lock(mutex_);
    return state_;
  }

  void publish(std::shared_ptr<const ResidentCapture> next) SYNSCAN_EXCLUDES(mutex_) {
    const core::MutexLock lock(mutex_);
    state_ = std::move(next);
  }

 private:
  mutable core::Mutex mutex_;
  std::shared_ptr<const ResidentCapture> state_ SYNSCAN_GUARDED_BY(mutex_);
};

/// Loop -> worker-pool job queue (single producer, many consumers).
class JobQueue {
 public:
  /// Returns the queue depth right after the push, for the depth gauge.
  std::size_t push(Job job) SYNSCAN_EXCLUDES(mutex_) {
    std::size_t depth = 0;
    {
      const core::MutexLock lock(mutex_);
      jobs_.push_back(std::move(job));
      depth = jobs_.size();
    }
    ready_.notify_one();
    return depth;
  }

  /// Blocks until a job arrives or the queue stops; false means stopped
  /// and drained (the worker exits). Jobs enqueued before stop() are
  /// still handed out, so accepted requests get answered.
  [[nodiscard]] bool pop(Job& out) SYNSCAN_EXCLUDES(mutex_) {
    core::UniqueLock lock(mutex_);
    while (jobs_.empty() && !stop_) ready_.wait(lock);
    if (jobs_.empty()) return false;  // only reachable with stop_ set
    out = std::move(jobs_.front());
    jobs_.pop_front();
    return true;
  }

  void stop() SYNSCAN_EXCLUDES(mutex_) {
    {
      const core::MutexLock lock(mutex_);
      stop_ = true;
    }
    ready_.notify_all();
  }

 private:
  core::Mutex mutex_;
  core::CondVar ready_;
  std::deque<Job> jobs_ SYNSCAN_GUARDED_BY(mutex_);
  bool stop_ SYNSCAN_GUARDED_BY(mutex_) = false;
};

/// Workers park finished responses here; the loop thread swaps out the
/// whole batch once per iteration (one lock, no per-item traffic).
class CompletionQueue {
 public:
  void push(Completion completion) SYNSCAN_EXCLUDES(mutex_) {
    const core::MutexLock lock(mutex_);
    completions_.push_back(std::move(completion));
  }

  /// Swaps the pending batch into `out` (expected empty on entry).
  void drain_into(std::vector<Completion>& out) SYNSCAN_EXCLUDES(mutex_) {
    const core::MutexLock lock(mutex_);
    out.swap(completions_);
  }

 private:
  core::Mutex mutex_;
  std::vector<Completion> completions_ SYNSCAN_GUARDED_BY(mutex_);
};

}  // namespace

struct Daemon::Impl {
  Impl(const telescope::Telescope& scope, const enrich::InternetRegistry& internet,
       DaemonConfig daemon_config)
      : config(std::move(daemon_config)), telescope(&scope), registry(&internet) {
    if (config.unix_socket.empty() && !config.tcp) {
      throw std::runtime_error("synscand: no listener configured (need unix socket or tcp)");
    }
    if (config.workers == 0) config.workers = 1;
    if (obs::enabled()) {
      auto& metrics = obs::MetricsRegistry::global();
      obs_accepts = &metrics.counter("server.accepts");
      obs_frames = &metrics.counter("server.frames");
      obs_queries = &metrics.counter("server.queries");
      obs_errors = &metrics.counter("server.errors");
      obs_bytes_in = &metrics.counter("server.bytes_in");
      obs_bytes_out = &metrics.counter("server.bytes_out");
      obs_rejected = &metrics.counter("server.rejected_frames");
      obs_idle_closes = &metrics.counter("server.idle_closes");
      obs_loads = &metrics.counter("server.loads");
      obs_connections = &metrics.gauge("server.connections");
      obs_queue_depth = &metrics.gauge("server.queue_depth");
      obs_latency = &metrics.histogram("server.query_latency_us");
    }
    open_listeners();
    open_wake_pipe();
    started = Clock::now();
  }

  ~Impl() {
    close_fd(unix_fd);
    close_fd(tcp_fd);
    close_fd(wake_read);
    close_fd(wake_write);
    if (!config.unix_socket.empty()) (void)::unlink(config.unix_socket.c_str());
  }

  // ---- setup -------------------------------------------------------

  static void close_fd(int& fd) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }

  void open_listeners() {
    if (!config.unix_socket.empty()) {
      sockaddr_un address{};
      address.sun_family = AF_UNIX;
      if (config.unix_socket.size() >= sizeof(address.sun_path)) {
        throw std::runtime_error("synscand: unix socket path too long: " +
                                 config.unix_socket);
      }
      std::memcpy(address.sun_path, config.unix_socket.c_str(),
                  config.unix_socket.size() + 1);
      unix_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (unix_fd < 0) throw_errno("socket(AF_UNIX)");
      (void)::unlink(config.unix_socket.c_str());
      if (::bind(unix_fd, reinterpret_cast<const sockaddr*>(&address),
                 sizeof(address)) < 0) {
        throw_errno("bind(" + config.unix_socket + ")");
      }
      if (::listen(unix_fd, 256) < 0) throw_errno("listen(unix)");
      set_nonblocking(unix_fd);
      set_cloexec(unix_fd);
    }
    if (config.tcp) {
      tcp_fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (tcp_fd < 0) throw_errno("socket(AF_INET)");
      const int one = 1;
      (void)::setsockopt(tcp_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      sockaddr_in address{};
      address.sin_family = AF_INET;
      address.sin_port = htons(config.tcp_port);
      // Loopback only: the protocol has no authentication.
      address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      if (::bind(tcp_fd, reinterpret_cast<const sockaddr*>(&address),
                 sizeof(address)) < 0) {
        throw_errno("bind(127.0.0.1)");
      }
      if (::listen(tcp_fd, 256) < 0) throw_errno("listen(tcp)");
      sockaddr_in bound{};
      socklen_t bound_len = sizeof(bound);
      if (::getsockname(tcp_fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0) {
        config.tcp_port = ntohs(bound.sin_port);
      }
      set_nonblocking(tcp_fd);
      set_cloexec(tcp_fd);
    }
  }

  void open_wake_pipe() {
    int fds[2] = {-1, -1};
    if (::pipe(fds) < 0) throw_errno("pipe");
    wake_read = fds[0];
    wake_write = fds[1];
    set_nonblocking(wake_read);
    set_nonblocking(wake_write);
    set_cloexec(wake_read);
    set_cloexec(wake_write);
  }

  void wake() {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_write, &byte, 1);
  }

  // ---- resident state ----------------------------------------------

  std::shared_ptr<const ResidentCapture> state_snapshot() {
    return resident_state.snapshot();
  }

  /// Analyzes `path` and swaps it in as the resident capture. Runs on a
  /// worker (LOAD) or the caller's thread (preload). Throws on failure.
  std::shared_ptr<const ResidentCapture> load_capture(const std::string& path) {
    auto resident = std::make_shared<ResidentCapture>(
        path, core::analyze_capture(path, *telescope, *registry,
                                    config.analysis_workers, config.ingest));
    resident_state.publish(resident);
    if (obs_loads != nullptr) obs_loads->add();
    return resident;
  }

  /// Analyzes a sharded capture set (ROLLUP) through the `.spr` rollup
  /// store and swaps the merged result in as the resident capture.
  /// Returns the summary body. Runs on a worker; throws on failure.
  std::string load_rollup_set(const std::vector<std::string>& paths) {
    std::vector<std::filesystem::path> captures;
    captures.reserve(paths.size());
    for (const auto& path : paths) captures.emplace_back(path);
    const auto plan = core::plan_shards(captures);
    core::ShardRunOptions options;
    options.workers = config.analysis_workers;
    options.ingest = config.ingest;
    auto run = core::run_shards(plan, *telescope, *registry, core::TrackerConfig{},
                                options);
    std::string joined;
    for (const auto& path : paths) {
      if (!joined.empty()) joined.push_back(' ');
      joined.append(path);
    }
    auto resident = std::make_shared<ResidentCapture>(std::move(joined),
                                                      std::move(run.analysis));
    resident_state.publish(resident);
    if (obs_loads != nullptr) obs_loads->add();
    std::string body;
    body.append("{\"captures\":");
    body.append(std::to_string(paths.size()));
    body.append(",\"store_hits\":");
    body.append(std::to_string(run.stats.store_hits));
    body.append(",\"store_misses\":");
    body.append(std::to_string(run.stats.store_misses));
    body.append(",\"frames\":");
    body.append(std::to_string(resident->analysis.frames));
    body.append(",\"scan_probes\":");
    body.append(std::to_string(resident->analysis.result.sensor.scan_probes));
    body.append(",\"campaigns\":");
    body.append(std::to_string(resident->analysis.result.campaigns.size()));
    body.append(",\"from_cache\":");
    body.append(resident->analysis.from_cache ? "true" : "false");
    body.append("}\n");
    return body;
  }

  static std::string load_summary(const ResidentCapture& resident) {
    std::string body;
    body.append("{\"capture\":\"");
    body.append(report::json_escape(resident.path));
    body.append("\",\"frames\":");
    body.append(std::to_string(resident.analysis.frames));
    body.append(",\"scan_probes\":");
    body.append(std::to_string(resident.analysis.result.sensor.scan_probes));
    body.append(",\"campaigns\":");
    body.append(std::to_string(resident.analysis.result.campaigns.size()));
    body.append(",\"from_cache\":");
    body.append(resident.analysis.from_cache ? "true" : "false");
    body.append("}\n");
    return body;
  }

  std::string status_payload() {
    const auto snapshot = state_snapshot();
    std::string out(kOkHeader);
    out.append("{\"state\":\"");
    if (loading.load(std::memory_order_relaxed)) {
      out.append("loading");
    } else {
      out.append(snapshot ? "ready" : "idle");
    }
    out.append("\",\"capture\":\"");
    if (snapshot) out.append(report::json_escape(snapshot->path));
    out.append("\",\"frames\":");
    out.append(std::to_string(snapshot ? snapshot->analysis.frames : 0));
    out.append(",\"scan_probes\":");
    out.append(std::to_string(snapshot ? snapshot->analysis.result.sensor.scan_probes : 0));
    out.append(",\"campaigns\":");
    out.append(std::to_string(snapshot ? snapshot->analysis.result.campaigns.size() : 0));
    out.append(",\"from_cache\":");
    out.append(snapshot && snapshot->analysis.from_cache ? "true" : "false");
    out.append(",\"connections\":");
    out.append(std::to_string(open_connections));
    out.append(",\"queries_served\":");
    out.append(std::to_string(queries));
    out.append(",\"loads\":");
    out.append(std::to_string(loads));
    out.append(",\"uptime_ms\":");
    out.append(std::to_string(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - started)
            .count())));
    out.append("}\n");
    return out;
  }

  // ---- worker pool -------------------------------------------------

  void start_workers() {
    workers.reserve(config.workers);
    for (std::size_t i = 0; i < config.workers; ++i) {
      workers.emplace_back([this] { worker_main(); });
    }
  }

  void stop_workers() {
    job_queue.stop();
    for (auto& worker : workers) {
      if (worker.joinable()) worker.join();
    }
    workers.clear();
  }

  void enqueue_job(Job job) {
    in_flight.fetch_add(1, std::memory_order_relaxed);
    const auto depth = job_queue.push(std::move(job));
    if (obs_queue_depth != nullptr) {
      obs_queue_depth->record_max(static_cast<std::int64_t>(depth));
    }
  }

  void worker_main() {
    for (;;) {
      Job job;
      if (!job_queue.pop(job)) return;
      Completion completion;
      completion.slot = job.slot;
      completion.conn_id = job.conn_id;
      completion.seq = job.seq;
      std::string payload;
      if (job.request.kind == RequestKind::kQuery) {
        completion.is_query = true;
        const auto snapshot = state_snapshot();
        if (!snapshot) {
          payload = error_response("no capture loaded (use LOAD <path>)");
        } else {
          payload.assign(kOkHeader);
          std::string error;
          if (run_query(snapshot->analysis, job.request, payload, error)) {
            completion.ok = true;
          } else {
            payload = error_response(error);
          }
        }
      } else if (job.request.kind == RequestKind::kRollup) {
        try {
          std::string summary = load_rollup_set(job.request.paths);
          payload.assign(kOkHeader);
          payload.append(summary);
          completion.ok = true;
        } catch (const std::exception& e) {
          payload = error_response(std::string("rollup failed: ") + e.what());
        }
        loading.store(false, std::memory_order_release);
      } else {  // RequestKind::kLoad
        try {
          const auto resident = load_capture(job.request.argument);
          payload.assign(kOkHeader);
          payload.append(load_summary(*resident));
          completion.ok = true;
        } catch (const std::exception& e) {
          payload = error_response(std::string("load failed: ") + e.what());
        }
        loading.store(false, std::memory_order_release);
      }
      completion.latency_us = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                job.received)
              .count());
      if (completion.is_query && obs_latency != nullptr) {
        obs_latency->observe(completion.latency_us);
      }
      completion.frame = encode_frame(payload);
      completion_queue.push(std::move(completion));
      wake();
    }
  }

  // ---- event loop --------------------------------------------------

  void serve() {
    start_workers();
    struct sigaction previous_int {};
    struct sigaction previous_term {};
    const bool signals = config.install_signal_handlers;
    if (signals) {
      g_signal_pending.store(false, std::memory_order_relaxed);
      // Release pairs with the handler's acquire load: a handler that
      // sees the fd also sees the fully constructed pipe behind it.
      g_signal_wake_fd.store(wake_write, std::memory_order_release);
      struct sigaction action {};
      action.sa_handler = on_signal;
      (void)sigemptyset(&action.sa_mask);
      (void)::sigaction(SIGINT, &action, &previous_int);
      (void)::sigaction(SIGTERM, &action, &previous_term);
    }

    poller = std::make_unique<Poller>(config.force_poll);
    poller->add(wake_read, nullptr, false);
    if (unix_fd >= 0) poller->add(unix_fd, nullptr, false);
    if (tcp_fd >= 0) poller->add(tcp_fd, nullptr, false);

    std::vector<PollEvent> events;
    auto last_sweep = Clock::now();
    for (;;) {
      poller->wait(events, 250);
      if (shutdown_requested.exchange(false) ||
          (signals && g_signal_pending.exchange(false))) {
        begin_shutdown();
      }
      for (const auto& event : events) {
        if (event.fd == wake_read) {
          drain_wake_pipe();
        } else if (event.fd == unix_fd || event.fd == tcp_fd) {
          accept_pending(event.fd);
        } else {
          auto* conn = static_cast<Connection*>(event.data);
          if (conn->fd < 0) continue;  // closed earlier this iteration
          if (event.closed) {
            close_connection(*conn);
            continue;
          }
          if (event.readable) handle_readable(*conn);
          if (conn->fd >= 0 && event.writable) flush_outbox(*conn);
        }
      }
      drain_completions();
      const auto now = Clock::now();
      if (now - last_sweep >= std::chrono::milliseconds(250)) {
        last_sweep = now;
        sweep_idle(now);
      }
      if (draining) {
        sweep_drained();
        const bool drained =
            open_connections == 0 && in_flight.load(std::memory_order_relaxed) == 0;
        if (drained || now >= drain_deadline) break;
      }
      reap_dead_slots();
    }

    stop_workers();
    for (auto& conn : connections) {
      if (conn && conn->fd >= 0) close_connection(*conn);
    }
    reap_dead_slots();
    poller.reset();

    if (signals) {
      g_signal_wake_fd.store(-1, std::memory_order_release);
      (void)::sigaction(SIGINT, &previous_int, nullptr);
      (void)::sigaction(SIGTERM, &previous_term, nullptr);
    }
  }

  void begin_shutdown() {
    if (draining) return;
    draining = true;
    drain_deadline = Clock::now() + std::chrono::milliseconds(config.drain_timeout_ms);
    if (unix_fd >= 0) {
      poller->remove(unix_fd);
      close_fd(unix_fd);
    }
    if (tcp_fd >= 0) {
      poller->remove(tcp_fd);
      close_fd(tcp_fd);
    }
  }

  void drain_wake_pipe() {
    std::array<char, 256> sink{};
    while (::read(wake_read, sink.data(), sink.size()) > 0) {
    }
  }

  void accept_pending(int listener) {
    for (;;) {
      const int fd = ::accept(listener, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        break;  // EAGAIN or a transient accept failure: retry next event
      }
      if (draining) {
        ::close(fd);
        continue;
      }
      set_nonblocking(fd);
      set_cloexec(fd);
      std::uint32_t slot = 0;
      if (!free_slots.empty()) {
        slot = free_slots.back();
        free_slots.pop_back();
      } else {
        slot = static_cast<std::uint32_t>(connections.size());
        connections.emplace_back();
      }
      auto conn = std::make_unique<Connection>(config.max_frame_bytes);
      conn->fd = fd;
      conn->slot = slot;
      conn->id = next_conn_id++;
      conn->last_activity = Clock::now();
      poller->add(fd, conn.get(), false);
      connections[slot] = std::move(conn);
      ++open_connections;
      ++accepts;
      if (obs_accepts != nullptr) obs_accepts->add();
      if (obs_connections != nullptr) {
        obs_connections->store(static_cast<std::int64_t>(open_connections));
      }
    }
  }

  void close_connection(Connection& conn) {
    poller->remove(conn.fd);
    ::close(conn.fd);
    conn.fd = -1;
    --open_connections;
    dead_slots.push_back(conn.slot);
    if (obs_connections != nullptr) {
      obs_connections->store(static_cast<std::int64_t>(open_connections));
    }
  }

  /// Frees Connection objects closed during this loop iteration. Events
  /// translated earlier in the iteration may still point at them, so
  /// destruction waits until the batch is fully processed.
  void reap_dead_slots() {
    for (const auto slot : dead_slots) {
      connections[slot].reset();
      free_slots.push_back(slot);
    }
    dead_slots.clear();
  }

  void handle_readable(Connection& conn) {
    std::array<char, 16384> buffer{};
    for (;;) {
      const ssize_t n = ::recv(conn.fd, buffer.data(), buffer.size(), 0);
      if (n > 0) {
        conn.last_activity = Clock::now();
        bytes_in += static_cast<std::uint64_t>(n);
        if (obs_bytes_in != nullptr) obs_bytes_in->add(static_cast<std::uint64_t>(n));
        conn.decoder.absorb(
            std::string_view(buffer.data(), static_cast<std::size_t>(n)));
        continue;
      }
      if (n == 0) {
        // Peer closed its end; any undelivered responses have no reader.
        close_connection(conn);
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_connection(conn);
      return;
    }
    std::string payload;
    while (!conn.closing) {
      const auto status = conn.decoder.next(payload);
      if (status == FrameDecoder::Status::kNeedMore) break;
      if (status == FrameDecoder::Status::kTooLarge) {
        ++errors;
        if (obs_errors != nullptr) obs_errors->add();
        if (obs_rejected != nullptr) obs_rejected->add();
        respond_inline(conn,
                       error_response("frame exceeds " +
                                      std::to_string(conn.decoder.max_payload_bytes()) +
                                      " byte limit"));
        conn.closing = true;
        break;
      }
      handle_frame(conn, payload);
      if (conn.fd < 0) return;
    }
    flush_outbox(conn);
  }

  void handle_frame(Connection& conn, std::string_view payload) {
    ++frames;
    if (obs_frames != nullptr) obs_frames->add();
    Request request;
    std::string error;
    if (!parse_request(payload, request, error)) {
      ++errors;
      if (obs_errors != nullptr) obs_errors->add();
      respond_inline(conn, error_response(error));
      return;
    }
    switch (request.kind) {
      case RequestKind::kPing:
        respond_inline(conn, std::string(kOkHeader));
        break;
      case RequestKind::kStatus:
        respond_inline(conn, status_payload());
        break;
      case RequestKind::kShutdown:
        respond_inline(conn, std::string(kOkHeader));
        conn.closing = true;
        begin_shutdown();
        break;
      case RequestKind::kLoad:
      case RequestKind::kRollup:
        if (draining) {
          ++errors;
          if (obs_errors != nullptr) obs_errors->add();
          respond_inline(conn, error_response("daemon is shutting down"));
        } else if (loading.exchange(true, std::memory_order_acq_rel)) {
          ++errors;
          if (obs_errors != nullptr) obs_errors->add();
          respond_inline(conn, error_response("a load is already in progress"));
        } else {
          enqueue_request(conn, std::move(request));
        }
        break;
      case RequestKind::kQuery:
        enqueue_request(conn, std::move(request));
        break;
    }
  }

  void enqueue_request(Connection& conn, Request request) {
    Job job;
    job.slot = conn.slot;
    job.conn_id = conn.id;
    job.seq = conn.next_seq++;
    job.request = std::move(request);
    job.received = Clock::now();
    enqueue_job(std::move(job));
  }

  /// Answers a request on the loop thread (PING, STATUS, errors). Goes
  /// through the same sequencing as worker completions so interleaved
  /// inline and pooled responses still come out in request order.
  void respond_inline(Connection& conn, std::string payload) {
    const auto seq = conn.next_seq++;
    deliver(conn, seq, encode_frame(payload));
  }

  void deliver(Connection& conn, std::uint64_t seq, std::string frame) {
    if (seq != conn.next_response) {
      conn.ready.push_back(ReadyResponse{seq, std::move(frame)});
      return;
    }
    conn.outbox.append(frame);
    ++conn.next_response;
    bool advanced = true;
    while (advanced && !conn.ready.empty()) {
      advanced = false;
      for (std::size_t i = 0; i < conn.ready.size(); ++i) {
        if (conn.ready[i].seq != conn.next_response) continue;
        conn.outbox.append(conn.ready[i].frame);
        ++conn.next_response;
        conn.ready.erase(conn.ready.begin() + static_cast<std::ptrdiff_t>(i));
        advanced = true;
        break;
      }
    }
  }

  void drain_completions() {
    std::vector<Completion> batch;
    completion_queue.drain_into(batch);
    for (auto& completion : batch) {
      in_flight.fetch_sub(1, std::memory_order_relaxed);
      if (completion.is_query) {
        if (completion.ok) {
          ++queries;
          if (obs_queries != nullptr) obs_queries->add();
        } else {
          ++errors;
          if (obs_errors != nullptr) obs_errors->add();
        }
      } else if (completion.ok) {
        ++loads;
      } else {
        ++errors;
        if (obs_errors != nullptr) obs_errors->add();
      }
      Connection* conn = completion.slot < connections.size()
                             ? connections[completion.slot].get()
                             : nullptr;
      if (conn == nullptr || conn->id != completion.conn_id || conn->fd < 0) {
        continue;  // the client went away while its query ran
      }
      deliver(*conn, completion.seq, std::move(completion.frame));
      flush_outbox(*conn);
    }
  }

  void flush_outbox(Connection& conn) {
    while (conn.outbox_sent < conn.outbox.size()) {
      const ssize_t n = ::send(conn.fd, conn.outbox.data() + conn.outbox_sent,
                               conn.outbox.size() - conn.outbox_sent, MSG_NOSIGNAL);
      if (n > 0) {
        conn.outbox_sent += static_cast<std::size_t>(n);
        bytes_out += static_cast<std::uint64_t>(n);
        if (obs_bytes_out != nullptr) obs_bytes_out->add(static_cast<std::uint64_t>(n));
        conn.last_activity = Clock::now();
        continue;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_connection(conn);
      return;
    }
    if (conn.outbox_sent == conn.outbox.size()) {
      conn.outbox.clear();
      conn.outbox_sent = 0;
      if (conn.closing && !conn.responses_pending()) {
        close_connection(conn);
        return;
      }
      poller->update(conn.fd, false);
      return;
    }
    if (conn.outbox.size() - conn.outbox_sent > config.max_outbox_bytes) {
      // The client stopped reading; shedding it beats buffering forever.
      ++errors;
      if (obs_errors != nullptr) obs_errors->add();
      close_connection(conn);
      return;
    }
    poller->update(conn.fd, true);
  }

  void sweep_idle(Clock::time_point now) {
    if (config.idle_timeout_ms == 0) return;
    const auto timeout = std::chrono::milliseconds(config.idle_timeout_ms);
    for (const auto& conn : connections) {
      if (!conn || conn->fd < 0) continue;
      if (conn->responses_pending()) continue;
      if (now - conn->last_activity >= timeout) {
        ++idle_closes;
        if (obs_idle_closes != nullptr) obs_idle_closes->add();
        close_connection(*conn);
      }
    }
  }

  /// During a drain, connections with nothing left to say are closed
  /// regardless of idle configuration.
  void sweep_drained() {
    for (const auto& conn : connections) {
      if (!conn || conn->fd < 0) continue;
      if (!conn->responses_pending()) close_connection(*conn);
    }
  }

  // ---- data --------------------------------------------------------

  DaemonConfig config;
  const telescope::Telescope* telescope;
  const enrich::InternetRegistry* registry;

  int unix_fd = -1;
  int tcp_fd = -1;
  int wake_read = -1;
  int wake_write = -1;

  // Shared state crossing the loop/worker boundary lives in the three
  // annotated containers below; Impl itself owns no mutex, so nothing
  // here can be touched from the wrong side without the lock.
  SnapshotCell resident_state;
  std::atomic<bool> loading{false};

  JobQueue job_queue;
  std::vector<std::thread> workers;
  std::atomic<std::uint64_t> in_flight{0};

  CompletionQueue completion_queue;

  // Everything below is owned by the event loop thread.
  std::unique_ptr<Poller> poller;
  std::vector<std::unique_ptr<Connection>> connections;
  std::vector<std::uint32_t> free_slots;
  std::vector<std::uint32_t> dead_slots;
  std::size_t open_connections = 0;
  std::uint64_t next_conn_id = 1;
  bool draining = false;
  Clock::time_point drain_deadline{};

  std::atomic<bool> shutdown_requested{false};

  // Plain tallies mirrored into obs cells; STATUS reads these so the
  // daemon reports activity even with observability off.
  std::uint64_t accepts = 0;
  std::uint64_t frames = 0;
  std::uint64_t queries = 0;
  std::uint64_t loads = 0;
  std::uint64_t errors = 0;
  std::uint64_t idle_closes = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  Clock::time_point started{};

  obs::Counter* obs_accepts = nullptr;
  obs::Counter* obs_frames = nullptr;
  obs::Counter* obs_queries = nullptr;
  obs::Counter* obs_errors = nullptr;
  obs::Counter* obs_bytes_in = nullptr;
  obs::Counter* obs_bytes_out = nullptr;
  obs::Counter* obs_rejected = nullptr;
  obs::Counter* obs_idle_closes = nullptr;
  obs::Counter* obs_loads = nullptr;
  obs::Gauge* obs_connections = nullptr;
  obs::Gauge* obs_queue_depth = nullptr;
  obs::Histogram* obs_latency = nullptr;
};

Daemon::Daemon(const telescope::Telescope& telescope,
               const enrich::InternetRegistry& registry, DaemonConfig config)
    : impl_(std::make_unique<Impl>(telescope, registry, std::move(config))) {}

Daemon::~Daemon() = default;

void Daemon::preload(const std::string& capture) {
  (void)impl_->load_capture(capture);
  ++impl_->loads;
}

void Daemon::serve() { impl_->serve(); }

void Daemon::request_shutdown() {
  impl_->shutdown_requested.store(true);
  impl_->wake();
}

std::uint16_t Daemon::tcp_port() const noexcept {
  return impl_->config.tcp ? impl_->config.tcp_port : 0;
}

const std::string& Daemon::unix_socket_path() const noexcept {
  return impl_->config.unix_socket;
}

}  // namespace synscan::server
