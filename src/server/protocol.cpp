#include "server/protocol.h"

namespace synscan::server {
namespace {

/// Splits off the next space-delimited token; empty when exhausted.
std::string_view take_token(std::string_view& rest) {
  while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
  const auto space = rest.find(' ');
  const auto token = rest.substr(0, space);
  rest.remove_prefix(space == std::string_view::npos ? rest.size() : space);
  return token;
}

bool printable_line(std::string_view payload) {
  for (const char c : payload) {
    if (static_cast<unsigned char>(c) < 0x20 || c == 0x7f) return false;
  }
  return true;
}

}  // namespace

bool parse_request(std::string_view payload, Request& request, std::string& error) {
  request = Request{};
  if (payload.empty()) {
    error = "empty request";
    return false;
  }
  // Reject binary garbage before treating it as a command line; the
  // offending bytes would only garble the error message anyway.
  if (!printable_line(payload)) {
    error = "request is not a printable command line";
    return false;
  }
  std::string_view rest = payload;
  const auto verb = take_token(rest);
  if (verb == "PING") {
    request.kind = RequestKind::kPing;
  } else if (verb == "STATUS") {
    request.kind = RequestKind::kStatus;
  } else if (verb == "SHUTDOWN") {
    request.kind = RequestKind::kShutdown;
  } else if (verb == "LOAD") {
    request.kind = RequestKind::kLoad;
    // The remainder is the path verbatim (paths may contain spaces).
    while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
    if (rest.empty()) {
      error = "LOAD requires a capture path";
      return false;
    }
    request.argument.assign(rest);
    rest = {};
  } else if (verb == "ROLLUP") {
    request.kind = RequestKind::kRollup;
    for (auto token = take_token(rest); !token.empty(); token = take_token(rest)) {
      request.paths.emplace_back(token);
    }
    if (request.paths.empty()) {
      error = "ROLLUP requires at least one capture path";
      return false;
    }
  } else if (verb == "QUERY") {
    request.kind = RequestKind::kQuery;
    const auto report = take_token(rest);
    if (report.empty()) {
      error = "QUERY requires a report name";
      return false;
    }
    request.argument.assign(report);
    for (auto token = take_token(rest); !token.empty(); token = take_token(rest)) {
      const auto eq = token.find('=');
      if (eq == std::string_view::npos || eq == 0) {
        error = "malformed filter '" + std::string(token) + "' (expected key=value)";
        return false;
      }
      request.filters.push_back(QueryFilter{std::string(token.substr(0, eq)),
                                            std::string(token.substr(eq + 1))});
    }
  } else {
    error = "unknown command '" + std::string(verb) + "'";
    return false;
  }
  // Trailing junk after a complete command is an error, not ignored:
  // it usually means a framing bug on the client side.
  while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
  if (!rest.empty()) {
    error = "trailing bytes after command";
    return false;
  }
  return true;
}

std::string error_response(std::string_view message) {
  std::string out;
  out.reserve(4 + message.size());
  out.append("ERR ");
  out.append(message);
  return out;
}

bool parse_response(std::string_view payload, std::string_view& body,
                    std::string& error) {
  if (payload.rfind(kOkHeader, 0) == 0) {
    body = payload.substr(kOkHeader.size());
    return true;
  }
  if (payload.rfind("ERR ", 0) == 0) {
    error.assign(payload.substr(4));
    return false;
  }
  error = "malformed response envelope";
  return false;
}

}  // namespace synscan::server
