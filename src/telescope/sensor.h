// The sensor front-end: raw frames in, classified scan probes out.
//
// Unused address space receives two kinds of traffic (§3.2): backscatter
// of spoofed-source attacks (SYN/ACKs, RSTs, ICMP errors) and genuine
// scanning probes. Following standard practice the sensor keeps only TCP
// frames with SYN set and ACK clear as scan probes; everything else is
// counted but not forwarded to the campaign pipeline.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>

#include "net/packet.h"
#include "telescope/telescope.h"

namespace synscan::telescope {

/// A SYN probe that passed all sensor filters, reduced to the fields the
/// analysis pipeline needs. This is the pipeline's unit record.
struct ScanProbe {
  net::TimeUs timestamp_us = 0;
  net::Ipv4Address source;
  net::Ipv4Address destination;
  std::uint16_t source_port = 0;
  std::uint16_t destination_port = 0;
  std::uint32_t sequence = 0;
  std::uint32_t acknowledgment = 0;
  std::uint16_t ip_id = 0;
  std::uint16_t window = 0;
  std::uint8_t ttl = 0;
};

/// How the sensor classified a frame.
enum class FrameClass {
  kScanProbe,        ///< TCP SYN (no ACK) to a dark address — forwarded
  kBackscatter,      ///< TCP SYN/ACK, RST, or other non-SYN control traffic
  kXmasOrNull,       ///< exotic probe types; counted separately (§3.1)
  kOtherTcp,         ///< TCP frames that are neither probes nor classic backscatter
  kUdp,              ///< UDP background radiation
  kIcmp,             ///< ICMP backscatter (e.g. dest-unreachable)
  kNotMonitored,     ///< destination is not a dark address
  kIngressBlocked,   ///< dropped by the ingress policy (ports 23/445 post-2017)
  kMalformed,        ///< undecodable or non-IPv4
  kSpoofedSource,    ///< reserved/multicast source — cannot be a real scanner
};

/// Tallies per classification, for data-quality reporting.
struct SensorCounters {
  std::uint64_t scan_probes = 0;
  std::uint64_t backscatter = 0;
  std::uint64_t xmas_or_null = 0;
  std::uint64_t other_tcp = 0;
  std::uint64_t udp = 0;
  std::uint64_t icmp = 0;
  std::uint64_t not_monitored = 0;
  std::uint64_t ingress_blocked = 0;
  std::uint64_t malformed = 0;
  std::uint64_t spoofed_source = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return scan_probes + backscatter + xmas_or_null + other_tcp + udp + icmp +
           not_monitored + ingress_blocked + malformed + spoofed_source;
  }

  /// Accumulates another tally (merging per-worker or per-stage sensors).
  void add(const SensorCounters& other) noexcept {
    scan_probes += other.scan_probes;
    backscatter += other.backscatter;
    xmas_or_null += other.xmas_or_null;
    other_tcp += other.other_tcp;
    udp += other.udp;
    icmp += other.icmp;
    not_monitored += other.not_monitored;
    ingress_blocked += other.ingress_blocked;
    malformed += other.malformed;
    spoofed_source += other.spoofed_source;
  }
};

struct ProbeBatch;

/// Stateless-per-frame classifier bound to a telescope. Thread-compatible:
/// use one sensor per thread and merge counters.
class Sensor {
 public:
  explicit Sensor(const Telescope& telescope) : telescope_(&telescope) {}
  /// The sensor keeps a pointer; a temporary telescope would dangle.
  explicit Sensor(const Telescope&&) = delete;

  /// Classifies a raw frame; fills `probe` when the result is kScanProbe.
  FrameClass classify(const net::RawFrame& frame, ScanProbe& probe);

  /// Classifies an already decoded frame (generator fast path that skips
  /// re-decoding).
  FrameClass classify_decoded(net::TimeUs timestamp_us, const net::DecodedFrame& frame,
                              ScanProbe& probe);

  /// Classifies a whole batch of frame views (e.g. straight out of
  /// `pcap::MappedReader`), appending every scan probe to `out` in frame
  /// order. Decode, SYN filtering and the dark-address check run inline
  /// over the raw bytes — no `DecodedFrame` is materialized — but the
  /// classification (and therefore every counter) is bit-identical to
  /// feeding each frame through `classify`; the differential tests in
  /// tests/telescope/probe_batch_test.cpp hold the two paths together.
  /// Dispatches to the widest SIMD kernel the host supports
  /// (telescope/simd.h; `SYNSCAN_SIMD=off` forces the scalar loop).
  /// Returns the number of probes appended.
  std::size_t classify_batch(std::span<const net::FrameView> frames, ProbeBatch& out);

  [[nodiscard]] const SensorCounters& counters() const noexcept { return counters_; }
  /// Frames fully resolved on a vector lane by `classify_batch` (frames
  /// that took the per-frame scalar fallback are not counted). Feeds the
  /// `ingest.simd_rows` metric; not part of `SensorCounters` because the
  /// counter histogram is serialized into `.spc` caches and must stay
  /// independent of the dispatch choice.
  [[nodiscard]] std::uint64_t simd_rows() const noexcept { return simd_rows_; }
  void reset_counters() noexcept {
    counters_ = {};
    simd_rows_ = 0;
  }

 private:
  const Telescope* telescope_;
  SensorCounters counters_;
  std::uint64_t simd_rows_ = 0;
};

}  // namespace synscan::telescope
