// Internal plumbing shared between the scalar batch classifier
// (sensor.cpp) and the SIMD kernels (classify_sse2.cpp /
// classify_avx2.cpp). Not part of the telescope public surface: the
// kernels need the raw probe cursor and the scalar per-frame reference
// so that every lane they cannot prove eligible for the vector fast
// path falls back to *exactly* the code the differential tests pin.
#pragma once

#include <cstdint>
#include <span>

#include "net/packet.h"
#include "telescope/sensor.h"
#include "telescope/telescope.h"

namespace synscan::telescope::detail {

/// Raw write cursor over a `ProbeBatch` whose columns are pre-sized to
/// the batch's worst case: probe emission is ten unchecked stores plus
/// one shared count, instead of ten `push_back` capacity checks.
struct ProbeCursor {
  net::TimeUs* timestamp_us;
  std::uint32_t* source;
  std::uint32_t* destination;
  std::uint16_t* source_port;
  std::uint16_t* destination_port;
  std::uint32_t* sequence;
  std::uint32_t* acknowledgment;
  std::uint16_t* ip_id;
  std::uint16_t* window;
  std::uint8_t* ttl;
  std::size_t count = 0;
};

/// One frame of the batched fast path (defined in sensor.cpp). Every
/// early return mirrors a rejection in decode_frame/classify_decoded so
/// the counter histogram stays bit-identical to the record-at-a-time
/// path. The SIMD kernels call this for every frame their vector
/// predicate cannot fully classify.
FrameClass classify_raw(const Telescope& telescope, net::TimeUs timestamp_us,
                        std::span<const std::uint8_t> bytes, SensorCounters& counters,
                        ProbeCursor& out);

/// Vectorized batch kernels: classify `frames` in capture order,
/// appending probes through `out` and bumping `simd_rows` once per frame
/// that was fully resolved on the vector lane (frames taking the scalar
/// fallback are not counted). Counters, probes and probe order are
/// bit-identical to running `classify_raw` over the batch. On targets
/// without the instruction set the definitions degrade to the scalar
/// loop; `simd::detected_level()` never selects them there.
void classify_frames_sse2(const Telescope& telescope,
                          std::span<const net::FrameView> frames,
                          SensorCounters& counters, ProbeCursor& out,
                          std::uint64_t& simd_rows);
void classify_frames_avx2(const Telescope& telescope,
                          std::span<const net::FrameView> frames,
                          SensorCounters& counters, ProbeCursor& out,
                          std::uint64_t& simd_rows);

struct PendingLanes;  // classify_lanes.h

/// One full vector group: classify the `pending` lanes in order. The
/// group size is the kernel's lane width — 8 for AVX2, 4 for SSE2 —
/// and `pending.count` must equal it (the no-kernel stubs accept any
/// count and run the scalar reference). Entry point for the fused
/// scan-and-classify loop in core/ingest.cpp, which assembles lanes
/// straight off the record walk instead of staging `FrameView`s.
void classify_group_sse2(const Telescope& telescope, const PendingLanes& pending,
                         SensorCounters& counters, ProbeCursor& out,
                         std::uint64_t& simd_rows);
void classify_group_avx2(const Telescope& telescope, const PendingLanes& pending,
                         SensorCounters& counters, ProbeCursor& out,
                         std::uint64_t& simd_rows);

/// True when the translation unit providing the kernel was built with
/// the matching instruction set (compiler support can lag the CPU).
[[nodiscard]] bool sse2_kernel_compiled() noexcept;
[[nodiscard]] bool avx2_kernel_compiled() noexcept;

}  // namespace synscan::telescope::detail
