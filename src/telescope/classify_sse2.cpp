// SSE2 batch-classify kernel: four frames per group.
//
// SSE2 is the x86-64 baseline, so this file needs no target pragma: the
// front half emulates gathers with four scalar dword loads per field
// (there is no gather before AVX2) but still evaluates the eligibility
// predicates and byte swaps four lanes at a time, and shares the scalar
// back half (`finish_lanes`, classify_lanes.h) with the AVX2 kernel.
// Byte swaps use shift/mask sequences: pshufb is SSSE3, not SSE2.
#include <cstring>

#if (defined(__x86_64__) || defined(__i386__)) && defined(__SSE2__)
#include <emmintrin.h>
#define SYNSCAN_SSE2_KERNEL 1
#else
#define SYNSCAN_SSE2_KERNEL 0
#endif

#include "telescope/classify_detail.h"
#include "telescope/classify_lanes.h"

namespace synscan::telescope::detail {

bool sse2_kernel_compiled() noexcept { return SYNSCAN_SSE2_KERNEL != 0; }

#if SYNSCAN_SSE2_KERNEL

namespace {

/// Four scalar dword loads standing in for a gather.
inline __m128i load_field(const PendingLanes& pending, std::size_t disp) {
  const auto lane = [&](std::size_t i) {
    std::uint32_t v;
    std::memcpy(&v, pending.ptr[i] + disp, sizeof(v));
    return static_cast<int>(v);
  };
  return _mm_set_epi32(lane(3), lane(2), lane(1), lane(0));
}

/// Byte-swaps the low 16 bits of every dword lane.
inline __m128i bswap16_low(__m128i v) {
  return _mm_or_si128(_mm_and_si128(_mm_slli_epi32(v, 8), _mm_set1_epi32(0xFF00)),
                      _mm_and_si128(_mm_srli_epi32(v, 8), _mm_set1_epi32(0x00FF)));
}

/// Full dword byte swap via shifts (no pshufb under plain SSE2).
inline __m128i bswap32(__m128i v) {
  const __m128i swapped_16 =
      _mm_or_si128(_mm_slli_epi32(v, 16), _mm_srli_epi32(v, 16));
  return _mm_or_si128(
      _mm_and_si128(_mm_slli_epi32(swapped_16, 8),
                    _mm_set1_epi32(static_cast<int>(0xFF00FF00u))),
      _mm_and_si128(_mm_srli_epi32(swapped_16, 8), _mm_set1_epi32(0x00FF00FF)));
}

/// Lane-wise min for small non-negative values (no epi32 min in SSE2).
inline __m128i min_epi32(__m128i a, __m128i b) {
  const __m128i a_smaller = _mm_cmpgt_epi32(b, a);
  return _mm_or_si128(_mm_and_si128(a_smaller, a), _mm_andnot_si128(a_smaller, b));
}

inline unsigned lane_mask(__m128i v) {
  return static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(v)));
}

/// Vector front half for one full group of four eligible frames. The
/// predicate and extraction logic mirrors classify_avx2.cpp lane for
/// lane; see that file for the field map.
inline void process_group(const Telescope& telescope, const PendingLanes& pending,
                          SensorCounters& counters, ProbeCursor& out,
                          std::uint64_t& simd_rows) {
  const __m128i g12 = load_field(pending, 12);
  const __m128i g16 = load_field(pending, 16);
  const __m128i g20 = load_field(pending, 20);
  const __m128i g26 = load_field(pending, 26);
  const __m128i g30 = load_field(pending, 30);
  const __m128i g34 = load_field(pending, 34);
  const __m128i g38 = load_field(pending, 38);
  const __m128i g42 = load_field(pending, 42);
  const __m128i g46 = load_field(pending, 46);

  const __m128i c19 = _mm_set1_epi32(19);
  const __m128i total_len = bswap16_low(g16);
  __m128i header_ok = _mm_cmpeq_epi32(_mm_and_si128(g12, _mm_set1_epi32(0x00FFFFFF)),
                                      _mm_set1_epi32(0x00450008));
  header_ok = _mm_and_si128(header_ok, _mm_cmpgt_epi32(total_len, c19));

  const __m128i frag_zero = _mm_cmpeq_epi32(
      _mm_and_si128(g20, _mm_set1_epi32(0x0000FF1F)), _mm_setzero_si128());
  const __m128i proto_tcp =
      _mm_cmpeq_epi32(_mm_and_si128(g20, _mm_set1_epi32(static_cast<int>(0xFF000000u))),
                      _mm_set1_epi32(0x06000000));
  const __m128i caplen = _mm_load_si128(reinterpret_cast<const __m128i*>(pending.caplen));
  const __m128i ip_size = _mm_sub_epi32(caplen, _mm_set1_epi32(14));
  const __m128i available = min_epi32(ip_size, total_len);
  const __m128i transport_size = _mm_sub_epi32(available, _mm_set1_epi32(20));
  const __m128i doff_len =
      _mm_slli_epi32(_mm_and_si128(_mm_srli_epi32(g46, 4), _mm_set1_epi32(0x0F)), 2);
  const __m128i shape_ok =
      _mm_and_si128(_mm_cmpgt_epi32(transport_size, c19),
                    _mm_andnot_si128(_mm_cmpgt_epi32(doff_len, transport_size),
                                     _mm_cmpgt_epi32(doff_len, c19)));
  const __m128i tcp_ok = _mm_and_si128(
      header_ok, _mm_and_si128(_mm_and_si128(frag_zero, proto_tcp), shape_ok));

  LaneGroup lanes;
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes.source), bswap32(g26));
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes.destination), bswap32(g30));
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes.sequence), bswap32(g38));
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes.acknowledgment), bswap32(g42));
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes.source_port), bswap16_low(g34));
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes.destination_port),
                  bswap16_low(_mm_srli_epi32(g34, 16)));
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes.ip_id),
                  bswap16_low(_mm_srli_epi32(g16, 16)));
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes.window),
                  bswap16_low(_mm_srli_epi32(g46, 16)));
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes.ttl),
                  _mm_and_si128(_mm_srli_epi32(g20, 16), _mm_set1_epi32(0xFF)));
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes.flags),
                  _mm_and_si128(_mm_srli_epi32(g46, 8), _mm_set1_epi32(0x3F)));

  finish_lanes(telescope, pending, lanes, lane_mask(header_ok), lane_mask(tcp_ok), 4,
               counters, out, simd_rows);
}

}  // namespace

void classify_group_sse2(const Telescope& telescope, const PendingLanes& pending,
                         SensorCounters& counters, ProbeCursor& out,
                         std::uint64_t& simd_rows) {
  process_group(telescope, pending, counters, out, simd_rows);
}

void classify_frames_sse2(const Telescope& telescope,
                          std::span<const net::FrameView> frames,
                          SensorCounters& counters, ProbeCursor& out,
                          std::uint64_t& simd_rows) {
  PendingLanes pending;
  for (const auto& frame : frames) {
    if (frame.bytes.size() < kMinLaneBytes) {
      classify_raw(telescope, frame.timestamp_us, frame.bytes, counters, out);
      continue;
    }
    pending.ptr[pending.count] = frame.bytes.data();
    pending.caplen[pending.count] = static_cast<std::uint32_t>(frame.bytes.size());
    pending.ts[pending.count] = frame.timestamp_us;
    if (++pending.count == 4) {
      process_group(telescope, pending, counters, out, simd_rows);
      pending.count = 0;
    }
  }
  for (std::size_t i = 0; i < pending.count; ++i) {
    classify_raw(telescope, pending.ts[i], {pending.ptr[i], pending.caplen[i]},
                 counters, out);
  }
}

#else  // !SYNSCAN_SSE2_KERNEL

void classify_group_sse2(const Telescope& telescope, const PendingLanes& pending,
                         SensorCounters& counters, ProbeCursor& out,
                         std::uint64_t& simd_rows) {
  (void)simd_rows;  // never selected by dispatch; scalar loop for safety
  for (std::size_t i = 0; i < pending.count; ++i) {
    classify_raw(telescope, pending.ts[i], {pending.ptr[i], pending.caplen[i]},
                 counters, out);
  }
}

void classify_frames_sse2(const Telescope& telescope,
                          std::span<const net::FrameView> frames,
                          SensorCounters& counters, ProbeCursor& out,
                          std::uint64_t& simd_rows) {
  (void)simd_rows;
  for (const auto& frame : frames) {
    classify_raw(telescope, frame.timestamp_us, frame.bytes, counters, out);
  }
}

#endif

}  // namespace synscan::telescope::detail
