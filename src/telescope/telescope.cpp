#include "telescope/telescope.h"

#include <stdexcept>

namespace synscan::telescope {

Telescope::Telescope(std::vector<MonitoredBlock> blocks,
                     std::vector<IngressBlockRule> ingress_rules)
    : blocks_(std::move(blocks)), ingress_rules_(std::move(ingress_rules)) {
  if (blocks_.empty()) throw std::invalid_argument("Telescope: no monitored blocks");
  for (const auto& block : blocks_) {
    if (block.population_permille > 1000) {
      throw std::invalid_argument("Telescope: population_permille > 1000");
    }
    for (std::uint64_t i = 0; i < block.prefix.size(); ++i) {
      if (address_is_dark(block.prefix.at(i), block.population_permille)) {
        ++monitored_count_;
      }
    }
  }
}

Telescope Telescope::paper_default() {
  const auto p1 = net::Ipv4Prefix::parse("198.51.0.0/16");
  const auto p2 = net::Ipv4Prefix::parse("203.0.0.0/16");
  const auto p3 = net::Ipv4Prefix::parse("192.88.0.0/16");
  // 2017-01-01T00:00:00Z, the post-Mirai ingress policy change.
  constexpr net::TimeUs kIngressPolicyChange = 1483228800LL * net::kMicrosPerSecond;
  return Telescope(
      {{*p1, 400}, {*p2, 350}, {*p3, 342}},
      {{23, kIngressPolicyChange}, {445, kIngressPolicyChange}});
}

std::vector<net::Ipv4Address> Telescope::dark_addresses() const {
  std::vector<net::Ipv4Address> out;
  out.reserve(monitored_count_);
  for (const auto& block : blocks_) {
    for (std::uint64_t i = 0; i < block.prefix.size(); ++i) {
      const auto addr = block.prefix.at(i);
      if (address_is_dark(addr, block.population_permille)) out.push_back(addr);
    }
  }
  return out;
}

net::Ipv4Address Telescope::dark_address_at(std::uint64_t i) const {
  if (i >= monitored_count_) throw std::out_of_range("dark_address_at: index out of range");
  for (const auto& block : blocks_) {
    for (std::uint64_t j = 0; j < block.prefix.size(); ++j) {
      const auto addr = block.prefix.at(j);
      if (address_is_dark(addr, block.population_permille)) {
        if (i == 0) return addr;
        --i;
      }
    }
  }
  throw std::logic_error("dark_address_at: count bookkeeping is inconsistent");
}

}  // namespace synscan::telescope
