#include "telescope/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "telescope/classify_detail.h"

namespace synscan::telescope::simd {
namespace {

SimdLevel cpu_level() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  if (detail::avx2_kernel_compiled() && __builtin_cpu_supports("avx2")) {
    return SimdLevel::kAvx2;
  }
  if (detail::sse2_kernel_compiled() && __builtin_cpu_supports("sse2")) {
    return SimdLevel::kSse2;
  }
#endif
  return SimdLevel::kScalar;
}

/// SYNSCAN_SIMD parsed against what the host offers. Unknown values are
/// ignored (auto) rather than erroring: a typo must not change results,
/// only possibly speed.
SimdLevel env_level(SimdLevel detected) noexcept {
  // getenv is mt-unsafe only against concurrent setenv; this process
  // never writes the environment, and the value is read exactly once
  // (static init of active_cell) before worker threads exist.
  const char* env = std::getenv("SYNSCAN_SIMD");  // NOLINT(concurrency-mt-unsafe)
  if (env == nullptr) return detected;
  if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0 ||
      std::strcmp(env, "0") == 0) {
    return SimdLevel::kScalar;
  }
  if (std::strcmp(env, "sse2") == 0) {
    return detected < SimdLevel::kSse2 ? detected : SimdLevel::kSse2;
  }
  if (std::strcmp(env, "avx2") == 0) {
    return detected < SimdLevel::kAvx2 ? detected : SimdLevel::kAvx2;
  }
  return detected;  // "auto", "on", or anything unrecognized
}

std::atomic<SimdLevel>& active_cell() noexcept {
  // First use resolves cpuid + environment; set_active_level overwrites.
  static std::atomic<SimdLevel> level{env_level(cpu_level())};
  return level;
}

}  // namespace

SimdLevel detected_level() noexcept {
  static const SimdLevel level = cpu_level();
  return level;
}

SimdLevel active_level() noexcept {
  return active_cell().load(std::memory_order_relaxed);
}

void set_active_level(SimdLevel level) noexcept {
  const auto detected = detected_level();
  active_cell().store(level < detected ? level : detected,
                      std::memory_order_relaxed);
}

const char* to_string(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kScalar:
      break;
  }
  return "scalar";
}

}  // namespace synscan::telescope::simd
