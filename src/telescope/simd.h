// Runtime SIMD dispatch for the batch classifier.
//
// `Sensor::classify_batch` picks the widest kernel the host supports
// (detected once via cpuid): AVX2 gathers eight frames per group, SSE2
// four, and the scalar loop remains both the fallback and the
// differential reference. The choice can be overridden for tests,
// benches and incident triage:
//   - environment: SYNSCAN_SIMD=off|scalar|sse2|avx2|auto (read once,
//     at the first classification);
//   - programmatically: `set_active_level` (clamped to what the host
//     can actually run).
#pragma once

namespace synscan::telescope::simd {

/// Kernel tiers, widest last. kScalar is always available.
enum class SimdLevel { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// The widest level this host can run (cpuid ∩ compiled kernels).
/// Constant for the process lifetime.
[[nodiscard]] SimdLevel detected_level() noexcept;

/// The level `classify_batch` dispatches on right now: `detected_level`
/// lowered by SYNSCAN_SIMD and/or `set_active_level`.
[[nodiscard]] SimdLevel active_level() noexcept;

/// Overrides the active level (tests force every tier; benches pin a
/// path). Requests above `detected_level()` are clamped down, so asking
/// for kAvx2 on an SSE2-only host selects kSse2.
void set_active_level(SimdLevel level) noexcept;

/// "scalar" | "sse2" | "avx2" — stable names, used in bench JSON.
[[nodiscard]] const char* to_string(SimdLevel level) noexcept;

}  // namespace synscan::telescope::simd
