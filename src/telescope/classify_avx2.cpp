// AVX2 batch-classify kernel: eight frames per group.
//
// The front half loads the nine fixed-offset header dwords of eight
// frames with one 32-bit-index gather per field: lane addresses are
// expressed relative to the group's first frame, which always fits a
// signed 32-bit offset for views into one mapped capture (a group spans
// at most eight records). Heap-backed frames (pcapng) can straddle more
// than ±1 GiB; such groups take the per-lane scalar reference instead —
// same counters, same probes, just not vector-resolved. The fields are
// byte-swapped and split into `LaneGroup` columns with vector shuffles,
// and the eligibility predicates are evaluated eight lanes at a time.
// The back half (`finish_lanes`, classify_lanes.h) is shared with the
// SSE2 kernel. Compiled via `#pragma GCC target` so the rest of the
// binary stays baseline; `simd::detected_level()` only selects this
// kernel when cpuid reports AVX2.
#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define SYNSCAN_AVX2_KERNEL 1
#else
#define SYNSCAN_AVX2_KERNEL 0
#endif

#include "telescope/classify_detail.h"
#include "telescope/classify_lanes.h"

namespace synscan::telescope::detail {

bool avx2_kernel_compiled() noexcept { return SYNSCAN_AVX2_KERNEL != 0; }

#if SYNSCAN_AVX2_KERNEL

#pragma GCC push_options
#pragma GCC target("avx2")

namespace {

/// Gathers the dword at `base + lane_offset + disp` of all eight lanes.
inline __m256i gather_field(const std::uint8_t* base, __m256i offsets, int disp) {
  // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast)
  return _mm256_i32gather_epi32(reinterpret_cast<const int*>(base + disp), offsets, 1);
}

/// Byte-swaps the low 16 bits of every dword lane (big-endian u16 field
/// sitting at the gather's base offset); high bits are discarded.
inline __m256i bswap16_low(__m256i v) {
  return _mm256_or_si256(
      _mm256_and_si256(_mm256_slli_epi32(v, 8), _mm256_set1_epi32(0xFF00)),
      _mm256_and_si256(_mm256_srli_epi32(v, 8), _mm256_set1_epi32(0x00FF)));
}

inline unsigned lane_mask(__m256i v) {
  return static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(v)));
}

/// Vector front half for one full group of eight eligible frames.
inline void process_group(const Telescope& telescope, const PendingLanes& pending,
                          SensorCounters& counters, ProbeCursor& out,
                          std::uint64_t& simd_rows) {
  // Lane addresses as 32-bit offsets from the group's first frame. Views
  // into one capture window always fit; arbitrary heap frames may not —
  // those groups take the scalar reference lane by lane.
  const std::uint8_t* base = pending.ptr[0];
  alignas(32) std::int32_t offset_lanes[8];
  std::int64_t spread = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    const std::int64_t delta = pending.ptr[i] - base;
    spread |= delta < 0 ? -delta : delta;
    offset_lanes[i] = static_cast<std::int32_t>(delta);
  }
  if (spread > (std::int64_t{1} << 30)) {
    for (std::size_t i = 0; i < 8; ++i) {
      classify_raw(telescope, pending.ts[i], {pending.ptr[i], pending.caplen[i]},
                   counters, out);
    }
    return;
  }
  const __m256i offsets =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(offset_lanes));

  // Field offsets are frame-relative and fixed because the fast path
  // demands IHL == 5: Ethernet 0..13, IP 14..33, TCP 34..
  const __m256i g12 = gather_field(base, offsets, 12);  // ethertype|ver/ihl
  const __m256i g16 = gather_field(base, offsets, 16);  // total_len|ip_id
  const __m256i g20 = gather_field(base, offsets, 20);  // frag|ttl|proto
  const __m256i g26 = gather_field(base, offsets, 26);  // source
  const __m256i g30 = gather_field(base, offsets, 30);  // destination
  const __m256i g34 = gather_field(base, offsets, 34);  // sport|dport
  const __m256i g38 = gather_field(base, offsets, 38);  // sequence
  const __m256i g42 = gather_field(base, offsets, 42);  // ack
  const __m256i g46 = gather_field(base, offsets, 46);  // doff|flags|window

  const __m256i bswap32_shuffle = _mm256_set_epi8(
      12, 13, 14, 15, 8, 9, 10, 11, 4, 5, 6, 7, 0, 1, 2, 3,  //
      12, 13, 14, 15, 8, 9, 10, 11, 4, 5, 6, 7, 0, 1, 2, 3);
  const __m256i c19 = _mm256_set1_epi32(19);

  // header_ok: ethertype 0x0800, version 4, IHL 5, total_length >= 20.
  // All compared values fit in 17 bits, so signed compares are exact.
  const __m256i total_len = bswap16_low(g16);
  __m256i header_ok =
      _mm256_cmpeq_epi32(_mm256_and_si256(g12, _mm256_set1_epi32(0x00FFFFFF)),
                         _mm256_set1_epi32(0x00450008));
  header_ok = _mm256_and_si256(header_ok, _mm256_cmpgt_epi32(total_len, c19));

  // tcp_ok: additionally first fragment, protocol TCP, transport window
  // of at least 20 bytes, and data offset within [20, transport_size].
  const __m256i frag_zero =
      _mm256_cmpeq_epi32(_mm256_and_si256(g20, _mm256_set1_epi32(0x0000FF1F)),
                         _mm256_setzero_si256());
  const __m256i proto_tcp = _mm256_cmpeq_epi32(
      _mm256_and_si256(g20, _mm256_set1_epi32(static_cast<int>(0xFF000000u))),
      _mm256_set1_epi32(0x06000000));
  const __m256i caplen =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(pending.caplen));
  const __m256i ip_size = _mm256_sub_epi32(caplen, _mm256_set1_epi32(14));
  const __m256i available = _mm256_min_epi32(ip_size, total_len);
  const __m256i transport_size = _mm256_sub_epi32(available, _mm256_set1_epi32(20));
  const __m256i doff_len = _mm256_slli_epi32(
      _mm256_and_si256(_mm256_srli_epi32(g46, 4), _mm256_set1_epi32(0x0F)), 2);
  const __m256i shape_ok = _mm256_and_si256(
      _mm256_cmpgt_epi32(transport_size, c19),
      _mm256_andnot_si256(_mm256_cmpgt_epi32(doff_len, transport_size),
                          _mm256_cmpgt_epi32(doff_len, c19)));
  const __m256i tcp_ok = _mm256_and_si256(
      header_ok, _mm256_and_si256(_mm256_and_si256(frag_zero, proto_tcp), shape_ok));

  LaneGroup lanes;
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes.source),
                     _mm256_shuffle_epi8(g26, bswap32_shuffle));
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes.destination),
                     _mm256_shuffle_epi8(g30, bswap32_shuffle));
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes.sequence),
                     _mm256_shuffle_epi8(g38, bswap32_shuffle));
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes.acknowledgment),
                     _mm256_shuffle_epi8(g42, bswap32_shuffle));
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes.source_port), bswap16_low(g34));
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes.destination_port),
                     bswap16_low(_mm256_srli_epi32(g34, 16)));
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes.ip_id),
                     bswap16_low(_mm256_srli_epi32(g16, 16)));
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes.window),
                     bswap16_low(_mm256_srli_epi32(g46, 16)));
  _mm256_store_si256(
      reinterpret_cast<__m256i*>(lanes.ttl),
      _mm256_and_si256(_mm256_srli_epi32(g20, 16), _mm256_set1_epi32(0xFF)));
  _mm256_store_si256(
      reinterpret_cast<__m256i*>(lanes.flags),
      _mm256_and_si256(_mm256_srli_epi32(g46, 8), _mm256_set1_epi32(0x3F)));

  finish_lanes(telescope, pending, lanes, lane_mask(header_ok), lane_mask(tcp_ok), 8,
               counters, out, simd_rows);
}

}  // namespace

void classify_group_avx2(const Telescope& telescope, const PendingLanes& pending,
                         SensorCounters& counters, ProbeCursor& out,
                         std::uint64_t& simd_rows) {
  process_group(telescope, pending, counters, out, simd_rows);
}

void classify_frames_avx2(const Telescope& telescope,
                          std::span<const net::FrameView> frames,
                          SensorCounters& counters, ProbeCursor& out,
                          std::uint64_t& simd_rows) {
  PendingLanes pending;
  for (const auto& frame : frames) {
    if (frame.bytes.size() < kMinLaneBytes) {
      // Cannot be a probe (see classify_lanes.h): classify immediately,
      // order does not matter for pure counter updates.
      classify_raw(telescope, frame.timestamp_us, frame.bytes, counters, out);
      continue;
    }
    pending.ptr[pending.count] = frame.bytes.data();
    pending.caplen[pending.count] = static_cast<std::uint32_t>(frame.bytes.size());
    pending.ts[pending.count] = frame.timestamp_us;
    if (++pending.count == 8) {
      process_group(telescope, pending, counters, out, simd_rows);
      pending.count = 0;
    }
  }
  for (std::size_t i = 0; i < pending.count; ++i) {
    classify_raw(telescope, pending.ts[i], {pending.ptr[i], pending.caplen[i]},
                 counters, out);
  }
}

#pragma GCC pop_options

#else  // !SYNSCAN_AVX2_KERNEL

void classify_group_avx2(const Telescope& telescope, const PendingLanes& pending,
                         SensorCounters& counters, ProbeCursor& out,
                         std::uint64_t& simd_rows) {
  (void)simd_rows;  // never selected by dispatch; scalar loop for safety
  for (std::size_t i = 0; i < pending.count; ++i) {
    classify_raw(telescope, pending.ts[i], {pending.ptr[i], pending.caplen[i]},
                 counters, out);
  }
}

void classify_frames_avx2(const Telescope& telescope,
                          std::span<const net::FrameView> frames,
                          SensorCounters& counters, ProbeCursor& out,
                          std::uint64_t& simd_rows) {
  (void)simd_rows;  // never selected by dispatch; scalar loop for safety
  for (const auto& frame : frames) {
    classify_raw(telescope, frame.timestamp_us, frame.bytes, counters, out);
  }
}

#endif

}  // namespace synscan::telescope::detail
