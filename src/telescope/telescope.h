// The network telescope: which addresses are monitored, and what the
// ingress lets through.
//
// The paper's telescope consists of three *partially populated* /16
// blocks whose dark addresses add up to roughly one full /16 (71,536
// monitored addresses on average), with ports 445/TCP and 23/TCP dropped
// at the network ingress from 2017 onwards. Partial population is
// modeled with a deterministic per-address membership predicate so that
// the traffic generator and the sensor always agree on which addresses
// are dark.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/ipv4.h"
#include "net/packet.h"
#include "stats/telescope_model.h"

namespace synscan::telescope {

/// One monitored block: a prefix of which only `population_permille`
/// addresses out of 1000 are dark (routed to the telescope); the rest are
/// production hosts whose traffic never reaches the sensor.
struct MonitoredBlock {
  net::Ipv4Prefix prefix;
  std::uint32_t population_permille = 1000;  ///< dark fraction, 0..1000
};

/// An ingress filter rule: drop frames to `port` from `effective_from`
/// onwards (the paper: 23 and 445 blocked since the advent of Mirai).
struct IngressBlockRule {
  std::uint16_t port = 0;
  net::TimeUs effective_from = 0;
};

/// Immutable telescope description.
class Telescope {
 public:
  Telescope(std::vector<MonitoredBlock> blocks, std::vector<IngressBlockRule> ingress_rules);

  /// The telescope used throughout the paper: three partially populated
  /// /16 blocks (198.51.0.0/16 at 40%, 203.0.0.0/16 at 35%, and
  /// 192.88.0.0/16 at 34.2%) summing to 71,536 dark addresses, with
  /// 23/TCP and 445/TCP dropped at the ingress from 2017-01-01.
  [[nodiscard]] static Telescope paper_default();

  /// Whether `addr` is a dark (monitored) address. Defined inline: this
  /// sits on the per-frame ingest hot path (sensor classification), where
  /// an out-of-line call per frame is measurable.
  [[nodiscard]] bool monitors(net::Ipv4Address addr) const noexcept {
    for (const auto& block : blocks_) {
      if (block.prefix.contains(addr)) {
        return address_is_dark(addr, block.population_permille);
      }
    }
    return false;
  }

  /// Whether a frame to `port` arriving at `when` is dropped at ingress.
  /// Inline for the same reason as `monitors`.
  [[nodiscard]] bool ingress_blocked(std::uint16_t port, net::TimeUs when) const noexcept {
    for (const auto& rule : ingress_rules_) {
      if (rule.port == port && when >= rule.effective_from) return true;
    }
    return false;
  }

  /// Exact count of dark addresses across all blocks.
  [[nodiscard]] std::uint64_t monitored_count() const noexcept { return monitored_count_; }

  /// All dark addresses, in address order (used by generators that sweep
  /// the telescope and by tests).
  [[nodiscard]] std::vector<net::Ipv4Address> dark_addresses() const;

  /// The i-th dark address in address order, i < monitored_count().
  /// O(#blocks + block size) worst case; intended for sampling, not
  /// bulk iteration.
  [[nodiscard]] net::Ipv4Address dark_address_at(std::uint64_t i) const;

  [[nodiscard]] const std::vector<MonitoredBlock>& blocks() const noexcept { return blocks_; }
  [[nodiscard]] const std::vector<IngressBlockRule>& ingress_rules() const noexcept {
    return ingress_rules_;
  }

  /// The geometric sensitivity model for this telescope's size.
  [[nodiscard]] stats::TelescopeModel model() const {
    return stats::TelescopeModel(monitored_count_);
  }

  /// The deterministic population predicate: address `addr` of a block
  /// with population `permille` is dark iff mix(addr) % 1000 < permille.
  /// Exposed so generators can enumerate dark addresses cheaply.
  [[nodiscard]] static constexpr bool address_is_dark(net::Ipv4Address addr,
                                                      std::uint32_t permille) noexcept {
    if (permille >= 1000) return true;
    return mix64(addr.value()) % 1000 < permille;
  }

 private:
  // SplitMix64 finalizer: a cheap, well-distributed mixing function. The
  // predicate must be stable forever (generator and sensor both use it),
  // so it is deliberately self-contained rather than `std::hash`.
  [[nodiscard]] static constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  std::vector<MonitoredBlock> blocks_;
  std::vector<IngressBlockRule> ingress_rules_;
  std::uint64_t monitored_count_ = 0;
};

}  // namespace synscan::telescope
