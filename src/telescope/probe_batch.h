// Structure-of-arrays batch of classified scan probes.
//
// The ingest hot path moves probes between stages in batches, not one
// `ScanProbe` at a time. Column layout buys two things: the batched
// sensor appends ~31 bytes of probe across ten dense arrays (no padding,
// no per-record allocation), and the columnar probe cache (`.spc`,
// `core/probe_cache.h`) serializes each column with a straight copy on
// little-endian hosts. Consumers that want the record shape back
// materialize it with `get(i)`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "telescope/sensor.h"

namespace synscan::telescope {

/// Parallel arrays of `ScanProbe` fields; row `i` across all columns is
/// one probe. All columns always have identical length.
struct ProbeBatch {
  std::vector<net::TimeUs> timestamp_us;
  std::vector<std::uint32_t> source;
  std::vector<std::uint32_t> destination;
  std::vector<std::uint16_t> source_port;
  std::vector<std::uint16_t> destination_port;
  std::vector<std::uint32_t> sequence;
  std::vector<std::uint32_t> acknowledgment;
  std::vector<std::uint16_t> ip_id;
  std::vector<std::uint16_t> window;
  std::vector<std::uint8_t> ttl;

  [[nodiscard]] std::size_t size() const noexcept { return timestamp_us.size(); }
  [[nodiscard]] bool empty() const noexcept { return timestamp_us.empty(); }

  void reserve(std::size_t n) {
    timestamp_us.reserve(n);
    source.reserve(n);
    destination.reserve(n);
    source_port.reserve(n);
    destination_port.reserve(n);
    sequence.reserve(n);
    acknowledgment.reserve(n);
    ip_id.reserve(n);
    window.reserve(n);
    ttl.reserve(n);
  }

  /// Drops all rows; keeps column capacity (batches are recycled).
  void clear() noexcept {
    timestamp_us.clear();
    source.clear();
    destination.clear();
    source_port.clear();
    destination_port.clear();
    sequence.clear();
    acknowledgment.clear();
    ip_id.clear();
    window.clear();
    ttl.clear();
  }

  void push_back(const ScanProbe& probe) {
    timestamp_us.push_back(probe.timestamp_us);
    source.push_back(probe.source.value());
    destination.push_back(probe.destination.value());
    source_port.push_back(probe.source_port);
    destination_port.push_back(probe.destination_port);
    sequence.push_back(probe.sequence);
    acknowledgment.push_back(probe.acknowledgment);
    ip_id.push_back(probe.ip_id);
    window.push_back(probe.window);
    ttl.push_back(probe.ttl);
  }

  /// Materializes row `i` as a `ScanProbe`; `i < size()`.
  [[nodiscard]] ScanProbe get(std::size_t i) const noexcept {
    ScanProbe probe;
    probe.timestamp_us = timestamp_us[i];
    probe.source = net::Ipv4Address(source[i]);
    probe.destination = net::Ipv4Address(destination[i]);
    probe.source_port = source_port[i];
    probe.destination_port = destination_port[i];
    probe.sequence = sequence[i];
    probe.acknowledgment = acknowledgment[i];
    probe.ip_id = ip_id[i];
    probe.window = window[i];
    probe.ttl = ttl[i];
    return probe;
  }
};

}  // namespace synscan::telescope
