// Shared halves of the SIMD classify kernels (classify_sse2.cpp /
// classify_avx2.cpp): the lane buffers the vector front half fills and
// the scalar back half that turns lane values + predicate masks into
// counters and probe emissions.
//
// Split of work per group:
//   1. the kernel gathers the fixed-offset header fields of kLanes
//      frames into `LaneGroup` columns (byte-swapped to host order) and
//      evaluates two vector predicates —
//        header_mask: Ethernet/IPv4 shape matches the branch-free fast
//                     layout (ethertype 0x0800, version 4, IHL 5,
//                     total_length >= 20);
//        tcp_mask:    additionally first-fragment TCP with a complete,
//                     in-bounds header (subset of header_mask);
//   2. `finish_lanes` walks lanes in capture order: header_mask misses
//      fall back to `classify_raw` (IP options, non-IPv4, odd lengths —
//      the scalar reference handles every shape), header-only lanes
//      resolve the dark-address check, and tcp_mask lanes run the full
//      probe/backscatter decision from the extracted columns.
//
// Only frames of at least kMinLaneBytes enter a lane. Shorter frames
// cannot carry a complete TCP header (14 + 20 + 20 bytes), so they can
// never emit a probe; the kernels classify them scalar immediately,
// which keeps probe order exact without any reordering bookkeeping, and
// it bounds every lane gather (max offset 46 + 4) inside the frame.
#pragma once

#include <cstdint>

#include "net/headers.h"
#include "net/ipv4.h"
#include "telescope/classify_detail.h"

namespace synscan::telescope::detail {

/// Minimum frame bytes for lane eligibility; see header comment.
inline constexpr std::size_t kMinLaneBytes =
    net::EthernetHeader::kSize + net::Ipv4Header::kMinSize + net::TcpHeader::kMinSize;

/// Frames waiting for a full vector group, in capture order.
struct PendingLanes {
  const std::uint8_t* ptr[8];
  alignas(32) std::uint32_t caplen[8];
  net::TimeUs ts[8];
  std::size_t count = 0;
};

/// Header fields extracted by the vector front half, host byte order.
/// All columns are u32 lanes regardless of wire width; emission narrows.
struct LaneGroup {
  alignas(32) std::uint32_t source[8];
  alignas(32) std::uint32_t destination[8];
  alignas(32) std::uint32_t sequence[8];
  alignas(32) std::uint32_t acknowledgment[8];
  alignas(32) std::uint32_t source_port[8];
  alignas(32) std::uint32_t destination_port[8];
  alignas(32) std::uint32_t ip_id[8];
  alignas(32) std::uint32_t window[8];
  alignas(32) std::uint32_t ttl[8];
  alignas(32) std::uint32_t flags[8];
};

/// Scalar back half: resolves `n` lanes in capture order from the
/// extracted columns and the two predicate masks (bit i = lane i).
/// Mirrors classify_raw's decision order exactly; any lane the masks
/// cannot fully vouch for re-runs classify_raw on the original bytes.
inline void finish_lanes(const Telescope& telescope, const PendingLanes& pending,
                         const LaneGroup& lanes, unsigned header_mask,
                         unsigned tcp_mask, std::size_t n, SensorCounters& counters,
                         ProbeCursor& out, std::uint64_t& simd_rows) {
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned bit = 1u << i;
    if ((header_mask & bit) == 0) {
      classify_raw(telescope, pending.ts[i], {pending.ptr[i], pending.caplen[i]},
                   counters, out);
      continue;
    }
    const net::Ipv4Address destination(lanes.destination[i]);
    if (!telescope.monitors(destination)) {
      ++counters.not_monitored;
      ++simd_rows;
      continue;
    }
    if ((tcp_mask & bit) == 0) {
      // Monitored but not fast-path TCP: fragment, UDP, ICMP, truncated
      // TCP header... — the scalar reference owns those branches.
      classify_raw(telescope, pending.ts[i], {pending.ptr[i], pending.caplen[i]},
                   counters, out);
      continue;
    }
    ++simd_rows;
    const auto destination_port = static_cast<std::uint16_t>(lanes.destination_port[i]);
    if (telescope.ingress_blocked(destination_port, pending.ts[i])) {
      ++counters.ingress_blocked;
      continue;
    }
    const std::uint32_t flags = lanes.flags[i];
    if (flags == 0x3f || flags == 0) {
      ++counters.xmas_or_null;
      continue;
    }
    const bool syn = (flags & net::flag_bit(net::TcpFlag::kSyn)) != 0;
    const bool ack = (flags & net::flag_bit(net::TcpFlag::kAck)) != 0;
    if (syn && !ack) {
      const net::Ipv4Address source(lanes.source[i]);
      if (source.is_reserved_source() || source.is_private()) {
        ++counters.spoofed_source;
        continue;
      }
      const auto k = out.count++;
      out.timestamp_us[k] = pending.ts[i];
      out.source[k] = lanes.source[i];
      out.destination[k] = lanes.destination[i];
      out.source_port[k] = static_cast<std::uint16_t>(lanes.source_port[i]);
      out.destination_port[k] = destination_port;
      out.sequence[k] = lanes.sequence[i];
      out.acknowledgment[k] = lanes.acknowledgment[i];
      out.ip_id[k] = static_cast<std::uint16_t>(lanes.ip_id[i]);
      out.window[k] = static_cast<std::uint16_t>(lanes.window[i]);
      out.ttl[k] = static_cast<std::uint8_t>(lanes.ttl[i]);
      ++counters.scan_probes;
      continue;
    }
    if ((syn && ack) || (flags & net::flag_bit(net::TcpFlag::kRst)) != 0) {
      ++counters.backscatter;
      continue;
    }
    ++counters.other_tcp;
  }
}

}  // namespace synscan::telescope::detail
