#include "telescope/sensor.h"

namespace synscan::telescope {

FrameClass Sensor::classify(const net::RawFrame& frame, ScanProbe& probe) {
  const auto decoded = net::decode_frame(frame.bytes);
  if (!decoded) {
    ++counters_.malformed;
    return FrameClass::kMalformed;
  }
  return classify_decoded(frame.timestamp_us, *decoded, probe);
}

FrameClass Sensor::classify_decoded(net::TimeUs timestamp_us, const net::DecodedFrame& frame,
                                    ScanProbe& probe) {
  if (!telescope_->monitors(frame.ip.destination)) {
    ++counters_.not_monitored;
    return FrameClass::kNotMonitored;
  }

  if (const auto* tcp = frame.tcp()) {
    if (telescope_->ingress_blocked(tcp->destination_port, timestamp_us)) {
      ++counters_.ingress_blocked;
      return FrameClass::kIngressBlocked;
    }
    if (tcp->is_xmas() || tcp->is_null()) {
      ++counters_.xmas_or_null;
      return FrameClass::kXmasOrNull;
    }
    if (tcp->is_syn_probe()) {
      if (frame.ip.source.is_reserved_source() || frame.ip.source.is_private()) {
        ++counters_.spoofed_source;
        return FrameClass::kSpoofedSource;
      }
      probe.timestamp_us = timestamp_us;
      probe.source = frame.ip.source;
      probe.destination = frame.ip.destination;
      probe.source_port = tcp->source_port;
      probe.destination_port = tcp->destination_port;
      probe.sequence = tcp->sequence;
      probe.acknowledgment = tcp->acknowledgment;
      probe.ip_id = frame.ip.identification;
      probe.window = tcp->window;
      probe.ttl = frame.ip.ttl;
      ++counters_.scan_probes;
      return FrameClass::kScanProbe;
    }
    if (tcp->is_syn_ack() || tcp->has(net::TcpFlag::kRst)) {
      ++counters_.backscatter;
      return FrameClass::kBackscatter;
    }
    ++counters_.other_tcp;
    return FrameClass::kOtherTcp;
  }
  if (frame.udp() != nullptr) {
    ++counters_.udp;
    return FrameClass::kUdp;
  }
  if (frame.icmp() != nullptr) {
    ++counters_.icmp;
    return FrameClass::kIcmp;
  }
  ++counters_.malformed;
  return FrameClass::kMalformed;
}

}  // namespace synscan::telescope
