#include "telescope/sensor.h"

#include <algorithm>

#include "net/endian.h"
#include "net/headers.h"
#include "telescope/classify_detail.h"
#include "telescope/probe_batch.h"
#include "telescope/simd.h"

namespace synscan::telescope {

FrameClass Sensor::classify(const net::RawFrame& frame, ScanProbe& probe) {
  const auto decoded = net::decode_frame(frame.bytes);
  if (!decoded) {
    ++counters_.malformed;
    return FrameClass::kMalformed;
  }
  return classify_decoded(frame.timestamp_us, *decoded, probe);
}

FrameClass Sensor::classify_decoded(net::TimeUs timestamp_us, const net::DecodedFrame& frame,
                                    ScanProbe& probe) {
  if (!telescope_->monitors(frame.ip.destination)) {
    ++counters_.not_monitored;
    return FrameClass::kNotMonitored;
  }

  if (const auto* tcp = frame.tcp()) {
    if (telescope_->ingress_blocked(tcp->destination_port, timestamp_us)) {
      ++counters_.ingress_blocked;
      return FrameClass::kIngressBlocked;
    }
    if (tcp->is_xmas() || tcp->is_null()) {
      ++counters_.xmas_or_null;
      return FrameClass::kXmasOrNull;
    }
    if (tcp->is_syn_probe()) {
      if (frame.ip.source.is_reserved_source() || frame.ip.source.is_private()) {
        ++counters_.spoofed_source;
        return FrameClass::kSpoofedSource;
      }
      probe.timestamp_us = timestamp_us;
      probe.source = frame.ip.source;
      probe.destination = frame.ip.destination;
      probe.source_port = tcp->source_port;
      probe.destination_port = tcp->destination_port;
      probe.sequence = tcp->sequence;
      probe.acknowledgment = tcp->acknowledgment;
      probe.ip_id = frame.ip.identification;
      probe.window = tcp->window;
      probe.ttl = frame.ip.ttl;
      ++counters_.scan_probes;
      return FrameClass::kScanProbe;
    }
    if (tcp->is_syn_ack() || tcp->has(net::TcpFlag::kRst)) {
      ++counters_.backscatter;
      return FrameClass::kBackscatter;
    }
    ++counters_.other_tcp;
    return FrameClass::kOtherTcp;
  }
  if (frame.udp() != nullptr) {
    ++counters_.udp;
    return FrameClass::kUdp;
  }
  if (frame.icmp() != nullptr) {
    ++counters_.icmp;
    return FrameClass::kIcmp;
  }
  ++counters_.malformed;
  return FrameClass::kMalformed;
}

namespace detail {

// One frame of the batched fast path (shared with the SIMD kernels via
// classify_detail.h). Every early return mirrors a rejection in
// decode_frame/classify_decoded so the counter histogram stays
// bit-identical to the record-at-a-time path.
FrameClass classify_raw(const Telescope& telescope, net::TimeUs timestamp_us,
                        std::span<const std::uint8_t> bytes, SensorCounters& counters,
                        ProbeCursor& out) {
  // Link layer: decode_ethernet rejects short frames; decode_frame then
  // drops anything that is not IPv4.
  if (bytes.size() < net::EthernetHeader::kSize ||
      net::load_be16(bytes.data() + 12) !=
          static_cast<std::uint16_t>(net::EtherType::kIpv4)) {
    ++counters.malformed;
    return FrameClass::kMalformed;
  }

  // Network layer: the decode_ipv4 validation chain, minus field structs.
  const std::uint8_t* ip = bytes.data() + net::EthernetHeader::kSize;
  const std::size_t ip_size = bytes.size() - net::EthernetHeader::kSize;
  if (ip_size < net::Ipv4Header::kMinSize) {
    ++counters.malformed;
    return FrameClass::kMalformed;
  }
  const std::uint8_t version = ip[0] >> 4;
  const std::size_t header_length = static_cast<std::size_t>(ip[0] & 0x0f) * 4;
  const std::uint16_t total_length = net::load_be16(ip + 2);
  if (version != 4 || header_length < net::Ipv4Header::kMinSize ||
      ip_size < header_length || total_length < header_length) {
    ++counters.malformed;
    return FrameClass::kMalformed;
  }

  const net::Ipv4Address destination(net::load_be32(ip + 16));
  if (!telescope.monitors(destination)) {
    ++counters.not_monitored;
    return FrameClass::kNotMonitored;
  }

  // Transport presence rules from decode_frame: a later fragment carries no
  // transport header, and the payload window is bounded by the smaller of
  // the captured bytes and the declared total length (Ethernet padding).
  const bool later_fragment = (net::load_be16(ip + 6) & 0x1fff) != 0;
  const std::size_t available = std::min<std::size_t>(ip_size, total_length);
  const std::uint8_t protocol = ip[9];
  const std::uint8_t* transport = ip + header_length;
  const std::size_t transport_size = available - header_length;

  if (!later_fragment && protocol == static_cast<std::uint8_t>(net::IpProtocol::kTcp) &&
      transport_size >= net::TcpHeader::kMinSize) {
    const std::size_t tcp_header_length =
        static_cast<std::size_t>(transport[12] >> 4) * 4;
    if (tcp_header_length >= net::TcpHeader::kMinSize &&
        transport_size >= tcp_header_length) {
      const std::uint16_t destination_port = net::load_be16(transport + 2);
      if (telescope.ingress_blocked(destination_port, timestamp_us)) {
        ++counters.ingress_blocked;
        return FrameClass::kIngressBlocked;
      }
      const std::uint8_t flags = transport[13] & 0x3f;
      if (flags == 0x3f || flags == 0) {
        ++counters.xmas_or_null;
        return FrameClass::kXmasOrNull;
      }
      const bool syn = (flags & net::flag_bit(net::TcpFlag::kSyn)) != 0;
      const bool ack = (flags & net::flag_bit(net::TcpFlag::kAck)) != 0;
      if (syn && !ack) {
        const net::Ipv4Address source(net::load_be32(ip + 12));
        if (source.is_reserved_source() || source.is_private()) {
          ++counters.spoofed_source;
          return FrameClass::kSpoofedSource;
        }
        const auto i = out.count++;
        out.timestamp_us[i] = timestamp_us;
        out.source[i] = source.value();
        out.destination[i] = destination.value();
        out.source_port[i] = net::load_be16(transport);
        out.destination_port[i] = destination_port;
        out.sequence[i] = net::load_be32(transport + 4);
        out.acknowledgment[i] = net::load_be32(transport + 8);
        out.ip_id[i] = net::load_be16(ip + 4);
        out.window[i] = net::load_be16(transport + 14);
        out.ttl[i] = ip[8];
        ++counters.scan_probes;
        return FrameClass::kScanProbe;
      }
      if ((syn && ack) || (flags & net::flag_bit(net::TcpFlag::kRst)) != 0) {
        ++counters.backscatter;
        return FrameClass::kBackscatter;
      }
      ++counters.other_tcp;
      return FrameClass::kOtherTcp;
    }
    // Truncated TCP header: decode_tcp would fail, leaving no transport.
  } else if (!later_fragment &&
             protocol == static_cast<std::uint8_t>(net::IpProtocol::kUdp) &&
             transport_size >= net::UdpHeader::kSize) {
    if (net::load_be16(transport + 4) >= net::UdpHeader::kSize) {
      ++counters.udp;
      return FrameClass::kUdp;
    }
    // A UDP length below 8 fails decode_udp: no transport header.
  } else if (!later_fragment &&
             protocol == static_cast<std::uint8_t>(net::IpProtocol::kIcmp) &&
             transport_size >= net::IcmpHeader::kSize) {
    ++counters.icmp;
    return FrameClass::kIcmp;
  }
  ++counters.malformed;
  return FrameClass::kMalformed;
}

}  // namespace detail

std::size_t Sensor::classify_batch(std::span<const net::FrameView> frames,
                                   ProbeBatch& out) {
  // Pre-size every column to the worst case (all frames are probes) so
  // classify_raw can write through raw pointers, then trim to the actual
  // probe count. clear() retains capacity, so a recycled batch re-sizes
  // without reallocating.
  const auto before = out.size();
  const auto limit = before + frames.size();
  out.timestamp_us.resize(limit);
  out.source.resize(limit);
  out.destination.resize(limit);
  out.source_port.resize(limit);
  out.destination_port.resize(limit);
  out.sequence.resize(limit);
  out.acknowledgment.resize(limit);
  out.ip_id.resize(limit);
  out.window.resize(limit);
  out.ttl.resize(limit);
  detail::ProbeCursor cursor{out.timestamp_us.data() + before,
                             out.source.data() + before,
                             out.destination.data() + before,
                             out.source_port.data() + before,
                             out.destination_port.data() + before,
                             out.sequence.data() + before,
                             out.acknowledgment.data() + before,
                             out.ip_id.data() + before,
                             out.window.data() + before,
                             out.ttl.data() + before};
  // Widest kernel the host (and SYNSCAN_SIMD) allows; every tier is
  // bit-identical to the scalar loop — the kernels fall back to
  // classify_raw per frame for anything their predicates cannot prove.
  switch (simd::active_level()) {
    case simd::SimdLevel::kAvx2:
      detail::classify_frames_avx2(*telescope_, frames, counters_, cursor, simd_rows_);
      break;
    case simd::SimdLevel::kSse2:
      detail::classify_frames_sse2(*telescope_, frames, counters_, cursor, simd_rows_);
      break;
    case simd::SimdLevel::kScalar:
      for (const auto& frame : frames) {
        detail::classify_raw(*telescope_, frame.timestamp_us, frame.bytes, counters_,
                             cursor);
      }
      break;
  }
  const auto count = before + cursor.count;
  out.timestamp_us.resize(count);
  out.source.resize(count);
  out.destination.resize(count);
  out.source_port.resize(count);
  out.destination_port.resize(count);
  out.sequence.resize(count);
  out.acknowledgment.resize(count);
  out.ip_id.resize(count);
  out.window.resize(count);
  out.ttl.resize(count);
  return cursor.count;
}

}  // namespace synscan::telescope
