#include "net/ipv4.h"

#include <array>
#include <charconv>

namespace synscan::net {
namespace {

// Parses a decimal octet (0..255) from the front of `text`, advancing it.
// Rejects empty fields and leading '+'/'-'; allows leading zeros as the
// common tools do.
std::optional<std::uint8_t> take_octet(std::string_view& text) {
  if (text.empty() || text.front() < '0' || text.front() > '9') return std::nullopt;
  unsigned value = 0;
  std::size_t used = 0;
  while (used < text.size() && text[used] >= '0' && text[used] <= '9') {
    value = value * 10 + static_cast<unsigned>(text[used] - '0');
    if (value > 255) return std::nullopt;
    ++used;
    if (used > 3) return std::nullopt;
  }
  text.remove_prefix(used);
  return static_cast<std::uint8_t>(value);
}

}  // namespace

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  std::array<std::uint8_t, 4> octets{};
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (text.empty() || text.front() != '.') return std::nullopt;
      text.remove_prefix(1);
    }
    const auto octet = take_octet(text);
    if (!octet) return std::nullopt;
    octets[static_cast<std::size_t>(i)] = *octet;
  }
  if (!text.empty()) return std::nullopt;
  return from_octets(octets[0], octets[1], octets[2], octets[3]);
}

std::string Ipv4Address::to_string() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(static_cast<unsigned>(octet(i)));
  }
  return out;
}

std::optional<Ipv4Prefix> Ipv4Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto base = Ipv4Address::parse(text.substr(0, slash));
  if (!base) return std::nullopt;
  const auto len_text = text.substr(slash + 1);
  int len = 0;
  const auto [ptr, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(), len);
  if (ec != std::errc{} || ptr != len_text.data() + len_text.size()) return std::nullopt;
  if (len < 0 || len > 32) return std::nullopt;
  return Ipv4Prefix(*base, len);
}

std::string Ipv4Prefix::to_string() const {
  return base_.to_string() + "/" + std::to_string(length_);
}

}  // namespace synscan::net
