#include "net/packet.h"

#include "net/checksum.h"
#include "net/endian.h"

namespace synscan::net {

std::optional<DecodedFrame> decode_frame(std::span<const std::uint8_t> frame) noexcept {
  const auto eth = decode_ethernet(frame);
  if (!eth || !eth->is_ipv4()) return std::nullopt;
  const auto ip_bytes = frame.subspan(EthernetHeader::kSize);
  const auto ip = decode_ipv4(ip_bytes);
  if (!ip) return std::nullopt;

  DecodedFrame out;
  out.ethernet = *eth;
  out.ip = *ip;

  if (ip->is_later_fragment()) return out;  // no transport header present

  // The IP total_length may be smaller than the captured bytes (padding to
  // the Ethernet minimum); trust the smaller of the two.
  const auto declared = static_cast<std::size_t>(ip->total_length);
  const auto available = std::min(ip_bytes.size(), declared);
  if (available < ip->header_length()) return out;
  const auto transport_bytes = ip_bytes.subspan(ip->header_length(),
                                                available - ip->header_length());

  switch (static_cast<IpProtocol>(ip->protocol)) {
    case IpProtocol::kTcp:
      if (const auto tcp = decode_tcp(transport_bytes)) {
        out.transport = *tcp;
        out.payload_length = transport_bytes.size() - tcp->header_length();
      }
      break;
    case IpProtocol::kUdp:
      if (const auto udp = decode_udp(transport_bytes)) {
        out.transport = *udp;
        out.payload_length = transport_bytes.size() - UdpHeader::kSize;
      }
      break;
    case IpProtocol::kIcmp:
      if (const auto icmp = decode_icmp(transport_bytes)) {
        out.transport = *icmp;
        out.payload_length = transport_bytes.size() - IcmpHeader::kSize;
      }
      break;
  }
  return out;
}

std::vector<std::uint8_t> build_tcp_frame(const TcpFrameSpec& spec) {
  std::vector<std::uint8_t> frame;
  frame.reserve(EthernetHeader::kSize + Ipv4Header::kMinSize + TcpHeader::kMinSize +
                spec.payload.size());

  EthernetHeader eth;
  eth.destination = spec.dst_mac;
  eth.source = spec.src_mac;
  eth.ether_type = static_cast<std::uint16_t>(EtherType::kIpv4);
  encode_ethernet(eth, frame);

  const std::size_t segment_length = TcpHeader::kMinSize + spec.payload.size();

  Ipv4Header ip;
  ip.total_length = static_cast<std::uint16_t>(Ipv4Header::kMinSize + segment_length);
  ip.identification = spec.ip_id;
  ip.dont_fragment = true;
  ip.ttl = spec.ttl;
  ip.protocol = static_cast<std::uint8_t>(IpProtocol::kTcp);
  ip.source = spec.src_ip;
  ip.destination = spec.dst_ip;
  encode_ipv4(ip, frame);

  TcpHeader tcp;
  tcp.source_port = spec.src_port;
  tcp.destination_port = spec.dst_port;
  tcp.sequence = spec.sequence;
  tcp.acknowledgment = spec.acknowledgment;
  tcp.flags = spec.flags;
  tcp.window = spec.window;
  const std::size_t tcp_offset = frame.size();
  encode_tcp(tcp, frame);
  frame.insert(frame.end(), spec.payload.begin(), spec.payload.end());

  const std::span<const std::uint8_t> segment{frame.data() + tcp_offset, segment_length};
  const auto checksum =
      transport_checksum(spec.src_ip, spec.dst_ip,
                         static_cast<std::uint8_t>(IpProtocol::kTcp), segment);
  store_be16(frame.data() + tcp_offset + 16, checksum);
  return frame;
}

std::vector<std::uint8_t> build_udp_frame(const UdpFrameSpec& spec) {
  std::vector<std::uint8_t> frame;
  frame.reserve(EthernetHeader::kSize + Ipv4Header::kMinSize + UdpHeader::kSize +
                spec.payload.size());

  EthernetHeader eth;
  eth.destination = spec.dst_mac;
  eth.source = spec.src_mac;
  eth.ether_type = static_cast<std::uint16_t>(EtherType::kIpv4);
  encode_ethernet(eth, frame);

  const std::size_t segment_length = UdpHeader::kSize + spec.payload.size();

  Ipv4Header ip;
  ip.total_length = static_cast<std::uint16_t>(Ipv4Header::kMinSize + segment_length);
  ip.identification = spec.ip_id;
  ip.dont_fragment = true;
  ip.ttl = spec.ttl;
  ip.protocol = static_cast<std::uint8_t>(IpProtocol::kUdp);
  ip.source = spec.src_ip;
  ip.destination = spec.dst_ip;
  encode_ipv4(ip, frame);

  UdpHeader udp;
  udp.source_port = spec.src_port;
  udp.destination_port = spec.dst_port;
  udp.length = static_cast<std::uint16_t>(segment_length);
  const std::size_t udp_offset = frame.size();
  encode_udp(udp, frame);
  frame.insert(frame.end(), spec.payload.begin(), spec.payload.end());

  const std::span<const std::uint8_t> segment{frame.data() + udp_offset, segment_length};
  const auto checksum =
      transport_checksum(spec.src_ip, spec.dst_ip,
                         static_cast<std::uint8_t>(IpProtocol::kUdp), segment);
  store_be16(frame.data() + udp_offset + 6, checksum);
  return frame;
}

bool verify_tcp_checksum(std::span<const std::uint8_t> frame) noexcept {
  const auto decoded = decode_frame(frame);
  if (!decoded || !decoded->tcp()) return false;
  const auto& ip = decoded->ip;
  // total_length comes off the wire; a corrupted value must not steer the
  // span past the captured frame (or below the IP header).
  if (ip.total_length < ip.header_length()) return false;
  const auto segment_length = static_cast<std::size_t>(ip.total_length) - ip.header_length();
  const auto segment_offset = EthernetHeader::kSize + ip.header_length();
  if (segment_length > frame.size() - segment_offset) return false;
  const auto segment = frame.subspan(segment_offset, segment_length);
  // Including the stored checksum, the one's-complement sum must fold to 0.
  ChecksumAccumulator acc;
  acc.add_dword(ip.source.value());
  acc.add_dword(ip.destination.value());
  acc.add_word(ip.protocol);
  acc.add_word(static_cast<std::uint16_t>(segment.size()));
  acc.add(segment);
  return acc.finish() == 0;
}

}  // namespace synscan::net
