// Whole-frame decode and build on top of the header codecs.
//
// The decode path turns a raw Ethernet frame into a `DecodedFrame` of
// value-type headers; the build path crafts byte-exact frames (correct
// lengths and checksums) so simulator output is indistinguishable, at the
// parser level, from real capture data.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "net/headers.h"

namespace synscan::net {

/// Microseconds since the Unix epoch; the native timestamp unit of both
/// pcap files and this library.
using TimeUs = std::int64_t;

inline constexpr TimeUs kMicrosPerSecond = 1'000'000;
inline constexpr TimeUs kMicrosPerMinute = 60 * kMicrosPerSecond;
inline constexpr TimeUs kMicrosPerHour = 60 * kMicrosPerMinute;
inline constexpr TimeUs kMicrosPerDay = 24 * kMicrosPerHour;
inline constexpr TimeUs kMicrosPerWeek = 7 * kMicrosPerDay;

/// A captured frame: capture timestamp plus the raw bytes.
struct RawFrame {
  TimeUs timestamp_us = 0;
  std::vector<std::uint8_t> bytes;
};

/// A non-owning view of a captured frame — e.g. directly into an mmap'd
/// capture file. The viewed bytes must outlive the view; batch consumers
/// (`telescope::Sensor::classify_batch`) copy out only the probe fields.
struct FrameView {
  TimeUs timestamp_us = 0;
  std::span<const std::uint8_t> bytes;
};

/// A borrowing view of an owned frame.
[[nodiscard]] inline FrameView as_view(const RawFrame& frame) noexcept {
  return {frame.timestamp_us, frame.bytes};
}

/// A fully decoded IPv4-over-Ethernet frame. The transport member holds
/// whichever header the IP protocol field announced; frames with other
/// protocols decode with `transport` left as `std::monostate`.
struct DecodedFrame {
  EthernetHeader ethernet;
  Ipv4Header ip;
  std::variant<std::monostate, TcpHeader, UdpHeader, IcmpHeader> transport;
  std::size_t payload_length = 0;  ///< transport payload bytes present

  [[nodiscard]] const TcpHeader* tcp() const noexcept {
    return std::get_if<TcpHeader>(&transport);
  }
  [[nodiscard]] const UdpHeader* udp() const noexcept {
    return std::get_if<UdpHeader>(&transport);
  }
  [[nodiscard]] const IcmpHeader* icmp() const noexcept {
    return std::get_if<IcmpHeader>(&transport);
  }
};

/// Decodes an Ethernet frame down to the transport header. Returns
/// nullopt when the frame is not well-formed IPv4 (wrong EtherType,
/// truncated network header). A valid IPv4 frame whose transport header
/// is truncated or unknown still decodes, with `transport` empty, so the
/// sensor can count it as unclassified radiation.
[[nodiscard]] std::optional<DecodedFrame> decode_frame(
    std::span<const std::uint8_t> frame) noexcept;

/// Parameters for crafting a TCP probe frame.
struct TcpFrameSpec {
  MacAddress src_mac = MacAddress::local(1);
  MacAddress dst_mac = MacAddress::local(2);
  Ipv4Address src_ip;
  Ipv4Address dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t sequence = 0;
  std::uint32_t acknowledgment = 0;
  std::uint8_t flags = flag_bit(TcpFlag::kSyn);
  std::uint16_t window = 65535;
  std::uint16_t ip_id = 0;
  std::uint8_t ttl = 64;
  std::vector<std::uint8_t> payload;
};

/// Builds a byte-exact Ethernet/IPv4/TCP frame: correct total length,
/// IPv4 header checksum and TCP pseudo-header checksum.
[[nodiscard]] std::vector<std::uint8_t> build_tcp_frame(const TcpFrameSpec& spec);

/// Builds an Ethernet/IPv4/UDP frame (used for non-scan background noise).
struct UdpFrameSpec {
  MacAddress src_mac = MacAddress::local(1);
  MacAddress dst_mac = MacAddress::local(2);
  Ipv4Address src_ip;
  Ipv4Address dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t ip_id = 0;
  std::uint8_t ttl = 64;
  std::vector<std::uint8_t> payload;
};

[[nodiscard]] std::vector<std::uint8_t> build_udp_frame(const UdpFrameSpec& spec);

/// Verifies the transport checksum of a decoded TCP frame against the raw
/// bytes (used by tests and by strict-mode sensing).
[[nodiscard]] bool verify_tcp_checksum(std::span<const std::uint8_t> frame) noexcept;

}  // namespace synscan::net
