#include "net/headers.h"

#include "net/checksum.h"
#include "net/endian.h"

namespace synscan::net {

std::optional<EthernetHeader> decode_ethernet(std::span<const std::uint8_t> frame) noexcept {
  if (frame.size() < EthernetHeader::kSize) return std::nullopt;
  EthernetHeader h;
  std::array<std::uint8_t, 6> dst{};
  std::array<std::uint8_t, 6> src{};
  for (std::size_t i = 0; i < 6; ++i) {
    dst[i] = frame[i];
    src[i] = frame[6 + i];
  }
  h.destination = MacAddress(dst);
  h.source = MacAddress(src);
  h.ether_type = load_be16(frame.data() + 12);
  return h;
}

void encode_ethernet(const EthernetHeader& header, std::vector<std::uint8_t>& out) {
  const auto base = out.size();
  out.resize(base + EthernetHeader::kSize);
  auto* p = out.data() + base;
  for (std::size_t i = 0; i < 6; ++i) {
    p[i] = header.destination.octets()[i];
    p[6 + i] = header.source.octets()[i];
  }
  store_be16(p + 12, header.ether_type);
}

std::optional<Ipv4Header> decode_ipv4(std::span<const std::uint8_t> data,
                                      bool verify_checksum) noexcept {
  if (data.size() < Ipv4Header::kMinSize) return std::nullopt;
  Ipv4Header h;
  h.version = data[0] >> 4;
  h.ihl = data[0] & 0x0f;
  if (h.version != 4 || h.ihl < 5) return std::nullopt;
  if (data.size() < h.header_length()) return std::nullopt;
  h.dscp_ecn = data[1];
  h.total_length = load_be16(data.data() + 2);
  if (h.total_length < h.header_length()) return std::nullopt;
  h.identification = load_be16(data.data() + 4);
  const std::uint16_t frag = load_be16(data.data() + 6);
  h.dont_fragment = (frag & 0x4000) != 0;
  h.more_fragments = (frag & 0x2000) != 0;
  h.fragment_offset = frag & 0x1fff;
  h.ttl = data[8];
  h.protocol = data[9];
  h.header_checksum = load_be16(data.data() + 10);
  h.source = Ipv4Address(load_be32(data.data() + 12));
  h.destination = Ipv4Address(load_be32(data.data() + 16));
  if (verify_checksum) {
    // Checksum over the header with the checksum field included must fold
    // to zero (its one's-complement sum equals 0xffff).
    ChecksumAccumulator acc;
    acc.add(data.first(h.header_length()));
    if (acc.finish() != 0) return std::nullopt;
  }
  return h;
}

void encode_ipv4(const Ipv4Header& header, std::vector<std::uint8_t>& out) {
  const auto base = out.size();
  const auto len = header.header_length();
  out.resize(base + len, 0);
  auto* p = out.data() + base;
  p[0] = static_cast<std::uint8_t>((header.version << 4) | (header.ihl & 0x0f));
  p[1] = header.dscp_ecn;
  store_be16(p + 2, header.total_length);
  store_be16(p + 4, header.identification);
  std::uint16_t frag = header.fragment_offset & 0x1fff;
  if (header.dont_fragment) frag |= 0x4000;
  if (header.more_fragments) frag |= 0x2000;
  store_be16(p + 6, frag);
  p[8] = header.ttl;
  p[9] = header.protocol;
  store_be16(p + 10, 0);  // checksum computed below
  store_be32(p + 12, header.source.value());
  store_be32(p + 16, header.destination.value());
  const auto checksum = internet_checksum({p, len});
  store_be16(p + 10, checksum);
}

std::optional<TcpHeader> decode_tcp(std::span<const std::uint8_t> data) noexcept {
  if (data.size() < TcpHeader::kMinSize) return std::nullopt;
  TcpHeader h;
  h.source_port = load_be16(data.data());
  h.destination_port = load_be16(data.data() + 2);
  h.sequence = load_be32(data.data() + 4);
  h.acknowledgment = load_be32(data.data() + 8);
  h.data_offset = data[12] >> 4;
  if (h.data_offset < 5) return std::nullopt;
  if (data.size() < h.header_length()) return std::nullopt;
  h.flags = data[13] & 0x3f;
  h.window = load_be16(data.data() + 14);
  h.checksum = load_be16(data.data() + 16);
  h.urgent_pointer = load_be16(data.data() + 18);
  return h;
}

void encode_tcp(const TcpHeader& header, std::vector<std::uint8_t>& out) {
  const auto base = out.size();
  const auto len = header.header_length();
  out.resize(base + len, 0);
  auto* p = out.data() + base;
  store_be16(p, header.source_port);
  store_be16(p + 2, header.destination_port);
  store_be32(p + 4, header.sequence);
  store_be32(p + 8, header.acknowledgment);
  p[12] = static_cast<std::uint8_t>(header.data_offset << 4);
  p[13] = header.flags & 0x3f;
  store_be16(p + 14, header.window);
  store_be16(p + 16, header.checksum);
  store_be16(p + 18, header.urgent_pointer);
}

std::optional<UdpHeader> decode_udp(std::span<const std::uint8_t> data) noexcept {
  if (data.size() < UdpHeader::kSize) return std::nullopt;
  UdpHeader h;
  h.source_port = load_be16(data.data());
  h.destination_port = load_be16(data.data() + 2);
  h.length = load_be16(data.data() + 4);
  if (h.length < UdpHeader::kSize) return std::nullopt;
  h.checksum = load_be16(data.data() + 6);
  return h;
}

void encode_udp(const UdpHeader& header, std::vector<std::uint8_t>& out) {
  const auto base = out.size();
  out.resize(base + UdpHeader::kSize);
  auto* p = out.data() + base;
  store_be16(p, header.source_port);
  store_be16(p + 2, header.destination_port);
  store_be16(p + 4, header.length);
  store_be16(p + 6, header.checksum);
}

std::optional<IcmpHeader> decode_icmp(std::span<const std::uint8_t> data) noexcept {
  if (data.size() < IcmpHeader::kSize) return std::nullopt;
  IcmpHeader h;
  h.type = data[0];
  h.code = data[1];
  h.checksum = load_be16(data.data() + 2);
  h.rest = load_be32(data.data() + 4);
  return h;
}

void encode_icmp(const IcmpHeader& header, std::vector<std::uint8_t>& out) {
  const auto base = out.size();
  out.resize(base + IcmpHeader::kSize);
  auto* p = out.data() + base;
  p[0] = header.type;
  p[1] = header.code;
  store_be16(p + 2, header.checksum);
  store_be32(p + 4, header.rest);
}

}  // namespace synscan::net
