// Wire-format codecs for the protocol headers the telescope sees.
//
// Each header is a plain value struct with `encode`/`decode` functions.
// Decoding is total: malformed or truncated input yields `std::nullopt`
// rather than throwing, because the hot path of a telescope is parsing
// billions of frames of untrusted input.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/ipv4.h"
#include "net/mac.h"

namespace synscan::net {

// ---------------------------------------------------------------------------
// Ethernet II
// ---------------------------------------------------------------------------

/// EtherType values this library interprets.
enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,
  kArp = 0x0806,
  kVlan = 0x8100,
  kIpv6 = 0x86dd,
};

struct EthernetHeader {
  static constexpr std::size_t kSize = 14;

  MacAddress destination;
  MacAddress source;
  std::uint16_t ether_type = 0;

  [[nodiscard]] bool is_ipv4() const noexcept {
    return ether_type == static_cast<std::uint16_t>(EtherType::kIpv4);
  }
};

/// Decodes an Ethernet II header from the front of `frame`.
[[nodiscard]] std::optional<EthernetHeader> decode_ethernet(
    std::span<const std::uint8_t> frame) noexcept;

/// Appends the 14-byte encoding of `header` to `out`.
void encode_ethernet(const EthernetHeader& header, std::vector<std::uint8_t>& out);

// ---------------------------------------------------------------------------
// IPv4
// ---------------------------------------------------------------------------

/// Protocol numbers relevant to scan analysis.
enum class IpProtocol : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

struct Ipv4Header {
  static constexpr std::size_t kMinSize = 20;

  std::uint8_t version = 4;
  std::uint8_t ihl = 5;  ///< header length in 32-bit words (5..15)
  std::uint8_t dscp_ecn = 0;
  std::uint16_t total_length = 0;
  std::uint16_t identification = 0;  ///< the IP-ID field ZMap/Masscan mark
  bool dont_fragment = false;
  bool more_fragments = false;
  std::uint16_t fragment_offset = 0;  ///< in 8-byte units
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  std::uint16_t header_checksum = 0;
  Ipv4Address source;
  Ipv4Address destination;

  [[nodiscard]] std::size_t header_length() const noexcept {
    return static_cast<std::size_t>(ihl) * 4;
  }
  [[nodiscard]] bool is_tcp() const noexcept {
    return protocol == static_cast<std::uint8_t>(IpProtocol::kTcp);
  }
  [[nodiscard]] bool is_udp() const noexcept {
    return protocol == static_cast<std::uint8_t>(IpProtocol::kUdp);
  }
  /// True if this datagram is a fragment other than the first; such frames
  /// carry no transport header and are skipped by the sensor.
  [[nodiscard]] bool is_later_fragment() const noexcept { return fragment_offset != 0; }
};

/// Decodes and validates an IPv4 header from the front of `data`.
/// Rejects: short input, version != 4, ihl < 5, total_length smaller than
/// the header, or a header checksum mismatch (when `verify_checksum`).
[[nodiscard]] std::optional<Ipv4Header> decode_ipv4(std::span<const std::uint8_t> data,
                                                    bool verify_checksum = false) noexcept;

/// Appends the (ihl*4)-byte encoding to `out`, computing the checksum.
/// Options beyond the fixed 20 bytes are zero-filled.
void encode_ipv4(const Ipv4Header& header, std::vector<std::uint8_t>& out);

// ---------------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------------

/// TCP control flags, combinable as a bitmask.
enum class TcpFlag : std::uint8_t {
  kFin = 0x01,
  kSyn = 0x02,
  kRst = 0x04,
  kPsh = 0x08,
  kAck = 0x10,
  kUrg = 0x20,
};

[[nodiscard]] constexpr std::uint8_t flag_bit(TcpFlag f) noexcept {
  return static_cast<std::uint8_t>(f);
}

struct TcpHeader {
  static constexpr std::size_t kMinSize = 20;

  std::uint16_t source_port = 0;
  std::uint16_t destination_port = 0;
  std::uint32_t sequence = 0;
  std::uint32_t acknowledgment = 0;
  std::uint8_t data_offset = 5;  ///< header length in 32-bit words (5..15)
  std::uint8_t flags = 0;
  std::uint16_t window = 0;
  std::uint16_t checksum = 0;
  std::uint16_t urgent_pointer = 0;

  [[nodiscard]] bool has(TcpFlag f) const noexcept { return (flags & flag_bit(f)) != 0; }

  /// The telescope's scan predicate: SYN set, ACK clear. A SYN/ACK is
  /// backscatter from a spoofed-source attack, not a probe.
  [[nodiscard]] bool is_syn_probe() const noexcept {
    return has(TcpFlag::kSyn) && !has(TcpFlag::kAck);
  }
  [[nodiscard]] bool is_syn_ack() const noexcept {
    return has(TcpFlag::kSyn) && has(TcpFlag::kAck);
  }
  /// All control bits lit ("XMAS" probe).
  [[nodiscard]] bool is_xmas() const noexcept { return (flags & 0x3f) == 0x3f; }
  /// No control bits at all ("NULL" probe).
  [[nodiscard]] bool is_null() const noexcept { return (flags & 0x3f) == 0; }

  [[nodiscard]] std::size_t header_length() const noexcept {
    return static_cast<std::size_t>(data_offset) * 4;
  }
};

/// Decodes a TCP header from the front of `data`. Rejects short input and
/// data offsets below 5 words or beyond the available bytes.
[[nodiscard]] std::optional<TcpHeader> decode_tcp(std::span<const std::uint8_t> data) noexcept;

/// Appends the (data_offset*4)-byte encoding to `out`; the checksum field
/// is emitted as stored (call `transport_checksum` to fill it properly).
void encode_tcp(const TcpHeader& header, std::vector<std::uint8_t>& out);

// ---------------------------------------------------------------------------
// UDP (decoded so the sensor can account for non-TCP background radiation)
// ---------------------------------------------------------------------------

struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint16_t source_port = 0;
  std::uint16_t destination_port = 0;
  std::uint16_t length = 0;
  std::uint16_t checksum = 0;
};

[[nodiscard]] std::optional<UdpHeader> decode_udp(std::span<const std::uint8_t> data) noexcept;
void encode_udp(const UdpHeader& header, std::vector<std::uint8_t>& out);

// ---------------------------------------------------------------------------
// ICMP (backscatter such as dest-unreachable also reaches telescopes)
// ---------------------------------------------------------------------------

struct IcmpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint8_t type = 0;
  std::uint8_t code = 0;
  std::uint16_t checksum = 0;
  std::uint32_t rest = 0;  ///< type-specific (id/seq, gateway, unused)
};

[[nodiscard]] std::optional<IcmpHeader> decode_icmp(std::span<const std::uint8_t> data) noexcept;
void encode_icmp(const IcmpHeader& header, std::vector<std::uint8_t>& out);

}  // namespace synscan::net
