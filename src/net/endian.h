// Byte-order helpers for wire formats.
//
// All multi-byte fields in the Internet protocol suite are big-endian
// ("network byte order"). These helpers read and write integers at
// arbitrary (unaligned) byte offsets, which is required when walking raw
// frames: header fields are not naturally aligned once link-layer headers
// of odd sizes are involved.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>

namespace synscan::net {

/// Reads a big-endian 16-bit integer starting at `p[0]`.
[[nodiscard]] constexpr std::uint16_t load_be16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>((static_cast<std::uint16_t>(p[0]) << 8) |
                                    static_cast<std::uint16_t>(p[1]));
}

/// Reads a big-endian 32-bit integer starting at `p[0]`.
[[nodiscard]] constexpr std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

/// Writes `v` as a big-endian 16-bit integer at `p[0..1]`.
constexpr void store_be16(std::uint8_t* p, std::uint16_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v & 0xff);
}

/// Writes `v` as a big-endian 32-bit integer at `p[0..3]`.
constexpr void store_be32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>((v >> 16) & 0xff);
  p[2] = static_cast<std::uint8_t>((v >> 8) & 0xff);
  p[3] = static_cast<std::uint8_t>(v & 0xff);
}

/// Reads a little-endian 16-bit integer (pcap file headers are host-order;
/// we normalize through explicit little/big readers keyed on the magic).
[[nodiscard]] constexpr std::uint16_t load_le16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(p[0]) |
                                    (static_cast<std::uint16_t>(p[1]) << 8));
}

/// Reads a little-endian 32-bit integer.
[[nodiscard]] constexpr std::uint32_t load_le32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

/// Writes `v` as a little-endian 16-bit integer.
constexpr void store_le16(std::uint8_t* p, std::uint16_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v & 0xff);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

/// Writes `v` as a little-endian 32-bit integer.
constexpr void store_le32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v & 0xff);
  p[1] = static_cast<std::uint8_t>((v >> 8) & 0xff);
  p[2] = static_cast<std::uint8_t>((v >> 16) & 0xff);
  p[3] = static_cast<std::uint8_t>((v >> 24) & 0xff);
}

/// Reads a little-endian 64-bit integer (probe-cache columns are
/// little-endian on disk regardless of host order).
[[nodiscard]] constexpr std::uint64_t load_le64(const std::uint8_t* p) noexcept {
  return static_cast<std::uint64_t>(load_le32(p)) |
         (static_cast<std::uint64_t>(load_le32(p + 4)) << 32);
}

/// Writes `v` as a little-endian 64-bit integer.
constexpr void store_le64(std::uint8_t* p, std::uint64_t v) noexcept {
  store_le32(p, static_cast<std::uint32_t>(v & 0xffffffffu));
  store_le32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

}  // namespace synscan::net
