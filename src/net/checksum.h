// RFC 1071 Internet checksum and the TCP/UDP pseudo-header variant.
#pragma once

#include <cstdint>
#include <span>

#include "net/ipv4.h"

namespace synscan::net {

/// Incremental one's-complement sum. Feed byte ranges (and pseudo-header
/// words), then call `finish()` for the folded, inverted 16-bit checksum.
class ChecksumAccumulator {
 public:
  /// Adds a raw byte range. Ranges of odd length are only valid as the
  /// final contribution (the trailing byte is padded per RFC 1071).
  void add(std::span<const std::uint8_t> bytes) noexcept;

  /// Adds a single 16-bit word in host order.
  void add_word(std::uint16_t word) noexcept { sum_ += word; }

  /// Adds a 32-bit value as two 16-bit words (for pseudo-header addresses).
  void add_dword(std::uint32_t dword) noexcept {
    add_word(static_cast<std::uint16_t>(dword >> 16));
    add_word(static_cast<std::uint16_t>(dword & 0xffff));
  }

  /// Folds carries and returns the one's-complement of the sum.
  [[nodiscard]] std::uint16_t finish() const noexcept;

 private:
  std::uint64_t sum_ = 0;
};

/// Checksum of a contiguous range (e.g. an IPv4 header with its checksum
/// field zeroed).
[[nodiscard]] std::uint16_t internet_checksum(std::span<const std::uint8_t> bytes) noexcept;

/// TCP/UDP checksum over the IPv4 pseudo-header plus the transport
/// segment. `segment` must already contain a zeroed checksum field.
[[nodiscard]] std::uint16_t transport_checksum(Ipv4Address src, Ipv4Address dst,
                                               std::uint8_t protocol,
                                               std::span<const std::uint8_t> segment) noexcept;

}  // namespace synscan::net
