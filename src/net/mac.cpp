#include "net/mac.h"

namespace synscan::net {
namespace {

std::optional<unsigned> hex_digit(char c) {
  if (c >= '0' && c <= '9') return static_cast<unsigned>(c - '0');
  if (c >= 'a' && c <= 'f') return static_cast<unsigned>(c - 'a' + 10);
  if (c >= 'A' && c <= 'F') return static_cast<unsigned>(c - 'A' + 10);
  return std::nullopt;
}

}  // namespace

std::optional<MacAddress> MacAddress::parse(std::string_view text) {
  std::array<std::uint8_t, 6> octets{};
  std::size_t pos = 0;
  for (int i = 0; i < 6; ++i) {
    if (i > 0) {
      if (pos >= text.size() || text[pos] != ':') return std::nullopt;
      ++pos;
    }
    if (pos + 2 > text.size()) return std::nullopt;
    const auto hi = hex_digit(text[pos]);
    const auto lo = hex_digit(text[pos + 1]);
    if (!hi || !lo) return std::nullopt;
    octets[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>((*hi << 4) | *lo);
    pos += 2;
  }
  if (pos != text.size()) return std::nullopt;
  return MacAddress(octets);
}

std::string MacAddress::to_string() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(17);
  for (int i = 0; i < 6; ++i) {
    if (i > 0) out.push_back(':');
    const auto b = octets_[static_cast<std::size_t>(i)];
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

}  // namespace synscan::net
