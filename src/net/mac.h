// Ethernet MAC address value type.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace synscan::net {

/// A 48-bit Ethernet hardware address.
class MacAddress {
 public:
  constexpr MacAddress() noexcept = default;
  constexpr explicit MacAddress(std::array<std::uint8_t, 6> octets) noexcept
      : octets_(octets) {}

  /// Parses colon-separated hex notation ("02:00:5e:10:00:01").
  [[nodiscard]] static std::optional<MacAddress> parse(std::string_view text);

  [[nodiscard]] constexpr const std::array<std::uint8_t, 6>& octets() const noexcept {
    return octets_;
  }

  /// Locally-administered unicast address derived from a small integer;
  /// used by the simulator to give each emitted frame a plausible source.
  [[nodiscard]] static constexpr MacAddress local(std::uint32_t id) noexcept {
    return MacAddress({0x02, 0x00, static_cast<std::uint8_t>(id >> 24),
                       static_cast<std::uint8_t>(id >> 16),
                       static_cast<std::uint8_t>(id >> 8),
                       static_cast<std::uint8_t>(id)});
  }

  [[nodiscard]] constexpr bool is_broadcast() const noexcept {
    for (const auto b : octets_) {
      if (b != 0xff) return false;
    }
    return true;
  }

  /// Group bit (least-significant bit of the first octet).
  [[nodiscard]] constexpr bool is_multicast() const noexcept {
    return (octets_[0] & 0x01) != 0;
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const MacAddress&, const MacAddress&) noexcept = default;

 private:
  std::array<std::uint8_t, 6> octets_{};
};

}  // namespace synscan::net
