#include "net/checksum.h"

#include "net/endian.h"

namespace synscan::net {

void ChecksumAccumulator::add(std::span<const std::uint8_t> bytes) noexcept {
  std::size_t i = 0;
  for (; i + 1 < bytes.size(); i += 2) {
    sum_ += load_be16(bytes.data() + i);
  }
  if (i < bytes.size()) {
    // Odd trailing byte: pad with a zero byte on the right.
    sum_ += static_cast<std::uint64_t>(bytes[i]) << 8;
  }
}

std::uint16_t ChecksumAccumulator::finish() const noexcept {
  std::uint64_t sum = sum_;
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> bytes) noexcept {
  ChecksumAccumulator acc;
  acc.add(bytes);
  return acc.finish();
}

std::uint16_t transport_checksum(Ipv4Address src, Ipv4Address dst, std::uint8_t protocol,
                                 std::span<const std::uint8_t> segment) noexcept {
  ChecksumAccumulator acc;
  acc.add_dword(src.value());
  acc.add_dword(dst.value());
  acc.add_word(protocol);
  acc.add_word(static_cast<std::uint16_t>(segment.size()));
  acc.add(segment);
  return acc.finish();
}

}  // namespace synscan::net
