// IPv4 address and CIDR prefix value types.
//
// Addresses are stored as host-order 32-bit integers so that arithmetic
// (prefix containment, iteration over ranges, /16 bucketing) is natural;
// conversion to and from network byte order happens only at the wire
// boundary in the header codecs.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace synscan::net {

/// An IPv4 address as a host-order integer value type.
class Ipv4Address {
 public:
  constexpr Ipv4Address() noexcept = default;
  constexpr explicit Ipv4Address(std::uint32_t host_order) noexcept : value_(host_order) {}

  /// Builds an address from its four dotted-quad octets, `a.b.c.d`.
  [[nodiscard]] static constexpr Ipv4Address from_octets(std::uint8_t a, std::uint8_t b,
                                                         std::uint8_t c, std::uint8_t d) noexcept {
    return Ipv4Address((static_cast<std::uint32_t>(a) << 24) |
                       (static_cast<std::uint32_t>(b) << 16) |
                       (static_cast<std::uint32_t>(c) << 8) | static_cast<std::uint32_t>(d));
  }

  /// Parses dotted-quad notation ("192.0.2.1"). Returns nullopt on any
  /// syntax error: missing octets, values > 255, stray characters.
  [[nodiscard]] static std::optional<Ipv4Address> parse(std::string_view text);

  /// The host-order integer value.
  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }

  /// Octet `i` (0 = most significant, e.g. the "192" in 192.0.2.1).
  [[nodiscard]] constexpr std::uint8_t octet(int i) const noexcept {
    return static_cast<std::uint8_t>((value_ >> (24 - 8 * i)) & 0xff);
  }

  /// Dotted-quad rendering, e.g. "192.0.2.1".
  [[nodiscard]] std::string to_string() const;

  /// The enclosing /16 network identifier (upper 16 bits); the paper's
  /// volatility analysis (Fig. 2) buckets sources by /16 netblock.
  [[nodiscard]] constexpr std::uint16_t slash16() const noexcept {
    return static_cast<std::uint16_t>(value_ >> 16);
  }

  /// The enclosing /24 network identifier (upper 24 bits).
  [[nodiscard]] constexpr std::uint32_t slash24() const noexcept { return value_ >> 8; }

  /// True for addresses no Internet-wide scan should emit as a source
  /// (0.0.0.0/8, 127/8, 224/4 multicast, 240/4 reserved, 255.255.255.255).
  [[nodiscard]] constexpr bool is_reserved_source() const noexcept {
    const auto a = octet(0);
    return a == 0 || a == 127 || a >= 224;
  }

  /// RFC 1918 private space (10/8, 172.16/12, 192.168/16).
  [[nodiscard]] constexpr bool is_private() const noexcept {
    return octet(0) == 10 || (octet(0) == 172 && (octet(1) & 0xf0) == 16) ||
           (octet(0) == 192 && octet(1) == 168);
  }

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

/// A CIDR prefix, e.g. 198.51.0.0/16. The base address is canonicalized:
/// host bits below the prefix length are cleared on construction.
class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() noexcept = default;

  /// Builds `base/len`; host bits of `base` below `len` are masked off.
  /// `len` must be in [0, 32].
  constexpr Ipv4Prefix(Ipv4Address base, int len) noexcept
      : base_(Ipv4Address(base.value() & mask_for(len))), length_(len) {}

  /// Parses "a.b.c.d/len". Returns nullopt on syntax errors or len > 32.
  [[nodiscard]] static std::optional<Ipv4Prefix> parse(std::string_view text);

  [[nodiscard]] constexpr Ipv4Address base() const noexcept { return base_; }
  [[nodiscard]] constexpr int length() const noexcept { return length_; }

  /// Number of addresses covered, e.g. 65536 for a /16.
  [[nodiscard]] constexpr std::uint64_t size() const noexcept {
    return std::uint64_t{1} << (32 - length_);
  }

  /// Whether `addr` falls inside this prefix.
  [[nodiscard]] constexpr bool contains(Ipv4Address addr) const noexcept {
    return (addr.value() & mask_for(length_)) == base_.value();
  }

  /// The i-th address of the prefix (0 = network base). `i < size()`.
  [[nodiscard]] constexpr Ipv4Address at(std::uint64_t i) const noexcept {
    return Ipv4Address(base_.value() + static_cast<std::uint32_t>(i));
  }

  /// First address past the prefix (may wrap to 0 for 0.0.0.0/0).
  [[nodiscard]] constexpr Ipv4Address end() const noexcept {
    return Ipv4Address(base_.value() + static_cast<std::uint32_t>(size()));
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Prefix, Ipv4Prefix) noexcept = default;

 private:
  [[nodiscard]] static constexpr std::uint32_t mask_for(int len) noexcept {
    return len == 0 ? 0u : ~std::uint32_t{0} << (32 - len);
  }

  Ipv4Address base_{};
  int length_ = 0;
};

}  // namespace synscan::net

template <>
struct std::hash<synscan::net::Ipv4Address> {
  std::size_t operator()(synscan::net::Ipv4Address a) const noexcept {
    // Fibonacci hashing spreads sequential addresses (the common case in
    // scan traffic) across buckets.
    return static_cast<std::size_t>(a.value()) * 0x9e3779b97f4a7c15ull >> 16;
  }
};
