#include "report/table.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

namespace synscan::report {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::kRight) {
  if (!aligns_.empty()) aligns_[0] = Align::kLeft;
}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::set_align(std::size_t column, Align align) {
  if (column < aligns_.size()) aligns_[column] = align;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const auto& cell = c < cells.size() ? cells[c] : std::string{};
      const auto pad = widths[c] - cell.size();
      if (c > 0) out << "  ";
      if (aligns_[c] == Align::kRight) out << std::string(pad, ' ') << cell;
      else out << cell << std::string(pad, ' ');
    }
    out << '\n';
  };

  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c > 0 ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const Table& table) {
  return os << table.render();
}

std::string percent(double fraction, int decimals) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(decimals);
  out << fraction * 100.0 << '%';
  return out.str();
}

std::string human_count(double value) {
  const char* suffix = "";
  double v = value;
  if (std::fabs(v) >= 1e9) {
    v /= 1e9;
    suffix = " B";
  } else if (std::fabs(v) >= 1e6) {
    v /= 1e6;
    suffix = " M";
  } else if (std::fabs(v) >= 1e3) {
    v /= 1e3;
    suffix = " K";
  }
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(std::fabs(v) >= 100 ? 0 : 1);
  out << v << suffix;
  return out.str();
}

std::string fixed(double value, int decimals) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(decimals);
  out << value;
  return out.str();
}

}  // namespace synscan::report
