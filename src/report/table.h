// Fixed-width ASCII table rendering for bench and example output.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace synscan::report {

/// Column alignment.
enum class Align { kLeft, kRight };

/// A simple text table: set headers, add rows, render. Column widths are
/// computed from content; numeric-looking cells default to right
/// alignment unless overridden.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds one row; missing cells render empty, extra cells are dropped.
  void add_row(std::vector<std::string> cells);

  /// Overrides the alignment of one column.
  void set_align(std::size_t column, Align align);

  /// Renders with a header rule and column separators.
  [[nodiscard]] std::string render() const;

  /// Renders straight to a stream.
  friend std::ostream& operator<<(std::ostream& os, const Table& table);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<Align> aligns_;
};

/// "12.3%" from a fraction; width-stable two-decimal formatting.
[[nodiscard]] std::string percent(double fraction, int decimals = 1);

/// Human-readable count: 12,345,678 -> "12.3 M".
[[nodiscard]] std::string human_count(double value);

/// Fixed-decimal double formatting.
[[nodiscard]] std::string fixed(double value, int decimals = 2);

}  // namespace synscan::report
