#include "report/json.h"

#include <algorithm>
#include <charconv>
#include <concepts>
#include <cstdio>
#include <ostream>
#include <vector>

#include "fingerprint/tool.h"

namespace synscan::report {
namespace {

/// Appends JSON fields to a caller-owned string. Integers format via
/// to_chars; doubles via printf "%g", which is byte-identical to the
/// default ostream formatting the per-field writer used (defaultfloat at
/// precision 6), so downstream diffs of existing reports stay empty.
/// This is the string layer: the daemon serializes a report straight
/// into a client's write buffer through it, no filesystem involved.
class Appender {
 public:
  explicit Appender(std::string& out) : out_(out) {}

  void text(std::string_view s) { out_.append(s); }
  void ch(char c) { out_.push_back(c); }

  template <typename Int>
    requires std::integral<Int>
  void number(Int value) {
    char tmp[24];
    const auto [end, ec] = std::to_chars(tmp, tmp + sizeof(tmp), value);
    out_.append(tmp, end);
  }

  void number(double value) {
    char tmp[32];
    const auto n = std::snprintf(tmp, sizeof(tmp), "%g", value);
    if (n > 0) out_.append(tmp, static_cast<std::size_t>(n));
  }

 private:
  std::string& out_;
};

/// The stream layer: rows accumulate in one string and hit the stream in
/// large writes instead of one operator<< (with its sentry and locale
/// machinery) per field — like the `.spc` writer.
class RowBuffer {
 public:
  explicit RowBuffer(std::ostream& os) : os_(os) { buffer_.reserve(kFlushBytes + 512); }
  ~RowBuffer() { flush(); }
  RowBuffer(const RowBuffer&) = delete;
  RowBuffer& operator=(const RowBuffer&) = delete;

  [[nodiscard]] std::string& buffer() noexcept { return buffer_; }

  /// Call between rows: flushes once the buffer is big enough that the
  /// stream write cost is well amortized.
  void maybe_flush() {
    if (buffer_.size() >= kFlushBytes) flush();
  }

  void flush() {
    if (buffer_.empty()) return;
    os_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
  }

 private:
  static constexpr std::size_t kFlushBytes = 64 * 1024;

  std::ostream& os_;
  std::string buffer_;
};

void append_campaign(Appender& out, const core::Campaign& campaign,
                     std::size_t max_ports) {
  std::vector<std::uint16_t> ports;
  ports.reserve(campaign.port_packets.size());
  for (const auto& [port, packets] : campaign.port_packets) ports.push_back(port);
  std::sort(ports.begin(), ports.end());
  const auto listed = std::min(ports.size(), max_ports);

  out.text("{\"id\":");
  out.number(campaign.id);
  out.text(",\"source\":\"");
  out.text(campaign.source.to_string());
  out.text("\",\"tool\":\"");
  out.text(fingerprint::to_string(campaign.tool));
  out.text("\",\"first_seen_us\":");
  out.number(campaign.first_seen_us);
  out.text(",\"last_seen_us\":");
  out.number(campaign.last_seen_us);
  out.text(",\"packets\":");
  out.number(campaign.packets);
  out.text(",\"destinations\":");
  out.number(campaign.distinct_destinations);
  out.text(",\"distinct_ports\":");
  out.number(campaign.distinct_ports());
  out.text(",\"ports\":[");
  for (std::size_t i = 0; i < listed; ++i) {
    if (i > 0) out.ch(',');
    out.number(ports[i]);
  }
  out.text("],\"pps\":");
  out.number(campaign.extrapolated_pps);
  out.text(",\"coverage\":");
  out.number(campaign.coverage_fraction);
  out.ch('}');
}

void append_counters(Appender& out, const core::PipelineResult& result) {
  out.text("{\"scan_probes\":");
  out.number(result.sensor.scan_probes);
  out.text(",\"backscatter\":");
  out.number(result.sensor.backscatter);
  out.text(",\"xmas_or_null\":");
  out.number(result.sensor.xmas_or_null);
  out.text(",\"other_tcp\":");
  out.number(result.sensor.other_tcp);
  out.text(",\"udp\":");
  out.number(result.sensor.udp);
  out.text(",\"icmp\":");
  out.number(result.sensor.icmp);
  out.text(",\"not_monitored\":");
  out.number(result.sensor.not_monitored);
  out.text(",\"ingress_blocked\":");
  out.number(result.sensor.ingress_blocked);
  out.text(",\"malformed\":");
  out.number(result.sensor.malformed);
  out.text(",\"spoofed_source\":");
  out.number(result.sensor.spoofed_source);
  out.text(",\"campaigns\":");
  out.number(result.campaigns.size());
  out.text(",\"subthreshold_flows\":");
  out.number(result.tracker.subthreshold_flows);
  out.text(",\"subthreshold_packets\":");
  out.number(result.tracker.subthreshold_packets);
  out.text(",\"expired_flows\":");
  out.number(result.tracker.expired_flows);
  // sweeps and peak_open_flows are deliberately NOT emitted: both depend
  // on sweep scheduling and worker/shard interleaving, so they would
  // break the invariant that merged shard rollups reproduce the whole-
  // capture report byte for byte. They remain visible as metrics and in
  // `TrackerCounters` for diagnostics.
  out.ch('}');
}

}  // namespace

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_campaign_json(std::string& out, const core::Campaign& campaign,
                          std::size_t max_ports) {
  Appender appender(out);
  append_campaign(appender, campaign, max_ports);
}

void append_campaigns_jsonl(std::string& out, std::span<const core::Campaign> campaigns,
                            std::size_t max_ports) {
  Appender appender(out);
  for (const auto& campaign : campaigns) {
    append_campaign(appender, campaign, max_ports);
    appender.ch('\n');
  }
}

void append_counters_json(std::string& out, const core::PipelineResult& result) {
  Appender appender(out);
  append_counters(appender, result);
}

void write_campaign_json(std::ostream& os, const core::Campaign& campaign,
                         std::size_t max_ports) {
  RowBuffer rows(os);
  append_campaign_json(rows.buffer(), campaign, max_ports);
}

void write_campaigns_jsonl(std::ostream& os, std::span<const core::Campaign> campaigns,
                           std::size_t max_ports) {
  RowBuffer rows(os);
  for (const auto& campaign : campaigns) {
    append_campaign_json(rows.buffer(), campaign, max_ports);
    rows.buffer().push_back('\n');
    rows.maybe_flush();
  }
}

void write_counters_json(std::ostream& os, const core::PipelineResult& result) {
  RowBuffer rows(os);
  append_counters_json(rows.buffer(), result);
}

}  // namespace synscan::report
