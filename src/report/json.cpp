#include "report/json.h"

#include <algorithm>
#include <ostream>
#include <vector>

#include "fingerprint/tool.h"

namespace synscan::report {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_campaign_json(std::ostream& os, const core::Campaign& campaign,
                         std::size_t max_ports) {
  std::vector<std::uint16_t> ports;
  ports.reserve(campaign.port_packets.size());
  for (const auto& [port, packets] : campaign.port_packets) ports.push_back(port);
  std::sort(ports.begin(), ports.end());
  const auto listed = std::min(ports.size(), max_ports);

  os << "{\"id\":" << campaign.id << ",\"source\":\""
     << campaign.source.to_string() << "\",\"tool\":\""
     << fingerprint::to_string(campaign.tool) << "\",\"first_seen_us\":"
     << campaign.first_seen_us << ",\"last_seen_us\":" << campaign.last_seen_us
     << ",\"packets\":" << campaign.packets
     << ",\"destinations\":" << campaign.distinct_destinations
     << ",\"distinct_ports\":" << campaign.distinct_ports() << ",\"ports\":[";
  for (std::size_t i = 0; i < listed; ++i) {
    if (i > 0) os << ',';
    os << ports[i];
  }
  os << "],\"pps\":" << campaign.extrapolated_pps
     << ",\"coverage\":" << campaign.coverage_fraction << "}";
}

void write_campaigns_jsonl(std::ostream& os, std::span<const core::Campaign> campaigns,
                           std::size_t max_ports) {
  for (const auto& campaign : campaigns) {
    write_campaign_json(os, campaign, max_ports);
    os << '\n';
  }
}

void write_counters_json(std::ostream& os, const core::PipelineResult& result) {
  os << "{\"scan_probes\":" << result.sensor.scan_probes
     << ",\"backscatter\":" << result.sensor.backscatter
     << ",\"xmas_or_null\":" << result.sensor.xmas_or_null
     << ",\"other_tcp\":" << result.sensor.other_tcp
     << ",\"udp\":" << result.sensor.udp << ",\"icmp\":" << result.sensor.icmp
     << ",\"not_monitored\":" << result.sensor.not_monitored
     << ",\"ingress_blocked\":" << result.sensor.ingress_blocked
     << ",\"malformed\":" << result.sensor.malformed
     << ",\"spoofed_source\":" << result.sensor.spoofed_source
     << ",\"campaigns\":" << result.campaigns.size()
     << ",\"subthreshold_flows\":" << result.tracker.subthreshold_flows
     << ",\"subthreshold_packets\":" << result.tracker.subthreshold_packets
     << ",\"expired_flows\":" << result.tracker.expired_flows
     << ",\"sweeps\":" << result.tracker.sweeps
     << ",\"peak_open_flows\":" << result.tracker.peak_open_flows << "}";
}

}  // namespace synscan::report
