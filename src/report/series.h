// Figure-series emission: CDF curves and daily series as aligned text or
// CSV, so bench output can be both eyeballed and re-plotted.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "stats/ecdf.h"

namespace synscan::report {

/// Prints an ECDF as `x f` pairs (one per line) under a titled header.
void print_cdf(std::ostream& os, const std::string& title, const stats::Ecdf& ecdf,
               std::size_t max_points = 24);

/// Prints several named ECDFs at shared probe points (quartile-style
/// summary: value at 10/25/50/75/90/99%).
void print_cdf_summary(std::ostream& os, const std::string& title,
                       std::span<const stats::NamedEcdf> series);

/// Emits `name,x,y` CSV rows for a sequence of (x, y) points.
void print_csv_series(std::ostream& os, const std::string& name,
                      std::span<const double> xs, std::span<const double> ys);

}  // namespace synscan::report
