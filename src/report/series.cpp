#include "report/series.h"

#include <array>
#include <ostream>

#include "report/table.h"

namespace synscan::report {

void print_cdf(std::ostream& os, const std::string& title, const stats::Ecdf& ecdf,
               std::size_t max_points) {
  os << title << " (n=" << ecdf.size() << ")\n";
  if (ecdf.empty()) {
    os << "  (empty)\n";
    return;
  }
  for (const auto& point : ecdf.curve(max_points)) {
    os << "  " << fixed(point.x, 3) << "\t" << fixed(point.f, 4) << '\n';
  }
}

void print_cdf_summary(std::ostream& os, const std::string& title,
                       std::span<const stats::NamedEcdf> series) {
  static constexpr std::array<double, 6> kQuantiles = {0.10, 0.25, 0.50,
                                                       0.75, 0.90, 0.99};
  Table table({"series", "n", "p10", "p25", "p50", "p75", "p90", "p99"});
  for (const auto& entry : series) {
    std::vector<std::string> row{entry.name, std::to_string(entry.ecdf.size())};
    for (const auto q : kQuantiles) {
      row.push_back(entry.ecdf.empty() ? "-" : fixed(entry.ecdf.value_at_fraction(q), 2));
    }
    table.add_row(std::move(row));
  }
  os << title << '\n' << table;
}

void print_csv_series(std::ostream& os, const std::string& name,
                      std::span<const double> xs, std::span<const double> ys) {
  const auto n = std::min(xs.size(), ys.size());
  for (std::size_t i = 0; i < n; ++i) {
    os << name << ',' << xs[i] << ',' << ys[i] << '\n';
  }
}

}  // namespace synscan::report
