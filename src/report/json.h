// JSON-lines export of analysis results, for downstream tooling
// (notebooks, SIEM ingestion, plotting) and for the `synscand` daemon's
// in-memory query responses.
//
// Emission has two layers so file writing stays separate from string
// building: the `append_*` functions serialize into a caller-owned
// `std::string` (what the daemon sends to a client buffer without
// touching the filesystem), and the `write_*` stream functions wrap
// them with chunked flushing (integers via to_chars, doubles via "%g" —
// byte-identical to the former per-field ostream output), so a
// million-campaign JSONL export is not bound by per-field ostream
// overhead and both paths produce the same bytes.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "core/campaign.h"
#include "core/pipeline.h"

namespace synscan::report {

/// Escapes a string for inclusion in a JSON value.
[[nodiscard]] std::string json_escape(std::string_view text);

/// Appends one campaign as a single-line JSON object:
/// {"id":..,"source":"..","tool":"..","first_seen_us":..,"last_seen_us":..,
///  "packets":..,"destinations":..,"ports":[..],"pps":..,"coverage":..}
/// Ports are listed in ascending order, capped at `max_ports` (the full
/// count stays in "distinct_ports"). No trailing newline.
void append_campaign_json(std::string& out, const core::Campaign& campaign,
                          std::size_t max_ports = 64);

/// Appends every campaign as newline-terminated JSON lines.
void append_campaigns_jsonl(std::string& out, std::span<const core::Campaign> campaigns,
                            std::size_t max_ports = 64);

/// Appends the run's counters as one JSON object. No trailing newline.
void append_counters_json(std::string& out, const core::PipelineResult& result);

/// Writes one campaign as a single-line JSON object (same bytes as
/// `append_campaign_json`).
void write_campaign_json(std::ostream& os, const core::Campaign& campaign,
                         std::size_t max_ports = 64);

/// Writes every campaign as JSON lines.
void write_campaigns_jsonl(std::ostream& os, std::span<const core::Campaign> campaigns,
                           std::size_t max_ports = 64);

/// Writes the run's counters as one JSON object.
void write_counters_json(std::ostream& os, const core::PipelineResult& result);

}  // namespace synscan::report
