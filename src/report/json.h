// JSON-lines export of analysis results, for downstream tooling
// (notebooks, SIEM ingestion, plotting).
//
// Emission is row-buffered like the `.spc` writer: each row is appended
// to an in-memory buffer (integers via to_chars, doubles via "%g" —
// byte-identical to the former per-field ostream output) and flushed to
// the stream in large writes, so a million-campaign JSONL export is not
// bound by per-field ostream overhead.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "core/campaign.h"
#include "core/pipeline.h"

namespace synscan::report {

/// Escapes a string for inclusion in a JSON value.
[[nodiscard]] std::string json_escape(std::string_view text);

/// Writes one campaign as a single-line JSON object:
/// {"id":..,"source":"..","tool":"..","first_seen_us":..,"last_seen_us":..,
///  "packets":..,"destinations":..,"ports":[..],"pps":..,"coverage":..}
/// Ports are listed in ascending order, capped at `max_ports` (the full
/// count stays in "distinct_ports").
void write_campaign_json(std::ostream& os, const core::Campaign& campaign,
                         std::size_t max_ports = 64);

/// Writes every campaign as JSON lines.
void write_campaigns_jsonl(std::ostream& os, std::span<const core::Campaign> campaigns,
                           std::size_t max_ports = 64);

/// Writes the run's counters as one JSON object.
void write_counters_json(std::ostream& os, const core::PipelineResult& result);

}  // namespace synscan::report
