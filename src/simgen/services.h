// Synthetic service deployment model (§5.1).
//
// The paper performs a complete vertical scan of 100,000 random IPv4
// addresses and compares the distribution of *open* ports against
// scanning intensities, finding no relation (R = 0.047): scanners do not
// target ports proportionally to where services live. This model stands
// in for that vertical scan: it deterministically assigns each sampled
// host a set of open ports drawn from a realistic deployment profile —
// a handful of very common services, standard-port aliases (8080, 8443,
// 2222, ...), and the long tail of services on unexpected ports that
// Izhikevich et al. (LZR) report.
#pragma once

#include <cstdint>
#include <vector>

#include "net/ipv4.h"

namespace synscan::simgen {

class ServiceDeployment {
 public:
  explicit ServiceDeployment(std::uint64_t seed) : seed_(seed) {}

  /// The open ports of one host (deterministic in host and seed). Most
  /// hosts expose nothing; exposed hosts run 1-5 services.
  [[nodiscard]] std::vector<std::uint16_t> open_ports(net::Ipv4Address host) const;

  /// Vertical-scans `sample_size` pseudorandom hosts and returns the
  /// number of open services found per port (index = port).
  [[nodiscard]] std::vector<std::uint64_t> services_per_port(
      std::uint32_t sample_size) const;

 private:
  std::uint64_t seed_;
};

}  // namespace synscan::simgen
