// Keyed bijective permutations of small integer domains.
//
// Scanners like ZMap famously iterate a random permutation of the target
// space so probes arrive in shuffled order without keeping state. The
// simulator uses the same trick: a keyed balanced Feistel network over
// the smallest covering even-bit power of two, with cycle-walking to
// restrict it to [0, n). Bijectivity guarantees exact
// distinct-destination and distinct-port counts, which the campaign
// thresholds depend on.
#pragma once

#include <bit>
#include <cstdint>

namespace synscan::simgen {

/// A keyed permutation of [0, n).
class Permutation {
 public:
  /// `n` must be >= 1.
  Permutation(std::uint64_t key, std::uint32_t n) noexcept : key_(key), n_(n) {
    unsigned bits = n <= 1 ? 2 : std::bit_width(n - 1);
    if (bits % 2 != 0) ++bits;  // balanced Feistel needs equal halves
    if (bits < 2) bits = 2;
    half_ = bits / 2;
  }

  [[nodiscard]] std::uint32_t size() const noexcept { return n_; }

  /// The image of `i` (i < n). Cycle-walks until the value lands in
  /// range; the domain is < 4n, so the expected walk is short.
  [[nodiscard]] std::uint32_t at(std::uint32_t i) const noexcept {
    std::uint32_t x = i;
    do {
      x = feistel(x);
    } while (x >= n_);
    return x;
  }

 private:
  /// Four-round balanced Feistel over 2 * half_ bits.
  [[nodiscard]] std::uint32_t feistel(std::uint32_t x) const noexcept {
    const std::uint32_t mask = (1u << half_) - 1;
    std::uint32_t l = (x >> half_) & mask;
    std::uint32_t r = x & mask;
    for (int round = 0; round < 4; ++round) {
      const auto f = static_cast<std::uint32_t>(
                         mix(key_ ^ (static_cast<std::uint64_t>(round) << 32) ^ r)) &
                     mask;
      const std::uint32_t next_r = l ^ f;
      l = r;
      r = next_r;
    }
    return (l << half_) | r;
  }

  [[nodiscard]] static constexpr std::uint64_t mix(std::uint64_t v) noexcept {
    v += 0x9e3779b97f4a7c15ull;
    v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ull;
    v = (v ^ (v >> 27)) * 0x94d049bb133111ebull;
    return v ^ (v >> 31);
  }

  std::uint64_t key_;
  std::uint32_t n_;
  unsigned half_;
};

}  // namespace synscan::simgen
