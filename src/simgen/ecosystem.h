// Calibrated per-year ecosystem configurations (2015–2024).
//
// Each YearConfig encodes the paper's Table 1 column and the narrative
// of §4–§6 at a documented scale: packet volumes at 1/kPacketScale and
// campaign counts at 1/kScanScale of the paper's. Shares, rankings, CDF
// shapes, correlations and trends are scale-invariant; EXPERIMENTS.md
// records paper-vs-measured values.
#pragma once

#include <vector>

#include "simgen/spec.h"

namespace synscan::simgen {

/// Packet volumes are generated at 1/2000 of the paper's.
inline constexpr double kPacketScale = 2000.0;
/// Campaign counts are generated at 1/250 of the paper's.
inline constexpr double kScanScale = 250.0;

/// All measurement years in the study.
inline constexpr int kFirstYear = 2015;
inline constexpr int kLastYear = 2024;

/// The calibrated configuration for one year (2015..2024). `scale`
/// divides volumes further (scale = 2 halves packets and campaigns) for
/// quick runs; 1.0 is the calibrated default.
[[nodiscard]] YearConfig year_config(int year, double scale = 1.0);

/// All ten years.
[[nodiscard]] std::vector<YearConfig> all_year_configs(double scale = 1.0);

/// A dedicated window with ten staggered vulnerability-disclosure events
/// on distinct ports, for the Fig. 1 decay study.
[[nodiscard]] YearConfig disclosure_study_config(double scale = 1.0);

/// Paper values of Table 1 for side-by-side reporting.
struct PaperYearRow {
  int year;
  double packets_per_day;      ///< unscaled, as published
  double scans_per_month;      ///< unscaled, as published
  double masscan_scan_share;   ///< fraction of scans
  double nmap_scan_share;
  double mirai_scan_share;
  double zmap_scan_share;
};
[[nodiscard]] const PaperYearRow& paper_row(int year);

}  // namespace synscan::simgen
