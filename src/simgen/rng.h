// Deterministic pseudo-random generator for the traffic simulator.
//
// xoshiro256** seeded via SplitMix64. Self-contained (no <random>
// engines) so that generated datasets are bit-reproducible across
// standard libraries and platforms — a requirement for the experiment
// benches, whose outputs are compared against recorded values.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>
#include <span>
#include <string_view>

namespace synscan::simgen {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept {
    // SplitMix64 expansion of the seed into the four state words.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  /// Derives an independent stream from this seed and a label; used to
  /// give each simulated actor its own generator.
  [[nodiscard]] Rng fork(std::uint64_t label) noexcept {
    return Rng(next_u64() ^ (label * 0x9e3779b97f4a7c15ull));
  }

  [[nodiscard]] std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  [[nodiscard]] std::uint32_t next_u32() noexcept {
    return static_cast<std::uint32_t>(next_u64() >> 32);
  }

  [[nodiscard]] std::uint16_t next_u16() noexcept {
    return static_cast<std::uint16_t>(next_u64() >> 48);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t bound) noexcept {
    // Lemire-style scaling via the 128-bit product, composed from 64-bit
    // halves to stay within ISO C++ (bias <= 2^-64, irrelevant here).
    const std::uint64_t x = next_u64();
    const std::uint64_t x_hi = x >> 32;
    const std::uint64_t x_lo = x & 0xffffffffull;
    const std::uint64_t b_hi = bound >> 32;
    const std::uint64_t b_lo = bound & 0xffffffffull;
    const std::uint64_t mid = x_hi * b_lo + ((x_lo * b_lo) >> 32);
    return x_hi * b_hi + (mid >> 32) +
           ((x_lo * b_hi + (mid & 0xffffffffull)) >> 32);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform_real() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform_real();
  }

  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform_real() < p; }

  /// Exponential with mean `mean` (> 0).
  [[nodiscard]] double exponential(double mean) noexcept {
    double u = uniform_real();
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Standard normal via Box–Muller (one value per call; simple and
  /// deterministic).
  [[nodiscard]] double normal() noexcept {
    double u1 = uniform_real();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double u2 = uniform_real();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  }

  /// Log-normal with the given median and multiplicative sigma (> 1
  /// spreads, 1 collapses to the median).
  [[nodiscard]] double lognormal(double median, double sigma) noexcept {
    return median * std::exp(std::log(sigma) * normal());
  }

  /// Index sampled from a weight table (weights need not be normalized;
  /// an empty or all-zero table yields 0).
  [[nodiscard]] std::size_t weighted(std::span<const double> weights) noexcept {
    double total = 0.0;
    for (const double w : weights) total += w;
    if (total <= 0.0) return 0;
    double x = uniform_real() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      x -= weights[i];
      if (x < 0.0) return i;
    }
    return weights.size() - 1;
  }

  /// Stable 64-bit hash of a label (FNV-1a); combined with seeds to
  /// derive per-entity streams.
  [[nodiscard]] static constexpr std::uint64_t hash_label(std::string_view label) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : label) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ull;
    }
    return h;
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace synscan::simgen
