#include "simgen/wire.h"

#include "fingerprint/matchers.h"

namespace synscan::simgen {
namespace {

/// Duplicates a 16-bit token into both halves of a 32-bit word (the
/// structure NMap encrypts).
constexpr std::uint32_t dup16(std::uint16_t x) noexcept {
  return (static_cast<std::uint32_t>(x) << 16) | x;
}

}  // namespace

WireState::WireState(WireTool tool, Rng rng) : tool_(tool), rng_(rng) {
  session_secret_ = rng_.next_u32();
  fixed_source_port_ = static_cast<std::uint16_t>(32768 + rng_.uniform(28000));
}

void WireState::craft(net::TcpFrameSpec& spec, net::Ipv4Address dst,
                      std::uint16_t port) noexcept {
  spec.dst_ip = dst;
  spec.dst_port = port;
  spec.flags = net::flag_bit(net::TcpFlag::kSyn);
  spec.ttl = static_cast<std::uint8_t>(48 + rng_.uniform(80));

  switch (tool_) {
    case WireTool::kZmap:
      // ZMap: fixed IP-ID mark, validation data in the sequence number,
      // fixed source port per invocation.
      spec.ip_id = fingerprint::kZmapIpId;
      spec.sequence = rng_.next_u32();
      spec.src_port = fixed_source_port_;
      spec.window = 65535;
      break;
    case WireTool::kZmapStealth:
      // Same engine, randomized IP-ID: the §6 "no longer easily
      // fingerprintable" builds.
      spec.ip_id = rng_.next_u16();
      spec.sequence = rng_.next_u32();
      spec.src_port = fixed_source_port_;
      spec.window = 65535;
      break;
    case WireTool::kMasscan:
      spec.sequence = rng_.next_u32();
      spec.ip_id = fingerprint::masscan_ip_id(dst.value(), port, spec.sequence);
      spec.src_port = static_cast<std::uint16_t>(1024 + rng_.uniform(64512));
      spec.window = 1024;
      break;
    case WireTool::kMasscanStealth:
      spec.sequence = rng_.next_u32();
      spec.ip_id = rng_.next_u16();
      spec.src_port = static_cast<std::uint16_t>(1024 + rng_.uniform(64512));
      spec.window = 1024;
      break;
    case WireTool::kMirai:
      // Mirai: sequence number equals the destination address.
      spec.sequence = dst.value();
      spec.ip_id = rng_.next_u16();
      spec.src_port = static_cast<std::uint16_t>(1024 + rng_.uniform(64512));
      spec.window = static_cast<std::uint16_t>(1 + rng_.uniform(60000));
      break;
    case WireTool::kNmap: {
      // NMap: a per-session keystream reused across probes encrypts a
      // duplicated 16-bit token, so seq1 ^ seq2 has equal halves.
      const auto nfo = rng_.next_u16();
      spec.sequence = dup16(nfo) ^ session_secret_;
      spec.ip_id = rng_.next_u16();
      spec.src_port = static_cast<std::uint16_t>(32768 + rng_.uniform(32768));
      spec.window = 1024;
      break;
    }
    case WireTool::kUnicorn:
      // Unicorn encodes host/port information into the sequence number
      // under a per-session key; the §3.3 pairwise relation follows.
      spec.src_port = static_cast<std::uint16_t>(1024 + rng_.uniform(64512));
      spec.sequence = session_secret_ ^ dst.value() ^ spec.src_port ^
                      (static_cast<std::uint32_t>(port) << 16);
      spec.ip_id = rng_.next_u16();
      spec.window = 4096;
      break;
    case WireTool::kCustom:
      spec.sequence = rng_.next_u32();
      spec.ip_id = rng_.next_u16();
      spec.src_port = static_cast<std::uint16_t>(1024 + rng_.uniform(64512));
      spec.window = static_cast<std::uint16_t>(1 + rng_.uniform(65535));
      break;
  }
}

}  // namespace synscan::simgen
