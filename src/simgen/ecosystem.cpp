#include "simgen/ecosystem.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "enrich/known_scanners.h"
#include "simgen/rng.h"

namespace synscan::simgen {
namespace {

using PortTable = std::vector<std::pair<std::uint16_t, double>>;

// ---------------------------------------------------------------------------
// Calendar helper (days from civil date, Howard Hinnant's algorithm) so
// every year's window starts at a real date (January 15).
// ---------------------------------------------------------------------------
constexpr std::int64_t days_from_civil(int y, unsigned m, unsigned d) noexcept {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const auto yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m > 2 ? m - 3 : m + 9) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

constexpr net::TimeUs window_start(int year) noexcept {
  return days_from_civil(year, 1, 15) * net::kMicrosPerDay;
}

// ---------------------------------------------------------------------------
// Raw per-year calibration seeds (paper values and narrative shares).
// ---------------------------------------------------------------------------
struct YearSeed {
  int year;
  double window_days;
  double packets_day;   // paper, packets/day
  double scans_month;   // paper, scans/month
  // Tool shares of *scans* (Table 1 bottom block).
  double masscan_scans, nmap_scans, mirai_scans, zmap_scans;
  // Packet-budget fractions for the generator's groups.
  double inst_pkts, masscan_pkts, mirai_pkts, zmap_pkts, nmap_pkts;
  // Port profiles (Table 1): heads of the three rankings.
  PortTable by_packets, by_sources, by_scans;
  double inst_port_factor;   // pre-2023 scaling of org port breadth
  std::size_t inst_roster;   // organizations active (catalog order)
  bool inst_stealth;         // 2023+: big orgs drop easy fingerprints
  std::uint32_t noise_sources;
  double noise_mirai;
  double alias_probability;  // co-scan trend, 0.18 (2015) -> 0.87 (2020+)
  int vertical_over10k;      // one-off >10k-port scans
  int shard_groups;          // ZMap sharded collaborations
  int shard_sources;         // sources per sharded scan
  double zmap_bulk_sources;  // distinct ZMap hosts (paper/100)
  double inst_recur_heavy;   // days between campaigns, high-rate orgs
  double inst_recur_light;   // days between campaigns, smaller orgs
  std::size_t inst_academics;  // academic orgs active (pre-2023)
};

const YearSeed kSeeds[] = {
    {2015, 45, 11e6, 33e3, 0.005, 0.317, 0.000, 0.021,
     0.05, 0.05, 0.00, 0.02, 0.20,
     {{22, 15.0}, {8080, 8.7}, {3389, 7.1}, {80, 7.0}, {443, 6.0}},
     {{10073, 33.0}, {3389, 11.3}, {80, 5.8}, {8080, 2.7}, {22555, 2.0}},
     {{3389, 23.4}, {10073, 23.4}, {80, 4.1}, {8080, 2.7}, {443, 1.9}},
     0.02, 6, false, 6000, 0.00, 0.18, 1, 0, 0, 8, 20, 40, 2},
    {2016, 61, 19e6, 38e3, 0.015, 0.128, 0.000, 0.091,
     0.06, 0.08, 0.00, 0.09, 0.12,
     {{22, 8.2}, {80, 6.0}, {3389, 4.5}, {1433, 3.5}, {8080, 2.3}},
     {{21, 10.2}, {3389, 9.6}, {20012, 5.2}, {80, 3.3}, {8080, 1.4}},
     {{3389, 19.9}, {21, 6.8}, {20012, 5.4}, {80, 3.8}, {22, 1.9}},
     0.03, 7, false, 9000, 0.02, 0.25, 1, 0, 0, 12, 15, 30, 3},
    {2017, 45, 45e6, 252e3, 0.007, 0.026, 0.465, 0.011,
     0.06, 0.05, 0.50, 0.02, 0.04,
     {{5358, 14.4}, {7574, 12.1}, {22, 11.2}, {2323, 9.2}, {6789, 6.2}},
     {{7545, 38.8}, {2323, 25.3}, {5358, 11.5}, {22, 8.0}, {23231, 7.4}},
     {{7547, 29.5}, {2323, 25.1}, {5358, 9.1}, {22, 5.7}, {6289, 5.4}},
     0.05, 9, false, 30000, 0.45, 0.30, 2, 0, 0, 10, 12, 25, 3},
    {2018, 50, 133e6, 137e3, 0.209, 0.032, 0.192, 0.047,
     0.10, 0.40, 0.12, 0.05, 0.04,
     {{22, 3.1}, {8545, 1.4}, {3389, 1.1}, {80, 1.0}, {8080, 0.9}},
     {{8291, 38.8}, {2323, 10.4}, {21, 9.8}, {22, 7.3}, {5555, 3.0}},
     {{8291, 19.2}, {21, 6.7}, {2323, 6.3}, {22, 4.3}, {3389, 4.1}},
     0.10, 12, false, 25000, 0.30, 0.40, 3, 0, 0, 14, 8, 16, 4},
    {2019, 40, 117e6, 238e3, 0.219, 0.036, 0.162, 0.027,
     0.12, 0.45, 0.08, 0.04, 0.04,
     {{22, 2.9}, {80, 2.0}, {8080, 1.8}, {81, 1.7}, {3389, 1.6}},
     {{80, 30.4}, {8080, 30.3}, {2323, 18.8}, {5555, 11.7}, {5900, 8.2}},
     {{80, 20.2}, {8080, 19.2}, {2323, 9.9}, {5555, 5.5}, {5900, 3.9}},
     0.15, 15, false, 22000, 0.25, 0.55, 4, 0, 0, 12, 6, 12, 5},
    {2020, 55, 283e6, 222e3, 0.205, 0.050, 0.149, 0.131,
     0.15, 0.55, 0.033, 0.13, 0.01,
     {{3389, 26.0}, {80, 1.0}, {81, 0.9}, {22, 0.8}, {8080, 0.8}},
     {{80, 35.9}, {8080, 30.4}, {81, 13.2}, {5555, 11.0}, {2323, 9.1}},
     {{80, 16.0}, {8080, 13.8}, {81, 4.6}, {5555, 4.1}, {2323, 2.8}},
     0.25, 18, false, 20000, 0.20, 0.87, 9, 1, 32, 16, 4, 8, 6},
    {2021, 45, 281e6, 290e3, 0.251, 0.068, 0.024, 0.092,
     0.15, 0.60, 0.010, 0.09, 0.005,
     {{6379, 1.4}, {22, 1.3}, {80, 1.1}, {3389, 0.8}, {8080, 0.8}},
     {{80, 46.0}, {8080, 42.0}, {5555, 13.5}, {81, 9.8}, {8443, 8.3}},
     {{80, 13.6}, {8080, 12.4}, {5555, 3.0}, {81, 1.8}, {8443, 1.6}},
     0.40, 22, false, 18000, 0.08, 0.87, 6, 1, 48, 18, 3, 6, 6},
    {2022, 61, 285e6, 777e3, 0.099, 0.023, 0.010, 0.037,
     0.15, 0.60, 0.008, 0.06, 0.005,
     {{22, 2.7}, {80, 1.4}, {443, 1.3}, {2375, 1.3}, {2376, 1.2}},
     {{80, 48.5}, {8080, 41.9}, {5555, 13.0}, {81, 10.2}, {8443, 7.7}},
     {{80, 4.4}, {8080, 3.9}, {5555, 1.0}, {81, 0.7}, {8443, 0.7}},
     0.60, 26, false, 16000, 0.06, 0.87, 8, 2, 48, 20, 2, 5, 8},
    {2023, 35, 402e6, 727e3, 0.002, 0.00004, 0.390, 0.220,
     0.30, 0.10, 0.020, 0.15, 0.001,
     {{22, 1.8}, {8080, 1.5}, {80, 1.5}, {3389, 1.3}, {443, 1.1}},
     {{80, 30.6}, {8080, 27.1}, {52869, 17.7}, {60023, 17.4}, {2323, 11.5}},
     {{2323, 0.13}, {80, 0.12}, {443, 0.11}, {22, 0.10}, {8080, 0.10}},
     1.00, 36, true, 20000, 0.50, 0.87, 10, 32, 8, 258, 1, 3, 8},
    {2024, 29, 345e6, 1.3e6, 0.002, 0.00006, 0.053, 0.590,
     0.30, 0.05, 0.010, 0.25, 0.001,
     {{3389, 2.2}, {22, 1.8}, {80, 1.5}, {443, 1.2}, {8080, 1.2}},
     {{80, 37.4}, {8080, 29.0}, {443, 16.2}, {2323, 12.1}, {5900, 10.5}},
     {{80, 0.81}, {3389, 0.73}, {443, 0.72}, {8080, 0.72}, {22, 0.70}},
     1.00, 40, true, 15000, 0.10, 0.87, 12, 29, 13, 410, 1, 3, 8},
};

const YearSeed& seed_for(int year) {
  for (const auto& seed : kSeeds) {
    if (seed.year == year) return seed;
  }
  throw std::invalid_argument("year_config: year outside 2015-2024");
}

// The long-tail service ports appended to every head table.
constexpr std::uint16_t kCommonPorts[] = {
    21,    25,    53,    110,   111,   135,   139,   143,   161,  179,  389,
    465,   500,   502,   587,   631,   636,   873,   993,   995,  1080, 1194,
    1433,  1521,  1723,  1883,  2049,  2222,  2375,  2376,  3128, 3306, 3389,
    4443,  5000,  5060,  5432,  5555,  5601,  5672,  5900,  5984, 6379, 6443,
    7001,  7547,  8000,  8081,  8089,  8291,  8443,  8545,  8883, 8888, 9000,
    9090,  9200,  9300,  10000, 11211, 27017, 37215, 49152, 52869, 60023};

/// Builds a weighted table: the head entries keep their (percent) weights
/// and `tail_weight` percent is spread over the common ports, decaying by
/// rank.
PortTable with_tail(PortTable head, double tail_weight) {
  double harmonic = 0.0;
  for (std::size_t i = 0; i < std::size(kCommonPorts); ++i) {
    harmonic += 1.0 / static_cast<double>(i + 1);
  }
  std::size_t rank = 1;
  for (const auto port : kCommonPorts) {
    const bool in_head =
        std::any_of(head.begin(), head.end(),
                    [port](const auto& entry) { return entry.first == port; });
    if (!in_head) {
      head.emplace_back(port,
                        tail_weight / (static_cast<double>(rank) * harmonic));
    }
    ++rank;
  }
  return head;
}

/// Median of a lognormal with multiplicative sigma `s` whose *mean* must
/// equal budget / count.
double median_for_budget(double budget, double count, double sigma) {
  if (count <= 0.0) return 150.0;
  const double ln_s = std::log(sigma);
  const double mean = budget / count;
  return std::max(150.0, mean / std::exp(0.5 * ln_s * ln_s));
}

/// Ports an organization covers in a given year.
std::uint32_t org_ports_in_year(const enrich::KnownScannerSpec& org, int year,
                                double factor) {
  if (year >= 2024) return org.ports_2024;
  if (year == 2023) return org.ports_2023;
  if (org.academic) return org.ports_2023;  // universities do not grow
  const auto scaled = static_cast<std::uint32_t>(
      std::round(static_cast<double>(org.ports_2023) * factor));
  return std::max<std::uint32_t>(3, scaled);
}

}  // namespace

const PaperYearRow& paper_row(int year) {
  static std::vector<PaperYearRow> rows = [] {
    std::vector<PaperYearRow> out;
    for (const auto& seed : kSeeds) {
      out.push_back({seed.year, seed.packets_day, seed.scans_month, seed.masscan_scans,
                     seed.nmap_scans, seed.mirai_scans, seed.zmap_scans});
    }
    return out;
  }();
  for (const auto& row : rows) {
    if (row.year == year) return row;
  }
  throw std::invalid_argument("paper_row: year outside 2015-2024");
}

YearConfig year_config(int year, double scale) {
  if (scale <= 0.0) throw std::invalid_argument("year_config: scale must be > 0");
  const auto& seed = seed_for(year);

  YearConfig config;
  config.year = year;
  config.window_days = seed.window_days;
  config.start_time = window_start(year);
  config.seed = 0x5ca1ab1eull + static_cast<std::uint64_t>(static_cast<unsigned>(year));

  // The 0.84 factor compensates for the generator's minimum-hits clamp,
  // which inflates small campaigns; calibrated against measured output.
  const double total_packets =
      0.84 * seed.packets_day * seed.window_days / kPacketScale / scale;
  const double total_campaigns =
      seed.scans_month / 30.44 * seed.window_days / kScanScale / scale;

  config.port_table = with_tail(seed.by_packets, 12.0);
  config.noise_port_table = with_tail(seed.by_sources, 18.0);
  config.port_aliases = {{80, 8080}, {443, 8443}, {22, 2222}, {23, 2323}, {8080, 8081}};
  config.noise_sources =
      static_cast<std::uint32_t>(static_cast<double>(seed.noise_sources) / scale);
  config.noise_mirai_fraction = seed.noise_mirai;
  // Fig. 3: the share of sources probing more than one port grows from
  // 17% (2015) to ~35% (2022) and plateaus.
  config.noise_multiport_fraction = year <= 2015   ? 0.17
                                    : year == 2016 ? 0.19
                                    : year == 2017 ? 0.20
                                    : year == 2018 ? 0.22
                                    : year == 2019 ? 0.24
                                    : year == 2020 ? 0.26
                                    : year == 2021 ? 0.30
                                                   : 0.35;

  const PortTable by_scans_tail = with_tail(seed.by_scans, 25.0);

  // How much of the bulk scan population targets uniformly random ports:
  // by 2023/2024 the most-scanned port accounts for <1% of scans
  // (Table 1), so almost all campaigns spread across the range.
  const double spread = year >= 2024   ? 0.92
                        : year == 2023 ? 0.85
                        : year == 2022 ? 0.30
                        : year == 2021 ? 0.15
                        : year == 2020 ? 0.05
                                       : 0.0;
  // Heavy-hitter groups keep most of their concentration even in the
  // spread-out years; their port tables also get a wider tail then.
  const double heavy_spread = spread * 0.12;
  const double packet_tail = 10.0 + 40.0 * spread;

  // -------------------------------------------------------------------
  // Institutional organizations (daily re-scans, §6.6/§6.8, Figs. 8-10).
  // -------------------------------------------------------------------
  const auto catalog = enrich::known_scanner_specs();
  double inst_weight_total = 0.0;
  std::vector<const enrich::KnownScannerSpec*> roster;
  std::size_t academics_taken = 0;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const auto& org = catalog[i];
    const auto active_ports = year >= 2024 ? org.ports_2024 : org.ports_2023;
    if (active_ports == 0 && year < 2024) continue;  // 2024 newcomers
    if (year < 2023) {
      if (org.academic) {
        if (academics_taken >= seed.inst_academics) continue;
        ++academics_taken;
      } else if (i >= seed.inst_roster) {
        continue;
      }
    }
    roster.push_back(&org);
    inst_weight_total += org.packets_per_second;
  }
  const double inst_budget = seed.inst_pkts * total_packets;
  double inst_campaigns = 0.0;
  double inst_masscan_campaigns = 0.0;
  double inst_zmap_campaigns = 0.0;

  for (const auto* org : roster) {
    GroupSpec group;
    group.name = "inst:" + std::string(org->name);
    group.organization = std::string(org->name);
    group.pool = enrich::ScannerType::kInstitutional;
    group.sources = 1;
    const bool heavy = org->packets_per_second >= 80000;
    group.recur_days = (heavy ? seed.inst_recur_heavy : seed.inst_recur_light) * scale;
    const double campaigns = seed.window_days / group.recur_days;
    inst_campaigns += campaigns;
    const double org_budget =
        inst_budget * org->packets_per_second / inst_weight_total;
    group.hits_median = median_for_budget(org_budget, campaigns, 1.3);
    group.hits_sigma = 1.3;
    group.pps_median = org->packets_per_second;
    group.pps_sigma = 1.2;

    const auto ports = org_ports_in_year(*org, year, seed.inst_port_factor);
    if (org->academic) {
      // Research scanners target a fixed, HTTPS-heavy port list (§6.7:
      // 443 is predominantly institutional).
      static constexpr std::uint16_t kAcademic[] = {443, 80, 22, 8080, 8443, 25, 53,
                                                    110, 143, 993, 995, 587, 465, 21,
                                                    3306, 5432, 6379, 9200, 11211, 1433,
                                                    2222, 8000, 8888, 9090, 10000, 631,
                                                    636,  873,  5060, 5900, 3389, 135,
                                                    139,  111,  179,  389,  500,  502,
                                                    1080, 1194, 1521, 1723};
      std::vector<std::uint16_t> list(
          kAcademic, kAcademic + std::min<std::size_t>(ports, std::size(kAcademic)));
      group.ports = PortPlanSpec::of(std::move(list));
    } else {
      group.ports = PortPlanSpec::subset(ports, Rng::hash_label(org->name));
      // Port-census scanners revisit the popular service ports far more
      // often than the long tail; HTTPS tops the research agenda
      // (Fig. 5: 443 is institutional-heavy).
      group.ports.popular_bias = 0.45;
      group.ports.popular = {443, 443, 443, 80, 80, 22, 8080, 25, 53, 8443};
    }

    if (seed.inst_stealth && !org->academic) {
      group.tool = (Rng::hash_label(org->name) & 1) ? WireTool::kZmapStealth
                                                    : WireTool::kMasscanStealth;
    } else if (org->academic) {
      group.tool = WireTool::kZmap;
    } else if (year < 2018) {
      // Before high-speed tooling commoditized, institutions ran bespoke
      // scanners (Table 1: ZMap/Masscan scan shares are tiny in 2015-17).
      group.tool = WireTool::kCustom;
    } else {
      group.tool =
          (Rng::hash_label(org->name) & 1) ? WireTool::kZmap : WireTool::kMasscan;
    }
    if (group.tool == WireTool::kMasscan) inst_masscan_campaigns += campaigns;
    if (group.tool == WireTool::kZmap) inst_zmap_campaigns += campaigns;
    config.groups.push_back(std::move(group));
  }

  // -------------------------------------------------------------------
  // ZMap sharded collaborations (§4.1/§6.4): a /24 of sources splitting
  // one scan; each shard covers the same small slice -> the coverage
  // mode of Fig. 7/§6.4.
  // -------------------------------------------------------------------
  double shard_campaigns = 0.0;
  for (int g = 0; g < seed.shard_groups; ++g) {
    GroupSpec group;
    group.name = "zmap-shard-" + std::to_string(year) + "-" + std::to_string(g);
    group.tool = WireTool::kZmap;
    group.pool = g % 2 == 0 ? enrich::ScannerType::kHosting
                            : enrich::ScannerType::kEnterprise;
    group.country = enrich::CountryCode(g % 2 == 0 ? "US" : "CN");
    group.sources = std::max<std::uint32_t>(
        8, static_cast<std::uint32_t>(static_cast<double>(seed.shard_sources) / scale));
    group.sharded = true;
    group.hits_median = 465;  // ~0.65% IPv4 coverage per shard
    group.hits_sigma = 1.1;
    group.pps_median = 30000;
    group.pps_sigma = 1.5;
    // Each collaboration picks its own port (resolved once per group).
    group.ports = PortPlanSpec::single();
    group.port_table_override = with_tail(seed.by_scans, 40.0);
    group.random_port_probability = year >= 2023 ? 0.7 : 0.2;
    shard_campaigns += group.sources;
    config.groups.push_back(std::move(group));
  }

  // -------------------------------------------------------------------
  // Bulk tool populations.
  // -------------------------------------------------------------------
  const auto bulk = [&](std::string name, WireTool tool, double campaigns,
                        double packet_budget, double pps_median, double pps_sigma,
                        double hits_sigma, enrich::ScannerType pool, PortTable table,
                        std::optional<enrich::CountryCode> country,
                        std::uint32_t sources, double alias) {
    if (campaigns < 1.0) return;
    GroupSpec group;
    group.name = std::move(name);
    group.tool = tool;
    group.pool = pool;
    group.country = country;
    group.campaigns = static_cast<std::uint32_t>(campaigns);
    group.sources = sources != 0 ? sources
                                 : std::max<std::uint32_t>(
                                       1, static_cast<std::uint32_t>(campaigns * 0.85));
    group.hits_median = median_for_budget(packet_budget, campaigns, hits_sigma);
    group.hits_sigma = hits_sigma;
    group.pps_median = pps_median;
    group.pps_sigma = pps_sigma;
    group.port_table_override = std::move(table);
    group.alias_probability = alias;
    group.random_port_probability = spread;
    config.groups.push_back(std::move(group));
  };

  // Masscan: few actors, giant scans (81% of packets around 2020-2022).
  // In 2018 Russia ran >80% of Masscan scans (6.5).
  const double masscan_campaigns =
      std::max(0.0, seed.masscan_scans * total_campaigns - inst_masscan_campaigns);
  const double masscan_budget = seed.masscan_pkts * total_packets;
  if (year == 2018) {
    bulk("masscan-ru", WireTool::kMasscan, masscan_campaigns * 0.85,
         masscan_budget * 0.85, 2600, 4.5, 2.2, enrich::ScannerType::kHosting,
         with_tail(seed.by_packets, packet_tail), enrich::CountryCode("RU"),
         std::max<std::uint32_t>(1, static_cast<std::uint32_t>(masscan_campaigns * 0.4)),
         0.0);
    bulk("masscan-world", WireTool::kMasscan, masscan_campaigns * 0.15,
         masscan_budget * 0.15, 2600, 4.5, 2.2, enrich::ScannerType::kHosting,
         with_tail(seed.by_packets, packet_tail), std::nullopt, 0, 0.0);
  } else {
    // Heavy scanning is not a hosting-only business: Table 2 spreads the
    // packet volume over hosting, residential and unmatched ("unknown")
    // space.
    bulk("masscan-host", WireTool::kMasscan, masscan_campaigns * 0.45,
         masscan_budget * 0.40, 2600, 4.5, 2.2, enrich::ScannerType::kHosting,
         with_tail(seed.by_packets, packet_tail), std::nullopt,
         std::max<std::uint32_t>(1, static_cast<std::uint32_t>(masscan_campaigns * 0.2)),
         0.0);
    bulk("masscan-res", WireTool::kMasscan, masscan_campaigns * 0.25,
         masscan_budget * 0.28, 2000, 4.0, 2.2, enrich::ScannerType::kResidential,
         with_tail(seed.by_packets, packet_tail), std::nullopt, 0, 0.0);
    bulk("masscan-unk", WireTool::kMasscan, masscan_campaigns * 0.30,
         masscan_budget * 0.32, 2400, 4.2, 2.2, enrich::ScannerType::kUnknown,
         with_tail(seed.by_packets, packet_tail), std::nullopt, 0, 0.0);
  }

  // Mirai-like botnets: many residential bots, slow continuous scans,
  // one campaign per bot (DHCP churn rotates the address afterwards).
  const double mirai_campaigns = seed.mirai_scans * total_campaigns;
  bulk("mirai-botnet", WireTool::kMirai, mirai_campaigns,
       seed.mirai_pkts * total_packets, 420, 1.8, 1.6,
       enrich::ScannerType::kResidential, by_scans_tail, std::nullopt,
       std::max<std::uint32_t>(1, static_cast<std::uint32_t>(mirai_campaigns)), 0.0);

  // ZMap: research-flavored scans, US/CN-biased (6.5), recurring hosts.
  const double zmap_target = seed.zmap_scans * total_campaigns;
  const double zmap_bulk =
      std::max(0.0, zmap_target - shard_campaigns - inst_zmap_campaigns);
  const auto zmap_sources =
      static_cast<std::uint32_t>(std::max(2.0, seed.zmap_bulk_sources / scale));
  bulk("zmap-us", WireTool::kZmap, zmap_bulk * 0.55,
       seed.zmap_pkts * total_packets * 0.55, 45000, 4.0, 1.8,
       enrich::ScannerType::kHosting,
       with_tail({{443, 30}, {80, 25}, {22, 12}, {8080, 8}}, 15.0),
       enrich::CountryCode("US"), std::max<std::uint32_t>(1, zmap_sources / 2), 0.0);
  bulk("zmap-cn", WireTool::kZmap, zmap_bulk * 0.45,
       seed.zmap_pkts * total_packets * 0.45, 45000, 4.0, 1.8,
       enrich::ScannerType::kHosting,
       with_tail({{443, 20}, {80, 25}, {22, 15}, {3389, 10}}, 15.0),
       enrich::CountryCode("CN"), std::max<std::uint32_t>(1, zmap_sources / 2), 0.0);

  // NMap: the old guard; modest scans, surprisingly quick (6.3), with a
  // slowly *increasing* speed trend, consistently on 22/80/3389.
  const double nmap_campaigns = seed.nmap_scans * total_campaigns;
  bulk("nmap-classics", WireTool::kNmap, nmap_campaigns,
       seed.nmap_pkts * total_packets, 5000.0 + (year - 2015) * 350.0, 1.8, 1.5,
       enrich::ScannerType::kEnterprise,
       with_tail({{22, 30}, {80, 25}, {3389, 20}, {21, 8}, {25, 4}}, 13.0),
       std::nullopt,
       std::max<std::uint32_t>(1, static_cast<std::uint32_t>(nmap_campaigns / 3)), 0.0);
  if (!config.groups.empty() && config.groups.back().name == "nmap-classics") {
    config.groups.back().random_port_probability = 0.0;
  }

  // China-based RDP/MySQL targeting (5.4).
  const double cn_campaigns = 0.04 * total_campaigns;
  bulk("cn-rdp-mysql", WireTool::kCustom, cn_campaigns,
       (year == 2020 ? 0.10 : 0.03) * total_packets, 900, 2.5, 2.0,
       enrich::ScannerType::kResidential, {{3389, 60}, {3306, 40}},
       enrich::CountryCode("CN"),
       std::max<std::uint32_t>(1, static_cast<std::uint32_t>(cn_campaigns / 2)), 0.0);
  if (!config.groups.empty() && config.groups.back().name == "cn-rdp-mysql") {
    config.groups.back().random_port_probability = 0.0;
  }

  // Enterprise JSON-RPC scanning from FPT space (6.7), 2018 onwards.
  if (year >= 2018) {
    const double fpt_campaigns = std::max(1.0, 0.01 * total_campaigns);
    bulk("fpt-jsonrpc", WireTool::kCustom, fpt_campaigns, 0.01 * total_packets, 20000,
         2.0, 1.8, enrich::ScannerType::kEnterprise, {{8545, 100}},
         enrich::CountryCode("VN"),
         std::max<std::uint32_t>(1, static_cast<std::uint32_t>(fpt_campaigns / 4)),
         0.0);
    config.groups.back().random_port_probability = 0.0;
  }

  // Vertical one-off scans (5.2).
  for (int v = 0; v < seed.vertical_over10k; ++v) {
    GroupSpec group;
    group.name = "vertical-" + std::to_string(year) + "-" + std::to_string(v);
    group.tool = v % 2 == 0 ? WireTool::kMasscan : WireTool::kZmap;
    group.pool = enrich::ScannerType::kHosting;
    group.sources = 1;
    group.campaigns = 1;
    const std::uint32_t ports =
        (year == 2020 && v == 0)
            ? 54501  // the largest vertical scan the paper records
            : 10001 + static_cast<std::uint32_t>((v * 7919) % 30000);
    group.ports = PortPlanSpec::subset(ports, Rng::hash_label(group.name));
    // The one-off giants keep their *count* under scaling (they are the
    // physical rarity); their volume shrinks with everything else.
    group.hits_median = std::max(2500.0, 20000.0 / scale);
    group.hits_sigma = 1.4;
    group.pps_median = 300000;  // ~0.3 Gbps wire speed (5.2)
    group.pps_sigma = 1.6;
    config.groups.push_back(std::move(group));
  }
  // Moderate verticals (>100 ports, ~0.4% of scans).
  {
    GroupSpec group;
    group.name = "vertical-mid-" + std::to_string(year);
    group.tool = WireTool::kMasscan;
    group.pool = enrich::ScannerType::kHosting;
    group.campaigns =
        std::max<std::uint32_t>(1, static_cast<std::uint32_t>(0.004 * total_campaigns));
    group.sources = group.campaigns;
    group.ports = PortPlanSpec::subset(600, Rng::hash_label(group.name));
    group.hits_median = std::max(1000.0, 4000.0 / scale);
    group.hits_sigma = 1.8;
    group.pps_median = 120000;
    group.pps_sigma = 2.0;
    config.groups.push_back(std::move(group));
  }

  // Commodity full-range spray (2021+): the 5.1 "every port receives
  // probes" background.
  if (year >= 2021) {
    GroupSpec group;
    group.name = "spray-" + std::to_string(year);
    group.tool = WireTool::kMasscanStealth;
    group.pool = enrich::ScannerType::kHosting;
    group.campaigns = static_cast<std::uint32_t>(1.5 * seed.window_days);
    group.sources = std::max<std::uint32_t>(4, group.campaigns / 8);
    group.ports = PortPlanSpec::full();
    group.hits_median = median_for_budget(0.08 * total_packets, group.campaigns, 1.5);
    group.hits_sigma = 1.5;
    group.pps_median = 80000;
    group.pps_sigma = 2.0;
    config.groups.push_back(std::move(group));
  }

  // Unicorn: exactly two hosts ever (6.1); one shows up in 2016, one in
  // 2019.
  if (year == 2016 || year == 2019) {
    GroupSpec group;
    group.name = "unicorn-oddity-" + std::to_string(year);
    group.tool = WireTool::kUnicorn;
    group.pool = enrich::ScannerType::kResidential;
    group.sources = 1;
    group.campaigns = 1;
    group.hits_median = 300;
    group.hits_sigma = 1.2;
    group.pps_median = 900;
    group.pps_sigma = 1.3;
    group.ports = PortPlanSpec::of({1080});
    config.groups.push_back(std::move(group));
  }

  // Custom/unfingerprintable remainder.
  {
    double assigned = inst_campaigns + shard_campaigns;
    for (const auto& group : config.groups) {
      if (group.recur_days == 0.0 && !group.sharded) assigned += group.campaigns;
    }
    const double remainder = std::max(10.0, total_campaigns - assigned);
    const double custom_pkts =
        std::max(0.03, 1.0 - seed.inst_pkts - seed.masscan_pkts - seed.mirai_pkts -
                           seed.zmap_pkts - seed.nmap_pkts -
                           (year >= 2021 ? 0.08 : 0.0)) *
        total_packets;
    // Heavy groups keep most of their port-table concentration even in the
  // spread-out years: the by-packets ranking of Table 1 still shows
  // visible heads in 2023/2024 while the by-scans ranking is flat.
  // The paper's heavy tail: a fraction of a percent of the scans carry
    // the bulk of the traffic (0.28% of scans -> ~80% of packets in
    // Durumeric et al.). A small "heavy" cohort on the by-packets port
    // profile carries 70% of the custom budget; the numerous small scans
    // follow the by-scans profile and shape the scan ranking.
    const double heavy_count = std::max(2.0, remainder * 0.015);
    bulk("custom-heavy-host", WireTool::kCustom, heavy_count * 0.4, custom_pkts * 0.28,
         40000, 3.0, 2.4, enrich::ScannerType::kHosting,
         with_tail(seed.by_packets, packet_tail), std::nullopt, 0,
         seed.alias_probability);
    bulk("custom-heavy-res", WireTool::kCustom, heavy_count * 0.3, custom_pkts * 0.21,
         30000, 3.0, 2.4, enrich::ScannerType::kResidential,
         with_tail(seed.by_packets, packet_tail), std::nullopt, 0,
         seed.alias_probability);
    bulk("custom-heavy-unk", WireTool::kCustom, heavy_count * 0.3, custom_pkts * 0.21,
         35000, 3.0, 2.4, enrich::ScannerType::kUnknown,
         with_tail(seed.by_packets, packet_tail), std::nullopt, 0,
         seed.alias_probability);
    const double small = std::max(8.0, remainder - heavy_count);
    bulk("custom-res", WireTool::kCustom, small * 0.45, custom_pkts * 0.30 * 0.45, 450,
         2.2, 1.8, enrich::ScannerType::kResidential, by_scans_tail, std::nullopt,
         std::max<std::uint32_t>(1, static_cast<std::uint32_t>(small * 0.45)),
         seed.alias_probability);
    bulk("custom-host", WireTool::kCustom, small * 0.35, custom_pkts * 0.30 * 0.35, 1600,
         3.0, 1.8, enrich::ScannerType::kHosting, by_scans_tail, std::nullopt, 0,
         seed.alias_probability);
    bulk("custom-ent", WireTool::kCustom, small * 0.12, custom_pkts * 0.30 * 0.12, 260,
         2.0, 1.8, enrich::ScannerType::kEnterprise, by_scans_tail, std::nullopt, 0,
         seed.alias_probability);
    bulk("custom-unk", WireTool::kCustom, small * 0.08, custom_pkts * 0.30 * 0.08, 800,
         2.5, 1.8, enrich::ScannerType::kUnknown, by_scans_tail, std::nullopt, 0,
         seed.alias_probability);
  }

  // Heavy-hitter groups keep most of their port-table concentration in
  // the spread-out years; the flat by-scans ranking comes from the far
  // more numerous small scans.
  for (auto& group : config.groups) {
    if (group.name.rfind("masscan", 0) == 0 ||
        group.name.rfind("custom-heavy", 0) == 0) {
      group.random_port_probability = heavy_spread;
    }
  }

  // Ambient disclosure events (the §4.3 dynamics are present every year
  // after 2017; the dedicated Fig. 1 study uses disclosure_study_config).
  if (year >= 2018) {
    config.events.push_back({"cve-" + std::to_string(year) + "-a",
                             static_cast<std::uint16_t>(7000 + year), 8.0,
                             static_cast<std::uint32_t>(0.05 * total_campaigns), 3.5,
                             600});
  }

  return config;
}

std::vector<YearConfig> all_year_configs(double scale) {
  std::vector<YearConfig> configs;
  configs.reserve(std::size(kSeeds));
  for (const auto& seed : kSeeds) {
    configs.push_back(year_config(seed.year, scale));
  }
  return configs;
}

YearConfig disclosure_study_config(double scale) {
  auto config = year_config(2020, scale);
  config.events.clear();
  // Ten staggered disclosures on distinct, otherwise-quiet ports.
  constexpr std::uint16_t kEventPorts[] = {7001, 9200, 5601, 2375,  6443,
                                           8291, 4443, 1883, 11211, 37215};
  double day = 10.0;
  const auto surge = static_cast<std::uint32_t>(180.0 / scale);
  int index = 0;
  for (const auto port : kEventPorts) {
    config.events.push_back({"event-" + std::to_string(index), port, day,
                             std::max<std::uint32_t>(30, surge),
                             2.5 + 0.4 * index, 500});
    // A small pre-disclosure baseline on each event port, so the Fig. 1
    // multipliers are measured against real activity, not an empty port.
    // The bulk groups draw from their override tables, so the baseline
    // has to be injected there.
    config.port_table.emplace_back(port, 0.35);
    for (auto& group : config.groups) {
      if (!group.port_table_override.empty()) {
        group.port_table_override.emplace_back(port, 0.6);
      }
    }
    day += 2.0;
    ++index;
  }
  return config;
}

}  // namespace synscan::simgen
