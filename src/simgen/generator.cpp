#include "simgen/generator.h"

#include <algorithm>
#include <stdexcept>

#include "enrich/known_scanners.h"

namespace synscan::simgen {

/// Per-plan mutable emission state, parallel to the plan vector.
struct LiveState {
  LiveState(WireTool tool, std::uint64_t wire_seed, std::uint64_t dest_seed,
            std::uint64_t subset_seed, std::uint32_t dark_count)
      : wire(tool, Rng(wire_seed)),
        rng(wire_seed ^ 0x5bd1e995u),
        dest_perm(dest_seed, dark_count),
        port_perm(subset_seed, 65536) {}

  WireState wire;
  Rng rng;
  Permutation dest_perm;
  Permutation port_perm;
  std::uint64_t emitted = 0;
};

TrafficGenerator::TrafficGenerator(YearConfig config,
                                   const telescope::Telescope& telescope,
                                   const enrich::InternetRegistry& registry)
    : config_(std::move(config)), telescope_(&telescope), registry_(&registry) {
  dark_ = telescope_->dark_addresses();
  if (dark_.empty()) throw std::invalid_argument("TrafficGenerator: empty telescope");

  port_values_.reserve(config_.port_table.size());
  port_weights_.reserve(config_.port_table.size());
  for (const auto& [port, weight] : config_.port_table) {
    port_values_.push_back(port);
    port_weights_.push_back(weight);
  }

  Rng rng(config_.seed);
  for (const auto& group : config_.groups) expand_group(group, rng);
  for (const auto& event : config_.events) expand_event(event, rng);
  stats_.planned_campaigns = plans_.size();
  expand_noise(rng);
}

net::Ipv4Address TrafficGenerator::pick_source(const GroupSpec& group, Rng& rng) const {
  if (!group.organization.empty()) {
    const auto* spec = enrich::find_known_scanner(group.organization);
    if (spec == nullptr) {
      throw std::invalid_argument("unknown institutional organization: " +
                                  group.organization);
    }
    const auto size = spec->prefix.size();
    return spec->prefix.at(2 + rng.uniform(size - 4));
  }
  if (group.pool == enrich::ScannerType::kUnknown) {
    // Space the synthetic registry does not cover (8.0.0.0/7): sources
    // that enrich to "unknown", like the paper's unmatched addresses.
    return net::Ipv4Address(0x08000000u + rng.next_u32() % 0x02000000u);
  }
  auto pools = registry_->records_of(group.pool);
  if (group.country) {
    std::vector<const enrich::PrefixRecord*> filtered;
    for (const auto* rec : pools) {
      if (rec->country == *group.country) filtered.push_back(rec);
    }
    if (!filtered.empty()) pools = std::move(filtered);
  }
  if (pools.empty()) throw std::logic_error("no source pool for group " + group.name);
  const auto* pool = pools[rng.uniform(pools.size())];
  // Avoid network/broadcast edges of the pool.
  return pool->prefix.at(2 + rng.uniform(pool->prefix.size() - 4));
}

std::vector<std::uint16_t> TrafficGenerator::resolve_single_port(
    const GroupSpec& group, Rng& rng) const {
  std::uint16_t port = 80;
  if (!group.port_table_override.empty()) {
    std::vector<double> weights;
    weights.reserve(group.port_table_override.size());
    for (const auto& [unused, weight] : group.port_table_override) weights.push_back(weight);
    port = group.port_table_override[rng.weighted(weights)].first;
  } else if (!port_values_.empty()) {
    port = port_values_[rng.weighted(port_weights_)];
  }
  if (group.random_port_probability > 0.0 && rng.bernoulli(group.random_port_probability)) {
    return {static_cast<std::uint16_t>(1 + rng.uniform(65535))};
  }
  const double alias_probability = group.alias_probability;
  if (alias_probability > 0.0 && rng.bernoulli(alias_probability)) {
    for (const auto& [base, alias] : config_.port_aliases) {
      if (base == port) return {port, alias};
    }
  }
  return {port};
}

void TrafficGenerator::expand_group(const GroupSpec& group, Rng& rng) {
  const double p_hit =
      static_cast<double>(dark_.size()) / 4294967296.0;
  const auto window_us = config_.window_length_us();

  // Materialize the group's source addresses.
  std::vector<net::Ipv4Address> sources;
  sources.reserve(group.sources);
  for (std::uint32_t i = 0; i < group.sources; ++i) {
    sources.push_back(pick_source(group, rng));
  }

  const auto make_plan = [&](net::Ipv4Address source, net::TimeUs start) {
    Plan plan;
    plan.source = source;
    plan.tool = group.tool;
    plan.start = config_.start_time + start;

    double hits = rng.lognormal(group.hits_median, group.hits_sigma);
    hits = std::clamp(hits, 120.0, 5.0 * static_cast<double>(dark_.size()));
    const double pps = std::max(150.0, rng.lognormal(group.pps_median, group.pps_sigma));
    plan.mean_gap_us = 1e6 / (pps * p_hit);
    // Keep campaigns within ~2 windows so rates stay as planned.
    const double max_hits =
        2.0 * static_cast<double>(window_us) / plan.mean_gap_us;
    plan.hits = static_cast<std::uint64_t>(std::max(120.0, std::min(hits, max_hits)));

    switch (group.ports.choice) {
      case PortChoice::kWeightedSingle:
        plan.port_list = resolve_single_port(group, rng);
        break;
      case PortChoice::kList:
        plan.port_list = group.ports.list;
        break;
      case PortChoice::kSubset:
      case PortChoice::kFullRange:
        plan.subset_size = std::max<std::uint32_t>(1, group.ports.subset_size);
        plan.subset_seed = group.ports.subset_seed != 0
                               ? group.ports.subset_seed
                               : Rng::hash_label(group.name);
        plan.port_offset = rng.next_u32();
        plan.popular_bias = group.ports.popular_bias;
        plan.popular = group.ports.popular;
        break;
    }
    plan.dest_seed = rng.next_u64();
    plan.dest_offset = rng.next_u32();
    plan.wire_seed = rng.next_u64();
    plans_.push_back(std::move(plan));
  };

  if (group.recur_days > 0.0) {
    const auto recur_us =
        static_cast<net::TimeUs>(group.recur_days * static_cast<double>(net::kMicrosPerDay));
    for (const auto source : sources) {
      net::TimeUs t = static_cast<net::TimeUs>(rng.uniform_real() *
                                               static_cast<double>(recur_us));
      while (t < window_us) {
        make_plan(source, t);
        // ~10% cadence jitter around the nominal recurrence.
        t += static_cast<net::TimeUs>(static_cast<double>(recur_us) *
                                      rng.uniform_real(0.9, 1.1));
      }
    }
    return;
  }

  if (group.sharded) {
    // One logical scan split across the group's sources: shared start,
    // shared target port, and — like the paper's /24 of collaborating
    // academic scanners (§6.4) — sources drawn from a single subnet.
    const auto anchor = sources.empty() ? pick_source(group, rng) : sources.front();
    const auto subnet_base = anchor.value() & 0xffffff00u;
    for (std::size_t i = 0; i < sources.size(); ++i) {
      sources[i] = net::Ipv4Address(subnet_base + 2 +
                                    static_cast<std::uint32_t>(i % 250));
    }
    const auto t0 = static_cast<net::TimeUs>(rng.uniform_real(0.1, 0.7) *
                                             static_cast<double>(window_us));
    GroupSpec pinned = group;
    if (pinned.ports.choice == PortChoice::kWeightedSingle) {
      pinned.ports = PortPlanSpec::of(resolve_single_port(group, rng));
    }
    for (const auto source : sources) {
      const auto jitter =
          static_cast<net::TimeUs>(rng.uniform_real() * 60.0 * 1e6);
      Plan plan;
      plan.source = source;
      plan.tool = pinned.tool;
      plan.start = config_.start_time + t0 + jitter;
      double hits = rng.lognormal(pinned.hits_median, pinned.hits_sigma);
      plan.hits = static_cast<std::uint64_t>(std::clamp(hits, 120.0, 5.0 * static_cast<double>(dark_.size())));
      const double pps = std::max(150.0, rng.lognormal(pinned.pps_median, pinned.pps_sigma));
      plan.mean_gap_us = 1e6 / (pps * p_hit);
      plan.port_list = pinned.ports.list;
      plan.dest_seed = rng.next_u64();
      plan.dest_offset = rng.next_u32();
      plan.wire_seed = rng.next_u64();
      plans_.push_back(std::move(plan));
    }
    return;
  }

  for (std::uint32_t c = 0; c < group.campaigns; ++c) {
    const auto source = sources[c % sources.size()];
    const auto start = static_cast<net::TimeUs>(rng.uniform_real() * 0.95 *
                                                static_cast<double>(window_us));
    make_plan(source, start);
  }
}

void TrafficGenerator::expand_event(const EventSpec& event, Rng& rng) {
  const double p_hit = static_cast<double>(dark_.size()) / 4294967296.0;
  const auto window_us = config_.window_length_us();
  for (std::uint32_t c = 0; c < event.surge_campaigns; ++c) {
    Plan plan;
    // Opportunistic actors pile on right after the disclosure and lose
    // interest exponentially (§4.3).
    const double day = event.day + rng.exponential(event.decay_days);
    const auto start =
        static_cast<net::TimeUs>(day * static_cast<double>(net::kMicrosPerDay));
    if (start >= window_us) continue;
    plan.start = config_.start_time + start;

    const double roll = rng.uniform_real();
    GroupSpec shim;  // reuse the pool-based source picker
    shim.pool = roll < 0.5 ? enrich::ScannerType::kResidential
                           : enrich::ScannerType::kHosting;
    shim.name = event.name;
    plan.source = pick_source(shim, rng);
    plan.tool = roll < 0.35   ? WireTool::kMasscan
                : roll < 0.65 ? WireTool::kCustom
                              : WireTool::kZmap;
    const double hits = std::clamp(rng.lognormal(event.hits_median, 2.0), 120.0,
                                   2.0 * static_cast<double>(dark_.size()));
    plan.hits = static_cast<std::uint64_t>(hits);
    const double pps = std::max(500.0, rng.lognormal(8000.0, 2.5));
    plan.mean_gap_us = 1e6 / (pps * p_hit);
    plan.port_list = {event.port};
    plan.dest_seed = rng.next_u64();
    plan.dest_offset = rng.next_u32();
    plan.wire_seed = rng.next_u64();
    plans_.push_back(std::move(plan));
  }
}

void TrafficGenerator::expand_noise(Rng& rng) {
  const double p_hit = static_cast<double>(dark_.size()) / 4294967296.0;
  const auto window_us = config_.window_length_us();

  std::vector<std::uint16_t> noise_ports;
  std::vector<double> noise_weights;
  const auto& table =
      config_.noise_port_table.empty() ? config_.port_table : config_.noise_port_table;
  for (const auto& [port, weight] : table) {
    noise_ports.push_back(port);
    noise_weights.push_back(weight);
  }

  for (std::uint32_t i = 0; i < config_.noise_sources; ++i) {
    Plan plan;
    GroupSpec shim;
    const double roll = rng.uniform_real();
    shim.pool = roll < 0.75   ? enrich::ScannerType::kResidential
                : roll < 0.9 ? enrich::ScannerType::kUnknown
                              : enrich::ScannerType::kEnterprise;
    shim.name = "noise";
    if (shim.pool == enrich::ScannerType::kUnknown) {
      // Unallocated space: synthesize an address outside the plan.
      plan.source = net::Ipv4Address(0x08000000u + rng.next_u32() % 0x00ffffffu);
    } else {
      plan.source = pick_source(shim, rng);
    }
    plan.tool = rng.bernoulli(config_.noise_mirai_fraction) ? WireTool::kMirai
                                                            : WireTool::kCustom;
    const double hits = std::clamp(rng.lognormal(config_.noise_hits_median, 2.0), 1.0, 60.0);
    plan.hits = static_cast<std::uint64_t>(std::max(1.0, hits));
    const double pps = std::max(150.0, rng.lognormal(900.0, 2.5));
    plan.mean_gap_us = 1e6 / (pps * p_hit);
    const auto port =
        noise_ports.empty() ? std::uint16_t{80} : noise_ports[rng.weighted(noise_weights)];
    plan.port_list = {port};
    if (rng.bernoulli(config_.noise_multiport_fraction)) {
      // Multi-port chatter: the standard alias first (80 -> 8080 style),
      // then possibly one or two more table draws.
      bool aliased = false;
      for (const auto& [base, alias] : config_.port_aliases) {
        if (base == port) {
          plan.port_list.push_back(alias);
          aliased = true;
          break;
        }
      }
      if (!aliased && !noise_ports.empty()) {
        plan.port_list.push_back(noise_ports[rng.weighted(noise_weights)]);
      }
      while (plan.port_list.size() < 4 && rng.bernoulli(0.3) && !noise_ports.empty()) {
        plan.port_list.push_back(noise_ports[rng.weighted(noise_weights)]);
      }
      // Spread hits so each port is actually observed.
      plan.hits = std::max<std::uint64_t>(plan.hits, plan.port_list.size() * 2);
    }
    plan.start = config_.start_time +
                 static_cast<net::TimeUs>(rng.uniform_real() * 0.98 *
                                          static_cast<double>(window_us));
    plan.dest_seed = rng.next_u64();
    plan.dest_offset = rng.next_u32();
    plan.wire_seed = rng.next_u64();
    plans_.push_back(std::move(plan));
    ++stats_.planned_noise_sources;
  }
}

void TrafficGenerator::emit_scan_frame(const Plan& plan, LiveState& live, net::TimeUs when,
                                       std::uint64_t index, const FrameSink& sink) {
  const auto dest_index =
      live.dest_perm.at(static_cast<std::uint32_t>((plan.dest_offset + index) % dark_.size()));
  const auto dest = dark_[dest_index];

  std::uint16_t port;
  if (plan.subset_size == 0) {
    port = plan.port_list[index % plan.port_list.size()];
  } else if (!plan.popular.empty() && plan.popular_bias > 0.0 &&
             live.rng.bernoulli(plan.popular_bias)) {
    port = plan.popular[live.rng.uniform(plan.popular.size())];
  } else {
    port = static_cast<std::uint16_t>(
        live.port_perm.at(static_cast<std::uint32_t>((plan.port_offset + index) %
                                                     plan.subset_size)));
  }

  net::TcpFrameSpec spec;
  spec.src_ip = plan.source;
  spec.src_mac = net::MacAddress::local(plan.source.value());
  spec.dst_mac = net::MacAddress::local(0xfe);
  live.wire.craft(spec, dest, port);

  frame_.timestamp_us = when;
  frame_.bytes = net::build_tcp_frame(spec);
  ++stats_.scan_frames;
  ++stats_.total_frames;
  sink(frame_);
}

void TrafficGenerator::emit_backscatter(net::TimeUs when, Rng& rng, const FrameSink& sink) {
  const auto dest = dark_[rng.uniform(dark_.size())];
  const auto victim = net::Ipv4Address(0x30000000u + rng.next_u32() % 0x20000000u);
  net::TcpFrameSpec spec;
  spec.src_ip = victim;
  spec.dst_ip = dest;
  spec.src_port = static_cast<std::uint16_t>(1 + rng.uniform(65535));
  spec.dst_port = static_cast<std::uint16_t>(1024 + rng.uniform(60000));
  spec.sequence = rng.next_u32();
  spec.ip_id = rng.next_u16();
  const double roll = rng.uniform_real();
  if (roll < 0.45) {
    spec.flags = net::flag_bit(net::TcpFlag::kSyn) | net::flag_bit(net::TcpFlag::kAck);
  } else if (roll < 0.8) {
    spec.flags = net::flag_bit(net::TcpFlag::kRst);
  } else {
    spec.flags = net::flag_bit(net::TcpFlag::kAck);
  }
  frame_.timestamp_us = when;
  frame_.bytes = net::build_tcp_frame(spec);
  ++stats_.backscatter_frames;
  ++stats_.total_frames;
  sink(frame_);
}

GeneratorStats TrafficGenerator::run(const FrameSink& sink) {
  std::vector<LiveState> live;
  live.reserve(plans_.size());
  for (const auto& plan : plans_) {
    live.emplace_back(plan.tool, plan.wire_seed, plan.dest_seed, plan.subset_seed,
                      static_cast<std::uint32_t>(dark_.size()));
  }

  std::priority_queue<Cursor, std::vector<Cursor>, std::greater<>> heap;
  for (std::size_t i = 0; i < plans_.size(); ++i) {
    heap.push({i, plans_[i].start});
  }

  Rng noise_rng(config_.seed ^ 0xbacc5cull);
  while (!heap.empty()) {
    const auto cursor = heap.top();
    heap.pop();
    const auto& plan = plans_[cursor.plan_index];
    auto& state = live[cursor.plan_index];

    emit_scan_frame(plan, state, cursor.next_time, state.emitted, sink);
    ++state.emitted;
    if (state.emitted < plan.hits) {
      const auto gap =
          static_cast<net::TimeUs>(state.rng.exponential(plan.mean_gap_us) + 1.0);
      heap.push({cursor.plan_index, cursor.next_time + gap});
    }
    if (config_.backscatter_fraction > 0.0 &&
        noise_rng.bernoulli(config_.backscatter_fraction)) {
      emit_backscatter(cursor.next_time + 1, noise_rng, sink);
    }
  }
  return stats_;
}

}  // namespace synscan::simgen
