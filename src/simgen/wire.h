// On-the-wire probe synthesis per scanning tool.
//
// Each tool writes its fingerprint into the headers exactly as §3.3
// describes, so the generated frames satisfy the same relations the
// fingerprint matchers test. "Stealth" variants are the post-2022
// builds whose easy identifiers were removed (§6: by 2024 scanning
// organizations no longer use the ZMap version with the static IP-ID);
// they are honest-to-wire but classify as kUnknown.
#pragma once

#include <cstdint>

#include "net/packet.h"
#include "simgen/rng.h"

namespace synscan::simgen {

/// The behavior a simulated actor uses when crafting probes.
enum class WireTool : std::uint8_t {
  kZmap,
  kZmapStealth,    ///< randomized IP-ID (not fingerprintable as ZMap)
  kMasscan,
  kMasscanStealth, ///< randomized IP-ID (breaks the Masscan relation)
  kMirai,
  kNmap,
  kUnicorn,
  kCustom,         ///< bespoke tooling: all discriminating fields random
};

/// Per-source persistent wire state (session secrets, source ports).
class WireState {
 public:
  WireState(WireTool tool, Rng rng);

  /// Fills the tool-determined TCP/IP fields of a probe to
  /// `dst`:`port`. Source IP/MAC and timing are the caller's concern.
  void craft(net::TcpFrameSpec& spec, net::Ipv4Address dst, std::uint16_t port) noexcept;

  [[nodiscard]] WireTool tool() const noexcept { return tool_; }

 private:
  WireTool tool_;
  Rng rng_;
  std::uint32_t session_secret_ = 0;   ///< NMap keystream / Unicorn key
  std::uint16_t fixed_source_port_ = 0;  ///< ZMap-style fixed source port
};

}  // namespace synscan::simgen
