// The ecosystem traffic generator.
//
// Expands a YearConfig into per-campaign schedules, then emits byte-
// exact Ethernet/IPv4/TCP frames in global timestamp order through a
// sink. The generator produces *telescope-visible* traffic directly:
// for a scanner with Internet-wide rate R and hit probability p (from
// the telescope's size), probes arrive at rate R*p with exponential
// inter-arrival jitter — the arrival process a real telescope observes
// from a random-order scanner.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "enrich/registry.h"
#include "net/packet.h"
#include "simgen/permute.h"
#include "simgen/spec.h"
#include "telescope/telescope.h"

namespace synscan::simgen {

/// Receives frames in timestamp order. The RawFrame reference is only
/// valid during the call (the generator reuses its buffer); copy it if
/// you need to keep it.
using FrameSink = std::function<void(const net::RawFrame&)>;

/// Generation statistics.
struct GeneratorStats {
  std::uint64_t planned_campaigns = 0;
  std::uint64_t planned_noise_sources = 0;
  std::uint64_t scan_frames = 0;
  std::uint64_t backscatter_frames = 0;
  std::uint64_t total_frames = 0;
};

class TrafficGenerator {
 public:
  TrafficGenerator(YearConfig config, const telescope::Telescope& telescope,
                   const enrich::InternetRegistry& registry);
  /// The generator keeps pointers; temporaries would dangle.
  TrafficGenerator(YearConfig, const telescope::Telescope&&,
                   const enrich::InternetRegistry&) = delete;

  /// Runs the whole window through `sink`. Call once.
  GeneratorStats run(const FrameSink& sink);

  /// Number of campaigns the expansion planned (before emission).
  [[nodiscard]] std::uint64_t planned_campaigns() const noexcept { return plans_.size(); }

 private:
  struct Plan {
    net::Ipv4Address source;
    WireTool tool = WireTool::kCustom;
    net::TimeUs start = 0;
    std::uint64_t hits = 0;
    double mean_gap_us = 1e6;
    // Port plan: either a small explicit list, or a permuted subset.
    std::vector<std::uint16_t> port_list;
    std::uint32_t subset_size = 0;   ///< 0 means "use port_list"
    std::uint64_t subset_seed = 0;
    std::uint32_t port_offset = 0;
    double popular_bias = 0.0;
    std::vector<std::uint16_t> popular;
    std::uint64_t dest_seed = 0;
    std::uint32_t dest_offset = 0;
    std::uint64_t wire_seed = 0;
  };

  struct Cursor {
    std::size_t plan_index;
    net::TimeUs next_time;
    bool operator>(const Cursor& other) const noexcept {
      return next_time > other.next_time;
    }
  };

  void expand_group(const GroupSpec& group, Rng& rng);
  void expand_event(const EventSpec& event, Rng& rng);
  void expand_noise(Rng& rng);

  [[nodiscard]] net::Ipv4Address pick_source(const GroupSpec& group, Rng& rng) const;
  [[nodiscard]] std::vector<std::uint16_t> resolve_single_port(const GroupSpec& group,
                                                               Rng& rng) const;

  void emit_scan_frame(const Plan& plan, struct LiveState& live, net::TimeUs when,
                       std::uint64_t index, const FrameSink& sink);
  void emit_backscatter(net::TimeUs when, Rng& rng, const FrameSink& sink);

  YearConfig config_;
  const telescope::Telescope* telescope_;
  const enrich::InternetRegistry* registry_;
  std::vector<net::Ipv4Address> dark_;
  std::vector<Plan> plans_;
  std::vector<double> port_weights_;
  std::vector<std::uint16_t> port_values_;
  GeneratorStats stats_;
  net::RawFrame frame_;  ///< reused emission buffer
};

}  // namespace synscan::simgen
