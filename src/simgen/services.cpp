#include "simgen/services.h"

#include "simgen/rng.h"

namespace synscan::simgen {
namespace {

// Deployment profile: (port, relative density of services).
struct PortDensity {
  std::uint16_t port;
  double weight;
};

constexpr PortDensity kProfile[] = {
    {80, 20.0},  {443, 18.0}, {22, 12.0},  {21, 4.0},   {25, 3.5},  {53, 3.0},
    {110, 1.5},  {143, 1.5},  {3306, 2.5}, {3389, 3.0}, {8080, 5.0}, {8443, 3.0},
    {8000, 1.5}, {8888, 1.0}, {5432, 1.0}, {6379, 0.8}, {9200, 0.6}, {2222, 1.2},
    {2323, 0.4}, {5900, 1.0}, {1433, 0.8}, {445, 2.0},  {139, 1.0},  {587, 0.8},
    {993, 1.2},  {995, 0.8},  {465, 0.6},  {8081, 0.8}, {10000, 0.5}, {5060, 0.7},
};

}  // namespace

std::vector<std::uint16_t> ServiceDeployment::open_ports(net::Ipv4Address host) const {
  Rng rng(seed_ ^ (static_cast<std::uint64_t>(host.value()) * 0x9e3779b97f4a7c15ull));
  std::vector<std::uint16_t> ports;
  // ~8% of random hosts expose at least one service.
  if (!rng.bernoulli(0.08)) return ports;

  static const std::vector<double> weights = [] {
    std::vector<double> w;
    for (const auto& entry : kProfile) w.push_back(entry.weight);
    return w;
  }();

  const auto services = 1 + rng.uniform(5);
  for (std::uint64_t i = 0; i < services; ++i) {
    if (rng.bernoulli(0.12)) {
      // LZR's observation: services frequently live on unexpected ports
      // ("only 3.0% of HTTP services are on their standard port").
      ports.push_back(static_cast<std::uint16_t>(1024 + rng.uniform(64512)));
    } else {
      ports.push_back(kProfile[rng.weighted(weights)].port);
    }
  }
  return ports;
}

std::vector<std::uint64_t> ServiceDeployment::services_per_port(
    std::uint32_t sample_size) const {
  std::vector<std::uint64_t> counts(65536, 0);
  Rng sampler(seed_ ^ 0x5a5a5a5aull);
  for (std::uint32_t i = 0; i < sample_size; ++i) {
    const net::Ipv4Address host(sampler.next_u32());
    for (const auto port : open_ports(host)) {
      ++counts[port];
    }
  }
  return counts;
}

}  // namespace synscan::simgen
