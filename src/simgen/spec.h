// Declarative workload specification for the ecosystem simulator.
//
// A year's traffic is described as actor groups (who scans, from where,
// with which tool, how hard, at which ports), disclosure-event shocks,
// and a background-noise budget. The generator expands this into
// individual campaign schedules and emits byte-exact frames.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "enrich/country.h"
#include "enrich/scanner_type.h"
#include "net/packet.h"
#include "simgen/wire.h"

namespace synscan::simgen {

/// How a campaign selects destination ports.
enum class PortChoice : std::uint8_t {
  kWeightedSingle,  ///< one port per campaign, drawn from the year's port table
  kList,            ///< a fixed small list (e.g. {80, 8080})
  kSubset,          ///< a seeded pseudorandom subset of the full range
  kFullRange,       ///< all 65,536 ports
};

struct PortPlanSpec {
  PortChoice choice = PortChoice::kWeightedSingle;
  std::vector<std::uint16_t> list;   ///< for kList
  std::uint32_t subset_size = 0;     ///< for kSubset
  std::uint64_t subset_seed = 0;     ///< for kSubset; derived from the org name
  /// For kSubset/kFullRange: probability that a probe targets one of
  /// `popular` instead of the next subset port. Port-census scanners
  /// (Censys & co) revisit popular service ports far more often than
  /// the long tail — which is why 443 is institutional-heavy (Fig. 5).
  double popular_bias = 0.0;
  std::vector<std::uint16_t> popular;

  [[nodiscard]] static PortPlanSpec single() { return {}; }
  [[nodiscard]] static PortPlanSpec of(std::vector<std::uint16_t> ports) {
    PortPlanSpec spec;
    spec.choice = PortChoice::kList;
    spec.list = std::move(ports);
    return spec;
  }
  [[nodiscard]] static PortPlanSpec subset(std::uint32_t size, std::uint64_t seed) {
    PortPlanSpec spec;
    spec.choice = PortChoice::kSubset;
    spec.subset_size = size;
    spec.subset_seed = seed;
    return spec;
  }
  [[nodiscard]] static PortPlanSpec full() {
    PortPlanSpec spec;
    spec.choice = PortChoice::kFullRange;
    spec.subset_size = 65536;
    return spec;
  }
};

/// One actor group: `sources` hosts in `pool`-type space (optionally of
/// one country or one institutional organization) launching `campaigns`
/// campaigns over the window.
struct GroupSpec {
  std::string name;
  WireTool tool = WireTool::kCustom;
  enrich::ScannerType pool = enrich::ScannerType::kResidential;
  std::optional<enrich::CountryCode> country;  ///< restrict source pools
  std::string organization;  ///< institutional org name (selects its prefix)

  std::uint32_t sources = 1;
  std::uint32_t campaigns = 1;

  /// Telescope hits per campaign: lognormal(median, sigma).
  double hits_median = 300;
  double hits_sigma = 2.0;

  /// Internet-wide probe rate: lognormal(median, sigma), pps.
  double pps_median = 3000;
  double pps_sigma = 3.0;

  PortPlanSpec ports;

  /// kWeightedSingle draws from this table instead of the year table
  /// when non-empty. Table 1 ranks ports differently by packets and by
  /// scans, so heavy-hitter groups and bulk groups target differently.
  std::vector<std::pair<std::uint16_t, double>> port_table_override;

  /// Probability that a kWeightedSingle campaign also covers the
  /// alias ports of its drawn port (the §5.1 co-scan trend:
  /// 80 -> {80, 8080}).
  double alias_probability = 0.0;

  /// Probability that a kWeightedSingle campaign targets a uniformly
  /// random port instead of a table draw. Models the 2023/2024 regime
  /// where scans blanket the port space and the top port's share of
  /// scans falls below 1% (Table 1).
  double random_port_probability = 0.0;

  /// > 0: each source repeats its campaign every `recur_days`
  /// (institutional daily rescans). 0: campaign starts are uniform over
  /// the window and sources are assigned round-robin.
  double recur_days = 0.0;

  /// True: all sources of the group shard one logical scan — campaigns
  /// start together and split the target space (ZMap sharding, §4.1).
  bool sharded = false;
};

/// A vulnerability-disclosure shock (§4.3, Fig. 1): interest in `port`
/// spikes at `day` and decays exponentially.
struct EventSpec {
  std::string name;
  std::uint16_t port = 0;
  double day = 7;               ///< disclosure day within the window
  std::uint32_t surge_campaigns = 120;
  double decay_days = 4.0;      ///< e-folding time of the interest
  double hits_median = 400;
};

/// Per-year workload.
struct YearConfig {
  int year = 2015;
  double window_days = 45;
  net::TimeUs start_time = 0;
  std::uint64_t seed = 1;

  /// Port table for kWeightedSingle campaigns: (port, weight).
  std::vector<std::pair<std::uint16_t, double>> port_table;
  /// Alias map applied with GroupSpec::alias_probability.
  std::vector<std::pair<std::uint16_t, std::uint16_t>> port_aliases;

  std::vector<GroupSpec> groups;
  std::vector<EventSpec> events;

  /// Sub-threshold chatter: sources that send a handful of probes and
  /// never qualify as campaigns (they dominate source counts).
  std::uint32_t noise_sources = 0;
  double noise_hits_median = 8;
  /// Fraction of noise sources carrying the Mirai wire fingerprint
  /// (models the 2023 source spike of §6.2); the rest look custom.
  double noise_mirai_fraction = 0.1;
  /// Fraction of noise sources probing 2-4 ports instead of one (the
  /// Fig. 3 multi-port share: 17% of sources in 2015, 35% by 2022).
  double noise_multiport_fraction = 0.2;
  /// Port table for noise sources; falls back to `port_table` if empty.
  /// (Table 1 shows "top ports by sources" ranking very differently from
  /// "by packets" — the source population has its own targeting mix.)
  std::vector<std::pair<std::uint16_t, double>> noise_port_table;

  /// Non-scan frames (backscatter, UDP, ICMP) as a fraction of scan
  /// frames, to exercise the sensor's separation logic.
  double backscatter_fraction = 0.03;

  [[nodiscard]] net::TimeUs window_length_us() const noexcept {
    return static_cast<net::TimeUs>(window_days * static_cast<double>(net::kMicrosPerDay));
  }
};

}  // namespace synscan::simgen
