#include "obs/metrics.h"

#include <algorithm>
#include <bit>

namespace synscan::obs {
namespace {

std::atomic<bool> g_enabled{false};

/// Bucket 0 holds sample 0; bucket i >= 1 holds [2^(i-1), 2^i).
std::size_t bucket_index(std::uint64_t sample) noexcept {
  return sample == 0 ? 0 : static_cast<std::size_t>(64 - std::countl_zero(sample));
}

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept { g_enabled.store(on, std::memory_order_relaxed); }

std::uint64_t HistogramData::quantile(double q) const noexcept {
  if (count == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen > rank) {
      // Upper bound of bucket i, clamped into the observed range.
      const std::uint64_t upper = i == 0 ? 0 : (i >= 64 ? UINT64_MAX : (1ull << i) - 1);
      return std::clamp(upper, min, max);
    }
  }
  return max;
}

void Histogram::observe(std::uint64_t sample) noexcept {
  const auto index = std::min<std::size_t>(bucket_index(sample), 63);
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  auto min = min_.load(std::memory_order_relaxed);
  while (sample < min &&
         !min_.compare_exchange_weak(min, sample, std::memory_order_relaxed)) {
  }
  auto max = max_.load(std::memory_order_relaxed);
  while (sample > max &&
         !max_.compare_exchange_weak(max, sample, std::memory_order_relaxed)) {
  }
}

HistogramData Histogram::data() const noexcept {
  HistogramData out;
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  const auto min = min_.load(std::memory_order_relaxed);
  out.min = out.count == 0 ? 0 : min;
  out.max = max_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void Timing::record(std::uint64_t wall_us, std::uint64_t cpu_us) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  wall_us_.fetch_add(wall_us, std::memory_order_relaxed);
  cpu_us_.fetch_add(cpu_us, std::memory_order_relaxed);
  auto max = max_wall_us_.load(std::memory_order_relaxed);
  while (wall_us > max &&
         !max_wall_us_.compare_exchange_weak(max, wall_us, std::memory_order_relaxed)) {
  }
}

TimingData Timing::data() const noexcept {
  TimingData out;
  out.count = count_.load(std::memory_order_relaxed);
  out.wall_us = wall_us_.load(std::memory_order_relaxed);
  out.cpu_us = cpu_us_.load(std::memory_order_relaxed);
  out.max_wall_us = max_wall_us_.load(std::memory_order_relaxed);
  return out;
}

void Timing::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  wall_us_.store(0, std::memory_order_relaxed);
  cpu_us_.store(0, std::memory_order_relaxed);
  max_wall_us_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

template <typename T>
T& MetricsRegistry::get_or_create(
    std::map<std::string, std::unique_ptr<T>, std::less<>>& metrics,
    std::string_view name) {
  const auto it = metrics.find(name);
  if (it != metrics.end()) return *it->second;
  return *metrics.emplace(std::string(name), std::make_unique<T>()).first->second;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const core::MutexLock lock(mutex_);
  return get_or_create(counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const core::MutexLock lock(mutex_);
  return get_or_create(gauges_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const core::MutexLock lock(mutex_);
  return get_or_create(histograms_, name);
}

Timing& MetricsRegistry::timing(std::string_view name) {
  const core::MutexLock lock(mutex_);
  return get_or_create(timings_, name);
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  const core::MutexLock lock(mutex_);
  Snapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, cell] : counters_) out.counters.emplace_back(name, cell->value());
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, cell] : gauges_) out.gauges.emplace_back(name, cell->value());
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, cell] : histograms_) {
    out.histograms.emplace_back(name, cell->data());
  }
  out.timings.reserve(timings_.size());
  for (const auto& [name, cell] : timings_) out.timings.emplace_back(name, cell->data());
  return out;
}

std::vector<std::string> MetricsRegistry::names() const {
  const core::MutexLock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size() + timings_.size());
  for (const auto& [name, cell] : counters_) out.push_back(name);
  for (const auto& [name, cell] : gauges_) out.push_back(name);
  for (const auto& [name, cell] : histograms_) out.push_back(name);
  for (const auto& [name, cell] : timings_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

bool MetricsRegistry::contains(std::string_view name) const {
  const core::MutexLock lock(mutex_);
  return counters_.find(name) != counters_.end() || gauges_.find(name) != gauges_.end() ||
         histograms_.find(name) != histograms_.end() ||
         timings_.find(name) != timings_.end();
}

void MetricsRegistry::reset_values() {
  const core::MutexLock lock(mutex_);
  for (const auto& [name, cell] : counters_) cell->reset();
  for (const auto& [name, cell] : gauges_) cell->reset();
  for (const auto& [name, cell] : histograms_) cell->reset();
  for (const auto& [name, cell] : timings_) cell->reset();
}

void MetricsRegistry::clear() {
  const core::MutexLock lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  timings_.clear();
}

}  // namespace synscan::obs
