// Pipeline observability: a lock-cheap registry of named counters,
// gauges, histograms and stage timings.
//
// Design constraints, in order:
//   1. Zero cost when disabled. Instrumented code checks `obs::enabled()`
//      once per construction (not per event) wherever possible and holds
//      plain pointers to metric cells; with observability off those
//      pointers are null and the hot path pays one predictable branch.
//   2. Lock-cheap when enabled. Name lookup takes a mutex exactly once
//      (registration); every subsequent update is a relaxed atomic on a
//      stable cell. Cells never move or die before process exit.
//   3. No dependencies. Everything below is std-only — plus the
//      header-only, std-only lock wrappers from core/sync.h, which add
//      no link dependency — so that net, pcap, telescope and core can
//      link it without cycles; serialization to JSON/ASCII lives in
//      obs/run_report.h, which may depend on report.
//
// Naming convention: dot-separated lowercase namespaces mirroring the
// pipeline stages — `pcap.*`, `sensor.*`, `tracker.*`, `parallel.*`,
// plus driver-level stage timings (`analyze.*`, `bench.*`). The full
// namespace is documented in docs/OBSERVABILITY.md; a test greps the
// doc against the registry to keep the two in sync.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/sync.h"

namespace synscan::obs {

/// Process-wide observability toggle. Off by default; drivers that want
/// a run report (CLI `--metrics`, bench `--metrics`) switch it on before
/// constructing the pipeline.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Monotonic event count. `add` is a relaxed atomic increment; `store`
/// exists for publishing externally-maintained tallies (e.g. folding a
/// `SensorCounters` into the registry at the end of a run).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  void store(std::uint64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, table size).
/// `record_max` keeps the high-water mark instead.
class Gauge {
 public:
  void store(std::int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void record_max(std::int64_t v) noexcept {
    auto current = value_.load(std::memory_order_relaxed);
    while (v > current &&
           !value_.compare_exchange_weak(current, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Plain-old-data snapshot of a histogram (see Histogram::data()).
struct HistogramData {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, 64> buckets{};  ///< bucket i counts samples in [2^(i-1), 2^i)

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Upper bound of the bucket holding quantile `q` (0 < q <= 1).
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;
};

/// Log2-bucketed histogram over non-negative integer samples (batch
/// sizes, queue depths, latencies in µs). Thread-safe, wait-free.
class Histogram {
 public:
  void observe(std::uint64_t sample) noexcept;
  [[nodiscard]] HistogramData data() const noexcept;
  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, 64> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

/// Plain-old-data snapshot of a stage timing (see Timing::data()).
struct TimingData {
  std::uint64_t count = 0;        ///< completed spans
  std::uint64_t wall_us = 0;      ///< accumulated wall-clock time
  std::uint64_t cpu_us = 0;       ///< accumulated thread CPU time
  std::uint64_t max_wall_us = 0;  ///< slowest single span
};

/// Wall + CPU time accumulated by ScopedTimer spans. Thread-safe.
class Timing {
 public:
  void record(std::uint64_t wall_us, std::uint64_t cpu_us) noexcept;
  [[nodiscard]] TimingData data() const noexcept;
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> wall_us_{0};
  std::atomic<std::uint64_t> cpu_us_{0};
  std::atomic<std::uint64_t> max_wall_us_{0};
};

/// Named metric cells with stable addresses. Registration (name lookup)
/// is mutex-guarded; returned references stay valid for the registry's
/// lifetime, so callers resolve once and update lock-free afterwards.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry used by all built-in instrumentation.
  [[nodiscard]] static MetricsRegistry& global();

  Counter& counter(std::string_view name) SYNSCAN_EXCLUDES(mutex_);
  Gauge& gauge(std::string_view name) SYNSCAN_EXCLUDES(mutex_);
  Histogram& histogram(std::string_view name) SYNSCAN_EXCLUDES(mutex_);
  Timing& timing(std::string_view name) SYNSCAN_EXCLUDES(mutex_);

  /// A coherent point-in-time copy of every metric, each kind sorted by
  /// name. Counters registered but never touched are included (value 0).
  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;
    std::vector<std::pair<std::string, HistogramData>> histograms;
    std::vector<std::pair<std::string, TimingData>> timings;

    [[nodiscard]] bool empty() const noexcept {
      return counters.empty() && gauges.empty() && histograms.empty() && timings.empty();
    }
  };
  [[nodiscard]] Snapshot snapshot() const SYNSCAN_EXCLUDES(mutex_);

  /// Every registered metric name, sorted; for doc-consistency checks.
  [[nodiscard]] std::vector<std::string> names() const SYNSCAN_EXCLUDES(mutex_);
  [[nodiscard]] bool contains(std::string_view name) const SYNSCAN_EXCLUDES(mutex_);

  /// Zeroes all values; registered names and cell addresses survive.
  void reset_values() SYNSCAN_EXCLUDES(mutex_);
  /// Drops every metric. Only safe when no instrumented component still
  /// holds cell pointers (tests, between CLI runs).
  void clear() SYNSCAN_EXCLUDES(mutex_);

 private:
  template <typename T>
  T& get_or_create(std::map<std::string, std::unique_ptr<T>, std::less<>>& metrics,
                   std::string_view name) SYNSCAN_REQUIRES(mutex_);

  /// Guards registration only: the maps below never hand out iterators,
  /// and the returned cells are stable heap objects updated lock-free.
  mutable core::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      SYNSCAN_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      SYNSCAN_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      SYNSCAN_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Timing>, std::less<>> timings_
      SYNSCAN_GUARDED_BY(mutex_);
};

}  // namespace synscan::obs
