#include "obs/run_report.h"

#include <cctype>
#include <ostream>
#include <sstream>

#include "report/json.h"
#include "report/table.h"

namespace synscan::obs {
namespace {

constexpr std::string_view kSchema = "synscan.run_report/1";

void write_timing_json(std::ostream& os, const TimingData& timing) {
  os << "{\"count\":" << timing.count << ",\"wall_us\":" << timing.wall_us
     << ",\"cpu_us\":" << timing.cpu_us << ",\"max_wall_us\":" << timing.max_wall_us
     << "}";
}

void write_histogram_json(std::ostream& os, const HistogramData& histogram) {
  os << "{\"count\":" << histogram.count << ",\"sum\":" << histogram.sum
     << ",\"min\":" << histogram.min << ",\"max\":" << histogram.max << ",\"buckets\":{";
  bool first = true;
  for (std::size_t i = 0; i < histogram.buckets.size(); ++i) {
    if (histogram.buckets[i] == 0) continue;
    if (!first) os << ',';
    first = false;
    os << '"' << i << "\":" << histogram.buckets[i];
  }
  os << "}}";
}

/// Minimal recursive-descent parser for the subset of JSON this file
/// emits: objects, string keys, unsigned/signed integers, strings.
/// Enough to read a run report back; not a general-purpose parser.
class JsonCursor {
 public:
  explicit JsonCursor(std::string_view text) : text_(text) {}

  [[nodiscard]] bool failed() const noexcept { return failed_; }
  void fail() noexcept { failed_ = true; }

  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_space();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      failed_ = true;
      return false;
    }
    ++pos_;
    return true;
  }

  [[nodiscard]] bool peek(char c) {
    skip_space();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  /// Parses a JSON string; handles the escapes report::json_escape emits.
  std::string parse_string() {
    std::string out;
    if (!consume('"')) return out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              failed_ = true;
              return out;
            }
            c = static_cast<char>(std::stoi(std::string(text_.substr(pos_, 4)), nullptr, 16));
            pos_ += 4;
            break;
          }
          default: c = esc; break;
        }
      }
      out += c;
    }
    consume('"');
    return out;
  }

  std::int64_t parse_int() {
    skip_space();
    bool negative = false;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      negative = true;
      ++pos_;
    }
    if (pos_ >= text_.size() || std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
      failed_ = true;
      return 0;
    }
    std::uint64_t value = 0;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      value = value * 10 + static_cast<std::uint64_t>(text_[pos_++] - '0');
    }
    return negative ? -static_cast<std::int64_t>(value) : static_cast<std::int64_t>(value);
  }

  std::uint64_t parse_uint() { return static_cast<std::uint64_t>(parse_int()); }

  /// Iterates `{"key": value}` pairs; `on_pair` must consume the value.
  template <typename OnPair>
  void parse_object(OnPair&& on_pair) {
    if (!consume('{')) return;
    if (peek('}')) {
      consume('}');
      return;
    }
    do {
      const auto key = parse_string();
      if (failed_ || !consume(':')) return;
      on_pair(key);
      if (failed_) return;
    } while (peek(',') && consume(','));
    consume('}');
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace

void publish(MetricsRegistry& registry, const telescope::SensorCounters& counters) {
  registry.counter("sensor.scan_probes").add(counters.scan_probes);
  registry.counter("sensor.backscatter").add(counters.backscatter);
  registry.counter("sensor.xmas_or_null").add(counters.xmas_or_null);
  registry.counter("sensor.other_tcp").add(counters.other_tcp);
  registry.counter("sensor.udp").add(counters.udp);
  registry.counter("sensor.icmp").add(counters.icmp);
  registry.counter("sensor.not_monitored").add(counters.not_monitored);
  registry.counter("sensor.ingress_blocked").add(counters.ingress_blocked);
  registry.counter("sensor.malformed").add(counters.malformed);
  registry.counter("sensor.spoofed_source").add(counters.spoofed_source);
}

void publish(MetricsRegistry& registry, const core::TrackerCounters& counters) {
  registry.counter("tracker.probes").add(counters.probes);
  registry.counter("tracker.campaigns").add(counters.campaigns);
  registry.counter("tracker.subthreshold_flows").add(counters.subthreshold_flows);
  registry.counter("tracker.subthreshold_packets").add(counters.subthreshold_packets);
  registry.counter("tracker.expired_flows").add(counters.expired_flows);
  registry.counter("tracker.sweeps").add(counters.sweeps);
  registry.counter("tracker.flow_reuses").add(counters.flow_reuses);
  registry.counter("tracker.dest_promotions").add(counters.dest_promotions);
  registry.counter("tracker.port_promotions").add(counters.port_promotions);
  registry.counter("tracker.table_rehashes").add(counters.table_rehashes);
  registry.gauge("tracker.peak_open_flows")
      .record_max(static_cast<std::int64_t>(counters.peak_open_flows));
}

RunReport RunReport::capture(std::string label, const core::PipelineResult* result,
                             MetricsRegistry& registry) {
  if (result != nullptr) {
    publish(registry, result->sensor);
    publish(registry, result->tracker);
  }
  RunReport report;
  report.label = std::move(label);
  report.metrics = registry.snapshot();
  return report;
}

void RunReport::write_json(std::ostream& os) const {
  os << "{\"schema\":\"" << kSchema << "\",\"label\":\"" << report::json_escape(label)
     << "\",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : metrics.counters) {
    if (!first) os << ',';
    first = false;
    os << '"' << report::json_escape(name) << "\":" << value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : metrics.gauges) {
    if (!first) os << ',';
    first = false;
    os << '"' << report::json_escape(name) << "\":" << value;
  }
  os << "},\"timings\":{";
  first = true;
  for (const auto& [name, timing] : metrics.timings) {
    if (!first) os << ',';
    first = false;
    os << '"' << report::json_escape(name) << "\":";
    write_timing_json(os, timing);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : metrics.histograms) {
    if (!first) os << ',';
    first = false;
    os << '"' << report::json_escape(name) << "\":";
    write_histogram_json(os, histogram);
  }
  os << "}}";
}

std::string RunReport::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

std::optional<RunReport> RunReport::from_json(std::string_view json) {
  RunReport report;
  JsonCursor cursor(json);
  bool schema_ok = false;

  cursor.parse_object([&](const std::string& section) {
    if (section == "schema") {
      schema_ok = cursor.parse_string() == kSchema;
    } else if (section == "label") {
      report.label = cursor.parse_string();
    } else if (section == "counters") {
      cursor.parse_object([&](const std::string& name) {
        report.metrics.counters.emplace_back(name, cursor.parse_uint());
      });
    } else if (section == "gauges") {
      cursor.parse_object([&](const std::string& name) {
        report.metrics.gauges.emplace_back(name, cursor.parse_int());
      });
    } else if (section == "timings") {
      cursor.parse_object([&](const std::string& name) {
        TimingData timing;
        cursor.parse_object([&](const std::string& field) {
          if (field == "count") timing.count = cursor.parse_uint();
          else if (field == "wall_us") timing.wall_us = cursor.parse_uint();
          else if (field == "cpu_us") timing.cpu_us = cursor.parse_uint();
          else if (field == "max_wall_us") timing.max_wall_us = cursor.parse_uint();
          else cursor.fail();
        });
        report.metrics.timings.emplace_back(name, timing);
      });
    } else if (section == "histograms") {
      cursor.parse_object([&](const std::string& name) {
        HistogramData histogram;
        cursor.parse_object([&](const std::string& field) {
          if (field == "count") histogram.count = cursor.parse_uint();
          else if (field == "sum") histogram.sum = cursor.parse_uint();
          else if (field == "min") histogram.min = cursor.parse_uint();
          else if (field == "max") histogram.max = cursor.parse_uint();
          else if (field == "buckets") {
            cursor.parse_object([&](const std::string& index) {
              const auto i = static_cast<std::size_t>(std::stoul(index));
              const auto value = cursor.parse_uint();
              if (i < histogram.buckets.size()) histogram.buckets[i] = value;
            });
          } else {
            cursor.fail();
          }
        });
        report.metrics.histograms.emplace_back(name, histogram);
      });
    } else {
      cursor.fail();
    }
  });

  if (cursor.failed() || !schema_ok) return std::nullopt;
  return report;
}

std::string RunReport::to_table() const {
  std::ostringstream os;
  if (!label.empty()) os << "run report: " << label << "\n";

  if (!metrics.counters.empty() || !metrics.gauges.empty()) {
    report::Table values({"metric", "value"});
    for (const auto& [name, value] : metrics.counters) {
      values.add_row({name, std::to_string(value)});
    }
    for (const auto& [name, value] : metrics.gauges) {
      values.add_row({name + " (gauge)", std::to_string(value)});
    }
    os << values;
  }

  if (!metrics.timings.empty()) {
    report::Table timings({"stage", "spans", "wall ms", "cpu ms", "max ms"});
    for (const auto& [name, timing] : metrics.timings) {
      timings.add_row({name, std::to_string(timing.count),
                       report::fixed(static_cast<double>(timing.wall_us) / 1000.0, 2),
                       report::fixed(static_cast<double>(timing.cpu_us) / 1000.0, 2),
                       report::fixed(static_cast<double>(timing.max_wall_us) / 1000.0, 2)});
    }
    os << "-- stage timings --\n" << timings;
  }

  if (!metrics.histograms.empty()) {
    report::Table histograms({"metric", "count", "mean", "p50", "p90", "p99", "max"});
    for (const auto& [name, histogram] : metrics.histograms) {
      histograms.add_row({name, std::to_string(histogram.count),
                          report::fixed(histogram.mean(), 1),
                          std::to_string(histogram.quantile(0.50)),
                          std::to_string(histogram.quantile(0.90)),
                          std::to_string(histogram.quantile(0.99)),
                          std::to_string(histogram.max)});
    }
    os << "-- distributions --\n" << histograms;
  }
  return os.str();
}

}  // namespace synscan::obs
