#include "obs/timer.h"

#if defined(__unix__) || defined(__APPLE__)
#include <time.h>
#else
#include <chrono>
#endif

namespace synscan::obs {

std::uint64_t thread_cpu_ns() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
#else
  // No portable per-thread CPU clock: fall back to wall time so the
  // cpu_us column stays populated rather than silently zero.
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
#endif
}

}  // namespace synscan::obs
