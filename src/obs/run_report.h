// RunReport: one serializable record of everything observability saw
// during a run — every registry metric plus the pipeline's own
// sensor/tracker counters folded in under their canonical names.
//
// Two output forms, both stable enough to diff across runs:
//   - JSON (schema `synscan.run_report/1`, documented in
//     docs/OBSERVABILITY.md) for machines: `synscan analyze
//     --metrics=metrics.json`, bench `--metrics=...`.
//   - An ASCII table (via report::Table) for eyeballs: bare `--metrics`.
//
// This is the only obs component that depends on core/report; the
// metric cells themselves (obs/metrics.h) stay dependency-free so the
// hot-path libraries can link them.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "core/pipeline.h"
#include "obs/metrics.h"

namespace synscan::obs {

/// Folds a sensor tally into the registry as `sensor.*` counters
/// (add semantics: repeated publishes accumulate, so multi-window
/// benches report totals).
void publish(MetricsRegistry& registry, const telescope::SensorCounters& counters);

/// Folds a tracker tally into the registry as `tracker.*` counters.
/// `peak_open_flows` becomes a high-water-mark gauge.
void publish(MetricsRegistry& registry, const core::TrackerCounters& counters);

struct RunReport {
  std::string label;
  MetricsRegistry::Snapshot metrics;

  /// Snapshots `registry` into a report. When `result` is given its
  /// sensor/tracker counters are published first (once per result —
  /// publishing is additive).
  [[nodiscard]] static RunReport capture(std::string label,
                                         const core::PipelineResult* result = nullptr,
                                         MetricsRegistry& registry =
                                             MetricsRegistry::global());

  /// Parses a report previously produced by `write_json`. Returns
  /// nullopt on malformed input. Derived histogram fields (mean, p50…)
  /// are recomputed from the stored buckets, so
  /// `from_json(r.to_json())->to_json() == r.to_json()`.
  [[nodiscard]] static std::optional<RunReport> from_json(std::string_view json);

  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string to_json() const;

  /// Sectioned ASCII tables: counters+gauges, stage timings, histograms.
  [[nodiscard]] std::string to_table() const;
};

}  // namespace synscan::obs
