// RAII stage timers recording wall and thread-CPU time into a Timing
// cell of a MetricsRegistry.
//
// A timer resolves its Timing cell at construction *only if* obs is
// enabled at that moment; a disabled timer is two null-pointer stores
// and a branch in the destructor. Timers nest freely — each span
// records into its own named cell, so a span's wall time includes the
// spans it encloses. The convention for nested stages is dotted names
// (`analyze.ingest`, `analyze.ingest.decode`); self-time is derivable
// by subtraction and the run report prints spans sorted by name so
// nesting reads top-down.
#pragma once

#include <chrono>
#include <cstdint>
#include <string_view>

#include "obs/metrics.h"

namespace synscan::obs {

/// Current thread's consumed CPU time, in nanoseconds.
[[nodiscard]] std::uint64_t thread_cpu_ns() noexcept;

class ScopedTimer {
 public:
  /// Times a span into `registry.timing(name)` when obs is enabled.
  ScopedTimer(MetricsRegistry& registry, std::string_view name)
      : timing_(enabled() ? &registry.timing(name) : nullptr) {
    if (timing_ != nullptr) {
      wall_start_ = std::chrono::steady_clock::now();
      cpu_start_ns_ = thread_cpu_ns();
    }
  }

  /// Same, against the global registry.
  explicit ScopedTimer(std::string_view name) : ScopedTimer(MetricsRegistry::global(), name) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { stop(); }

  /// Ends the span early; idempotent.
  void stop() noexcept {
    if (timing_ == nullptr) return;
    const auto wall = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - wall_start_)
                          .count();
    const auto cpu_ns = thread_cpu_ns() - cpu_start_ns_;
    timing_->record(static_cast<std::uint64_t>(wall), cpu_ns / 1000);
    timing_ = nullptr;
  }

  /// Whether this timer is live (obs was enabled at construction).
  [[nodiscard]] bool active() const noexcept { return timing_ != nullptr; }

 private:
  Timing* timing_ = nullptr;
  std::chrono::steady_clock::time_point wall_start_{};
  std::uint64_t cpu_start_ns_ = 0;
};

}  // namespace synscan::obs
