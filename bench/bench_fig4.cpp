// Figure 4: top-10 ports by traffic per year, with the tool mix of the
// traffic on each port.
#include <iostream>

#include "bench_common.h"
#include "core/analysis_tools.h"
#include "report/table.h"

int main(int argc, char** argv) {
  using namespace synscan;
  const auto options = bench::parse_options(argc, argv);
  bench::print_banner("Figure 4 — tool mix on the top-10 traffic ports", "§6.1, Fig. 4",
                      options);

  const int first = options.year.value_or(simgen::kFirstYear);
  const int last = options.year.value_or(simgen::kLastYear);
  for (int year = first; year <= last; ++year) {
    const auto run = bench::run_year(year, options);
    const auto mixes = core::port_tool_mix(run.result.campaigns, 10);

    report::Table table({"port", "packets", "masscan", "nmap", "mirai", "zmap",
                         "other"});
    for (const auto& mix : mixes) {
      table.add_row(
          {std::to_string(mix.port), report::human_count(static_cast<double>(mix.packets)),
           report::percent(mix.tool_share[fingerprint::tool_index(
               fingerprint::Tool::kMasscan)]),
           report::percent(
               mix.tool_share[fingerprint::tool_index(fingerprint::Tool::kNmap)]),
           report::percent(
               mix.tool_share[fingerprint::tool_index(fingerprint::Tool::kMirai)]),
           report::percent(
               mix.tool_share[fingerprint::tool_index(fingerprint::Tool::kZmap)]),
           report::percent(
               mix.tool_share[fingerprint::tool_index(fingerprint::Tool::kUnknown)] +
               mix.tool_share[fingerprint::tool_index(fingerprint::Tool::kUnicorn)])});
    }
    std::cout << "\n== " << year << " ==\n" << table;
  }
  std::cout << "\npaper shape: Mirai dominates the IoT ports in 2017; Masscan carries\n"
               "most traffic 2018-2022; by 2023/24 the fingerprintable share shrinks.\n";
  return 0;
}
