// Figure 6: scanner recurrence — campaigns per source and downtime
// between campaigns, split by scanner type.
#include <iostream>

#include "bench_common.h"
#include "core/analysis_recurrence.h"
#include "report/series.h"
#include "report/table.h"

int main(int argc, char** argv) {
  using namespace synscan;
  const auto options = bench::parse_options(argc, argv);
  bench::print_banner("Figure 6 — scanner recurrence and downtime", "§6.6, Fig. 6",
                      options);

  const int year = options.year.value_or(2022);
  const auto run = bench::run_year(year, options);
  const auto results = core::recurrence_by_type(run.result.campaigns,
                                                bench::shared_registry());

  report::Table table({"type", "sources", "recurring", ">100 campaigns",
                       "daily-mode (recurring)", "median downtime"});
  for (const auto& row : results) {
    std::string downtime = "-";
    if (!row.downtime_seconds.empty()) {
      const double median_h = row.downtime_seconds.value_at_fraction(0.5) / 3600.0;
      downtime = report::fixed(median_h, 1) + " h";
    }
    table.add_row({std::string(enrich::to_string(row.type)),
                   std::to_string(row.sources), std::to_string(row.recurring_sources),
                   report::percent(row.over_100_campaigns_fraction, 2),
                   report::percent(row.daily_mode_fraction),
                   downtime});
  }
  std::cout << "window: " << year << "\n\n" << table;

  std::vector<stats::NamedEcdf> campaign_cdfs;
  std::vector<stats::NamedEcdf> downtime_cdfs;
  for (const auto& row : results) {
    campaign_cdfs.push_back({std::string(enrich::to_string(row.type)),
                             row.campaigns_per_source});
    downtime_cdfs.push_back({std::string(enrich::to_string(row.type)),
                             row.downtime_seconds});
  }
  report::print_cdf_summary(std::cout, "\ncampaigns per source (CDF quantiles)",
                            campaign_cdfs);
  report::print_cdf_summary(std::cout, "\ndowntime between campaigns, seconds",
                            downtime_cdfs);

  std::cout << "\npaper shape: only institutional sources recur at scale (a large\n"
               "share runs >100 campaigns, with a strong scan-every-day mode);\n"
               "residential and enterprise sources rarely return.\n";
  return 0;
}
