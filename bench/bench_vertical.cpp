// §5.2: vertical scans — campaigns targeting many ports, their counts
// per year and the speed of the large ones.
#include <iostream>

#include "bench_common.h"
#include "core/analysis_campaigns.h"
#include "report/table.h"

int main(int argc, char** argv) {
  using namespace synscan;
  const auto options = bench::parse_options(argc, argv);
  bench::print_banner("§5.2 — the number of vertical scans is increasing", "§5.2",
                      options);

  report::Table table({"year", ">10 ports", ">100 ports", ">1000 ports", ">10k ports",
                       "max ports", "mean speed >1k-port (Mbps)", "mean speed all"});
  const int first = options.year.value_or(simgen::kFirstYear);
  const int last = options.year.value_or(simgen::kLastYear);
  for (int year = first; year <= last; ++year) {
    const auto run = bench::run_year(year, options);
    const auto census = core::vertical_scan_census(run.result.campaigns);
    table.add_row({std::to_string(year), std::to_string(census.over_10_ports),
                   std::to_string(census.over_100_ports),
                   std::to_string(census.over_1000_ports),
                   std::to_string(census.over_10000_ports),
                   std::to_string(census.max_ports),
                   report::fixed(census.mean_speed_over_1000_mbps, 1),
                   report::fixed(census.mean_speed_all_mbps, 1)});
  }
  std::cout << table;
  std::cout << "\npaper anchors (full scale): one >10k-port campaign in 2015 vs 2,134\n"
               "in 2020; the 2020 maximum covers 54,501 ports (83% of the range); the\n"
               ">1000-port scans of 2022 average ~0.3 Gbps (~300 Mbps) against an\n"
               "overall average of 14 Mbps. Counts here scale with 1/scan-scale; the\n"
               "one-off giants keep their count by design (see DESIGN.md).\n";
  return 0;
}
