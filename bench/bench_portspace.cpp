// §5.1: coverage of the port space — privileged-port coverage in 2015 vs
// later years, probes per port per day, the 80->8080 co-scan trend, and
// the (absent) relation between deployed services and scan intensity.
#include <iostream>

#include "bench_common.h"
#include "report/table.h"
#include "simgen/services.h"
#include "stats/hypothesis.h"

int main(int argc, char** argv) {
  using namespace synscan;
  const auto options = bench::parse_options(argc, argv);
  bench::print_banner("§5.1 — coverage of the entire port space", "§5.1", options);

  report::Table table({"year", "privileged coverage", "ports >=1 probe",
                       "min probes/port/day (paper units)", "80->8080 co-scan",
                       "(paper)"});
  const auto paper_coscan = [](int year) -> std::string {
    if (year == 2015) return "18%";
    if (year >= 2020) return "87%";
    return "-";
  };

  core::PortTally last_tally;  // keep the final year's tally for the service check
  int last_year = 0;
  for (const int year : {2015, 2018, 2020, 2022, 2024}) {
    if (options.year && year != *options.year) continue;
    auto run = bench::run_year(year, options);
    // Scaled floor -> paper units: multiply by the packet scale.
    const double floor_paper_units =
        1.0 * bench::packet_upscale(options) / run.config.window_days;
    std::uint64_t min_nonzero = 0;
    const auto with_any = run.tally.ports_with_at_least(1);
    (void)min_nonzero;
    table.add_row({std::to_string(year),
                   report::percent(run.tally.privileged_port_coverage()),
                   std::to_string(with_any),
                   report::fixed(floor_paper_units, 0),
                   report::percent(run.tally.co_scan_fraction(80, 8080)),
                   paper_coscan(year)});
    last_tally = std::move(run.tally);
    last_year = year;
  }
  std::cout << table;
  std::cout << "\npaper shape: 31% of privileged ports probed above the noise floor in\n"
               "2015; by 2022 every port receives >1,000 probes/day (>1,500 by 2024);\n"
               "the 80->8080 co-scan share grows 18% -> 87% and plateaus.\n";

  // Services vs scans: complete vertical scan of 100,000 random hosts.
  const simgen::ServiceDeployment deployment(0xd15c0);
  const auto services = deployment.services_per_port(100000);
  std::vector<double> service_counts;
  std::vector<double> scan_counts;
  for (std::uint32_t port = 1; port < 65536; ++port) {
    service_counts.push_back(static_cast<double>(services[port]));
    scan_counts.push_back(static_cast<double>(
        last_tally.packets_on_port(static_cast<std::uint16_t>(port))));
  }
  const auto correlation = stats::pearson(service_counts, scan_counts);
  std::cout << "\nservices-vs-scans correlation over all ports (window " << last_year
            << "): R = " << report::fixed(correlation.r, 3)
            << ", p = " << report::fixed(correlation.p_value, 4)
            << "\n(paper: R = 0.047 — scanners do not target where services live)\n";
  return 0;
}
