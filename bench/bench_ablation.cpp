// Methodology ablation (§3.4): how sensitive are the campaign counts to
// the detection thresholds?
//
// The paper defines a scan as >=100 distinct destinations at >=100 pps
// with a 1 h expiry, and explicitly contrasts this with Durumeric et
// al.'s looser 10 pps / 480 s definition. This bench replays one window
// under both definitions (and a sweep in between) and reports how the
// campaign census, the blocklist-decay claim and the noise level move.
#include <iostream>

#include "bench_common.h"
#include "core/blocklist.h"
#include "report/table.h"

int main(int argc, char** argv) {
  using namespace synscan;
  const auto options = bench::parse_options(argc, argv);
  bench::print_banner("§3.4 ablation — campaign-definition thresholds", "§3.4",
                      options);

  const int year = options.year.value_or(2020);
  auto config = simgen::year_config(year, options.scale);
  if (options.seed) config.seed = *options.seed;

  // Capture the probe stream once, replay through each tracker config.
  std::vector<telescope::ScanProbe> probes;
  {
    telescope::Sensor sensor(bench::shared_telescope());
    simgen::TrafficGenerator generator(config, bench::shared_telescope(),
                                       bench::shared_registry());
    telescope::ScanProbe probe;
    (void)generator.run([&](const net::RawFrame& frame) {
      if (sensor.classify(frame, probe) == telescope::FrameClass::kScanProbe) {
        probes.push_back(probe);
      }
    });
  }
  std::cout << "window: " << year << ", " << probes.size() << " probes\n\n";

  struct Variant {
    const char* name;
    core::TrackerConfig tracker;
  };
  std::vector<Variant> variants;
  variants.push_back({"paper (100 dests, 100 pps, 1 h)", {}});
  {
    core::TrackerConfig loose;
    loose.min_distinct_destinations = 10;
    loose.min_internet_pps = 10.0;
    loose.expiry = 480 * net::kMicrosPerSecond;
    variants.push_back({"Durumeric et al. (10, 10 pps, 480 s)", loose});
  }
  for (const std::uint32_t dests : {50u, 200u, 400u}) {
    core::TrackerConfig tracker;
    tracker.min_distinct_destinations = dests;
    variants.push_back(
        {dests == 50 ? "50-dest floor" : dests == 200 ? "200-dest floor" : "400-dest floor",
         tracker});
  }
  {
    core::TrackerConfig fast;
    fast.min_internet_pps = 1000.0;
    variants.push_back({"1000 pps floor", fast});
  }
  {
    core::TrackerConfig short_expiry;
    short_expiry.expiry = 5 * net::kMicrosPerMinute;
    variants.push_back({"5 min expiry", short_expiry});
  }

  report::Table table({"definition", "campaigns", "subthreshold flows",
                       "subthreshold pkts", "mean pkts/campaign"});
  for (const auto& variant : variants) {
    std::vector<core::Campaign> campaigns;
    core::CampaignTracker tracker(variant.tracker,
                                  bench::shared_telescope().monitored_count(),
                                  [&](core::Campaign&& campaign) {
                                    campaigns.push_back(std::move(campaign));
                                  });
    for (const auto& probe : probes) tracker.feed(probe);
    tracker.finish();
    std::uint64_t packets = 0;
    for (const auto& campaign : campaigns) packets += campaign.packets;
    table.add_row({variant.name, std::to_string(campaigns.size()),
                   std::to_string(tracker.counters().subthreshold_flows),
                   std::to_string(tracker.counters().subthreshold_packets),
                   campaigns.empty()
                       ? "-"
                       : report::fixed(static_cast<double>(packets) /
                                           static_cast<double>(campaigns.size()),
                                       0)});
  }
  std::cout << table;
  std::cout << "\nreading: the loose definition sweeps the noise sources into the\n"
               "campaign census (inflating counts), while the paper's stricter bound\n"
               "keeps only Internet-wide behavior — the justification of §3.4.\n";

  // Blocklist decay under the paper definition (§4.4/§6.6 implication).
  {
    std::vector<core::Campaign> campaigns;
    core::CampaignTracker tracker({}, bench::shared_telescope().monitored_count(),
                                  [&](core::Campaign&& campaign) {
                                    campaigns.push_back(std::move(campaign));
                                  });
    for (const auto& probe : probes) tracker.feed(probe);
    tracker.finish();
    const auto curve =
        core::blocklist_decay_curve(campaigns, config.start_time, 3, 0, 7);
    std::cout << "\nblocklist decay (harvest day 3, campaign block-rate per day):\n";
    for (std::size_t day = 0; day < curve.size(); ++day) {
      std::cout << "  day +" << day + 1 << ": " << report::percent(curve[day]) << "\n";
    }
    std::cout << "only recurring (institutional) sources stay blockable — shared\n"
                 "scanner lists are a real-time feed, not an archive (§4.4).\n";
  }
  return 0;
}
