// Figure 2: weekly change of scanning per /16 netblock — the volatility
// CDFs over sources, campaigns and packets.
#include <iostream>

#include "bench_common.h"
#include "report/series.h"
#include "report/table.h"

int main(int argc, char** argv) {
  using namespace synscan;
  const auto options = bench::parse_options(argc, argv);
  bench::print_banner("Figure 2 — weekly volatility per /16 netblock", "§4.4, Fig. 2",
                      options);

  const int year = options.year.value_or(2022);  // longest window (61 days)
  bench::Observers observers;
  observers.volatility = true;
  const auto run = bench::run_year(year, options, observers);
  const auto volatility = run.volatility->result();

  std::cout << "window: " << year << ", " << volatility.weeks << " weeks, "
            << volatility.netblocks << " active /16 netblocks\n\n";

  std::vector<stats::NamedEcdf> series;
  series.push_back({"packets", volatility.packet_change});
  series.push_back({"sources", volatility.source_change});
  series.push_back({"campaigns", volatility.campaign_change});
  report::print_cdf_summary(std::cout, "change factor between consecutive weeks",
                            series);

  report::Table claims({"metric", "stable (<1.25x)", ">=2x", ">=3x"});
  for (const auto& entry : series) {
    const auto& ecdf = entry.ecdf;
    if (ecdf.empty()) continue;
    claims.add_row({entry.name, report::percent(ecdf.fraction_at_or_below(1.25)),
                    report::percent(1.0 - ecdf.fraction_at_or_below(2.0 - 1e-9)),
                    report::percent(1.0 - ecdf.fraction_at_or_below(3.0 - 1e-9))});
  }
  std::cout << "\n" << claims;
  std::cout << "\npaper: only 20-30% of netblocks are stable; >50% change by a factor\n"
               "of 2 or more week-over-week; more than a third by 3x or more.\n";

  report::print_cdf(std::cout, "\npacket-change CDF (x = factor, f = fraction)",
                    volatility.packet_change, 16);
  return 0;
}
