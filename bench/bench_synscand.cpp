// synscand load harness: open-loop framed queries against an in-process
// daemon (see scripts/bench_baseline.sh and BENCH_synscand.json).
//
// The harness self-hosts: it generates a campaign-shaped capture,
// starts a `server::Daemon` on a private Unix socket with the capture
// preloaded, and then drives it from one client thread the way mutated
// open-loop generators do — request send times come from an exponential
// inter-arrival schedule at the target rate, independent of how fast
// the daemon answers, and each latency sample is measured from the
// *scheduled* send time so queueing delay counts against the daemon.
// Requests round-robin across `--connections` pipelined non-blocking
// sockets.
//
// The run doubles as a correctness smoke: every response must be an OK
// envelope and every request must be answered during the drain window,
// the daemon must acknowledge SHUTDOWN and exit its serve loop, and the
// binary exits non-zero otherwise. `--check-qps=N` adds a throughput
// gate for CI.
//
// Usage: bench_synscand [--rate=QPS] [--connections=N] [--seconds=S]
//                       [--frames=N] [--seed=N] [--workers=N]
//                       [--io-workers=N] [--command=STR] [--label=STR]
//                       [--check-qps=QPS] [--poll]
// Output: one JSON object on stdout.
#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fcntl.h>
#include <filesystem>
#include <poll.h>
#include <random>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "enrich/registry.h"
#include "net/packet.h"
#include "pcap/pcap.h"
#include "server/client.h"
#include "server/daemon.h"
#include "server/frame.h"
#include "server/protocol.h"
#include "simgen/rng.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace {

using namespace synscan;

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

long peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return usage.ru_maxrss / 1024;  // bytes on macOS
#else
  return usage.ru_maxrss;  // kilobytes on Linux
#endif
#else
  return 0;
#endif
}

struct Options {
  double rate = 4000.0;           ///< target queries per second
  std::size_t connections = 16;   ///< pipelined client sockets
  double seconds = 5.0;           ///< send window
  std::uint64_t frames = 200'000; ///< synthetic capture size
  std::uint64_t seed = 20250809;
  std::size_t workers = 3;        ///< daemon analysis workers (preload)
  std::size_t io_workers = 2;     ///< daemon query pool
  std::string command = "QUERY counters";
  std::string label = "synscand";
  double check_qps = 0.0;  ///< 0 = no gate
  bool force_poll = false;
};

Options parse(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--rate=", 0) == 0) {
      options.rate = std::strtod(arg.c_str() + 7, nullptr);
    } else if (arg.rfind("--connections=", 0) == 0) {
      options.connections = std::strtoull(arg.c_str() + 14, nullptr, 10);
    } else if (arg.rfind("--seconds=", 0) == 0) {
      options.seconds = std::strtod(arg.c_str() + 10, nullptr);
    } else if (arg.rfind("--frames=", 0) == 0) {
      options.frames = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--workers=", 0) == 0) {
      options.workers = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--io-workers=", 0) == 0) {
      options.io_workers = std::strtoull(arg.c_str() + 13, nullptr, 10);
    } else if (arg.rfind("--command=", 0) == 0) {
      options.command = arg.substr(10);
    } else if (arg.rfind("--label=", 0) == 0) {
      options.label = arg.substr(8);
    } else if (arg.rfind("--check-qps=", 0) == 0) {
      options.check_qps = std::strtod(arg.c_str() + 12, nullptr);
    } else if (arg == "--poll") {
      options.force_poll = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  if (options.rate <= 0.0 || options.connections == 0 || options.seconds <= 0.0) {
    std::fprintf(stderr, "bench_synscand: rate, connections and seconds must be > 0\n");
    std::exit(2);
  }
  return options;
}

/// Same burst-structured workload shape as bench_analyze: per-source
/// SYN runs with backscatter and off-telescope noise mixed in.
void write_capture(const fs::path& path, const Options& options) {
  simgen::Rng rng(options.seed);
  auto writer = pcap::Writer::create(path);
  net::RawFrame frame;
  net::TimeUs now = 0;
  std::uint32_t burst_source = 0;
  std::uint16_t burst_port = 80;
  std::uint32_t burst_left = 0;
  for (std::uint64_t i = 0; i < options.frames; ++i) {
    now += 40;
    const std::uint64_t draw = rng.next_u64() % 100;
    net::TcpFrameSpec tcp;
    if (burst_left == 0) {
      burst_source = 0x05000000u + (rng.next_u32() % 4096) * 977u;
      burst_port = (rng.next_u64() % 4 == 0) ? 443 : 80;
      burst_left = 16 + rng.next_u32() % 48;
    }
    --burst_left;
    tcp.src_ip = net::Ipv4Address(burst_source);
    tcp.dst_ip = net::Ipv4Address(0xc6330000u + rng.next_u32() % 65536);
    tcp.src_port = static_cast<std::uint16_t>(40000 + rng.next_u32() % 20000);
    tcp.dst_port = burst_port;
    tcp.sequence = rng.next_u32();
    tcp.ip_id = static_cast<std::uint16_t>(rng.next_u32());
    if (draw < 88) {
      // scan probe (defaults: SYN)
    } else if (draw < 94) {
      tcp.flags = net::flag_bit(net::TcpFlag::kSyn) | net::flag_bit(net::TcpFlag::kAck);
    } else {
      tcp.dst_ip = net::Ipv4Address(0x08080000u + rng.next_u32() % 65536);  // off-net
    }
    frame.timestamp_us = now;
    frame.bytes = net::build_tcp_frame(tcp);
    writer.write(frame);
  }
  writer.flush();
}

const telescope::Telescope& bench_telescope() {
  static const telescope::Telescope telescope(
      {{*net::Ipv4Prefix::parse("198.51.0.0/16"), 1000}},
      {{23, 0}});
  return telescope;
}

/// One pipelined client socket. Responses come back in request order,
/// so scheduled send times queue FIFO and pop as frames complete.
struct LoadConnection {
  int fd = -1;
  std::string out;
  std::size_t out_sent = 0;
  server::FrameDecoder decoder{server::kMaxResponseBytes};
  std::deque<Clock::time_point> scheduled;
};

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Flushes as much buffered output as the socket accepts right now.
/// Returns false on a dead socket.
bool flush(LoadConnection& conn) {
  while (conn.out_sent < conn.out.size()) {
    const ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_sent,
                             conn.out.size() - conn.out_sent, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;
  }
  if (conn.out_sent == conn.out.size()) {
    conn.out.clear();
    conn.out_sent = 0;
  }
  return true;
}

std::uint64_t percentile(const std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[rank];
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = parse(argc, argv);

  const auto dir = fs::temp_directory_path() / "synscan_bench_synscand";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const auto capture = dir / "workload.pcap";
  write_capture(capture, options);
  const auto socket_path = (dir / "synscand.sock").string();

  server::DaemonConfig config;
  config.unix_socket = socket_path;
  config.workers = options.io_workers;
  config.analysis_workers = options.workers;
  config.force_poll = options.force_poll;
  server::Daemon daemon(bench_telescope(), enrich::InternetRegistry::synthetic_default(),
                        std::move(config));
  daemon.preload(capture.string());
  std::thread server_thread([&daemon] { daemon.serve(); });

  // Warm the protocol path (and fail fast on a broken daemon) before
  // the measured window opens.
  {
    auto probe_client = server::Client::connect_unix(socket_path);
    std::string_view body;
    std::string error;
    if (!server::parse_response(probe_client.roundtrip(options.command), body, error)) {
      std::fprintf(stderr, "bench_synscand: warmup '%s' failed: %s\n",
                   options.command.c_str(), error.c_str());
      return 1;
    }
  }

  std::vector<LoadConnection> connections(options.connections);
  std::vector<pollfd> pollfds(options.connections);
  for (auto& conn : connections) {
    auto client = server::Client::connect_unix(socket_path);
    conn.fd = client.release();  // the open loop drives the raw fd
    set_nonblocking(conn.fd);
  }

  const std::string request_frame = server::encode_frame(options.command);
  std::mt19937_64 rng(options.seed);
  std::exponential_distribution<double> inter_arrival(options.rate);

  std::uint64_t sent = 0;
  std::uint64_t completed = 0;
  std::uint64_t bad_responses = 0;
  std::uint64_t response_bytes = 0;
  std::vector<std::uint64_t> latencies_us;
  latencies_us.reserve(static_cast<std::size_t>(options.rate * options.seconds) + 16);

  const auto start = Clock::now();
  const auto send_deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(options.seconds));
  auto next_send = start;
  std::string payload;
  std::array<char, 65536> buffer{};

  const auto pump = [&](int timeout_ms) {
    for (std::size_t i = 0; i < connections.size(); ++i) {
      pollfds[i].fd = connections[i].fd;
      pollfds[i].events = static_cast<short>(
          POLLIN | (connections[i].out_sent < connections[i].out.size() ? POLLOUT : 0));
      pollfds[i].revents = 0;
    }
    (void)::poll(pollfds.data(), static_cast<nfds_t>(pollfds.size()), timeout_ms);
    const auto now = Clock::now();
    for (std::size_t i = 0; i < connections.size(); ++i) {
      auto& conn = connections[i];
      if ((pollfds[i].revents & POLLOUT) != 0 && !flush(conn)) {
        std::fprintf(stderr, "bench_synscand: connection died mid-run\n");
        std::exit(1);
      }
      if ((pollfds[i].revents & POLLIN) == 0) continue;
      for (;;) {
        const ssize_t n = ::recv(conn.fd, buffer.data(), buffer.size(), 0);
        if (n > 0) {
          response_bytes += static_cast<std::uint64_t>(n);
          conn.decoder.absorb(std::string_view(buffer.data(), static_cast<std::size_t>(n)));
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (n < 0 && errno == EINTR) continue;
        std::fprintf(stderr, "bench_synscand: connection died mid-run\n");
        std::exit(1);
      }
      while (conn.decoder.next(payload) == server::FrameDecoder::Status::kFrame) {
        if (conn.scheduled.empty()) {
          std::fprintf(stderr, "bench_synscand: unsolicited response frame\n");
          std::exit(1);
        }
        const auto scheduled = conn.scheduled.front();
        conn.scheduled.pop_front();
        latencies_us.push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(now - scheduled)
                .count()));
        if (payload.rfind("OK", 0) != 0) ++bad_responses;
        ++completed;
      }
    }
  };

  while (Clock::now() < send_deadline) {
    // Open loop: emit every request whose scheduled time has passed,
    // whether or not earlier ones were answered yet.
    while (next_send <= Clock::now() && next_send < send_deadline) {
      auto& conn = connections[sent % connections.size()];
      conn.out.append(request_frame);
      conn.scheduled.push_back(next_send);
      ++sent;
      (void)flush(conn);
      next_send += std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(inter_arrival(rng)));
    }
    const auto now = Clock::now();
    const bool due_soon = next_send <= now + std::chrono::milliseconds(1);
    pump(due_soon ? 0 : 1);
  }

  // Drain: everything sent must come back.
  const auto drain_deadline = Clock::now() + std::chrono::seconds(30);
  while (completed < sent && Clock::now() < drain_deadline) pump(5);
  const double duration =
      std::chrono::duration<double>(Clock::now() - start).count();

  // Clean shutdown through the protocol, then join the serve loop.
  {
    auto shutdown_client = server::Client::connect_unix(socket_path);
    std::string_view body;
    std::string error;
    if (!server::parse_response(shutdown_client.roundtrip("SHUTDOWN"), body, error)) {
      std::fprintf(stderr, "bench_synscand: SHUTDOWN rejected: %s\n", error.c_str());
      return 1;
    }
  }
  server_thread.join();
  for (auto& conn : connections) ::close(conn.fd);
  fs::remove_all(dir);

  if (completed == 0 || completed < sent || bad_responses != 0) {
    std::fprintf(stderr,
                 "bench_synscand: self-check failed (sent %" PRIu64 ", completed %" PRIu64
                 ", bad %" PRIu64 ")\n",
                 sent, completed, bad_responses);
    return 1;
  }

  std::sort(latencies_us.begin(), latencies_us.end());
  const double qps = static_cast<double>(completed) / duration;
  if (options.check_qps > 0.0 && qps < options.check_qps) {
    std::fprintf(stderr,
                 "bench_synscand: %.0f queries/s below the %.0f gate\n", qps,
                 options.check_qps);
    return 1;
  }

  std::printf(
      "{\"label\":\"%s\",\"rate_target\":%.0f,\"connections\":%zu,"
      "\"send_seconds\":%.2f,\"duration_seconds\":%.4f,\"frames\":%" PRIu64 ","
      "\"sent\":%" PRIu64 ",\"completed\":%" PRIu64 ",\"queries_per_sec\":%.0f,"
      "\"response_bytes\":%" PRIu64 ",\"p50_us\":%" PRIu64 ",\"p90_us\":%" PRIu64 ","
      "\"p99_us\":%" PRIu64 ",\"p999_us\":%" PRIu64 ",\"max_us\":%" PRIu64 ","
      "\"peak_rss_kb\":%ld}\n",
      options.label.c_str(), options.rate, options.connections, options.seconds,
      duration, options.frames, sent, completed, qps, response_bytes,
      percentile(latencies_us, 0.50), percentile(latencies_us, 0.90),
      percentile(latencies_us, 0.99), percentile(latencies_us, 0.999),
      latencies_us.empty() ? 0 : latencies_us.back(), peak_rss_kb());
  return 0;
}
