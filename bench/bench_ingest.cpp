// Ingest perf workload: pcap records -> classified ScanProbes, reported
// as JSON (see scripts/bench_baseline.sh and BENCH_ingest.json).
//
// One run measures all three ingest paths over the same generated
// capture, so a single record carries its own baseline:
//   pre        — the original path: pcap::Reader (buffered istream, one
//                byte-vector copy per record) + per-frame
//                Sensor::classify through decode_frame;
//   mmap_batch — core::ingest_capture with the cache off: mmap'ed
//                frame views, Sensor::classify_batch, SoA ProbeBatch;
//   cache_warm — core::ingest_capture over the .spc probe cache the
//                cold pass just wrote (decode and classify skipped).
// The probe counts of all paths must agree; the binary exits non-zero
// if they diverge, so the baseline doubles as a correctness smoke.
//
// Usage: bench_ingest [--frames=N] [--label=STR] [--seed=N]
// Output: one JSON object on stdout.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/ingest.h"
#include "pcap/pcap.h"
#include "simgen/rng.h"
#include "telescope/sensor.h"
#include "telescope/telescope.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace {

using namespace synscan;

namespace fs = std::filesystem;

/// Peak resident set size in kilobytes, or 0 where unsupported.
long peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return usage.ru_maxrss / 1024;  // bytes on macOS
#else
  return usage.ru_maxrss;  // kilobytes on Linux
#endif
#else
  return 0;
#endif
}

struct Options {
  std::uint64_t frames = 2'000'000;
  std::uint64_t seed = 20240806;
  std::string label = "ingest";
};

Options parse(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--frames=", 0) == 0) {
      options.frames = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--label=", 0) == 0) {
      options.label = arg.substr(8);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return options;
}

const telescope::Telescope& bench_telescope() {
  static const telescope::Telescope telescope(
      {{*net::Ipv4Prefix::parse("198.51.0.0/16"), 1000}},
      {{23, 0}});
  return telescope;
}

/// Writes a telescope-shaped capture: mostly SYN probes, with enough
/// backscatter, off-telescope traffic and UDP that every sensor branch
/// is on the measured path.
void write_capture(const fs::path& path, const Options& options) {
  simgen::Rng rng(options.seed);
  auto writer = pcap::Writer::create(path);
  net::RawFrame frame;
  net::TimeUs now = 0;
  for (std::uint64_t i = 0; i < options.frames; ++i) {
    now += 40;
    const std::uint64_t draw = rng.next_u64() % 100;
    net::TcpFrameSpec tcp;
    tcp.src_ip = net::Ipv4Address(0x05000000u + rng.next_u32() % (1u << 22));
    tcp.dst_ip = net::Ipv4Address(0xc6330000u + rng.next_u32() % 65536);
    tcp.src_port = static_cast<std::uint16_t>(40000 + rng.next_u32() % 20000);
    tcp.dst_port = (draw % 3 == 0) ? 443 : 80;
    tcp.sequence = rng.next_u32();
    tcp.ip_id = static_cast<std::uint16_t>(rng.next_u32());
    if (draw < 75) {
      // scan probe (defaults: SYN)
    } else if (draw < 85) {
      tcp.flags = net::flag_bit(net::TcpFlag::kSyn) | net::flag_bit(net::TcpFlag::kAck);
    } else if (draw < 92) {
      tcp.dst_ip = net::Ipv4Address(0x08080000u + rng.next_u32() % 65536);  // off-net
    } else if (draw < 97) {
      frame.timestamp_us = now;
      net::UdpFrameSpec udp;
      udp.src_ip = tcp.src_ip;
      udp.dst_ip = tcp.dst_ip;
      udp.src_port = tcp.src_port;
      udp.dst_port = 53;
      frame.bytes = net::build_udp_frame(udp);
      writer.write(frame);
      continue;
    } else {
      tcp.dst_port = 23;  // ingress blocked
    }
    frame.timestamp_us = now;
    frame.bytes = net::build_tcp_frame(tcp);
    writer.write(frame);
  }
  writer.flush();
}

struct PathResult {
  double seconds = 0.0;
  std::uint64_t frames = 0;
  std::uint64_t probes = 0;
};

/// The original record-at-a-time path this PR replaced; kept in-tree as
/// pcap::Reader, so the "pre" row stays measurable on every commit.
PathResult run_reader_per_frame(const fs::path& path) {
  PathResult result;
  const auto start = std::chrono::steady_clock::now();
  telescope::Sensor sensor(bench_telescope());
  auto reader = pcap::Reader::open(path);
  net::RawFrame frame;
  telescope::ScanProbe probe;
  while (reader.next(frame) == pcap::ReadStatus::kOk) {
    ++result.frames;
    if (sensor.classify(frame, probe) == telescope::FrameClass::kScanProbe) {
      ++result.probes;
    }
  }
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return result;
}

PathResult run_ingest(const fs::path& path, bool use_cache, bool expect_hit) {
  PathResult result;
  core::IngestOptions options;
  options.use_cache = use_cache;
  const auto start = std::chrono::steady_clock::now();
  const auto ingest =
      core::ingest_capture(path, bench_telescope(), options,
                           [&](const telescope::ProbeBatch& batch) {
                             result.probes += batch.size();
                           });
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  result.frames = ingest.frames;
  if (ingest.from_cache != expect_hit) {
    std::fprintf(stderr, "bench_ingest: expected from_cache=%d\n", expect_hit ? 1 : 0);
    std::exit(1);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = parse(argc, argv);

  const auto dir = fs::temp_directory_path() / "synscan_bench_ingest";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const auto capture = dir / "workload.pcap";
  write_capture(capture, options);
  const auto capture_bytes = fs::file_size(capture);

  const auto pre = run_reader_per_frame(capture);
  const auto post = run_ingest(capture, /*use_cache=*/false, /*expect_hit=*/false);
  (void)run_ingest(capture, true, false);  // cold pass writes the .spc
  const auto warm = run_ingest(capture, /*use_cache=*/true, /*expect_hit=*/true);
  fs::remove_all(dir);

  if (pre.probes != post.probes || pre.probes != warm.probes ||
      pre.frames != post.frames || pre.frames != warm.frames) {
    std::fprintf(stderr,
                 "bench_ingest: path divergence (frames %" PRIu64 "/%" PRIu64
                 "/%" PRIu64 ", probes %" PRIu64 "/%" PRIu64 "/%" PRIu64 ")\n",
                 pre.frames, post.frames, warm.frames, pre.probes, post.probes,
                 warm.probes);
    return 1;
  }

  const auto fps = [](const PathResult& r) {
    return static_cast<double>(r.frames) / r.seconds;
  };
  std::printf(
      "{\"label\":\"%s\",\"frames\":%" PRIu64 ",\"probes\":%" PRIu64 ","
      "\"capture_bytes\":%" PRIu64 ",\"peak_rss_kb\":%ld,"
      "\"pre_seconds\":%.4f,\"pre_frames_per_sec\":%.0f,"
      "\"mmap_batch_seconds\":%.4f,\"mmap_batch_frames_per_sec\":%.0f,"
      "\"cache_warm_seconds\":%.4f,\"cache_warm_frames_per_sec\":%.0f,"
      "\"mmap_speedup\":%.2f,\"cache_speedup\":%.2f}\n",
      options.label.c_str(), pre.frames, pre.probes,
      static_cast<std::uint64_t>(capture_bytes), peak_rss_kb(), pre.seconds, fps(pre),
      post.seconds, fps(post), warm.seconds, fps(warm), fps(post) / fps(pre),
      fps(warm) / fps(pre));
  return 0;
}
