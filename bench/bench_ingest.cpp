// Ingest perf workload: pcap records -> classified ScanProbes, reported
// as JSON (see scripts/bench_baseline.sh and BENCH_ingest.json).
//
// One run measures all three ingest paths over the same generated
// capture, so a single record carries its own baseline:
//   pre        — the original path: pcap::Reader (buffered istream, one
//                byte-vector copy per record) + per-frame
//                Sensor::classify through decode_frame;
//   mmap_batch — core::ingest_capture with the cache off: fused
//                chunked scan + SIMD batch classify, SoA ProbeBatch;
//   cache_warm — core::ingest_capture over the .spc probe cache the
//                cold pass just wrote (decode and classify skipped).
// The probe counts of all paths must agree; the binary exits non-zero
// if they diverge, so the baseline doubles as a correctness smoke.
//
// Every measured path is reported as a warmed median-of-N
// (bench::median_result) next to a memcpy GB/s baseline measured on the
// same buffer size, so each record carries the machine's effective
// memory bandwidth: frames/s numbers from different hosts (or a noisy
// VM) become comparable as a fraction of memcpy. `--check-ratio=<min>`
// turns that fraction into a CI gate — mmap_batch GB/s must clear
// `min × memcpy GB/s` — which catches a gross ingest regression (e.g.
// silently falling back to the per-record path) without the flakiness
// of absolute-time assertions on shared runners.
//
// `--scan-chunks=LIST` (comma-separated chunk counts; 0 = auto) sweeps
// the cold mmap_batch path's chunked-scan parallelism and reports one
// row per setting in a `scan_chunk_sweep` column, so multi-core hosts
// record the scaling curve next to the serial baseline (ROADMAP item:
// multi-core ingest numbers). On a single-core host every row degrades
// to the serial scan and the column simply pins that.
//
// Usage: bench_ingest [--frames=N] [--label=STR] [--seed=N]
//                     [--iters=N] [--warmup=N] [--check-ratio=MIN]
//                     [--scan-chunks=LIST]
// Output: one JSON object on stdout.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/ingest.h"
#include "pcap/pcap.h"
#include "simgen/rng.h"
#include "telescope/sensor.h"
#include "telescope/telescope.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace {

using namespace synscan;

namespace fs = std::filesystem;

/// Peak resident set size in kilobytes, or 0 where unsupported.
long peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return usage.ru_maxrss / 1024;  // bytes on macOS
#else
  return usage.ru_maxrss;  // kilobytes on Linux
#endif
#else
  return 0;
#endif
}

struct Options {
  std::uint64_t frames = 2'000'000;
  std::uint64_t seed = 20240806;
  std::string label = "ingest";
  int iterations = 5;
  int warmup = 1;
  /// Minimum mmap_batch GB/s as a fraction of the measured memcpy GB/s
  /// baseline; < 0 disables the gate.
  double check_ratio = -1.0;
  /// Chunked-scan settings to sweep on the cold path (0 = auto).
  std::vector<std::size_t> scan_chunks = {1, 2, 4, 0};
};

std::vector<std::size_t> parse_chunk_list(const char* text) {
  std::vector<std::size_t> values;
  while (*text != '\0') {
    char* end = nullptr;
    values.push_back(static_cast<std::size_t>(std::strtoull(text, &end, 10)));
    if (end == text) {
      std::fprintf(stderr, "bad --scan-chunks list\n");
      std::exit(2);
    }
    text = (*end == ',') ? end + 1 : end;
  }
  if (values.empty()) {
    std::fprintf(stderr, "--scan-chunks needs at least one value\n");
    std::exit(2);
  }
  return values;
}

Options parse(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--frames=", 0) == 0) {
      options.frames = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--label=", 0) == 0) {
      options.label = arg.substr(8);
    } else if (arg.rfind("--iters=", 0) == 0) {
      options.iterations = std::atoi(arg.c_str() + 8);
    } else if (arg.rfind("--warmup=", 0) == 0) {
      options.warmup = std::atoi(arg.c_str() + 9);
    } else if (arg.rfind("--check-ratio=", 0) == 0) {
      options.check_ratio = std::strtod(arg.c_str() + 14, nullptr);
    } else if (arg.rfind("--scan-chunks=", 0) == 0) {
      options.scan_chunks = parse_chunk_list(arg.c_str() + 14);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return options;
}

const telescope::Telescope& bench_telescope() {
  static const telescope::Telescope telescope(
      {{*net::Ipv4Prefix::parse("198.51.0.0/16"), 1000}},
      {{23, 0}});
  return telescope;
}

/// Writes a telescope-shaped capture: mostly SYN probes, with enough
/// backscatter, off-telescope traffic and UDP that every sensor branch
/// is on the measured path.
void write_capture(const fs::path& path, const Options& options) {
  simgen::Rng rng(options.seed);
  auto writer = pcap::Writer::create(path);
  net::RawFrame frame;
  net::TimeUs now = 0;
  for (std::uint64_t i = 0; i < options.frames; ++i) {
    now += 40;
    const std::uint64_t draw = rng.next_u64() % 100;
    net::TcpFrameSpec tcp;
    tcp.src_ip = net::Ipv4Address(0x05000000u + rng.next_u32() % (1u << 22));
    tcp.dst_ip = net::Ipv4Address(0xc6330000u + rng.next_u32() % 65536);
    tcp.src_port = static_cast<std::uint16_t>(40000 + rng.next_u32() % 20000);
    tcp.dst_port = (draw % 3 == 0) ? 443 : 80;
    tcp.sequence = rng.next_u32();
    tcp.ip_id = static_cast<std::uint16_t>(rng.next_u32());
    if (draw < 75) {
      // scan probe (defaults: SYN)
    } else if (draw < 85) {
      tcp.flags = net::flag_bit(net::TcpFlag::kSyn) | net::flag_bit(net::TcpFlag::kAck);
    } else if (draw < 92) {
      tcp.dst_ip = net::Ipv4Address(0x08080000u + rng.next_u32() % 65536);  // off-net
    } else if (draw < 97) {
      frame.timestamp_us = now;
      net::UdpFrameSpec udp;
      udp.src_ip = tcp.src_ip;
      udp.dst_ip = tcp.dst_ip;
      udp.src_port = tcp.src_port;
      udp.dst_port = 53;
      frame.bytes = net::build_udp_frame(udp);
      writer.write(frame);
      continue;
    } else {
      tcp.dst_port = 23;  // ingress blocked
    }
    frame.timestamp_us = now;
    frame.bytes = net::build_tcp_frame(tcp);
    writer.write(frame);
  }
  writer.flush();
}

struct PathResult {
  double seconds = 0.0;
  std::uint64_t frames = 0;
  std::uint64_t probes = 0;
  std::uint64_t chunks = 0;  ///< scan chunks the cold path actually used
};

/// Measured memcpy bandwidth over a buffer the size of the capture —
/// the hardware ceiling every ingest GB/s column is judged against.
double measure_memcpy_gbps(const fs::path& capture, const Options& options) {
  std::ifstream in(capture, std::ios::binary);
  std::vector<char> src((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  std::vector<char> dst(src.size());
  const double seconds = synscan::bench::median_seconds(
      [&] {
        std::memcpy(dst.data(), src.data(), src.size());
        // Keep the copy observable so the optimizer cannot drop it.
        asm volatile("" : : "r"(dst.data()) : "memory");
      },
      options.iterations, options.warmup);
  return static_cast<double>(src.size()) / seconds / 1e9;
}

/// The original record-at-a-time path this PR replaced; kept in-tree as
/// pcap::Reader, so the "pre" row stays measurable on every commit.
PathResult run_reader_per_frame(const fs::path& path) {
  PathResult result;
  const auto start = std::chrono::steady_clock::now();
  telescope::Sensor sensor(bench_telescope());
  auto reader = pcap::Reader::open(path);
  net::RawFrame frame;
  telescope::ScanProbe probe;
  while (reader.next(frame) == pcap::ReadStatus::kOk) {
    ++result.frames;
    if (sensor.classify(frame, probe) == telescope::FrameClass::kScanProbe) {
      ++result.probes;
    }
  }
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return result;
}

PathResult run_ingest(const fs::path& path, bool use_cache, bool expect_hit,
                      std::size_t scan_chunks = 0) {
  PathResult result;
  core::IngestOptions options;
  options.use_cache = use_cache;
  options.scan_chunks = scan_chunks;
  const auto start = std::chrono::steady_clock::now();
  const auto ingest =
      core::ingest_capture(path, bench_telescope(), options,
                           [&](const telescope::ProbeBatch& batch) {
                             result.probes += batch.size();
                           });
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  result.frames = ingest.frames;
  result.chunks = ingest.chunks;
  if (ingest.from_cache != expect_hit) {
    std::fprintf(stderr, "bench_ingest: expected from_cache=%d\n", expect_hit ? 1 : 0);
    std::exit(1);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = parse(argc, argv);

  const auto dir = fs::temp_directory_path() / "synscan_bench_ingest";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const auto capture = dir / "workload.pcap";
  write_capture(capture, options);
  const auto capture_bytes = fs::file_size(capture);

  const auto seconds_of = [](const PathResult& r) { return r.seconds; };
  const auto median = [&](auto&& run) {
    return synscan::bench::median_result(run, seconds_of, options.iterations,
                                         options.warmup);
  };

  const double memcpy_gbps = measure_memcpy_gbps(capture, options);
  const auto pre = median([&] { return run_reader_per_frame(capture); });
  const auto post = median([&] { return run_ingest(capture, false, false); });
  (void)run_ingest(capture, true, false);  // cold pass writes the .spc
  const auto warm = median([&] { return run_ingest(capture, true, true); });

  // Chunked-scan scaling sweep over the cold path. Each row must agree
  // with the serial paths on frames and probes — the sweep doubles as a
  // chunking differential.
  std::vector<PathResult> sweep;
  sweep.reserve(options.scan_chunks.size());
  for (const auto chunks : options.scan_chunks) {
    sweep.push_back(median([&] { return run_ingest(capture, false, false, chunks); }));
  }
  fs::remove_all(dir);

  for (const auto& row : sweep) {
    if (row.frames != pre.frames || row.probes != pre.probes) {
      std::fprintf(stderr,
                   "bench_ingest: scan-chunk sweep divergence at %" PRIu64
                   " chunks (frames %" PRIu64 ", probes %" PRIu64 ")\n",
                   row.chunks, row.frames, row.probes);
      return 1;
    }
  }
  if (pre.probes != post.probes || pre.probes != warm.probes ||
      pre.frames != post.frames || pre.frames != warm.frames) {
    std::fprintf(stderr,
                 "bench_ingest: path divergence (frames %" PRIu64 "/%" PRIu64
                 "/%" PRIu64 ", probes %" PRIu64 "/%" PRIu64 "/%" PRIu64 ")\n",
                 pre.frames, post.frames, warm.frames, pre.probes, post.probes,
                 warm.probes);
    return 1;
  }

  const auto fps = [](const PathResult& r) {
    return static_cast<double>(r.frames) / r.seconds;
  };
  // Effective capture bandwidth: original capture bytes retired per
  // second, regardless of which representation the path actually read —
  // the one unit in which all three paths and memcpy are comparable.
  const auto gbps = [&](const PathResult& r) {
    return static_cast<double>(capture_bytes) / r.seconds / 1e9;
  };
  const double ratio = gbps(post) / memcpy_gbps;
  std::string sweep_json = "[";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    char row[160];
    std::snprintf(row, sizeof(row),
                  "%s{\"requested\":%llu,\"chunks\":%" PRIu64
                  ",\"seconds\":%.4f,\"frames_per_sec\":%.0f,\"gbps\":%.2f}",
                  i == 0 ? "" : ",",
                  static_cast<unsigned long long>(options.scan_chunks[i]),
                  sweep[i].chunks, sweep[i].seconds, fps(sweep[i]), gbps(sweep[i]));
    sweep_json.append(row);
  }
  sweep_json.push_back(']');
  std::printf(
      "{\"label\":\"%s\",\"frames\":%" PRIu64 ",\"probes\":%" PRIu64 ","
      "\"capture_bytes\":%" PRIu64 ",\"peak_rss_kb\":%ld,"
      "\"iterations\":%d,\"warmup\":%d,\"memcpy_gbps\":%.2f,"
      "\"pre_seconds\":%.4f,\"pre_frames_per_sec\":%.0f,\"pre_gbps\":%.2f,"
      "\"mmap_batch_seconds\":%.4f,\"mmap_batch_frames_per_sec\":%.0f,"
      "\"mmap_batch_gbps\":%.2f,"
      "\"cache_warm_seconds\":%.4f,\"cache_warm_frames_per_sec\":%.0f,"
      "\"cache_warm_gbps\":%.2f,"
      "\"mmap_speedup\":%.2f,\"cache_speedup\":%.2f,"
      "\"mmap_vs_memcpy\":%.3f,\"scan_chunk_sweep\":%s}\n",
      options.label.c_str(), pre.frames, pre.probes,
      static_cast<std::uint64_t>(capture_bytes), peak_rss_kb(), options.iterations,
      options.warmup, memcpy_gbps, pre.seconds, fps(pre), gbps(pre), post.seconds,
      fps(post), gbps(post), warm.seconds, fps(warm), gbps(warm),
      fps(post) / fps(pre), fps(warm) / fps(pre), ratio, sweep_json.c_str());
  if (options.check_ratio >= 0.0 && ratio < options.check_ratio) {
    std::fprintf(stderr,
                 "bench_ingest: mmap_batch %.2f GB/s is %.3fx memcpy "
                 "(%.2f GB/s), below the --check-ratio=%.3f floor\n",
                 gbps(post), ratio, memcpy_gbps, options.check_ratio);
    return 1;
  }
  return 0;
}
