// Figure 7: speed and IPv4 coverage of scanner types, averaged per
// source IP.
#include <iostream>

#include "bench_common.h"
#include "core/analysis_types.h"
#include "report/series.h"
#include "report/table.h"

int main(int argc, char** argv) {
  using namespace synscan;
  const auto options = bench::parse_options(argc, argv);
  bench::print_banner("Figure 7 — speed and coverage by scanner type", "§6.8, Fig. 7",
                      options);

  const int year = options.year.value_or(2022);
  const auto run = bench::run_year(year, options);
  const auto rows = core::type_speed_coverage(run.result.campaigns,
                                              bench::shared_registry());

  report::Table table({"type", "sources", "mean pps", ">1000 pps", "mean coverage"});
  double institutional_speed = 0.0;
  double rest_speed_sum = 0.0;
  std::size_t rest_sources = 0;
  for (const auto& row : rows) {
    table.add_row({std::string(enrich::to_string(row.type)),
                   std::to_string(row.speed_pps.size()),
                   report::fixed(row.mean_speed_pps, 0),
                   report::percent(row.fraction_over_1000pps),
                   report::percent(row.mean_coverage, 2)});
    if (row.type == enrich::ScannerType::kInstitutional) {
      institutional_speed = row.mean_speed_pps;
    } else {
      rest_speed_sum += row.mean_speed_pps * static_cast<double>(row.speed_pps.size());
      rest_sources += row.speed_pps.size();
    }
  }
  std::cout << "window: " << year << "\n\n" << table;

  std::vector<stats::NamedEcdf> speed_cdfs;
  std::vector<stats::NamedEcdf> coverage_cdfs;
  for (const auto& row : rows) {
    speed_cdfs.push_back({std::string(enrich::to_string(row.type)), row.speed_pps});
    coverage_cdfs.push_back({std::string(enrich::to_string(row.type)), row.coverage});
  }
  report::print_cdf_summary(std::cout, "\nper-source mean speed (pps)", speed_cdfs);
  report::print_cdf_summary(std::cout, "\nper-source mean IPv4 coverage (fraction)",
                            coverage_cdfs);

  if (rest_sources > 0 && institutional_speed > 0) {
    const double average_other = rest_speed_sum / static_cast<double>(rest_sources);
    std::cout << "\ninstitutional speed vs average other scanner: "
              << report::fixed(institutional_speed / average_other, 0)
              << "x  (paper: institutions scan ~92x faster than the average)\n";
  }
  std::cout << "paper shape: 84% of institutional sources exceed 1,000 pps vs ~12% of\n"
               "residential; enterprise scanners are the most throttled.\n";
  return 0;
}
