// §4.2/§5.4: origin-country shifts and country-port targeting bias.
#include <iostream>

#include "bench_common.h"
#include "core/analysis_geo.h"
#include "core/analysis_tools.h"
#include "report/table.h"

int main(int argc, char** argv) {
  using namespace synscan;
  const auto options = bench::parse_options(argc, argv);
  bench::print_banner("§4.2/§5.4 — origin countries and port bias", "§4.2, §5.4",
                      options);

  // Country mix over the years.
  report::Table mix({"year", "#1", "#2", "#3", "#4", "#5"});
  for (const int year : {2015, 2016, 2018, 2020, 2022, 2024}) {
    if (options.year && year != *options.year) continue;
    auto config = simgen::year_config(year, options.scale);
    if (options.seed) config.seed = *options.seed;
    core::GeoTally geo(bench::shared_registry());
    core::Pipeline pipeline(bench::shared_telescope());
    pipeline.add_observer(geo);
    simgen::TrafficGenerator generator(config, bench::shared_telescope(),
                                       bench::shared_registry());
    (void)generator.run([&](const net::RawFrame& f) { pipeline.feed_frame(f); });
    const auto result = pipeline.finish();

    std::vector<std::string> row{std::to_string(year)};
    for (const auto& share : geo.top_countries(5)) {
      row.push_back(share.country.to_string() + " " + report::percent(share.share));
    }
    mix.add_row(std::move(row));

    if (year == 2022) {
      report::Table normalized({"country", "packets/1k addresses", "raw share"});
      for (const auto& entry :
           geo.normalized_intensity(bench::shared_registry(), 6)) {
        normalized.add_row({entry.country.to_string(),
                            report::fixed(entry.packets_per_k_addresses, 1),
                            report::percent(geo.country_share(entry.country))});
      }
      std::cout << "\n-- packets normalized by allocated address space, 2022 "
                   "(paper: the Netherlands is the odd one out) --\n"
                << normalized;
    }

    if (year == 2022) {
      // §5.4's port-domination census for the 2022 window.
      const auto dominated = geo.dominated_ports(0.8, 20);
      report::Table dom({"country", "ports dominated >80%", "(paper, full scale)"});
      const std::pair<const char*, const char*> expectations[] = {
          {"CN", "14,444"}, {"US", "666"}, {"BR", "221"}, {"TW", "59"}, {"IR", "57"}};
      for (const auto& [code, paper] : expectations) {
        const auto it = dominated.find(enrich::CountryCode(code));
        dom.add_row({code, std::to_string(it == dominated.end() ? 0 : it->second),
                     paper});
      }
      std::cout << "\n-- 2022 country-dominated ports (>80% of a port's traffic) --\n"
                << dom;

      report::Table bias({"port", "top origin", "share", "paper claim"});
      const auto describe = [&](std::uint16_t port, const char* claim) {
        const auto top = geo.port_country_mix(port, 1);
        bias.add_row({std::to_string(port),
                      top.empty() ? "-" : top[0].country.to_string(),
                      top.empty() ? "-" : report::percent(top[0].share), claim});
      };
      describe(443, "US-based (institutional research)");
      describe(3389, "essentially from China");
      describe(3306, "essentially from China");
      describe(8545, "enterprise space (FPT, VN)");
      std::cout << "\n-- per-port origin bias, 2022 --\n" << bias;

      // §6.5: tool-country bias.
      const auto zmap_mix = core::tool_country_mix(result.campaigns,
                                                   bench::shared_registry(),
                                                   fingerprint::Tool::kZmap, 3);
      std::cout << "\n-- ZMap origin countries, 2022 (paper: almost exclusively "
                   "CN + US) --\n";
      for (const auto& entry : zmap_mix) {
        std::cout << "  " << entry.country.to_string() << ": "
                  << report::percent(entry.share) << "\n";
      }
    }
    if (year == 2018) {
      core::GeoTally unused(bench::shared_registry());
      const auto masscan_mix = core::tool_country_mix(result.campaigns,
                                                      bench::shared_registry(),
                                                      fingerprint::Tool::kMasscan, 2);
      std::cout << "\n-- Masscan origin, 2018 (paper: Russia runs >80% of Masscan "
                   "scans) --\n";
      for (const auto& entry : masscan_mix) {
        std::cout << "  " << entry.country.to_string() << ": "
                  << report::percent(entry.share) << "\n";
      }
    }
  }
  std::cout << "\n-- top origin countries per year --\n" << mix;
  std::cout << "\npaper shape: China >30% early on, then broad diversification; the\n"
               "Netherlands over-represented relative to size (hosting).\n";
  return 0;
}
