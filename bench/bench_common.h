// Shared infrastructure for the experiment benches.
//
// Every bench binary regenerates one table or figure of the paper from a
// fresh simulation of the relevant measurement window(s). Command line:
//   --scale=<x>     divide volumes by x on top of the calibrated scale
//                   (ecosystem.h documents kPacketScale/kScanScale)
//   --year=<y>      restrict multi-year benches to one year
//   --seed=<s>      override the workload seed
//   --metrics[=<f>] emit an obs::RunReport at exit — machine-readable
//                   JSON when a path is given, an ASCII table otherwise
//                   (docs/OBSERVABILITY.md documents the schema)
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/analysis_summary.h"
#include "core/daily_series.h"
#include "core/pipeline.h"
#include "core/port_tally.h"
#include "core/volatility.h"
#include "enrich/registry.h"
#include "obs/run_report.h"
#include "obs/timer.h"
#include "simgen/ecosystem.h"
#include "simgen/generator.h"
#include "telescope/telescope.h"

namespace synscan::bench {

struct Options {
  double scale = 1.0;
  std::optional<int> year;
  std::optional<std::uint64_t> seed;
  /// Destination of the end-of-run metrics report: empty string = ASCII
  /// table on stdout, anything else = JSON file path.
  std::optional<std::string> metrics;
};

namespace detail {

/// State for the atexit run-report emitter (atexit takes no context).
inline std::string& metrics_destination() {
  static std::string destination;
  return destination;
}
inline std::string& metrics_label() {
  static std::string label;
  return label;
}

inline void emit_run_report() {
  const auto report = obs::RunReport::capture(metrics_label());
  if (report.metrics.empty()) return;
  const auto& destination = metrics_destination();
  if (destination.empty()) {
    std::cout << "\n-- run report --\n" << report.to_table();
    return;
  }
  std::ofstream out(destination, std::ios::trunc);
  if (!out.is_open()) {
    std::cerr << "cannot write run report to " << destination << "\n";
    return;
  }
  report.write_json(out);
  out << '\n';
  std::cerr << "wrote run report to " << destination << "\n";
}

}  // namespace detail

/// Turns observability on and schedules a run report at process exit.
/// Shared by every bench so each figure/table binary can emit a
/// machine-readable account of its run next to the paper numbers.
inline void install_metrics_hook(const Options& options, std::string_view binary) {
  if (!options.metrics) return;
  obs::set_enabled(true);
  // Construct the global registry *before* registering the atexit
  // emitter: exit-time teardown is LIFO, so anything the callback reads
  // must already exist here or it will be destroyed first.
  (void)obs::MetricsRegistry::global();
  detail::metrics_destination() = *options.metrics;
  const auto slash = binary.find_last_of('/');
  detail::metrics_label() =
      std::string(slash == std::string_view::npos ? binary : binary.substr(slash + 1));
  std::atexit([] { detail::emit_run_report(); });
}

inline Options parse_options(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value_of = [&](std::string_view prefix) -> std::optional<std::string> {
      if (arg.substr(0, prefix.size()) != prefix) return std::nullopt;
      return std::string(arg.substr(prefix.size()));
    };
    if (const auto v = value_of("--scale=")) {
      options.scale = std::stod(*v);
    } else if (const auto v = value_of("--year=")) {
      options.year = std::stoi(*v);
    } else if (const auto v = value_of("--metrics=")) {
      options.metrics = *v;
    } else if (arg == "--metrics") {
      options.metrics = std::string();
    } else if (const auto v = value_of("--seed=")) {
      options.seed = std::stoull(*v);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "options: --scale=<x> --year=<y> --seed=<s> --metrics[=<file>]\n";
      std::exit(0);
    }
  }
  install_metrics_hook(options, argc > 0 ? argv[0] : "bench");
  return options;
}

/// Warmed median-of-N runner. Executes `run` `warmup` unmeasured times
/// (absorbing cold-cache and first-touch page-fault effects), then
/// `iterations` measured times, and returns the run whose duration —
/// extracted by `seconds_of(result)` — is the median. BENCH_*.json is a
/// trajectory compared across commits, so a single-shot sample's
/// run-to-run swing reads as a phantom regression; the warmup + median
/// pair is what makes one appended record comparable to the last.
template <typename Run, typename SecondsOf>
auto median_result(Run&& run, SecondsOf&& seconds_of, int iterations, int warmup) {
  for (int i = 0; i < warmup; ++i) (void)run();
  using Result = decltype(run());
  std::vector<Result> results;
  results.reserve(static_cast<std::size_t>(std::max(iterations, 1)));
  for (int i = 0; i < std::max(iterations, 1); ++i) results.push_back(run());
  std::sort(results.begin(), results.end(), [&](const Result& a, const Result& b) {
    return seconds_of(a) < seconds_of(b);
  });
  return std::move(results[results.size() / 2]);
}

/// Median wall-clock seconds of `body` over warmed iterations.
template <typename Body>
double median_seconds(Body&& body, int iterations = 5, int warmup = 1) {
  return median_result(
      [&body] {
        const auto start = std::chrono::steady_clock::now();
        body();
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
      },
      [](double seconds) { return seconds; }, iterations, warmup);
}

/// Which streaming observers a bench needs (each costs memory/time).
struct Observers {
  bool port_tally = true;
  bool volatility = false;
  bool daily_series = false;
};

/// One simulated measurement window, fully analyzed.
struct YearRun {
  simgen::YearConfig config;
  simgen::GeneratorStats generated;
  core::PipelineResult result;
  core::PortTally tally;
  std::optional<core::VolatilityTracker> volatility;
  std::optional<core::DailyPortSeries> daily;

  [[nodiscard]] double packets_per_day() const {
    return static_cast<double>(tally.total_packets()) / config.window_days;
  }
  [[nodiscard]] double scans_per_month() const {
    return static_cast<double>(result.campaigns.size()) / config.window_days * 30.44;
  }
};

inline const telescope::Telescope& shared_telescope() {
  static const auto telescope = telescope::Telescope::paper_default();
  return telescope;
}

inline const enrich::InternetRegistry& shared_registry() {
  return enrich::InternetRegistry::synthetic_default();
}

/// Runs one window through the pipeline with the requested observers.
inline YearRun run_window(simgen::YearConfig config, const Observers& observers = {}) {
  YearRun run;
  run.config = config;
  const auto& telescope = shared_telescope();

  core::Pipeline pipeline(telescope);
  if (observers.port_tally) pipeline.add_observer(run.tally);
  if (observers.volatility) {
    run.volatility.emplace(config.start_time);
    pipeline.add_observer(*run.volatility);
  }
  if (observers.daily_series) {
    run.daily.emplace(config.start_time);
    pipeline.add_observer(*run.daily);
  }

  simgen::TrafficGenerator generator(std::move(config), telescope, shared_registry());
  {
    obs::ScopedTimer generate("bench.generate_and_feed");
    run.generated = generator.run([&](const net::RawFrame& f) { pipeline.feed_frame(f); });
  }
  {
    const obs::ScopedTimer finish("bench.finish");
    run.result = pipeline.finish();
  }
  if (obs::enabled()) {
    auto& registry = obs::MetricsRegistry::global();
    obs::publish(registry, run.result.sensor);
    obs::publish(registry, run.result.tracker);
    registry.counter("bench.windows").add(1);
    registry.counter("bench.campaigns").add(run.result.campaigns.size());
  }
  if (run.volatility) {
    for (const auto& campaign : run.result.campaigns) {
      run.volatility->on_campaign(campaign);
    }
  }
  return run;
}

/// Runs a calibrated year.
inline YearRun run_year(int year, const Options& options, const Observers& observers = {}) {
  auto config = simgen::year_config(year, options.scale);
  if (options.seed) config.seed = *options.seed;
  return run_window(std::move(config), observers);
}

/// The total downscale applied to packet volumes, for back-conversion
/// into paper-comparable units.
inline double packet_upscale(const Options& options) {
  return simgen::kPacketScale * options.scale;
}
inline double scan_upscale(const Options& options) {
  return simgen::kScanScale * options.scale;
}

inline void print_banner(std::string_view experiment, std::string_view paper_ref,
                         const Options& options) {
  std::cout << "================================================================\n"
            << experiment << "  (" << paper_ref << ")\n"
            << "scale: packets 1/" << packet_upscale(options) << ", scans 1/"
            << scan_upscale(options) << " of the paper's telescope\n"
            << "================================================================\n";
}

}  // namespace synscan::bench
