// Figure 5: distribution of scanner types over the top-15 targeted
// ports (plus the paper's call-outs: 443 institutional-heavy, 8545
// enterprise-heavy).
#include <iostream>

#include "bench_common.h"
#include "core/analysis_types.h"
#include "report/table.h"

int main(int argc, char** argv) {
  using namespace synscan;
  const auto options = bench::parse_options(argc, argv);
  bench::print_banner("Figure 5 — scanner types per port (top 15)", "§6.7, Fig. 5",
                      options);

  const int year = options.year.value_or(2022);
  auto config = simgen::year_config(year, options.scale);
  if (options.seed) config.seed = *options.seed;

  core::TypeTally types(bench::shared_registry());
  core::Pipeline pipeline(bench::shared_telescope());
  pipeline.add_observer(types);
  simgen::TrafficGenerator generator(config, bench::shared_telescope(),
                                     bench::shared_registry());
  (void)generator.run([&](const net::RawFrame& f) { pipeline.feed_frame(f); });
  (void)pipeline.finish();

  auto ports = types.top_ports(15);
  // Always include the paper's two call-out ports.
  for (const std::uint16_t wanted : {static_cast<std::uint16_t>(443),
                                     static_cast<std::uint16_t>(8545)}) {
    if (std::find(ports.begin(), ports.end(), wanted) == ports.end()) {
      ports.push_back(wanted);
    }
  }

  report::Table table({"port", "institutional", "hosting", "enterprise", "residential",
                       "unknown"});
  for (const auto port : ports) {
    const auto mix = types.port_type_mix(port);
    table.add_row(
        {std::to_string(port),
         report::percent(mix[enrich::scanner_type_index(enrich::ScannerType::kInstitutional)]),
         report::percent(mix[enrich::scanner_type_index(enrich::ScannerType::kHosting)]),
         report::percent(mix[enrich::scanner_type_index(enrich::ScannerType::kEnterprise)]),
         report::percent(mix[enrich::scanner_type_index(enrich::ScannerType::kResidential)]),
         report::percent(mix[enrich::scanner_type_index(enrich::ScannerType::kUnknown)])});
  }
  std::cout << "window: " << year << "\n\n" << table;

  const auto https = types.port_type_mix(443);
  const auto jsonrpc = types.port_type_mix(8545);
  std::cout << "\ncall-outs (paper): 443 is institutional-heavy (41% of its scans),\n"
            << "8545 (JSON-RPC/Ethereum) is disproportionally enterprise (FPT space).\n"
            << "measured: 443 institutional "
            << report::percent(
                   https[enrich::scanner_type_index(enrich::ScannerType::kInstitutional)])
            << ", 8545 enterprise "
            << report::percent(
                   jsonrpc[enrich::scanner_type_index(enrich::ScannerType::kEnterprise)])
            << "\n";
  return 0;
}
