// Tracker-replay perf workload: a deterministic, telescope-shaped probe
// stream driven straight into CampaignTracker::feed, reported as JSON.
//
// This is the repo's recorded perf baseline for the tracker hot path
// (see scripts/bench_baseline.sh and BENCH_tracker.json). Unlike the
// google-benchmark microbenchmarks it replays a *mixed* population —
// mostly single-digit-packet noise sources, a band of heavy horizontal
// scanners, a few vertical scanners — with periodic quiet gaps so the
// expiry, sweep, and same-source-restart paths are all on the measured
// path, matching the traffic mix of Table 1 / Fig. 3 rather than a
// single uniform loop.
//
// Usage: bench_tracker_replay [--probes=N] [--label=STR] [--seed=N]
// Output: one JSON object on stdout.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/tracker.h"
#include "simgen/rng.h"
#include "telescope/sensor.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace {

using namespace synscan;

/// Peak resident set size in kilobytes, or 0 where unsupported.
long peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return usage.ru_maxrss / 1024;  // bytes on macOS
#else
  return usage.ru_maxrss;  // kilobytes on Linux
#endif
#else
  return 0;
#endif
}

struct Options {
  std::uint64_t probes = 4'000'000;
  std::uint64_t seed = 20240806;
  std::string label = "tracker_replay";
};

Options parse(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--probes=", 0) == 0) {
      options.probes = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--label=", 0) == 0) {
      options.label = arg.substr(8);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return options;
}

/// Pre-generates the probe stream so that generation cost is excluded
/// from the timed section.
std::vector<telescope::ScanProbe> make_workload(const Options& options) {
  simgen::Rng rng(options.seed);
  std::vector<telescope::ScanProbe> probes;
  probes.reserve(options.probes);

  constexpr std::uint32_t kNoiseSources = 1u << 21;   // mostly-new flows
  constexpr std::uint32_t kHeavySources = 512;        // horizontal scanners
  constexpr std::uint32_t kVerticalSources = 64;      // port sweepers
  constexpr std::uint16_t kCommonPorts[] = {23, 80, 443, 445, 22, 8080, 3389, 5060};

  net::TimeUs now = 0;
  std::uint16_t vertical_port = 0;
  for (std::uint64_t i = 0; i < options.probes; ++i) {
    // Quiet gap every ~1/8 of the stream: expires open flows, forces
    // sweeps, and makes surviving heavy sources restart in place.
    if (i > 0 && i % (options.probes / 8 + 1) == 0) now += 2 * net::kMicrosPerHour;
    now += 40;  // ~25k probes/s of telescope time

    telescope::ScanProbe probe;
    probe.timestamp_us = now;
    const std::uint64_t draw = rng.next_u64() % 100;
    if (draw < 70) {
      // Background noise: huge sparse source pool, 1-3 packets each.
      probe.source = net::Ipv4Address(0x0a000000u + rng.next_u32() % kNoiseSources);
      probe.destination = net::Ipv4Address(0xc6330000u + rng.next_u32() % 4096);
      probe.destination_port = kCommonPorts[rng.next_u32() % 8];
    } else if (draw < 95) {
      // Heavy horizontal scanners: few sources, wide destination fan-out.
      probe.source = net::Ipv4Address(0x05050000u + rng.next_u32() % kHeavySources);
      probe.destination = net::Ipv4Address(0xc6330000u + rng.next_u32() % 65536);
      probe.destination_port = kCommonPorts[rng.next_u32() % 2];
    } else {
      // Vertical scanners: few sources, few destinations, the whole port
      // space — drives the port-map promotion path.
      probe.source = net::Ipv4Address(0x07070000u + rng.next_u32() % kVerticalSources);
      probe.destination = net::Ipv4Address(0xc6330000u + rng.next_u32() % 64);
      probe.destination_port = ++vertical_port;
    }
    probe.source_port = static_cast<std::uint16_t>(40000 + rng.next_u32() % 20000);
    probe.ttl = 64;
    probe.window = 65535;
    probes.push_back(probe);
  }
  return probes;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = parse(argc, argv);
  const auto probes = make_workload(options);

  core::TrackerConfig config;
  std::uint64_t campaign_packets = 0;
  std::uint64_t campaigns = 0;
  core::CampaignTracker tracker(config, 71536, [&](core::Campaign&& campaign) {
    ++campaigns;
    campaign_packets += campaign.packets;
  });

  const auto start = std::chrono::steady_clock::now();
  for (const auto& probe : probes) tracker.feed(probe);
  tracker.finish();
  const auto stop = std::chrono::steady_clock::now();

  const double seconds = std::chrono::duration<double>(stop - start).count();
  const auto& counters = tracker.counters();
  std::printf(
      "{\"label\":\"%s\",\"probes\":%" PRIu64 ",\"seconds\":%.4f,"
      "\"probes_per_sec\":%.0f,\"peak_rss_kb\":%ld,"
      "\"campaigns\":%" PRIu64 ",\"campaign_packets\":%" PRIu64 ","
      "\"subthreshold_flows\":%" PRIu64 ",\"expired_flows\":%" PRIu64 ","
      "\"sweeps\":%" PRIu64 ",\"peak_open_flows\":%" PRIu64 "}\n",
      options.label.c_str(), counters.probes, seconds,
      static_cast<double>(counters.probes) / seconds, peak_rss_kb(), campaigns,
      campaign_packets, counters.subthreshold_flows, counters.expired_flows,
      counters.sweeps, counters.peak_open_flows);
  return 0;
}
