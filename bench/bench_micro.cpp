// Engineering microbenchmarks (google-benchmark): throughput of the hot
// pipeline stages. Not a paper experiment — these quantify that the
// toolkit sustains telescope-scale packet rates.
#include <benchmark/benchmark.h>

#include "core/parallel.h"
#include "core/pipeline.h"
#include "core/tracker.h"
#include "fingerprint/classifier.h"
#include "net/packet.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "pcap/pcap.h"
#include "simgen/permute.h"
#include "simgen/rng.h"
#include "simgen/wire.h"
#include "telescope/sensor.h"

namespace {

using namespace synscan;

std::vector<net::RawFrame> sample_frames(std::size_t count) {
  simgen::Rng rng(1234);
  simgen::WireState wire(simgen::WireTool::kMasscan, rng.fork(1));
  std::vector<net::RawFrame> frames;
  frames.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    net::TcpFrameSpec spec;
    spec.src_ip = net::Ipv4Address(0x05060000u + static_cast<std::uint32_t>(i % 512));
    wire.craft(spec,
               net::Ipv4Address::from_octets(198, 51,
                                             static_cast<std::uint8_t>(i >> 8),
                                             static_cast<std::uint8_t>(i)),
               static_cast<std::uint16_t>(1 + rng.uniform(65535)));
    frames.push_back({static_cast<net::TimeUs>(i) * 1000, net::build_tcp_frame(spec)});
  }
  return frames;
}

void BM_BuildTcpFrame(benchmark::State& state) {
  simgen::Rng rng(1);
  simgen::WireState wire(simgen::WireTool::kZmap, rng.fork(1));
  net::TcpFrameSpec spec;
  spec.src_ip = net::Ipv4Address::from_octets(5, 6, 7, 8);
  std::uint32_t i = 0;
  for (auto unused : state) {
    (void)unused;
    wire.craft(spec, net::Ipv4Address(0xc6330000u + (i++ & 0xffff)), 443);
    benchmark::DoNotOptimize(net::build_tcp_frame(spec));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BuildTcpFrame);

void BM_DecodeFrame(benchmark::State& state) {
  const auto frames = sample_frames(1024);
  std::size_t i = 0;
  for (auto unused : state) {
    (void)unused;
    benchmark::DoNotOptimize(net::decode_frame(frames[i++ & 1023].bytes));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecodeFrame);

void BM_SensorClassify(benchmark::State& state) {
  const auto telescope = telescope::Telescope::paper_default();
  telescope::Sensor sensor(telescope);
  const auto frames = sample_frames(1024);
  telescope::ScanProbe probe;
  std::size_t i = 0;
  for (auto unused : state) {
    (void)unused;
    benchmark::DoNotOptimize(sensor.classify(frames[i++ & 1023], probe));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SensorClassify);

void BM_FingerprintEvidence(benchmark::State& state) {
  const auto frames = sample_frames(1024);
  std::vector<telescope::ScanProbe> probes;
  const auto telescope = telescope::Telescope::paper_default();
  telescope::Sensor sensor(telescope);
  for (const auto& frame : frames) {
    telescope::ScanProbe probe;
    if (sensor.classify(frame, probe) == telescope::FrameClass::kScanProbe) {
      probes.push_back(probe);
    }
  }
  fingerprint::ToolEvidence evidence;
  std::size_t i = 0;
  for (auto unused : state) {
    (void)unused;
    evidence.observe(probes[i++ % probes.size()]);
  }
  benchmark::DoNotOptimize(evidence.verdict());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FingerprintEvidence);

void BM_TrackerFeed(benchmark::State& state) {
  simgen::Rng rng(7);
  core::CampaignTracker tracker({}, 71536, [](core::Campaign&&) {});
  telescope::ScanProbe probe;
  probe.destination_port = 443;
  net::TimeUs t = 0;
  for (auto unused : state) {
    (void)unused;
    probe.source = net::Ipv4Address(0x05000000u + static_cast<std::uint32_t>(rng.uniform(4096)));
    probe.destination = net::Ipv4Address(0xc6330000u + rng.next_u32() % 65536);
    probe.timestamp_us = (t += 50);
    tracker.feed(probe);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrackerFeed);

void BM_EndToEndPipeline(benchmark::State& state) {
  const auto telescope = telescope::Telescope::paper_default();
  const auto frames = sample_frames(4096);
  for (auto unused : state) {
    (void)unused;
    core::Pipeline pipeline(telescope);
    for (const auto& frame : frames) pipeline.feed_frame(frame);
    benchmark::DoNotOptimize(pipeline.finish());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(frames.size()));
}
BENCHMARK(BM_EndToEndPipeline)->Unit(benchmark::kMillisecond);

// Same workload as BM_EndToEndPipeline but with observability switched
// on: the delta between the two quantifies the cost of live metrics
// (the off-state overhead is the <2% acceptance bound; the on-state
// cost is what `--metrics` users pay).
void BM_EndToEndPipelineObsOn(benchmark::State& state) {
  const auto telescope = telescope::Telescope::paper_default();
  const auto frames = sample_frames(4096);
  obs::set_enabled(true);
  for (auto unused : state) {
    (void)unused;
    core::Pipeline pipeline(telescope);
    for (const auto& frame : frames) pipeline.feed_frame(frame);
    benchmark::DoNotOptimize(pipeline.finish());
  }
  obs::set_enabled(false);
  obs::MetricsRegistry::global().clear();
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(frames.size()));
}
BENCHMARK(BM_EndToEndPipelineObsOn)->Unit(benchmark::kMillisecond);

void BM_ObsCounterAdd(benchmark::State& state) {
  obs::MetricsRegistry registry;
  // Probe metric local to this microbenchmark, deliberately undocumented.
  // synscan-lint: allow(metric-doc-sync)
  auto& counter = registry.counter("bench.counter");
  for (auto unused : state) {
    (void)unused;
    counter.add(1);
  }
  benchmark::DoNotOptimize(counter.value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounterAdd);

void BM_ObsScopedTimer(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::set_enabled(true);
  for (auto unused : state) {
    (void)unused;
    // synscan-lint: allow(metric-doc-sync) — bench-local probe span
    const obs::ScopedTimer timer(registry, "bench.span");
  }
  obs::set_enabled(false);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsScopedTimer);

void BM_ParallelPipeline(benchmark::State& state) {
  const auto telescope = telescope::Telescope::paper_default();
  const auto frames = sample_frames(4096);
  const auto workers = static_cast<std::size_t>(state.range(0));
  for (auto unused : state) {
    (void)unused;
    core::ParallelAnalyzer analyzer(telescope, workers);
    for (const auto& frame : frames) analyzer.feed_frame(frame);
    benchmark::DoNotOptimize(analyzer.finish());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(frames.size()));
}
BENCHMARK(BM_ParallelPipeline)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_Permutation(benchmark::State& state) {
  const simgen::Permutation perm(0xfeed, 71536);
  std::uint32_t i = 0;
  for (auto unused : state) {
    (void)unused;
    benchmark::DoNotOptimize(perm.at(i++ % 71536));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Permutation);

void BM_PcapWriteRead(benchmark::State& state) {
  const auto frames = sample_frames(1024);
  const auto path = std::filesystem::temp_directory_path() / "synscan_bench.pcap";
  for (auto unused : state) {
    (void)unused;
    {
      auto writer = pcap::Writer::create(path);
      for (const auto& frame : frames) writer.write(frame);
    }
    auto reader = pcap::Reader::open(path);
    benchmark::DoNotOptimize(reader.read_all());
  }
  std::filesystem::remove(path);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(frames.size()));
  state.SetLabel("write+read 1024 frames");
}
BENCHMARK(BM_PcapWriteRead)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
