// Analyze perf workload: warm probe cache -> campaigns + observer
// tallies, reported as JSON (see scripts/bench_baseline.sh and
// BENCH_analyze.json).
//
// One run measures five paths over the same generated capture; the
// analyze paths are all fed from the warm `.spc` probe cache so ingest
// cost is identical and the analytics stages are what differs:
//   cold_ingest — pure decode+classify ingest (mmap + classify_batch,
//                 no cache): what reading the capture costs — the
//                 "analyze within ~2x of ingest" budget compares
//                 against this;
//   warm_ingest — pure ingest from the cache, probes counted and
//                 dropped: the absolute throughput floor;
//   reference   — per-probe analytics: every batch row materialized via
//                 `get(i)` into `Pipeline::feed_probe`, observers fed
//                 through `on_probe` — the differential reference path;
//   batched     — the batch-native serial path: `Pipeline::feed_probes`,
//                 observers on their column-direct `observe_batch`
//                 overloads;
//   parallel    — `ParallelAnalyzer::feed_probes` slicing shared batches
//                 across workers, feeder-side observers as in the CLI.
// All paths must agree on campaign count, tracker counters, observer
// totals, and the campaigns JSONL bytes (reference vs batched vs
// parallel); the binary exits non-zero on divergence, so the baseline
// doubles as a correctness smoke.
//
// Usage: bench_analyze [--frames=N] [--label=STR] [--seed=N]
//                      [--workers=N] [--check-ratio=R]
// `--check-ratio=R` additionally fails the run (exit 1) when the batched
// path's probe throughput falls below R times the reference path's — a
// machine-independent regression gate for CI (the two paths run in the
// same process on the same capture, so the ratio is stable where
// absolute throughput is not).
// Output: one JSON object on stdout.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "core/analysis_geo.h"
#include "core/analysis_types.h"
#include "core/ingest.h"
#include "core/parallel.h"
#include "core/pipeline.h"
#include "core/port_tally.h"
#include "enrich/registry.h"
#include "pcap/pcap.h"
#include "report/json.h"
#include "simgen/rng.h"
#include "telescope/probe_batch.h"
#include "telescope/telescope.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace {

using namespace synscan;

namespace fs = std::filesystem;

/// Peak resident set size in kilobytes, or 0 where unsupported.
long peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return usage.ru_maxrss / 1024;  // bytes on macOS
#else
  return usage.ru_maxrss;  // kilobytes on Linux
#endif
#else
  return 0;
#endif
}

struct Options {
  std::uint64_t frames = 2'000'000;
  std::uint64_t seed = 20250809;
  std::string label = "analyze";
  std::size_t workers = 4;
  double check_ratio = 0.0;  ///< 0 = no gate
};

Options parse(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--frames=", 0) == 0) {
      options.frames = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--label=", 0) == 0) {
      options.label = arg.substr(8);
    } else if (arg.rfind("--workers=", 0) == 0) {
      options.workers = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--check-ratio=", 0) == 0) {
      options.check_ratio = std::strtod(arg.c_str() + 14, nullptr);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return options;
}

const telescope::Telescope& bench_telescope() {
  static const telescope::Telescope telescope(
      {{*net::Ipv4Prefix::parse("198.51.0.0/16"), 1000}},
      {{23, 0}});
  return telescope;
}

/// Writes a campaign-shaped capture: a modest source pool emitting
/// *bursts* of SYN probes (scan traffic arrives in per-source runs —
/// the access pattern the batched observers' memoization targets), with
/// enough backscatter and off-telescope noise that the sensor branches
/// stay on the measured ingest path.
void write_capture(const fs::path& path, const Options& options) {
  simgen::Rng rng(options.seed);
  auto writer = pcap::Writer::create(path);
  net::RawFrame frame;
  net::TimeUs now = 0;
  constexpr std::uint32_t kSources = 4096;
  std::uint32_t burst_source = 0;
  std::uint16_t burst_port = 80;
  std::uint32_t burst_left = 0;
  for (std::uint64_t i = 0; i < options.frames; ++i) {
    now += 40;
    const std::uint64_t draw = rng.next_u64() % 100;
    net::TcpFrameSpec tcp;
    if (burst_left == 0) {
      // New scan burst: sources come from a few distinct /8-ish pools so
      // the registry and geo lookups exercise different prefixes.
      burst_source = 0x05000000u + (rng.next_u32() % kSources) * 977u;
      burst_port = (rng.next_u64() % 4 == 0) ? 443 : 80;
      burst_left = 16 + rng.next_u32() % 48;
    }
    --burst_left;
    tcp.src_ip = net::Ipv4Address(burst_source);
    tcp.dst_ip = net::Ipv4Address(0xc6330000u + rng.next_u32() % 65536);
    tcp.src_port = static_cast<std::uint16_t>(40000 + rng.next_u32() % 20000);
    tcp.dst_port = burst_port;
    tcp.sequence = rng.next_u32();
    tcp.ip_id = static_cast<std::uint16_t>(rng.next_u32());
    if (draw < 88) {
      // scan probe (defaults: SYN)
    } else if (draw < 94) {
      tcp.flags = net::flag_bit(net::TcpFlag::kSyn) | net::flag_bit(net::TcpFlag::kAck);
    } else {
      tcp.dst_ip = net::Ipv4Address(0x08080000u + rng.next_u32() % 65536);  // off-net
    }
    frame.timestamp_us = now;
    frame.bytes = net::build_tcp_frame(tcp);
    writer.write(frame);
  }
  writer.flush();
}

/// Everything one analyze pass produces that the others must agree on.
struct PathResult {
  double seconds = 0.0;
  std::uint64_t probes = 0;
  std::uint64_t campaigns = 0;
  std::uint64_t tracker_probes = 0;
  std::uint64_t port_packets = 0;
  std::uint64_t type_sources = 0;
  std::uint64_t geo_packets = 0;
  std::string campaigns_jsonl;
};

core::IngestOptions warm_options() {
  core::IngestOptions options;
  options.use_cache = true;
  return options;
}

/// Pure ingest from the warm cache: the throughput floor.
PathResult run_warm_ingest(const fs::path& path) {
  PathResult result;
  const auto start = std::chrono::steady_clock::now();
  const auto ingest = core::ingest_capture(path, bench_telescope(), warm_options(),
                                           [&](const telescope::ProbeBatch& batch) {
                                             result.probes += batch.size();
                                           });
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  if (!ingest.from_cache) {
    std::fprintf(stderr, "bench_analyze: expected a warm cache\n");
    std::exit(1);
  }
  return result;
}

/// Pure decode+classify ingest (mmap + classify_batch, cache off): what
/// "ingesting the capture" costs when no .spc exists — the ~2x budget
/// in docs/PERFORMANCE.md compares analyze against this.
PathResult run_cold_ingest(const fs::path& path) {
  PathResult result;
  core::IngestOptions options;
  options.use_cache = false;
  const auto start = std::chrono::steady_clock::now();
  (void)core::ingest_capture(path, bench_telescope(), options,
                             [&](const telescope::ProbeBatch& batch) {
                               result.probes += batch.size();
                             });
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return result;
}

void fill_result(PathResult& result, core::PipelineResult pipeline_result,
                 const core::PortTally& ports, const core::TypeTally& types,
                 const core::GeoTally& geo) {
  result.campaigns = pipeline_result.campaigns.size();
  result.tracker_probes = pipeline_result.tracker.probes;
  result.port_packets = ports.total_packets();
  result.type_sources = types.total_sources();
  result.geo_packets = geo.total_packets();
  std::ostringstream jsonl;
  report::write_campaigns_jsonl(jsonl, pipeline_result.campaigns);
  result.campaigns_jsonl = jsonl.str();
}

/// Per-probe reference: every row materialized, observers on `on_probe`.
PathResult run_reference(const fs::path& path) {
  PathResult result;
  const auto& registry = enrich::InternetRegistry::synthetic_default();
  core::Pipeline pipeline(bench_telescope());
  core::PortTally ports;
  core::TypeTally types(registry);
  core::GeoTally geo(registry);
  pipeline.add_observer(ports);
  pipeline.add_observer(types);
  pipeline.add_observer(geo);
  const auto start = std::chrono::steady_clock::now();
  (void)core::ingest_capture(path, bench_telescope(), warm_options(),
                             [&](const telescope::ProbeBatch& batch) {
                               result.probes += batch.size();
                               for (std::size_t i = 0; i < batch.size(); ++i) {
                                 pipeline.feed_probe(batch.get(i));
                               }
                             });
  auto pipeline_result = pipeline.finish();
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  fill_result(result, std::move(pipeline_result), ports, types, geo);
  return result;
}

/// Batch-native serial path: `feed_probes` + `observe_batch`.
PathResult run_batched(const fs::path& path) {
  PathResult result;
  const auto& registry = enrich::InternetRegistry::synthetic_default();
  core::Pipeline pipeline(bench_telescope());
  core::PortTally ports;
  core::TypeTally types(registry);
  core::GeoTally geo(registry);
  pipeline.add_observer(ports);
  pipeline.add_observer(types);
  pipeline.add_observer(geo);
  const auto start = std::chrono::steady_clock::now();
  (void)core::ingest_capture(path, bench_telescope(), warm_options(),
                             [&](const telescope::ProbeBatch& batch) {
                               result.probes += batch.size();
                               pipeline.feed_probes(batch);
                             });
  auto pipeline_result = pipeline.finish();
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  fill_result(result, std::move(pipeline_result), ports, types, geo);
  return result;
}

/// Batch-slice sharding across workers, feeder-side observers (the CLI
/// `analyze --workers=N` shape).
PathResult run_parallel(const fs::path& path, std::size_t workers) {
  PathResult result;
  const auto& registry = enrich::InternetRegistry::synthetic_default();
  core::ParallelAnalyzer analyzer(bench_telescope(), workers);
  core::PortTally ports;
  core::TypeTally types(registry);
  core::GeoTally geo(registry);
  std::vector<std::uint32_t> rows;
  const auto start = std::chrono::steady_clock::now();
  (void)core::ingest_capture(
      path, bench_telescope(), warm_options(),
      [&](const telescope::ProbeBatch& batch) {
        result.probes += batch.size();
        analyzer.feed_probes(batch);
        const std::size_t n = batch.size();
        while (rows.size() < n) {
          rows.push_back(static_cast<std::uint32_t>(rows.size()));
        }
        const std::span<const std::uint32_t> all(rows.data(), n);
        ports.observe_batch(batch, all);
        types.observe_batch(batch, all);
        geo.observe_batch(batch, all);
      });
  auto pipeline_result = analyzer.finish();
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  fill_result(result, std::move(pipeline_result), ports, types, geo);
  return result;
}

bool same_counters(const PathResult& a, const PathResult& b) {
  return a.probes == b.probes && a.campaigns == b.campaigns &&
         a.tracker_probes == b.tracker_probes && a.port_packets == b.port_packets &&
         a.type_sources == b.type_sources && a.geo_packets == b.geo_packets;
}

/// JSONL rows with the `id` field stripped, sorted — the parallel merge
/// re-orders campaigns and re-issues ids (deterministically, but
/// differently from the serial close order), so serial vs parallel
/// compares on this canonical form; serial vs serial compares raw bytes.
std::string canonical_jsonl(const std::string& jsonl) {
  std::vector<std::string> lines;
  std::istringstream in(jsonl);
  for (std::string line; std::getline(in, line);) {
    const auto id_pos = line.find("\"id\":");
    if (id_pos != std::string::npos) {
      const auto comma = line.find(',', id_pos);
      if (comma != std::string::npos) line.erase(id_pos, comma - id_pos + 1);
    }
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = parse(argc, argv);

  const auto dir = fs::temp_directory_path() / "synscan_bench_analyze";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const auto capture = dir / "workload.pcap";
  write_capture(capture, options);

  // Cold pass writes the .spc; everything measured below runs warm.
  (void)core::ingest_capture(capture, bench_telescope(), warm_options(),
                             [](const telescope::ProbeBatch&) {});

  const auto cold = run_cold_ingest(capture);
  const auto warm = run_warm_ingest(capture);
  const auto reference = run_reference(capture);
  const auto batched = run_batched(capture);
  const auto parallel = run_parallel(capture, options.workers);
  fs::remove_all(dir);

  if (!same_counters(reference, batched) || !same_counters(reference, parallel) ||
      warm.probes != reference.probes || cold.probes != warm.probes ||
      reference.campaigns_jsonl != batched.campaigns_jsonl ||
      canonical_jsonl(reference.campaigns_jsonl) !=
          canonical_jsonl(parallel.campaigns_jsonl)) {
    std::fprintf(stderr,
                 "bench_analyze: path divergence (probes %" PRIu64 "/%" PRIu64
                 "/%" PRIu64 "/%" PRIu64 ", campaigns %" PRIu64 "/%" PRIu64
                 "/%" PRIu64 ", jsonl %s/%s)\n",
                 warm.probes, reference.probes, batched.probes, parallel.probes,
                 reference.campaigns, batched.campaigns, parallel.campaigns,
                 reference.campaigns_jsonl == batched.campaigns_jsonl ? "ok" : "DIFF",
                 canonical_jsonl(reference.campaigns_jsonl) ==
                         canonical_jsonl(parallel.campaigns_jsonl)
                     ? "ok"
                     : "DIFF");
    return 1;
  }

  const auto pps = [](const PathResult& r) {
    return static_cast<double>(r.probes) / r.seconds;
  };
  const double batched_vs_reference = pps(batched) / pps(reference);
  if (options.check_ratio > 0.0 && batched_vs_reference < options.check_ratio) {
    std::fprintf(stderr,
                 "bench_analyze: batched path at %.2fx of the per-probe reference "
                 "(gate: %.2fx) — the batch-native path regressed\n",
                 batched_vs_reference, options.check_ratio);
    return 1;
  }

  std::printf(
      "{\"label\":\"%s\",\"frames\":%" PRIu64 ",\"probes\":%" PRIu64 ","
      "\"campaigns\":%" PRIu64 ",\"workers\":%zu,\"peak_rss_kb\":%ld,"
      "\"cold_ingest_seconds\":%.4f,\"cold_ingest_probes_per_sec\":%.0f,"
      "\"warm_ingest_seconds\":%.4f,\"warm_ingest_probes_per_sec\":%.0f,"
      "\"reference_seconds\":%.4f,\"reference_probes_per_sec\":%.0f,"
      "\"batched_seconds\":%.4f,\"batched_probes_per_sec\":%.0f,"
      "\"parallel_seconds\":%.4f,\"parallel_probes_per_sec\":%.0f,"
      "\"batched_vs_reference\":%.2f,\"analyze_vs_cold_ingest\":%.2f,"
      "\"analyze_vs_warm_ingest\":%.2f}\n",
      options.label.c_str(), options.frames, warm.probes, batched.campaigns,
      options.workers, peak_rss_kb(), cold.seconds, pps(cold), warm.seconds,
      pps(warm), reference.seconds, pps(reference), batched.seconds, pps(batched),
      parallel.seconds, pps(parallel), batched_vs_reference,
      batched.seconds / cold.seconds, batched.seconds / warm.seconds);
  return 0;
}
