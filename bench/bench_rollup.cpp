// Rollup perf workload: sharded multi-capture analysis through the
// `.spr` rollup store, reported as JSON (see scripts/bench_baseline.sh
// and BENCH_rollup.json).
//
// One run measures four execution modes over the same generated shard
// set — a single probe stream split into S capture files, with sources
// deliberately long-lived so flows span shard boundaries:
//   cold        — run_shards with the rollup store off: every shard
//                 re-analyzed through the batch pipeline, then merged.
//                 This is what plain `analyze` over the set costs.
//   build       — first store-enabled run: analyze everything AND
//                 persist one `.spr` per shard (the write overhead).
//   warm        — store-enabled run with every shard valid: nothing is
//                 re-analyzed, the rollups are loaded and merged.
//   incremental — one shard's `.spr` removed before each run: that
//                 shard re-analyzes, the rest load, everything merges.
// The warm merge must produce byte-identical report JSON (counters +
// campaign JSONL) to the cold analysis; the binary exits non-zero if
// they diverge, so the baseline doubles as a correctness smoke.
//
// `--check-ratio=<min>` gates cold/warm: the warm merge must be at
// least `min` times faster than cold re-analysis. CI passes a
// conservative floor; healthy builds run far above it (the recorded
// baseline shows the real ratio).
//
// Usage: bench_rollup [--frames=N] [--shards=N] [--workers=N]
//                     [--label=STR] [--seed=N] [--iters=N]
//                     [--warmup=N] [--check-ratio=MIN]
// Output: one JSON object on stdout.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/rollup_store.h"
#include "core/shard.h"
#include "pcap/pcap.h"
#include "report/json.h"
#include "simgen/rng.h"
#include "telescope/telescope.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace {

using namespace synscan;

namespace fs = std::filesystem;

/// Peak resident set size in kilobytes, or 0 where unsupported.
long peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return usage.ru_maxrss / 1024;  // bytes on macOS
#else
  return usage.ru_maxrss;  // kilobytes on Linux
#endif
#else
  return 0;
#endif
}

struct Options {
  std::uint64_t frames = 2'000'000;
  std::uint64_t shards = 8;
  std::size_t workers = 0;
  std::uint64_t seed = 20240809;
  std::string label = "rollup";
  int iterations = 5;
  int warmup = 1;
  /// Minimum cold/warm speedup; < 0 disables the gate.
  double check_ratio = -1.0;
};

Options parse(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--frames=", 0) == 0) {
      options.frames = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--shards=", 0) == 0) {
      options.shards = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--workers=", 0) == 0) {
      options.workers = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--label=", 0) == 0) {
      options.label = arg.substr(8);
    } else if (arg.rfind("--iters=", 0) == 0) {
      options.iterations = std::atoi(arg.c_str() + 8);
    } else if (arg.rfind("--warmup=", 0) == 0) {
      options.warmup = std::atoi(arg.c_str() + 9);
    } else if (arg.rfind("--check-ratio=", 0) == 0) {
      options.check_ratio = std::strtod(arg.c_str() + 14, nullptr);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  if (options.shards == 0) options.shards = 1;
  return options;
}

const telescope::Telescope& bench_telescope() {
  static const telescope::Telescope telescope(
      {{*net::Ipv4Prefix::parse("198.51.0.0/16"), 1000}},
      {{23, 0}});
  return telescope;
}

/// Writes one probe stream as `shards` consecutive capture files. The
/// source space is small (1024 addresses) so flows recur across the
/// whole window and straddle every shard boundary — the case the
/// boundary-carry merge exists for — and each source accumulates the
/// campaign-scale probe volume the paper's heavy scanners show.
std::vector<fs::path> write_shards(const fs::path& dir, const Options& options) {
  simgen::Rng rng(options.seed);
  std::vector<fs::path> captures;
  const std::uint64_t per_shard = std::max<std::uint64_t>(
      options.frames / options.shards, 1);
  net::TimeUs now = 0;
  for (std::uint64_t shard = 0; shard < options.shards; ++shard) {
    auto path = dir / ("shard" + std::to_string(shard) + ".pcap");
    auto writer = pcap::Writer::create(path);
    net::RawFrame frame;
    for (std::uint64_t i = 0; i < per_shard; ++i) {
      now += 40;
      const std::uint64_t draw = rng.next_u64() % 100;
      net::TcpFrameSpec tcp;
      tcp.src_ip = net::Ipv4Address(0x05000000u + rng.next_u32() % 1024);
      tcp.dst_ip = net::Ipv4Address(0xc6330000u + rng.next_u32() % 65536);
      tcp.src_port = static_cast<std::uint16_t>(40000 + rng.next_u32() % 20000);
      tcp.dst_port = (draw % 3 == 0) ? 443 : 80;
      tcp.sequence = rng.next_u32();
      tcp.ip_id = static_cast<std::uint16_t>(rng.next_u32());
      if (draw >= 90) {
        tcp.flags =
            net::flag_bit(net::TcpFlag::kSyn) | net::flag_bit(net::TcpFlag::kAck);
      }
      frame.timestamp_us = now;
      frame.bytes = net::build_tcp_frame(tcp);
      writer.write(frame);
    }
    writer.flush();
    captures.push_back(std::move(path));
  }
  return captures;
}

struct RunResult {
  double seconds = 0.0;
  core::ShardRunStats stats;
  std::string report;
};

/// The report bytes the offline `rollup query` emits: pipeline counters
/// followed by the campaign JSONL — the equality surface of the whole
/// subsystem.
std::string report_bytes(const core::AnalyzedCapture& analysis) {
  std::string out;
  report::append_counters_json(out, analysis.result);
  out.push_back('\n');
  report::append_campaigns_jsonl(out, analysis.result.campaigns);
  return out;
}

RunResult run_once(const core::ShardPlan& plan, const Options& options,
                   bool use_store) {
  RunResult result;
  core::ShardRunOptions run_options;
  run_options.workers = options.workers;
  run_options.use_rollup_store = use_store;
  const auto start = std::chrono::steady_clock::now();
  auto run = core::run_shards(plan, bench_telescope(),
                              enrich::InternetRegistry::synthetic_default(),
                              core::TrackerConfig{}, run_options);
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  result.stats = run.stats;
  result.report = report_bytes(run.analysis);
  return result;
}

void expect(bool condition, const char* what) {
  if (condition) return;
  std::fprintf(stderr, "bench_rollup: %s\n", what);
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = parse(argc, argv);

  const auto dir = fs::temp_directory_path() / "synscan_bench_rollup";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const auto captures = write_shards(dir, options);
  std::uint64_t capture_bytes = 0;
  for (const auto& capture : captures) capture_bytes += fs::file_size(capture);
  const auto plan = core::plan_shards(captures);

  const auto seconds_of = [](const RunResult& r) { return r.seconds; };
  const auto median = [&](auto&& run) {
    return synscan::bench::median_result(run, seconds_of, options.iterations,
                                         options.warmup);
  };
  const auto drop_rollups = [&] {
    for (const auto& capture : captures) {
      fs::remove(core::rollup_path_for(capture));
    }
  };

  // Cold: store off; the warmup iteration also writes the .spc probe
  // caches, so "cold" means cold analysis over warm ingest — exactly
  // what repeating `analyze` over the set costs.
  const auto cold = median([&] { return run_once(plan, options, false); });

  // Build: one pass that analyzes everything and persists the rollups.
  drop_rollups();
  const auto build = run_once(plan, options, true);
  expect(build.stats.store_misses == options.shards, "build pass expected all misses");
  expect(build.stats.store_writes == options.shards, "build pass expected all writes");

  // Warm: every shard served from its .spr.
  const auto warm = median([&] {
    auto run = run_once(plan, options, true);
    expect(run.stats.store_hits == options.shards, "warm pass expected all hits");
    return run;
  });

  // Incremental: one shard invalidated per run, the rest load.
  const auto incremental = median([&] {
    fs::remove(core::rollup_path_for(plan.shards.front().capture));
    auto run = run_once(plan, options, true);
    expect(run.stats.store_hits == options.shards - 1,
           "incremental pass expected shards-1 hits");
    expect(run.stats.store_misses == 1, "incremental pass expected one miss");
    return run;
  });

  expect(warm.report == cold.report, "warm merge diverged from cold analysis");
  expect(incremental.report == cold.report,
         "incremental merge diverged from cold analysis");
  fs::remove_all(dir);

  const double warm_speedup = cold.seconds / warm.seconds;
  const double incremental_speedup = cold.seconds / incremental.seconds;
  std::printf(
      "{\"label\":\"%s\",\"frames\":%" PRIu64 ",\"shards\":%" PRIu64 ","
      "\"capture_bytes\":%" PRIu64 ",\"peak_rss_kb\":%ld,"
      "\"iterations\":%d,\"warmup\":%d,"
      "\"cold_seconds\":%.4f,\"build_seconds\":%.4f,"
      "\"warm_seconds\":%.4f,\"incremental_seconds\":%.4f,"
      "\"warm_speedup\":%.2f,\"incremental_speedup\":%.2f,"
      "\"build_overhead\":%.3f}\n",
      options.label.c_str(), options.frames, options.shards, capture_bytes,
      peak_rss_kb(), options.iterations, options.warmup, cold.seconds,
      build.seconds, warm.seconds, incremental.seconds, warm_speedup,
      incremental_speedup, build.seconds / cold.seconds);
  if (options.check_ratio >= 0.0 && warm_speedup < options.check_ratio) {
    std::fprintf(stderr,
                 "bench_rollup: warm merge %.4fs is only %.2fx faster than "
                 "cold analysis %.4fs, below the --check-ratio=%.2f floor\n",
                 warm.seconds, warm_speedup, cold.seconds, options.check_ratio);
    return 1;
  }
  return 0;
}
