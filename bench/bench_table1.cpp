// Table 1: scan volume, five most targeted ports by packets/sources/
// scans, scans/month and tool shares, for every year 2015-2024.
//
// Prints measured values (rescaled to paper units) next to the published
// numbers.
#include <iostream>

#include "bench_common.h"
#include "core/analysis_campaigns.h"
#include "report/table.h"

namespace {

using namespace synscan;

std::string port_list(const std::vector<core::PortCount>& rows) {
  std::string out;
  for (const auto& row : rows) {
    if (!out.empty()) out += " ";
    out += std::to_string(row.port) + "(" + report::percent(row.share) + ")";
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  bench::print_banner("Table 1 — ten years of Internet scanning", "§4.1, Table 1",
                      options);

  report::Table volume({"year", "pkts/day (meas)", "pkts/day (paper)",
                        "scans/mo (meas)", "scans/mo (paper)", "pkts/scan",
                        "sources"});
  report::Table tools({"year", "masscan", "(paper)", "nmap", "(paper)", "mirai",
                       "(paper)", "zmap", "(paper)", "known scans", "known pkts"});
  report::Table ports({"year", "top5 by packets", "top5 by sources", "top5 by scans"});
  ports.set_align(1, report::Align::kLeft);
  ports.set_align(2, report::Align::kLeft);
  ports.set_align(3, report::Align::kLeft);

  const int first = options.year.value_or(simgen::kFirstYear);
  const int last = options.year.value_or(simgen::kLastYear);
  for (int year = first; year <= last; ++year) {
    const auto run = bench::run_year(year, options);
    const auto& paper = simgen::paper_row(year);
    const auto summary = core::yearly_summary(year, run.config.window_days, run.tally,
                                              run.result.campaigns);

    volume.add_row({std::to_string(year),
                    report::human_count(summary.packets_per_day *
                                        bench::packet_upscale(options)),
                    report::human_count(paper.packets_per_day),
                    report::human_count(summary.scans_per_month *
                                        bench::scan_upscale(options)),
                    report::human_count(paper.scans_per_month),
                    report::fixed(summary.mean_packets_per_scan, 0),
                    report::human_count(static_cast<double>(summary.distinct_sources))});

    const auto& by_scans = summary.tools.by_scans;
    tools.add_row({std::to_string(year),
                   report::percent(by_scans.share(fingerprint::Tool::kMasscan)),
                   report::percent(paper.masscan_scan_share),
                   report::percent(by_scans.share(fingerprint::Tool::kNmap)),
                   report::percent(paper.nmap_scan_share),
                   report::percent(by_scans.share(fingerprint::Tool::kMirai)),
                   report::percent(paper.mirai_scan_share),
                   report::percent(by_scans.share(fingerprint::Tool::kZmap)),
                   report::percent(paper.zmap_scan_share),
                   report::percent(by_scans.known_share()),
                   report::percent(summary.tools.by_packets.known_share())});

    ports.add_row({std::to_string(year), port_list(summary.top_ports_by_packets),
                   port_list(summary.top_ports_by_sources),
                   port_list(summary.top_ports_by_scans)});
  }

  std::cout << "\n-- Volume --\n" << volume;
  std::cout << "\n-- Tools by scans (measured vs paper) --\n" << tools;
  std::cout << "\npaper anchors for the known-tool share: 34% of scans / 25% of\n"
               "packets in 2015; 54% / 92% in 2020; under 40% of packets by 2024.\n";
  std::cout << "\n-- Top ports --\n" << ports;
  return 0;
}
