// §6.3: scanning-speed distributions per tool and over time — NMap
// out-paces Masscan on average, the overall speed decreases, the top-100
// speed increases, and speed correlates with port breadth (§5.3).
#include <iostream>

#include "bench_common.h"
#include "core/analysis_campaigns.h"
#include "report/series.h"
#include "report/table.h"
#include "stats/descriptive.h"
#include "stats/hypothesis.h"

int main(int argc, char** argv) {
  using namespace synscan;
  const auto options = bench::parse_options(argc, argv);
  bench::print_banner("§6.3 — scanning speed over tools and years", "§6.3, §5.3",
                      options);

  report::Table table({"year", "median all (pps)", "median nmap", "median masscan",
                       "median mirai", "median zmap", "top-100 mean"});
  std::vector<double> years;
  std::vector<double> top100;
  std::vector<double> nmap_medians;

  const int first = options.year.value_or(simgen::kFirstYear);
  const int last = options.year.value_or(simgen::kLastYear);
  core::SpeedBreadthSample last_breadth;
  for (int year = first; year <= last; ++year) {
    const auto run = bench::run_year(year, options);
    const auto median_of = [&](std::optional<fingerprint::Tool> tool) -> std::string {
      const auto sample = tool ? core::speed_sample(run.result.campaigns, *tool)
                               : core::speed_sample(run.result.campaigns);
      if (sample.size() < 3) return "-";
      return report::fixed(stats::median(sample), 0);
    };
    const double top = core::top_speed_mean(run.result.campaigns, 100);
    table.add_row({std::to_string(year), median_of(std::nullopt),
                   median_of(fingerprint::Tool::kNmap),
                   median_of(fingerprint::Tool::kMasscan),
                   median_of(fingerprint::Tool::kMirai),
                   median_of(fingerprint::Tool::kZmap), report::fixed(top, 0)});
    years.push_back(year);
    top100.push_back(top);
    const auto nmap = core::speed_sample(run.result.campaigns, fingerprint::Tool::kNmap);
    if (nmap.size() >= 3) nmap_medians.push_back(stats::median(nmap));
    last_breadth = core::speed_breadth_sample(run.result.campaigns);
  }
  std::cout << table;

  const auto top_trend = stats::pearson(years, top100);
  std::cout << "\ntop-100 speed trend: R = " << report::fixed(top_trend.r, 3)
            << ", p = " << report::fixed(top_trend.p_value, 4)
            << "  (paper: R = 0.356, p < 0.001 — the top end keeps accelerating)\n";

  if (nmap_medians.size() >= 3) {
    std::vector<double> nmap_years(nmap_medians.size());
    for (std::size_t i = 0; i < nmap_years.size(); ++i) {
      nmap_years[i] = static_cast<double>(i);
    }
    const auto nmap_trend = stats::pearson(nmap_years, nmap_medians);
    std::cout << "NMap speed trend: R = " << report::fixed(nmap_trend.r, 3)
              << "  (paper: the only tool with an increasing trend, R = 0.12)\n";
  }

  const auto breadth = stats::pearson(last_breadth.ports, last_breadth.pps);
  std::cout << "speed vs port breadth (last window): R = "
            << report::fixed(breadth.r, 3)
            << "  (paper §5.3: positive, R = 0.88 — faster scans cover more ports)\n";
  std::cout << "\npaper shape: NMap consistently out-paces Masscan on average; only a\n"
               "select few at the very top (>1e5 pps) cash in the high-speed tools.\n";
  return 0;
}
