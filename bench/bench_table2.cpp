// Table 2: unique IP addresses, scans and packets per scanner type
// (Institutional / Hosting / Enterprise / Residential / Unknown).
//
// The paper aggregates over the full dataset; this bench uses the
// 2022 window (the era Table 2 is dominated by) and prints the paper's
// full-dataset row alongside.
#include <iostream>

#include "bench_common.h"
#include "core/analysis_types.h"
#include "report/table.h"

int main(int argc, char** argv) {
  using namespace synscan;
  const auto options = bench::parse_options(argc, argv);
  bench::print_banner("Table 2 — scanner types", "§6.6, Table 2", options);

  const int year = options.year.value_or(2022);
  auto config = simgen::year_config(year, options.scale);
  if (options.seed) config.seed = *options.seed;

  core::TypeTally types(bench::shared_registry());
  core::Pipeline pipeline(bench::shared_telescope());
  pipeline.add_observer(types);
  simgen::TrafficGenerator generator(config, bench::shared_telescope(),
                                     bench::shared_registry());
  (void)generator.run([&](const net::RawFrame& f) { pipeline.feed_frame(f); });
  const auto result = pipeline.finish();

  const auto table =
      core::type_share_table(types, result.campaigns, bench::shared_registry());

  // Paper values (full 10-year dataset).
  struct PaperRow {
    enrich::ScannerType type;
    double sources, scans, packets;
  };
  const PaperRow paper[] = {
      {enrich::ScannerType::kHosting, 0.0087, 0.0561, 0.1852},
      {enrich::ScannerType::kEnterprise, 0.0671, 0.1575, 0.0385},
      {enrich::ScannerType::kInstitutional, 0.0016, 0.0745, 0.3263},
      {enrich::ScannerType::kResidential, 0.5492, 0.4612, 0.2339},
      {enrich::ScannerType::kUnknown, 0.3733, 0.2507, 0.2161},
  };

  report::Table out({"type", "sources", "(paper)", "scans", "(paper)", "packets",
                     "(paper)"});
  for (const auto& row : paper) {
    const auto& measured = table[enrich::scanner_type_index(row.type)];
    out.add_row({std::string(enrich::to_string(row.type)),
                 report::percent(measured.source_share, 2), report::percent(row.sources, 2),
                 report::percent(measured.scan_share, 2), report::percent(row.scans, 2),
                 report::percent(measured.packet_share, 2),
                 report::percent(row.packets, 2)});
  }
  std::cout << "window: " << year << " (paper column aggregates 2015-2024)\n\n" << out;

  std::cout << "\nKey check — institutional: a sliver of sources ("
            << report::percent(
                   table[enrich::scanner_type_index(enrich::ScannerType::kInstitutional)]
                       .source_share,
                   2)
            << ") contributes "
            << report::percent(
                   table[enrich::scanner_type_index(enrich::ScannerType::kInstitutional)]
                       .packet_share,
                   1)
            << " of all packets (paper: 0.16% of sources, 32.6% of packets)\n";
  return 0;
}
