// Figures 9 & 10 (appendix): ports scanned by each known scanner in
// 2023 vs 2024, plus the appendix's ETL statistics (organizations
// identified, share of sources and traffic).
#include <iostream>
#include <map>

#include "bench_common.h"
#include "core/analysis_types.h"
#include "enrich/etl.h"
#include "enrich/known_scanners.h"
#include "report/table.h"

int main(int argc, char** argv) {
  using namespace synscan;
  const auto options = bench::parse_options(argc, argv);
  bench::print_banner("Figures 9/10 — known scanners, 2023 vs 2024", "Appendix A",
                      options);

  std::map<std::string, std::array<std::uint32_t, 2>> ports_by_org;
  std::array<double, 2> inst_packet_share{};
  std::array<double, 2> inst_source_share{};
  std::array<std::size_t, 2> org_count{};

  for (const int year : {2023, 2024}) {
    const auto index = static_cast<std::size_t>(year - 2023);
    auto config = simgen::year_config(year, options.scale);
    if (options.seed) config.seed = *options.seed;

    core::TypeTally types(bench::shared_registry());
    core::Pipeline pipeline(bench::shared_telescope());
    pipeline.add_observer(types);
    simgen::TrafficGenerator generator(config, bench::shared_telescope(),
                                       bench::shared_registry());
    (void)generator.run([&](const net::RawFrame& f) { pipeline.feed_frame(f); });
    const auto result = pipeline.finish();

    const auto coverage =
        core::org_port_coverage(result.campaigns, bench::shared_registry());
    for (const auto& org : coverage) {
      ports_by_org[org.organization][index] = org.distinct_ports;
    }
    org_count[index] = coverage.size();
    inst_packet_share[index] =
        types.total_packets() == 0
            ? 0.0
            : static_cast<double>(types.packets(enrich::ScannerType::kInstitutional)) /
                  static_cast<double>(types.total_packets());
    inst_source_share[index] =
        types.total_sources() == 0
            ? 0.0
            : static_cast<double>(types.sources(enrich::ScannerType::kInstitutional)) /
                  static_cast<double>(types.total_sources());
  }

  report::Table table({"organization", "ports 2023", "ports 2024", "trend"});
  for (const auto& [org, ports] : ports_by_org) {
    const char* trend = ports[1] > ports[0] * 5 / 4   ? "scaling up"
                        : ports[1] * 5 / 4 < ports[0] ? "scaling down"
                                                       : "steady";
    table.add_row({org, std::to_string(ports[0]), std::to_string(ports[1]), trend});
  }
  std::cout << table;

  std::cout << "\nknown-scanner footprint (paper: 36 orgs / 0.36% of sources / 51.3%\n"
               "of traffic in 2023; 40 orgs / 0.62% / 50.9% in 2024):\n";
  for (const int year : {2023, 2024}) {
    const auto index = static_cast<std::size_t>(year - 2023);
    std::cout << "  " << year << ": " << org_count[index] << " organizations seen, "
              << report::percent(inst_source_share[index], 2) << " of sources, "
              << report::percent(inst_packet_share[index]) << " of packets\n";
  }

  // The appendix's ETL over synthetic intelligence records for the known
  // sources observed in 2024.
  const enrich::KnownScannerEtl etl;
  std::vector<enrich::SourceIntelRecord> records;
  for (const auto& spec : enrich::known_scanner_specs()) {
    enrich::SourceIntelRecord ip_record;
    ip_record.ip = spec.prefix.at(3);
    records.push_back(ip_record);  // phase-1 candidate
    enrich::SourceIntelRecord rdns_record;
    rdns_record.ip = net::Ipv4Address::from_octets(9, 9, 9, 9);  // outside the prefix
    rdns_record.reverse_dns = enrich::ascii_lower(spec.name) + ".example.net";
    records.push_back(rdns_record);  // phase-2 candidate
  }
  const auto summary = etl.run(records);
  std::cout << "\nETL pipeline (appendix): " << summary.total << " intel records -> "
            << summary.ip_matched << " IP-matched (phase 1), " << summary.keyword_matched
            << " keyword-matched (phase 2), "
            << summary.total - summary.matched() << " unmatched\n";
  return 0;
}
