// §6.4: scan coverage is stable — coverage distributions per tool, the
// decline of single-source Internet-wide scans, and the sharding mode.
#include <iostream>

#include "bench_common.h"
#include "core/analysis_campaigns.h"
#include "report/series.h"
#include "report/table.h"
#include "stats/histogram.h"

int main(int argc, char** argv) {
  using namespace synscan;
  const auto options = bench::parse_options(argc, argv);
  bench::print_banner("§6.4 — scan coverage and sharding modes", "§6.4", options);

  report::Table table({"year", "masscan full-IPv4 share", "zmap mean coverage",
                       "masscan mean coverage", "all campaigns"});
  const int first = options.year.value_or(simgen::kFirstYear);
  const int last = options.year.value_or(simgen::kLastYear);
  for (int year = first; year <= last; ++year) {
    const auto run = bench::run_year(year, options);
    const auto masscan =
        core::coverage_sample(run.result.campaigns, fingerprint::Tool::kMasscan);
    const auto zmap =
        core::coverage_sample(run.result.campaigns, fingerprint::Tool::kZmap);
    const auto mean_of = [](const std::vector<double>& v) {
      if (v.empty()) return 0.0;
      double sum = 0;
      for (const auto x : v) sum += x;
      return sum / static_cast<double>(v.size());
    };
    std::size_t full = 0;
    for (const auto c : masscan) {
      if (c > 0.9) ++full;
    }
    table.add_row({std::to_string(year),
                   masscan.empty()
                       ? "-"
                       : report::percent(static_cast<double>(full) /
                                         static_cast<double>(masscan.size())),
                   zmap.empty() ? "-" : report::percent(mean_of(zmap), 2),
                   masscan.empty() ? "-" : report::percent(mean_of(masscan), 2),
                   std::to_string(run.result.campaigns.size())});
  }
  std::cout << table;

  // The sharding mode: a histogram of ZMap coverage in 2024 shows a spike
  // near 0.65% — collaborating sources each covering the same slice.
  const int mode_year = options.year.value_or(2024);
  const auto run = bench::run_year(mode_year, options);
  const auto zmap = core::coverage_sample(run.result.campaigns, fingerprint::Tool::kZmap);
  stats::LinearHistogram hist(0.0, 0.02, 40);  // 0..2% coverage, 0.05% bins
  for (const auto c : zmap) hist.add(c);
  std::cout << "\nZMap coverage histogram, " << mode_year
            << " (bins of 0.05% coverage):\n";
  for (std::size_t bin = 0; bin < hist.bins(); ++bin) {
    if (hist.count(bin) == 0) continue;
    std::cout << "  " << report::percent(hist.bin_left(bin), 2) << " - "
              << report::percent(hist.bin_left(bin) + 0.0005, 2) << ": "
              << hist.count(bin) << "\n";
  }
  std::cout << "mode at bin starting "
            << report::percent(hist.bin_left(hist.mode_bin()), 2)
            << " (paper: a pronounced peak around 0.65% IPv4 coverage — a /24 of\n"
               "academic scanners collaborating on one scan)\n";
  std::cout << "\npaper shape: full-IPv4 single-source scans are rare and declining\n"
               "(>20% of Masscan scans in 2016, dropping afterwards); coverage modes\n"
               "reveal logical slicing of the target space.\n";
  return 0;
}
