// §4.1: the ZMap surge of 2024 — minimum/maximum ZMap scans per day in
// 2023 vs 2024, and the growth in participating hosts (sharding).
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "core/analysis_campaigns.h"
#include "report/table.h"

int main(int argc, char** argv) {
  using namespace synscan;
  const auto options = bench::parse_options(argc, argv);
  bench::print_banner("§4.1 — ZMap scans per day, 2023 vs 2024", "§4.1", options);

  report::Table table({"year", "zmap scans/day min", "max", "mean", "zmap hosts",
                       "zmap share of scans"});
  struct PaperNumbers {
    int year;
    double min_day, max_day, hosts;
  };
  // Paper absolutes: min 3,448 & max 9,051 scans/day with 25,809 hosts in
  // 2023; min 17,122 scans/day with 41,038 hosts in 2024.
  const PaperNumbers paper[] = {{2023, 3448, 9051, 25809}, {2024, 17122, 0, 41038}};

  for (const auto& expectation : paper) {
    const auto run = bench::run_year(expectation.year, options);
    auto per_day = core::campaigns_per_day(run.result.campaigns, run.config.start_time,
                                           fingerprint::Tool::kZmap);
    // Drop the partial last day.
    if (per_day.size() > 1) per_day.pop_back();
    const auto [min_it, max_it] = std::minmax_element(per_day.begin(), per_day.end());
    double mean = 0;
    for (const auto d : per_day) mean += static_cast<double>(d);
    mean /= static_cast<double>(per_day.size());

    const auto hosts =
        core::distinct_sources(run.result.campaigns, fingerprint::Tool::kZmap);
    const auto shares = core::tool_shares(run.result.campaigns);
    table.add_row({std::to_string(expectation.year),
                   std::to_string(per_day.empty() ? 0 : *min_it),
                   std::to_string(per_day.empty() ? 0 : *max_it),
                   report::fixed(mean, 1), std::to_string(hosts),
                   report::percent(shares.by_scans.share(fingerprint::Tool::kZmap))});
  }
  std::cout << table;

  const double upscale = bench::scan_upscale(options);
  std::cout << "\npaper absolutes (divide by the scan scale 1/" << upscale
            << " to compare):\n"
            << "  2023: min 3,448 and max 9,051 ZMap scans/day; 25,809 hosts\n"
            << "  2024: min 17,122 ZMap scans/day; 41,038 hosts\n"
            << "shape check: the 2024 minimum must exceed the 2023 maximum, and the\n"
            << "host count grows while packets per scan shrink (sharding, §4.1).\n";
  return 0;
}
