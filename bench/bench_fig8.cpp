// Figure 8: port coverage of well-known Internet-wide scanning projects
// in 2024 (Censys and Palo Alto cover all 65,536 ports; Shadowserver and
// Rapid7 do not — yet).
#include <iostream>

#include "bench_common.h"
#include "core/analysis_types.h"
#include "enrich/known_scanners.h"
#include "report/table.h"

int main(int argc, char** argv) {
  using namespace synscan;
  const auto options = bench::parse_options(argc, argv);
  bench::print_banner("Figure 8 — known scanners' port coverage in 2024",
                      "§6.8, Fig. 8", options);

  const int year = options.year.value_or(2024);
  const auto run = bench::run_year(year, options);
  const auto coverage = core::org_port_coverage(run.result.campaigns,
                                                bench::shared_registry());

  report::Table table({"organization", "ports (measured)", "ports (catalog)",
                       "coverage", "campaigns", "packets"});
  for (const auto& org : coverage) {
    const auto* spec = enrich::find_known_scanner(org.organization);
    const auto catalog_ports =
        spec == nullptr ? 0u : (year >= 2024 ? spec->ports_2024 : spec->ports_2023);
    table.add_row({org.organization, std::to_string(org.distinct_ports),
                   std::to_string(catalog_ports),
                   report::percent(org.distinct_ports / 65536.0),
                   std::to_string(org.campaigns),
                   report::human_count(static_cast<double>(org.packets))});
  }
  std::cout << "window: " << year << "\n\n" << table;
  std::cout << "\nNote: measured ports lag the catalog when the scaled window is too\n"
               "short for an organization's full sweep to repeat; full-range scanners\n"
               "still clearly separate from the partial and few-port ones.\n";
  return 0;
}
