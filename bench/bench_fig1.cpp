// Figure 1: large scanning events after vulnerability disclosures stop
// receiving traffic quickly.
//
// Simulates a window with ten staggered disclosure events, then plots
// the activity multiplier (relative to the pre-disclosure baseline) per
// day after disclosure, and verifies "back to normal" with the KS test.
#include <iostream>

#include "bench_common.h"
#include "report/table.h"

int main(int argc, char** argv) {
  using namespace synscan;
  const auto options = bench::parse_options(argc, argv);
  bench::print_banner("Figure 1 — disclosure-driven surges decay fast", "§4.3, Fig. 1",
                      options);

  auto config = simgen::disclosure_study_config(options.scale);
  if (options.seed) config.seed = *options.seed;
  const auto events = config.events;  // keep a copy (run consumes config)

  bench::Observers observers;
  observers.daily_series = true;
  const auto run = bench::run_window(config, observers);

  report::Table table({"event", "port", "day", "peak x", "days-to-normal", "KS p (tail)",
                       "back to normal?"});
  std::size_t recovered = 0;
  for (const auto& event : events) {
    const auto decay = core::disclosure_decay(*run.daily, event.port,
                                              static_cast<std::size_t>(event.day));
    const bool normal = decay.back_to_normal.p_value > 0.05;
    if (normal) ++recovered;
    table.add_row({event.name, std::to_string(event.port),
                   report::fixed(event.day, 0), report::fixed(decay.peak_multiplier, 1),
                   decay.days_to_recover == SIZE_MAX
                       ? std::string("never")
                       : std::to_string(decay.days_to_recover),
                   report::fixed(decay.back_to_normal.p_value, 3),
                   normal ? "yes" : "no"});
  }
  std::cout << table;

  std::cout << "\nMean multiplier by day-after-disclosure (pooled over events):\n";
  // Pool multipliers by day-after over all events.
  std::vector<double> pooled;
  std::vector<int> counts;
  for (const auto& event : events) {
    const auto decay = core::disclosure_decay(*run.daily, event.port,
                                              static_cast<std::size_t>(event.day));
    for (std::size_t day = 0; day < decay.multiplier.size() && day < 14; ++day) {
      if (pooled.size() <= day) {
        pooled.resize(day + 1, 0.0);
        counts.resize(day + 1, 0);
      }
      pooled[day] += decay.multiplier[day];
      ++counts[day];
    }
  }
  for (std::size_t day = 0; day < pooled.size(); ++day) {
    std::cout << "  day +" << day << ": "
              << report::fixed(pooled[day] / counts[day], 1) << "x baseline\n";
  }
  std::cout << "\n" << recovered << "/" << events.size()
            << " events statistically back to normal within the window "
            << "(paper: activity \"quickly dies down in a matter of weeks\")\n";
  return 0;
}
